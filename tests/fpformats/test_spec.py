"""Unit tests for the floating-point format specifications."""

import pytest

from repro.fpformats.spec import (
    BFLOAT16,
    FLOAT16,
    FLOAT32,
    FLOAT64,
    FloatFormat,
    get_format,
)


class TestFormatProperties:
    def test_fp32_bias(self):
        assert FLOAT32.bias == 127

    def test_fp16_bias(self):
        assert FLOAT16.bias == 15

    def test_bf16_bias(self):
        assert BFLOAT16.bias == 127

    def test_fp64_bias(self):
        assert FLOAT64.bias == 1023

    def test_total_bits(self):
        assert FLOAT32.total_bits == 32
        assert FLOAT16.total_bits == 16
        assert BFLOAT16.total_bits == 16
        assert FLOAT64.total_bits == 64

    def test_bf16_and_fp32_share_exponent_range(self):
        assert BFLOAT16.exponent_bits == FLOAT32.exponent_bits
        assert BFLOAT16.bias == FLOAT32.bias
        assert BFLOAT16.max_normal_exponent == FLOAT32.max_normal_exponent

    def test_machine_epsilon(self):
        assert FLOAT32.machine_epsilon == 2.0**-23
        assert FLOAT16.machine_epsilon == 2.0**-10
        assert BFLOAT16.machine_epsilon == 2.0**-7

    def test_max_finite_fp32(self):
        import numpy as np

        assert FLOAT32.max_finite == pytest.approx(float(np.finfo(np.float32).max))

    def test_max_finite_fp16(self):
        assert FLOAT16.max_finite == 65504.0

    def test_min_positive_normal_fp32(self):
        assert FLOAT32.min_positive_normal == 2.0**-126

    def test_min_positive_subnormal_fp32(self):
        assert FLOAT32.min_positive_subnormal == 2.0**-149

    def test_subnormals_disabled(self):
        fmt = FloatFormat("flush", exponent_bits=8, mantissa_bits=7, supports_subnormals=False)
        assert fmt.min_positive_subnormal == fmt.min_positive_normal

    def test_max_exponent_field(self):
        assert FLOAT32.max_exponent_field == 255
        assert FLOAT16.max_exponent_field == 31


class TestValidation:
    def test_rejects_tiny_exponent(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exponent_bits=1, mantissa_bits=4)

    def test_rejects_zero_mantissa(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exponent_bits=5, mantissa_bits=0)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exponent_bits=20, mantissa_bits=60)

    def test_custom_format_allowed(self):
        e4m3 = FloatFormat("e4m3", exponent_bits=4, mantissa_bits=3)
        assert e4m3.bias == 7
        assert e4m3.total_bits == 8


class TestRegistry:
    def test_get_format_by_name(self):
        assert get_format("fp32") is FLOAT32
        assert get_format("bfloat16") is BFLOAT16
        assert get_format("float16") is FLOAT16

    def test_get_format_case_insensitive(self):
        assert get_format("FP32") is FLOAT32
        assert get_format("BF16") is BFLOAT16

    def test_get_format_passthrough(self):
        assert get_format(FLOAT16) is FLOAT16

    def test_get_format_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown float format"):
            get_format("fp8")

    def test_formats_are_frozen(self):
        with pytest.raises(Exception):
            FLOAT32.mantissa_bits = 10  # type: ignore[misc]
