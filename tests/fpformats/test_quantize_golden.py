"""Golden-value regression tests for ``fpformats.quantize``.

Every expectation here is a hand-computed bit pattern or boundary value
(not derived by calling the code under test), so any change to the
rounding behaviour — ties-to-even, subnormal handling, or the
saturation-vs-infinity overflow boundary — fails loudly.
"""

import numpy as np
import pytest

from repro.fpformats.quantize import quantize
from repro.fpformats.spec import BFLOAT16, FLOAT16, FLOAT32, FloatFormat


def fp16_bits(value: float) -> int:
    return int(np.float16(value).view(np.uint16))


def fp32_bits(value: float) -> int:
    return int(np.float32(value).view(np.uint32))


class TestFP16Golden:
    """binary16: 5 exponent bits, 10 mantissa bits, bias 15."""

    def test_one_third_bit_pattern(self):
        # 1/3 = 1.0101010101(01...)b * 2^-2; the 10-bit mantissa keeps
        # 0101010101 and the first dropped bit is 0 -> round down.
        # Sign 0, exponent 13 (01101), mantissa 0101010101 -> 0x3555.
        assert fp16_bits(quantize(1 / 3, "fp16")) == 0x3555

    def test_ties_to_even(self):
        # 1 + 2^-11 is exactly half an ulp (2^-10) above 1.0; the tie
        # resolves to the even mantissa (all zeros): 1.0 = 0x3C00.
        assert quantize(1.0 + 2.0**-11, "fp16") == 1.0
        assert fp16_bits(quantize(1.0 + 2.0**-11, "fp16")) == 0x3C00
        # 1 + 3*2^-11 ties between mantissas 1 and 2; even is 2 -> 1 + 2^-9.
        assert quantize(1.0 + 3.0 * 2.0**-11, "fp16") == 1.0 + 2.0**-9
        # Just above the halfway point rounds up to mantissa 1.
        assert quantize(1.0 + 2.0**-11 + 2.0**-24, "fp16") == 1.0 + 2.0**-10

    def test_subnormals(self):
        # Smallest positive subnormal is 2^-24 and is kept exactly.
        assert quantize(2.0**-24, "fp16") == 2.0**-24
        # Half of it ties between 0 and 2^-24; the even mantissa is 0.
        assert quantize(2.0**-25, "fp16") == 0.0
        # 1.5 * 2^-24 ties between mantissas 1 and 2; even is 2 -> 2^-23.
        assert quantize(1.5 * 2.0**-24, "fp16") == 2.0**-23

    def test_saturation_vs_inf_boundary(self):
        # max_finite = (2 - 2^-10) * 2^15 = 65504, top-binade ulp = 2^5.
        assert FLOAT16.max_finite == 65504.0
        # Below max + ulp/2 = 65520 rounds down to max_finite ...
        assert quantize(65519.999, "fp16") == 65504.0
        # ... and at the boundary the tie (even = 2^16, not representable)
        # overflows to infinity, as IEEE round-to-nearest does.
        assert np.isinf(quantize(65520.0, "fp16"))
        assert quantize(-65520.0, "fp16") == -np.inf


class TestFP32Golden:
    """binary32: 8 exponent bits, 23 mantissa bits, bias 127."""

    def test_one_third_bit_pattern(self):
        # 1/3 rounds up to mantissa 0x2AAAAB: bit pattern 0x3EAAAAAB.
        assert fp32_bits(quantize(1 / 3, "fp32")) == 0x3EAAAAAB

    def test_ties_to_even(self):
        assert quantize(1.0 + 2.0**-24, "fp32") == 1.0
        assert quantize(1.0 + 3.0 * 2.0**-24, "fp32") == 1.0 + 2.0**-22

    def test_saturation_vs_inf_boundary(self):
        max_finite = FLOAT32.max_finite  # (2 - 2^-23) * 2^127
        ulp = 2.0**104  # ulp of the top binade: 2^(127-23)
        assert quantize(max_finite + 0.499 * ulp, "fp32") == max_finite
        assert np.isinf(quantize(max_finite + 0.5 * ulp, "fp32"))


class TestBFloat16Golden:
    """bfloat16 (e8m7) exercises the generic ulp-scaling path."""

    def test_one_third_value(self):
        # Mantissa 0101010|1... rounds up: (1 + 43/128) * 2^-2 = 171/512.
        assert quantize(1 / 3, "bf16") == 171.0 / 512.0

    def test_subnormals(self):
        tiny = 2.0**-133  # smallest positive bf16 subnormal (2^(-126-7))
        assert BFLOAT16.min_positive_subnormal == tiny
        assert quantize(tiny, "bf16") == tiny
        assert quantize(0.25 * tiny, "bf16") == 0.0
        # Tie at 1.5 * tiny resolves to the even mantissa (2) -> 2^-132.
        assert quantize(1.5 * tiny, "bf16") == 2.0**-132

    def test_saturation_vs_inf_boundary(self):
        max_finite = BFLOAT16.max_finite  # (2 - 2^-7) * 2^127
        ulp = 2.0**120  # 2^(127-7)
        assert quantize(max_finite + 0.499 * ulp, "bf16") == max_finite
        assert np.isinf(quantize(max_finite + 0.5 * ulp, "bf16"))
        assert quantize(-(max_finite + 0.5 * ulp), "bf16") == -np.inf


class TestNoSubnormalFlush:
    """Formats without subnormals flush below-min-normal results to zero."""

    NOSUB = FloatFormat(
        "e4m3_nosub", exponent_bits=4, mantissa_bits=3, supports_subnormals=False
    )
    SUB = FloatFormat("e4m3_sub", exponent_bits=4, mantissa_bits=3)

    def test_min_normal_preserved(self):
        assert self.NOSUB.min_positive_normal == 2.0**-6
        assert quantize(2.0**-6, self.NOSUB) == 2.0**-6

    def test_below_min_normal_flushes_to_zero(self):
        assert quantize(0.9 * 2.0**-6, self.NOSUB) == 0.0
        assert quantize(0.01, self.NOSUB) == 0.0
        assert quantize(-0.01, self.NOSUB) == 0.0

    def test_same_value_survives_with_subnormals(self):
        # Sanity cross-check: with gradual underflow the value is kept as
        # the subnormal 7 * 2^-9.
        assert quantize(0.9 * 2.0**-6, self.SUB) == 7.0 * 2.0**-9

    @pytest.mark.parametrize("value", [1.0, 1.125, 0.5, 240.0])
    def test_normal_range_unaffected(self, value):
        assert quantize(value, self.NOSUB) == quantize(value, self.SUB)
