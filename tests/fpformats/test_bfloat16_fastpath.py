"""Golden bit-pattern tests for the bfloat16 uint32 fast path.

bfloat16 quantization now runs vectorized round-to-nearest-even on
``uint32`` views of float32 (with a round-to-odd float64 → float32 prestep
to kill double rounding) instead of the generic ulp-scaling path.  These
tests pin the exact bit patterns by hand *and* cross-check the fast path
against the generic implementation — including adversarial values parked
just off bfloat16 tie midpoints, where a naive double rounding goes wrong.
"""

import numpy as np
import pytest

from repro.fpformats.quantize import _quantize_bfloat16, _quantize_generic, quantize
from repro.fpformats.spec import BFLOAT16


def bf16_bits(value: float) -> int:
    """Upper 16 bits of the float32 encoding — the bfloat16 bit pattern."""
    return int(np.float32(value).view(np.uint32)) >> 16


class TestGoldenBitPatterns:
    """Hand-computed patterns; not derived from the code under test."""

    @pytest.mark.parametrize(
        "value, pattern",
        [
            (1.0, 0x3F80),            # sign 0, exp 127, mantissa 0
            (-2.0, 0xC000),           # sign 1, exp 128, mantissa 0
            (0.0, 0x0000),
            (-0.0, 0x8000),
            (np.inf, 0x7F80),
            (-np.inf, 0xFF80),
            # 1/3 = 1.01010101(01..)b * 2^-2: mantissa 0101010|1 rounds up
            # to 0101011 -> 0x3EAB.
            (1 / 3, 0x3EAB),
            # Largest finite bfloat16: exp 254, mantissa all ones.
            (float(BFLOAT16.max_finite), 0x7F7F),
            # Smallest positive subnormal 2^-133: exp 0, mantissa 1.
            (2.0**-133, 0x0001),
            # Smallest positive normal 2^-126: exp 1, mantissa 0.
            (2.0**-126, 0x0080),
        ],
    )
    def test_pattern(self, value, pattern):
        assert bf16_bits(_quantize_bfloat16(np.float64(value))) == pattern

    def test_nan_stays_nan(self):
        assert np.isnan(_quantize_bfloat16(np.float64(np.nan)))

    def test_ties_to_even(self):
        # 1 + 2^-8 is exactly half an ulp (2^-7) above 1.0: tie -> even (1.0).
        assert _quantize_bfloat16(np.float64(1.0 + 2.0**-8)) == 1.0
        # 1 + 3*2^-8 ties between mantissas 1 and 2: even is 2 -> 1 + 2^-6.
        assert _quantize_bfloat16(np.float64(1.0 + 3.0 * 2.0**-8)) == 1.0 + 2.0**-6
        # Just above the midpoint rounds up to mantissa 1.
        assert _quantize_bfloat16(np.float64(1.0 + 2.0**-8 + 2.0**-40)) == 1.0 + 2.0**-7

    def test_overflow_to_inf(self):
        max_finite = BFLOAT16.max_finite
        ulp = 2.0**120  # top-binade ulp, 2^(127-7)
        assert _quantize_bfloat16(np.float64(max_finite + 0.499 * ulp)) == max_finite
        assert np.isinf(_quantize_bfloat16(np.float64(max_finite + 0.5 * ulp)))
        assert _quantize_bfloat16(np.float64(-(max_finite + 0.5 * ulp))) == -np.inf

    def test_subnormal_ties(self):
        tiny = 2.0**-133
        assert _quantize_bfloat16(np.float64(0.25 * tiny)) == 0.0
        # 1.5 * tiny ties between mantissas 1 and 2 -> even (2) -> 2^-132.
        assert _quantize_bfloat16(np.float64(1.5 * tiny)) == 2.0**-132
        # Half of the smallest subnormal ties down to (even) zero.
        assert _quantize_bfloat16(np.float64(0.5 * tiny)) == 0.0
        assert _quantize_bfloat16(np.float64(0.5 * tiny + 2.0**-160)) == tiny


class TestDoubleRoundingHazards:
    """Values where float64 -> float32 -> bfloat16 double rounding fails."""

    def test_just_above_tie_midpoint_rounds_up(self):
        # m = 1 + 2^-8 is the tie midpoint between 1.0 and 1 + 2^-7.  A
        # value m + 2^-35 is NOT a tie and must round up; naive float32
        # rounding first collapses it onto m (2^-35 is below float32's
        # 2^-24 ulp at 1.0), after which ties-to-even would go DOWN to 1.0.
        hazard = np.float64(1.0) + np.float64(2.0**-8) + np.float64(2.0**-35)
        assert _quantize_bfloat16(hazard) == 1.0 + 2.0**-7
        # The generic path agrees (it rounds float64 directly).
        assert _quantize_generic(np.atleast_1d(hazard), BFLOAT16)[0] == 1.0 + 2.0**-7

    def test_just_below_tie_midpoint_rounds_down(self):
        # m - eps must round down to 3 + 0*ulp even though float32 rounding
        # could push it onto the midpoint from below.
        base = np.float64(3.0)  # mantissa 1000000
        ulp = 2.0**-6  # bfloat16 ulp in [2, 4)
        hazard = base + 0.5 * ulp - np.float64(2.0**-33)
        assert _quantize_bfloat16(hazard) == base

    @pytest.mark.parametrize("offset", [2.0**-30, -(2.0**-30), 2.0**-40, -(2.0**-40)])
    def test_near_midpoint_grid_matches_generic(self, offset):
        mantissas = np.arange(128, dtype=np.float64)  # every bf16 mantissa
        values = (1.0 + mantissas / 128.0 + 2.0**-8 + offset) * 2.0**3
        fast = _quantize_bfloat16(values)
        generic = _quantize_generic(values.copy(), BFLOAT16)
        np.testing.assert_array_equal(fast, generic)


class TestFastPathEquivalence:
    """The fast path is bit-identical to the generic ulp-scaling path."""

    def test_random_normals(self, rng):
        x = rng.normal(scale=10.0, size=4096)
        np.testing.assert_array_equal(
            _quantize_bfloat16(x), _quantize_generic(x.copy(), BFLOAT16)
        )

    def test_log_uniform_magnitudes(self, rng):
        # Spans normals, subnormals, and the underflow-to-zero region.
        exponents = rng.uniform(-145.0, 128.0, size=4096)
        x = np.sign(rng.normal(size=4096)) * np.exp2(exponents)
        np.testing.assert_array_equal(
            _quantize_bfloat16(x), _quantize_generic(x.copy(), BFLOAT16)
        )

    def test_specials_and_shapes(self):
        x = np.array([[np.inf, -np.inf, 0.0], [-0.0, np.nan, 1.5]])
        fast = _quantize_bfloat16(x)
        generic = _quantize_generic(x.copy(), BFLOAT16)
        np.testing.assert_array_equal(fast, generic)
        assert fast.shape == x.shape

    def test_scalar_via_public_api(self):
        out = quantize(1 / 3, "bf16")
        assert isinstance(out, float)
        assert out == 171.0 / 512.0

    def test_public_api_routes_bf16_through_fast_path(self, rng):
        x = rng.normal(size=257)
        np.testing.assert_array_equal(quantize(x, "bf16"), _quantize_bfloat16(x))
