"""Unit and property-based tests for format quantization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpformats.quantize import quantization_step, quantize, representable
from repro.fpformats.spec import BFLOAT16, FloatFormat


class TestNativeFormats:
    def test_fp32_matches_numpy_cast(self, rng):
        x = rng.normal(size=1000) * 10.0**rng.integers(-10, 10, size=1000)
        expected = x.astype(np.float32).astype(np.float64)
        np.testing.assert_array_equal(quantize(x, "fp32"), expected)

    def test_fp16_matches_numpy_cast(self, rng):
        x = rng.normal(size=1000)
        expected = x.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(quantize(x, "fp16"), expected)

    def test_fp64_is_identity(self, rng):
        x = rng.normal(size=100)
        np.testing.assert_array_equal(quantize(x, "fp64"), x)

    def test_scalar_in_scalar_out(self):
        result = quantize(1.0000001, "fp32")
        assert isinstance(result, float)

    def test_array_in_array_out(self):
        result = quantize(np.array([1.0, 2.0]), "fp32")
        assert isinstance(result, np.ndarray)


class TestBFloat16:
    def test_bf16_exactly_representable_values(self):
        # bf16 has a 7-bit mantissa: 1 + k/128 are representable.
        for k in range(128):
            value = 1.0 + k / 128.0
            assert quantize(value, "bf16") == value

    def test_bf16_rounds_to_nearest(self):
        # 1 + 1/256 is exactly halfway between 1 and 1+1/128 -> ties to even (1.0).
        assert quantize(1.0 + 1.0 / 256.0, "bf16") == 1.0
        # 1 + 3/256 is halfway between 1+1/128 and 1+2/128 -> ties to even (1+2/128).
        assert quantize(1.0 + 3.0 / 256.0, "bf16") == 1.0 + 2.0 / 128.0

    def test_bf16_just_above_halfway_rounds_up(self):
        assert quantize(1.0 + 1.0 / 256.0 + 1e-9, "bf16") == 1.0 + 1.0 / 128.0

    def test_bf16_overflow_to_inf(self):
        assert np.isinf(quantize(1e39, "bf16"))
        assert quantize(-1e39, "bf16") == -np.inf

    def test_bf16_preserves_sign_of_zero_magnitude(self):
        assert quantize(0.0, "bf16") == 0.0

    def test_bf16_special_values(self):
        assert np.isnan(quantize(np.nan, "bf16"))
        assert quantize(np.inf, "bf16") == np.inf
        assert quantize(-np.inf, "bf16") == -np.inf

    def test_bf16_subnormal(self):
        tiny = BFLOAT16.min_positive_subnormal
        assert quantize(tiny, "bf16") == tiny
        assert quantize(tiny * 0.4, "bf16") == 0.0

    def test_bf16_matches_fp32_truncation_range(self, rng):
        # Every bf16 value is also an fp32 value.
        x = rng.normal(size=500)
        q = quantize(x, "bf16")
        np.testing.assert_array_equal(q, quantize(q, "fp32"))


class TestQuantizationStep:
    def test_ulp_of_one(self):
        assert quantization_step(1.0, "fp32") == 2.0**-23
        assert quantization_step(1.0, "bf16") == 2.0**-7

    def test_ulp_scales_with_binade(self):
        assert quantization_step(4.0, "fp16") == 4.0 * 2.0**-10 / 2.0 * 2.0
        assert quantization_step(1024.0, "bf16") == 1024.0 * 2.0**-7

    def test_half_ulp_error_bound(self, rng):
        x = rng.uniform(0.1, 100.0, size=2000)
        err = np.abs(np.asarray(quantize(x, "bf16")) - x)
        assert np.all(err <= 0.5 * np.asarray(quantization_step(x, "bf16")) + 1e-300)

    def test_zero_reports_minimum_positive_step(self):
        # Regression: zero used to fall through the placeholder and report
        # the ulp of 1.0; it must report the format's smallest positive
        # step (the subnormal spacing).
        assert quantization_step(0.0, "fp16") == 2.0**-24
        assert quantization_step(0.0, "bf16") == 2.0**-133
        assert quantization_step(-0.0, "fp32") == 2.0**-149
        assert quantization_step(0.0, "fp16") != quantization_step(1.0, "fp16")

    def test_zero_step_without_subnormals_is_min_normal(self):
        nosub = FloatFormat(
            "e4m3_nosub_step", exponent_bits=4, mantissa_bits=3,
            supports_subnormals=False,
        )
        # Without gradual underflow the nearest nonzero neighbour of 0 is
        # the smallest normal, so that is the step at zero.
        assert quantization_step(0.0, nosub) == nosub.min_positive_normal

    def test_zero_mixed_into_array(self):
        steps = quantization_step(np.array([0.0, 1.0, 4.0]), "fp16")
        np.testing.assert_array_equal(steps, [2.0**-24, 2.0**-10, 2.0**-8])


class TestRepresentable:
    def test_powers_of_two_representable_everywhere(self):
        for fmt in ("fp32", "fp16", "bf16"):
            assert representable(0.5, fmt)
            assert representable(2.0, fmt)
            assert representable(1024.0, fmt)

    def test_non_representable(self):
        assert not representable(0.1, "bf16")
        assert not representable(1.0 + 2.0**-20, "bf16")

    def test_representable_array(self):
        mask = representable(np.array([1.0, 0.1, 2.0]), "bf16")
        assert list(mask) == [True, False, True]


class TestGenericFormats:
    def test_e4m3_like_format(self):
        fp8 = FloatFormat("e4m3", exponent_bits=4, mantissa_bits=3)
        assert quantize(1.125, fp8) == 1.125  # 1 + 1/8 representable
        assert quantize(1.0625, fp8) == 1.0  # halfway, ties to even
        assert quantize(1.03, fp8) == 1.0

    def test_generic_path_matches_native_fp16(self, rng):
        # Force the generic path by constructing an equivalent custom format.
        custom = FloatFormat("custom_half", exponent_bits=5, mantissa_bits=10)
        x = rng.normal(size=2000) * 10.0**rng.integers(-4, 4, size=2000)
        generic = quantize(x, custom)
        native = x.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(generic, native)


# -- property-based tests -----------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
)


@given(finite_floats)
@settings(max_examples=200, deadline=None)
def test_quantize_is_idempotent(value):
    for fmt in ("fp32", "fp16", "bf16"):
        once = quantize(value, fmt)
        twice = quantize(once, fmt)
        assert once == twice or (np.isnan(once) and np.isnan(twice)) or (
            np.isinf(once) and np.isinf(twice)
        )


@given(finite_floats)
@settings(max_examples=200, deadline=None)
def test_quantize_preserves_sign(value):
    q = quantize(value, "bf16")
    if value > 0:
        assert q >= 0
    elif value < 0:
        assert q <= 0
    else:
        assert q == 0


@given(st.lists(finite_floats, min_size=2, max_size=20))
@settings(max_examples=100, deadline=None)
def test_quantize_is_monotone(values):
    x = np.sort(np.asarray(values))
    q = np.asarray(quantize(x, "bf16"))
    finite = np.isfinite(q)
    assert np.all(np.diff(q[finite]) >= 0)


@given(st.floats(min_value=1e-30, max_value=1e30, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_quantize_relative_error_bounded_by_epsilon(value):
    from repro.fpformats.spec import get_format

    for fmt, eps in (("fp32", 2.0**-24), ("fp16", 2.0**-11), ("bf16", 2.0**-8)):
        spec = get_format(fmt)
        if not spec.min_positive_normal <= abs(value) <= spec.max_finite:
            continue  # overflow / subnormal range: relative bound does not apply
        q = quantize(value, fmt)
        assert abs(q - value) <= eps * abs(value) * (1 + 1e-12)
