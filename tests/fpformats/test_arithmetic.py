"""Unit and property-based tests for format-rounded arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpformats.arithmetic import FormatArithmetic
from repro.fpformats.quantize import quantize


class TestElementaryOps:
    def test_add_rounds_result(self):
        arith = FormatArithmetic("bf16")
        # 1 + 2^-10 rounds back to 1 in bf16 (7-bit mantissa).
        assert arith.add(1.0, 2.0**-10) == 1.0

    def test_mul_rounds_result(self):
        arith = FormatArithmetic("bf16")
        result = arith.mul(1.0 + 2.0**-7, 1.0 + 2.0**-7)
        assert result == quantize((1.0 + 2.0**-7) ** 2, "bf16")

    def test_sub_exact_when_representable(self):
        arith = FormatArithmetic("fp16")
        assert arith.sub(3.0, 1.5) == 1.5

    def test_fma_is_not_fused(self):
        arith = FormatArithmetic("bf16")
        a, b, c = 1.0 + 2.0**-7, 1.0 - 2.0**-7, -1.0
        fused = a * b + c  # exact in float64
        ours = arith.fma(a, b, c)
        # The rounded product is exactly 1.0 (the 2^-14 term is lost), so the
        # macro-style result is 0 while the fused result is -2^-14.
        assert ours == 0.0
        assert fused != 0.0

    def test_cast(self):
        arith = FormatArithmetic("fp16")
        assert arith.cast(1.0 + 2.0**-12) == 1.0

    def test_fp64_arithmetic_is_exact(self, rng):
        arith = FormatArithmetic("fp64")
        a, b = rng.normal(size=10), rng.normal(size=10)
        np.testing.assert_array_equal(arith.add(a, b), a + b)
        np.testing.assert_array_equal(arith.mul(a, b), a * b)

    def test_invalid_fan_in(self):
        with pytest.raises(ValueError):
            FormatArithmetic("fp32", tree_fan_in=1)


class TestTreeSum:
    def test_matches_exact_sum_in_fp64(self, rng):
        arith = FormatArithmetic("fp64")
        x = rng.normal(size=100)
        assert arith.tree_sum(x) == pytest.approx(x.sum(), rel=1e-12)

    def test_axis_reduction_matches_per_row(self, rng):
        arith = FormatArithmetic("bf16")
        x = rng.normal(size=(6, 50))
        batched = np.asarray(arith.tree_sum(x, axis=-1))
        rows = np.array([arith.tree_sum(x[i]) for i in range(6)])
        np.testing.assert_array_equal(batched, rows)

    def test_empty_sum_is_zero(self):
        arith = FormatArithmetic("fp32")
        assert arith.tree_sum(np.array([])) == 0.0

    def test_single_element(self):
        arith = FormatArithmetic("bf16")
        assert arith.tree_sum(np.array([1.5])) == 1.5

    def test_padding_does_not_change_result(self, rng):
        arith = FormatArithmetic("fp32")
        x = rng.normal(size=13)  # not a multiple of the fan-in
        padded = np.concatenate([x, np.zeros(3)])
        assert arith.tree_sum(x) == arith.tree_sum(padded)

    def test_tree_sum_error_smaller_than_sequential_for_bf16(self, rng):
        # Pairwise/tree accumulation has O(log n) error growth versus O(n);
        # with 4096 positive terms in bf16 the difference is visible.
        arith = FormatArithmetic("bf16", tree_fan_in=2)
        x = rng.uniform(0.5, 1.0, size=4096)
        exact = x.sum()
        tree = arith.tree_sum(x)
        sequential = 0.0
        for value in x:
            sequential = float(quantize(sequential + float(quantize(value, "bf16")), "bf16"))
        assert abs(tree - exact) < abs(sequential - exact)

    def test_axis_zero(self, rng):
        arith = FormatArithmetic("fp32")
        x = rng.normal(size=(5, 3))
        result = np.asarray(arith.tree_sum(x, axis=0))
        assert result.shape == (3,)
        np.testing.assert_allclose(result, x.sum(axis=0), rtol=1e-6)


class TestDotAndMean:
    def test_dot_matches_exact_in_fp64(self, rng):
        arith = FormatArithmetic("fp64")
        a, b = rng.normal(size=64), rng.normal(size=64)
        assert arith.dot(a, b) == pytest.approx(float(a @ b), rel=1e-12)

    def test_sum_of_squares_non_negative(self, rng):
        arith = FormatArithmetic("bf16")
        x = rng.normal(size=128)
        assert arith.sum_of_squares(x) >= 0.0

    def test_mean_uses_reciprocal_multiply(self):
        arith = FormatArithmetic("bf16")
        x = np.ones(3)
        # 1/3 is not representable in bf16; the mean of ones is 3 * q(1/3).
        expected = float(quantize(3.0 * float(quantize(1.0 / 3.0, "bf16")), "bf16"))
        assert arith.mean(x) == expected

    def test_mean_of_constant_vector(self):
        arith = FormatArithmetic("fp32")
        assert arith.mean(np.full(64, 2.5)) == pytest.approx(2.5, rel=1e-6)


# -- property-based tests -----------------------------------------------------------

small_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@given(st.lists(small_floats, min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_tree_sum_error_bound(values):
    """The tree sum equals the exact sum within a conservative rounding bound."""
    arith = FormatArithmetic("fp16")
    x = np.asarray(values)
    exact = float(np.sum(np.asarray(quantize(x, "fp16"))))
    ours = arith.tree_sum(x)
    # Error of a tree sum of n terms is bounded by ~log_k(n)+1 roundings of
    # magnitude eps * sum(|x|).
    levels = int(np.ceil(np.log(max(len(values), 2)) / np.log(8))) + 2
    bound = levels * 2.0**-11 * float(np.sum(np.abs(x))) + 1e-6
    assert abs(ours - exact) <= bound


@given(st.lists(small_floats, min_size=1, max_size=64), st.floats(-10, 10, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_elementwise_ops_are_quantized(values, scalar):
    arith = FormatArithmetic("bf16")
    x = np.asarray(values)
    for result in (arith.add(x, scalar), arith.mul(x, scalar), arith.sub(x, scalar)):
        result = np.asarray(result)
        requantized = np.asarray(quantize(result, "bf16"))
        finite = np.isfinite(result)
        np.testing.assert_array_equal(result[finite], requantized[finite])
