"""Unit and property-based tests for bit-level float encode/decode."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpformats.bitops import (
    decode_bits,
    encode_bits,
    exponent_field,
    significand_value,
    unbiased_exponent,
)
from repro.fpformats.quantize import quantize
from repro.fpformats.spec import BFLOAT16, FLOAT16, FLOAT32


class TestEncodeAgainstNumpy:
    def test_fp32_bit_patterns_match_numpy(self, rng):
        x = rng.normal(size=500) * 10.0**rng.integers(-20, 20, size=500)
        ours = np.asarray(encode_bits(x, "fp32"), dtype=np.uint64)
        theirs = np.frombuffer(
            np.asarray(x, dtype=np.float32).tobytes(), dtype=np.uint32
        ).astype(np.uint64)
        np.testing.assert_array_equal(ours, theirs)

    def test_fp16_bit_patterns_match_numpy(self, rng):
        x = rng.normal(size=500)
        ours = np.asarray(encode_bits(x, "fp16"), dtype=np.uint64)
        theirs = np.frombuffer(
            np.asarray(x, dtype=np.float16).tobytes(), dtype=np.uint16
        ).astype(np.uint64)
        np.testing.assert_array_equal(ours, theirs)

    def test_known_fp32_constants(self):
        assert int(encode_bits(1.0, "fp32")) == 0x3F800000
        assert int(encode_bits(-2.0, "fp32")) == 0xC0000000
        assert int(encode_bits(0.0, "fp32")) == 0x00000000

    def test_known_bf16_constants(self):
        assert int(encode_bits(1.0, "bf16")) == 0x3F80
        assert int(encode_bits(-1.0, "bf16")) == 0xBF80

    def test_infinity_and_nan(self):
        assert int(encode_bits(np.inf, "fp32")) == 0x7F800000
        assert int(encode_bits(-np.inf, "fp32")) == 0xFF800000
        nan_bits = int(encode_bits(np.nan, "fp32"))
        assert (nan_bits >> 23) & 0xFF == 0xFF
        assert nan_bits & 0x7FFFFF != 0


class TestDecode:
    def test_roundtrip_simple_values(self):
        for value in (1.0, -3.5, 0.15625, 1024.0, -2.0**-10):
            for fmt in ("fp32", "fp16", "bf16"):
                q = quantize(value, fmt)
                assert float(decode_bits(encode_bits(q, fmt), fmt)) == q

    def test_decode_special_values(self):
        assert float(decode_bits(0x7F800000, "fp32")) == np.inf
        assert float(decode_bits(0xFF800000, "fp32")) == -np.inf
        assert np.isnan(float(decode_bits(0x7FC00000, "fp32")))
        assert float(decode_bits(0, "fp32")) == 0.0

    def test_decode_subnormal(self):
        # Smallest fp32 subnormal has bit pattern 1.
        assert float(decode_bits(1, "fp32")) == 2.0**-149


class TestExponentField:
    def test_exponent_of_powers_of_two(self):
        assert int(exponent_field(1.0, "fp32")) == 127
        assert int(exponent_field(2.0, "fp32")) == 128
        assert int(exponent_field(0.5, "fp32")) == 126
        assert int(exponent_field(1.0, "fp16")) == 15

    def test_exponent_field_is_floor_log2_plus_bias(self, rng):
        x = rng.uniform(0.01, 1000.0, size=300)
        fields = np.asarray(exponent_field(x, "fp32"), dtype=np.int64)
        expected = np.floor(np.log2(x)).astype(np.int64) + 127
        np.testing.assert_array_equal(fields, expected)

    def test_unbiased_exponent(self):
        assert int(unbiased_exponent(8.0, "fp32")) == 3
        assert int(unbiased_exponent(0.25, "bf16")) == -2

    def test_exponent_matches_across_8bit_exponent_formats(self, rng):
        # Quantize to bf16 first: rounding can carry into the next binade, so
        # the comparison is only meaningful for values both formats represent.
        x = np.asarray(quantize(rng.uniform(0.01, 100.0, size=100), "bf16"))
        np.testing.assert_array_equal(
            np.asarray(unbiased_exponent(x, "fp32")),
            np.asarray(unbiased_exponent(x, "bf16")),
        )


class TestSignificand:
    def test_significand_in_unit_range(self, rng):
        x = rng.uniform(0.01, 1000.0, size=200)
        sig = np.asarray(significand_value(x, "fp32"))
        assert np.all(sig >= 1.0)
        assert np.all(sig < 2.0)

    def test_significand_of_power_of_two_is_one(self):
        assert float(significand_value(4.0, "fp32")) == 1.0

    def test_significand_of_zero_is_zero(self):
        assert float(significand_value(0.0, "fp32")) == 0.0

    def test_reconstruction(self, rng):
        x = np.asarray(quantize(rng.uniform(0.1, 50.0, size=100), "bf16"))
        sig = np.asarray(significand_value(x, "bf16"))
        exp = np.asarray(unbiased_exponent(x, "bf16"), dtype=np.float64)
        np.testing.assert_allclose(sig * np.exp2(exp), np.abs(x), rtol=1e-12)


# -- property-based tests -----------------------------------------------------------


@given(st.floats(min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False))
@settings(max_examples=300, deadline=None)
def test_encode_decode_roundtrip_is_quantization(value):
    for fmt in (FLOAT32, FLOAT16, BFLOAT16):
        q = quantize(value, fmt)
        roundtrip = float(decode_bits(encode_bits(value, fmt), fmt))
        if np.isnan(q):
            assert np.isnan(roundtrip)
        else:
            assert roundtrip == q


@given(st.integers(min_value=0, max_value=2**16 - 1))
@settings(max_examples=300, deadline=None)
def test_decode_encode_roundtrip_bf16_bit_patterns(bits):
    value = float(decode_bits(bits, "bf16"))
    if np.isnan(value):
        return  # many NaN payloads collapse to the canonical quiet NaN
    re_encoded = int(encode_bits(value, "bf16"))
    # -0.0 canonicalizes to +0.0 through the float64 round trip.
    if bits == 0x8000:
        assert re_encoded in (0x0000, 0x8000)
    else:
        assert re_encoded == bits
