"""End-to-end guarantees of the precision-policy subsystem.

Two properties are pinned here:

* **fp64-ref is a verbatim passthrough** — the default policy installs the
  shared passthrough op layer, so every pre-policy bit-exactness test in
  the suite keeps covering the refactored code unchanged.
* **Exactness survives quantization** — under fp16 / bf16 / bf16-fp8kv the
  incremental, batched, and continuously served decode paths remain
  bit-identical to each other (quantization is elementwise over the same
  deterministic kernels), and every stored tensor is representable in its
  policy format.
"""

import numpy as np
import pytest

from repro.fpformats.quantize import quantize
from repro.nn.config import get_config
from repro.nn.generation import generate, generate_batch
from repro.nn.model import OPTLanguageModel
from repro.precision.ops import PASSTHROUGH_OPS
from repro.serve import Request, ServeEngine

QUANTIZED_POLICIES = ["fp16", "bf16", "bf16-fp8kv"]


def make_model(policy=None, seed=7):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


@pytest.fixture(params=QUANTIZED_POLICIES)
def policy_name(request):
    return request.param


class TestFp64RefPassthrough:
    def test_default_policy_installs_shared_passthrough(self):
        model = make_model()
        assert model.policy.name == "fp64-ref"
        assert model.ops is PASSTHROUGH_OPS
        assert model.blocks[0].attention.ops is PASSTHROUGH_OPS
        assert model.final_norm.ops is PASSTHROUGH_OPS

    def test_normalizer_swap_keeps_passthrough_datapath(self):
        model = make_model()
        model.replace_layernorm("iterl2norm", fmt="fp16", num_steps=5)
        assert model.ops is PASSTHROUGH_OPS
        assert model.policy.name == "fp64-ref@iterl2norm"
        model.restore_layernorm()
        assert model.policy.name == "fp64-ref"
        assert all(n.eval_normalizer is None for n in model.layer_norms())

    def test_normalizer_swap_reuses_quantized_ops(self):
        """Same datapath formats: the ops (and weight memo) are kept."""
        model = make_model("fp16")
        ops_before = model.ops
        model.replace_layernorm("iterl2norm", fmt="fp16", num_steps=5)
        assert model.ops is ops_before
        model.restore_layernorm()
        assert model.ops is ops_before
        model.set_policy("bf16")  # different formats: fresh ops
        assert model.ops is not ops_before

    def test_policy_roundtrip_leaves_logits_bit_identical(self, rng):
        model = make_model()
        ids = rng.integers(0, 64, size=(2, 9))
        before = model(ids)
        model.set_policy("fp16")
        model.set_policy("fp64-ref")
        np.testing.assert_array_equal(model(ids), before)


class TestQuantizedExactness:
    def test_incremental_equals_prefill(self, policy_name, rng):
        """Chunked cached decoding is bit-identical to one-shot prefill."""
        model = make_model(policy_name)
        tokens = rng.integers(0, 64, size=(1, 12))
        full = model.forward_with_cache(tokens, model.new_kv_cache())
        cache = model.new_kv_cache()
        pieces = [
            model.forward_with_cache(tokens[:, :5], cache),
            model.forward_with_cache(tokens[:, 5:6], cache),
            model.forward_with_cache(tokens[:, 6:], cache),
        ]
        np.testing.assert_array_equal(np.concatenate(pieces, axis=1), full)

    def test_served_greedy_tokens_match_generate(self, policy_name, fixed_timer):
        """The acceptance property: serving == generate under the policy."""
        model = make_model(policy_name)
        requests = [
            Request("r0", np.array([1, 2, 3]), max_new_tokens=10),
            Request("r1", np.array([7, 8, 9, 10, 11, 12, 13]), max_new_tokens=6),
            Request("r2", np.array([4]), max_new_tokens=12, arrival_time=0.001),
            Request("r3", np.arange(1, 15), max_new_tokens=3, arrival_time=0.002),
        ]
        report = ServeEngine(model, max_batch_size=2, timer=fixed_timer).serve(requests)
        for request in requests:
            reference = generate(
                model,
                request.prompt_ids,
                max_new_tokens=request.max_new_tokens,
                temperature=0.0,
                rng=np.random.default_rng(request.seed),
            )
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens,
                reference,
                err_msg=f"{request.request_id} diverged under policy {policy_name}",
            )

    def test_generate_batch_rows_match_solo_generate(self, policy_name):
        model = make_model(policy_name)
        prompts = np.array([[1, 2, 3], [9, 8, 7], [4, 4, 4]])
        batched = generate_batch(model, prompts, max_new_tokens=6, temperature=0.0)
        for row in range(prompts.shape[0]):
            solo = generate(
                model, prompts[row], max_new_tokens=6, temperature=0.0
            )
            np.testing.assert_array_equal(batched[row], solo)

    def test_logits_are_representable_in_activation_format(self, policy_name, rng):
        model = make_model(policy_name)
        logits = model.forward_with_cache(
            rng.integers(0, 64, size=(1, 6)), model.new_kv_cache()
        )
        act = model.policy.activation_fmt
        np.testing.assert_array_equal(np.asarray(quantize(logits, act)), logits)

    def test_kv_cache_stores_cache_format(self, policy_name, rng):
        model = make_model(policy_name)
        cache = model.new_kv_cache()
        model.forward_with_cache(rng.integers(0, 64, size=(1, 7)), cache)
        kv_fmt = model.policy.kv_cache_fmt
        for layer in cache.layers:
            np.testing.assert_array_equal(
                np.asarray(quantize(layer.k, kv_fmt)), layer.k
            )
            np.testing.assert_array_equal(
                np.asarray(quantize(layer.v, kv_fmt)), layer.v
            )

    def test_fp8_kv_actually_narrower_than_activations(self, rng):
        """bf16-fp8kv: the cache stores fewer bits than the bf16 policy's."""
        ids = rng.integers(0, 64, size=(1, 8))
        wide = make_model("bf16")
        mixed = make_model("bf16-fp8kv")
        wide_cache, mixed_cache = wide.new_kv_cache(), mixed.new_kv_cache()
        wide.forward_with_cache(ids, wide_cache)
        mixed.forward_with_cache(ids, mixed_cache)
        k_wide = wide_cache.layers[0].k
        k_mixed = mixed_cache.layers[0].k
        # Same projections (same seed, same bf16 datapath) — the only
        # difference is the write-side cache rounding.
        np.testing.assert_array_equal(
            np.asarray(quantize(k_wide, "fp8_e4m3")), k_mixed
        )
        assert not np.array_equal(k_wide, k_mixed)

    def test_quantized_policy_changes_logits(self, rng):
        """Sanity: the quantized datapath is not a silent no-op."""
        ids = rng.integers(0, 64, size=(1, 8))
        reference = make_model("fp64-ref")(ids)
        quantized = make_model("fp16")(ids)
        assert not np.array_equal(reference, quantized)
        np.testing.assert_allclose(reference, quantized, rtol=0.2, atol=0.5)


class TestPolicyOnTrainingPath:
    def test_training_mode_stays_exact_float64(self, rng):
        """Policies shape evaluation only: training forward ignores them."""
        ids = rng.integers(0, 64, size=(2, 6))
        ref = make_model("fp64-ref", seed=3)
        quant = make_model("fp16", seed=3)
        ref.train()
        quant.train()
        np.testing.assert_array_equal(ref(ids), quant(ids))

    def test_eval_requantizes_weights_changed_by_training(self, rng):
        """eval() drops memoized quantized weights, so edits take effect."""
        model = make_model("fp16")
        ids = rng.integers(0, 64, size=(1, 5))
        before = model(ids)
        model.train()
        for p in model.parameters():
            p.data = p.data + 0.01  # stand-in for an optimizer step
        model.eval()
        after = model(ids)
        assert not np.array_equal(before, after)
        # And the new outputs are stable (the memo now holds new weights).
        np.testing.assert_array_equal(model(ids), after)

    def test_repeated_eval_keeps_weight_memo_warm(self, rng):
        """Back-to-back eval() calls (e.g. per-generate) skip the refresh."""
        model = make_model("fp16")
        model.eval()
        ids = rng.integers(0, 64, size=(1, 4))
        model(ids)  # populate the memo
        assert len(model.ops._weight_cache) > 0
        cached = dict(model.ops._weight_cache)
        model.eval()  # no training in between: memo preserved
        assert model.ops._weight_cache == cached

    def test_load_state_dict_marks_weights_dirty(self, rng):
        model = make_model("fp16")
        model.eval()
        ids = rng.integers(0, 64, size=(1, 4))
        before = model(ids)
        state = {k: v + 0.01 for k, v in model.state_dict().items()}
        model.load_state_dict(state)
        model.eval()
        assert not np.array_equal(model(ids), before)

    def test_eval_rebinds_normalizer_to_trained_gamma(self, rng):
        """The policy's normalizer must follow gamma/beta across training."""
        model = make_model("fp64-ref")
        model.replace_layernorm("exact", fmt=None)
        model.eval()
        model.train()
        for norm in model.layer_norms():
            norm.gamma.data = norm.gamma.data * 1.5  # stand-in for training
        model.eval()
        for norm in model.layer_norms():
            np.testing.assert_array_equal(
                norm.eval_normalizer.gamma, norm.gamma.data
            )
            assert norm.eval_normalizer.gamma[0] == 1.5
