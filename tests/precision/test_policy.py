"""Tests for the precision-policy dataclass and registry."""

import json

import pytest

from repro.precision.policy import (
    DEFAULT_SWEEP_POLICIES,
    PrecisionPolicy,
    available_policies,
    get_policy,
    register_policy,
)


class TestPresets:
    def test_all_sweep_presets_registered(self):
        for name in DEFAULT_SWEEP_POLICIES:
            assert get_policy(name).name == name

    def test_fp64_ref_is_passthrough(self):
        policy = get_policy("fp64-ref")
        assert policy.is_passthrough
        assert policy.normalizer is None

    @pytest.mark.parametrize("name", ["fp32", "fp16", "bf16", "bf16-fp8kv"])
    def test_quantized_presets_are_not_passthrough(self, name):
        assert not get_policy(name).is_passthrough

    def test_preset_formats(self):
        fp16 = get_policy("fp16")
        assert fp16.activation_fmt == "fp16"
        assert fp16.accumulation_fmt == "fp32"
        assert fp16.kv_cache_fmt == "fp16"
        mixed = get_policy("bf16-fp8kv")
        assert mixed.activation_fmt == "bf16"
        assert mixed.kv_cache_fmt == "fp8_e4m3"

    def test_aliases_resolve(self):
        assert get_policy("fp64") is get_policy("fp64-ref")
        assert get_policy("ref") is get_policy("fp64-ref")

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="unknown precision policy"):
            get_policy("int4")

    def test_available_lists_canonical_names(self):
        names = available_policies()
        assert "fp64-ref" in names and "bf16-fp8kv" in names
        assert "ref" not in names  # aliases hidden

    def test_reregistering_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy(PrecisionPolicy("fp16"))


class TestValidation:
    def test_format_names_canonicalized(self):
        policy = PrecisionPolicy("x", weight_fmt="float32", kv_cache_fmt="bfloat16")
        assert policy.weight_fmt == "fp32"
        assert policy.kv_cache_fmt == "bf16"

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            PrecisionPolicy("x", activation_fmt="fp7")

    def test_instance_passes_through(self):
        policy = PrecisionPolicy("custom", activation_fmt="bf16")
        assert get_policy(policy) is policy


class TestWithNormalizer:
    def test_derives_name_and_keeps_datapath(self):
        derived = get_policy("bf16").with_normalizer("iterl2norm", fmt="bf16", num_steps=3)
        assert derived.name == "bf16@iterl2norm"
        assert derived.activation_fmt == "bf16"
        assert derived.normalizer == "iterl2norm"
        assert derived.normalizer_fmt == "bf16"
        assert dict(derived.normalizer_kwargs) == {"num_steps": 3}

    def test_none_restores_trained_layernorm(self):
        derived = get_policy("fp16").with_normalizer("fisr")
        restored = derived.with_normalizer(None)
        assert restored == get_policy("fp16")

    def test_rederiving_does_not_stack_names(self):
        twice = (
            get_policy("fp32")
            .with_normalizer("fisr")
            .with_normalizer("lut")
        )
        assert twice.name == "fp32@lut"


class TestSerialization:
    def test_dict_round_trip(self):
        policy = get_policy("bf16-fp8kv").with_normalizer("iterl2norm", fmt="bf16", num_steps=5)
        assert PrecisionPolicy.from_dict(policy.to_dict()) == policy

    def test_json_round_trip(self):
        policy = get_policy("fp16").with_normalizer("exact", fmt="fp16")
        blob = json.dumps(policy.to_dict())
        assert PrecisionPolicy.from_dict(json.loads(blob)) == policy

    def test_get_policy_accepts_dict(self):
        policy = get_policy("fp32")
        assert get_policy(policy.to_dict()) == policy

    def test_kwargs_survive_json_list_form(self):
        # json round-trips tuples of pairs as lists of lists.
        policy = PrecisionPolicy(
            "x", normalizer="iterl2norm", normalizer_kwargs=[["num_steps", 7]]
        )
        assert dict(policy.normalizer_kwargs) == {"num_steps": 7}
