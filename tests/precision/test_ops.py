"""Tests for the policy-aware quantizing op layer."""

import numpy as np
import pytest

from repro.fpformats.quantize import quantize
from repro.nn.functional import det_matmul, det_softmax, softmax
from repro.precision.ops import PASSTHROUGH_OPS, QuantizedOps, make_ops
from repro.precision.policy import PrecisionPolicy, get_policy


def assert_representable(x, fmt):
    np.testing.assert_array_equal(np.asarray(quantize(x, fmt)), x)


class TestPassthrough:
    def test_make_ops_returns_shared_singleton(self):
        assert make_ops(get_policy("fp64-ref")) is PASSTHROUGH_OPS
        assert make_ops(PrecisionPolicy("alias-of-ref")) is PASSTHROUGH_OPS

    def test_casts_return_the_same_object(self, rng):
        x = rng.normal(size=(3, 4))
        assert PASSTHROUGH_OPS.act(x) is x
        assert PASSTHROUGH_OPS.weight(x) is x
        assert PASSTHROUGH_OPS.accum(x) is x
        assert PASSTHROUGH_OPS.kv(x) is x

    def test_kernels_bit_match_raw_functions(self, rng):
        a = rng.normal(size=(2, 5, 4))
        b = rng.normal(size=(4, 3))
        np.testing.assert_array_equal(PASSTHROUGH_OPS.matmul(a, b), a @ b)
        np.testing.assert_array_equal(PASSTHROUGH_OPS.matmul_det(a, b), det_matmul(a, b))
        np.testing.assert_array_equal(
            PASSTHROUGH_OPS.softmax(a, axis=-1), softmax(a, axis=-1)
        )
        np.testing.assert_array_equal(
            PASSTHROUGH_OPS.det_softmax(a, axis=-1), det_softmax(a, axis=-1)
        )
        bias = rng.normal(size=3)
        np.testing.assert_array_equal(PASSTHROUGH_OPS.linear(a, b, bias), a @ b + bias)
        np.testing.assert_array_equal(
            PASSTHROUGH_OPS.linear_det(a, b, None), det_matmul(a, b)
        )


class TestQuantizedOps:
    @pytest.fixture
    def ops(self):
        return QuantizedOps(get_policy("fp16"))

    def test_make_ops_builds_quantizer(self):
        assert isinstance(make_ops(get_policy("bf16")), QuantizedOps)

    def test_act_rounds_to_activation_format(self, ops, rng):
        x = rng.normal(size=(4, 5))
        assert_representable(ops.act(x), "fp16")

    def test_fp64_components_skip_quantization(self, rng):
        # fp16 policy accumulates in fp32; a policy accumulating in fp64
        # must leave the accumulator untouched (identity, not a copy).
        policy = PrecisionPolicy("acc64", activation_fmt="fp16")
        ops = QuantizedOps(policy)
        x = rng.normal(size=(3, 3))
        assert ops.accum(x) is x

    def test_linear_outputs_representable(self, ops, rng):
        x = quantize(rng.normal(size=(2, 4, 8)), "fp16")
        w = rng.normal(size=(8, 6))
        bias = rng.normal(size=6)
        assert_representable(ops.linear(x, w, bias), "fp16")
        assert_representable(ops.linear_det(x, w, bias), "fp16")

    def test_linear_quantizes_weights_before_use(self, rng):
        # With exactly representable inputs and a one-element contraction,
        # the output equals quantize(w) (not raw w), proving the weight cast.
        ops = QuantizedOps(get_policy("bf16"))
        w = rng.normal(size=(1, 1)) + np.pi  # not bf16-representable
        out = ops.linear(np.ones((1, 1)), w, None)
        assert out[0, 0] == quantize(w[0, 0], "bf16")
        assert out[0, 0] != w[0, 0]

    def test_softmax_outputs_representable(self, ops, rng):
        scores = rng.normal(size=(2, 3, 5))
        assert_representable(ops.softmax(scores), "fp16")
        assert_representable(ops.det_softmax(scores), "fp16")

    def test_residual_rounds(self, ops, rng):
        a = quantize(rng.normal(size=(3, 4)), "fp16")
        b = quantize(rng.normal(size=(3, 4)), "fp16")
        assert_representable(ops.residual(a, b), "fp16")

    def test_embed_quantizes_tables_then_indexes(self, ops, rng):
        tok_table = rng.normal(size=(16, 4))
        pos_table = rng.normal(size=(8, 4))
        ids = np.array([[0, 3, 15]])
        pos = np.array([[0, 1, 2]])
        out = ops.embed(tok_table, pos_table, ids, pos)
        assert_representable(out, "fp16")
        expected = quantize(
            np.asarray(quantize(tok_table, "fp16"))[ids]
            + np.asarray(quantize(pos_table, "fp16"))[pos],
            "fp16",
        )
        np.testing.assert_array_equal(out, expected)

    def test_weight_memoized_per_base_buffer(self, ops, rng):
        w = rng.normal(size=(6, 5))
        first = ops.weight(w)
        assert ops.weight(w) is first  # same array object, no re-quantize
        # A transposed view shares the base buffer but has its own entry.
        wt_first = ops.weight(w.T)
        assert ops.weight(w.T) is wt_first
        np.testing.assert_array_equal(wt_first, np.asarray(first).T)
        ops.clear_weight_cache()
        assert ops.weight(w) is not first
        np.testing.assert_array_equal(ops.weight(w), first)

    def test_kv_uses_cache_format(self, rng):
        ops = QuantizedOps(get_policy("bf16-fp8kv"))
        x = rng.normal(size=(1, 2, 3, 4))
        assert_representable(ops.kv(x), "fp8_e4m3")

    def test_accumulation_rounds_before_activation(self):
        # The matmul result passes through fp32 before fp16: pick a product
        # whose fp32 and fp64 roundings land on different fp16 values is
        # hard to stage; instead verify the accumulator cast is applied by
        # checking an fp32-unrepresentable sum is stored rounded.
        ops = QuantizedOps(
            PrecisionPolicy("acc32", accumulation_fmt="fp32", activation_fmt="fp64")
        )
        a = np.array([[1.0, 2.0**-30]])
        b = np.array([[1.0], [1.0]])
        out = ops.matmul(a, b)
        assert out[0, 0] == np.float64(np.float32(1.0 + 2.0**-30))
