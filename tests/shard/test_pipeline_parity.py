"""Golden-token parity: pipelined serving is byte-identical to unsharded.

Pipeline parallelism partitions the layer stack (and optionally
tensor-splits within each stage) without changing any layer's compute,
and microbatch row-splitting is bit-safe because every kernel in the
ragged step is per-row — so for every stage count, microbatch count,
driver, and precision preset, a ``pipeline:P[+sharded:N]`` engine must
serve **exactly** the token streams the ``reference`` backend serves.
"""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.executor import resolve_executor
from repro.nn.model import OPTLanguageModel
from repro.serve import ServeEngine, generate_workload
from repro.shard import GLOBAL_POOL

POLICIES = ("fp64-ref", "bf16-fp8kv")


def make_model(policy=None, seed=11):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


def workload(scenario, count=4, seed=0):
    return generate_workload(scenario, num_requests=count, vocab_size=64, seed=seed)


def served_tokens(model, requests, backend, **engine_kwargs):
    engine = ServeEngine(model, backend=backend, **engine_kwargs)
    try:
        report = engine.serve(requests)
        stats_fn = getattr(engine.executor, "runtime_stats", None)
        stats = stats_fn() if callable(stats_fn) else None
    finally:
        engine.close()
    assert len(report.completed) == len(requests)
    return (
        stats,
        {r.request_id: report.by_id(r.request_id).tokens for r in requests},
    )


def assert_pipeline_parity(model, requests, backend, **engine_kwargs):
    _, ref = served_tokens(model, requests, "reference", **engine_kwargs)
    stats, piped = served_tokens(model, requests, backend, **engine_kwargs)
    for rid, tokens in ref.items():
        np.testing.assert_array_equal(
            piped[rid], tokens, err_msg=f"request {rid} diverged on {backend}"
        )
    return stats


class TestSimDriverParity:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_stages", [1, 2])
    def test_steady_parity(self, num_stages, policy, fixed_timer):
        model = make_model(policy)
        assert_pipeline_parity(
            model,
            workload("steady"),
            f"pipeline:{num_stages}:sim",
            max_batch_size=4,
            timer=fixed_timer,
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_composed_pipeline_and_tensor_parity(self, policy, fixed_timer):
        """The composed 2-D topology: 2 stages x 2 tensor shards."""
        model = make_model(policy)
        assert_pipeline_parity(
            model,
            workload("chat"),
            "pipeline:2+sharded:2:sim",
            max_batch_size=4,
            timer=fixed_timer,
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_chunked_prefill_composition(self, policy, fixed_timer):
        model = make_model(policy)
        assert_pipeline_parity(
            model,
            workload("chat"),
            "pipeline:2:sim",
            max_batch_size=4,
            prefill_budget=3,
            timer=fixed_timer,
        )

    def test_prefix_caching_composition(self, fixed_timer):
        model = make_model("bf16-fp8kv")
        assert_pipeline_parity(
            model,
            workload("chat"),
            "pipeline:2:sim",
            max_batch_size=4,
            block_size=4,
            prefix_caching=True,
            timer=fixed_timer,
        )


class TestProcessDriverParity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_process_driver_parity(self, policy, fixed_timer):
        model = make_model(policy)
        try:
            assert_pipeline_parity(
                model,
                workload("chat"),
                "pipeline:2:process",
                max_batch_size=4,
                timer=fixed_timer,
            )
        finally:
            GLOBAL_POOL.clear()

    def test_composed_process_parity(self, fixed_timer):
        """Composed end-to-end over real worker processes (P*N = 4)."""
        model = make_model("bf16-fp8kv")
        try:
            assert_pipeline_parity(
                model,
                workload("steady"),
                "pipeline:2+sharded:2:process",
                max_batch_size=4,
                timer=fixed_timer,
            )
        finally:
            GLOBAL_POOL.clear()


class TestOverlapAccounting:
    def test_microbatch_overlap_credit_accrues(self):
        """P>=2 stages with M>=2 microbatches must bank pipeline credit."""
        model = make_model()
        executor = resolve_executor("pipeline:2:sim", model)
        executor.microbatches = 2
        engine = ServeEngine(model, backend=executor, max_batch_size=4)
        try:
            engine.serve(workload("steady", count=6))
            stats = executor.runtime_stats()
        finally:
            engine.close()
        assert stats["num_stages"] == 2
        assert stats["microbatches"] == 2
        assert stats["pipeline_overlap_credit_s"] > 0.0
        assert 0.0 <= stats["pipeline_bubble_fraction"] < 1.0

    def test_single_stage_banks_no_pipeline_credit(self):
        model = make_model()
        executor = resolve_executor("pipeline:1:sim", model)
        engine = ServeEngine(model, backend=executor, max_batch_size=4)
        try:
            engine.serve(workload("steady"))
            stats = executor.runtime_stats()
        finally:
            engine.close()
        assert stats["pipeline_overlap_credit_s"] == 0.0
        assert stats["pipeline_bubble_fraction"] == 0.0

    def test_single_microbatch_banks_no_pipeline_credit(self):
        model = make_model()
        executor = resolve_executor("pipeline:2:sim", model)
        executor.microbatches = 1
        engine = ServeEngine(model, backend=executor, max_batch_size=4)
        try:
            engine.serve(workload("steady"))
            stats = executor.runtime_stats()
        finally:
            engine.close()
        assert stats["pipeline_overlap_credit_s"] == 0.0
