"""Worker-pool lifecycle, dead-worker robustness, and CPU pinning."""

import warnings

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.executor import resolve_executor
from repro.nn.model import OPTLanguageModel
from repro.shard import GLOBAL_POOL, ShardWorkerError, WorkerPool, model_fingerprint
from repro.shard.executor import assign_worker_cpus


def make_model(policy=None, seed=11):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


class _FakeDriver:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestModelFingerprint:
    def test_identical_builds_share_a_fingerprint(self):
        assert model_fingerprint(make_model()) == model_fingerprint(make_model())

    def test_different_weights_differ(self):
        assert model_fingerprint(make_model(seed=1)) != model_fingerprint(
            make_model(seed=2)
        )

    def test_policy_changes_the_fingerprint(self):
        assert model_fingerprint(make_model()) != model_fingerprint(
            make_model("bf16-fp8kv")
        )

    def test_memoized_until_weights_change(self):
        model = make_model()
        first = model_fingerprint(model)
        assert model_fingerprint(model) == first
        assert model._shard_fingerprint[0] == model._plan_version


class TestWorkerPool:
    def test_attach_reuses_warm_entries(self):
        pool = WorkerPool()
        built = []

        def factory():
            built.append(1)
            return object(), [_FakeDriver()]

        entry1, reused1 = pool.attach("k", factory)
        entry2, reused2 = pool.attach("k", factory)
        assert (reused1, reused2) == (False, True)
        assert entry1 is entry2
        assert len(built) == 1
        assert entry1.refs == 2
        assert pool.stats() == {
            "entries": 1, "attach_total": 2, "attach_reused": 1, "forked": 1,
        }

    def test_release_keeps_bundle_warm(self):
        pool = WorkerPool()
        entry, _ = pool.attach("k", lambda: (object(), [_FakeDriver()]))
        pool.release("k")
        assert entry.refs == 0
        assert not entry.drivers[0].closed
        _, reused = pool.attach("k", lambda: (object(), [_FakeDriver()]))
        assert reused is True

    def test_discard_closes_drivers(self):
        pool = WorkerPool()
        entry, _ = pool.attach("k", lambda: (object(), [_FakeDriver()]))
        driver = entry.drivers[0]
        pool.discard("k")
        assert driver.closed
        _, reused = pool.attach("k", lambda: (object(), [_FakeDriver()]))
        assert reused is False

    def test_lru_eviction_spares_referenced_bundles(self):
        pool = WorkerPool(capacity=1)
        held, _ = pool.attach("held", lambda: (object(), [_FakeDriver()]))
        idle, _ = pool.attach("idle", lambda: (object(), [_FakeDriver()]))
        pool.release("idle")
        # A third attach pushes past capacity: the idle bundle goes, the
        # referenced one stays.
        pool.attach("new", lambda: (object(), [_FakeDriver()]))
        assert idle.drivers == []
        assert held.drivers and not held.drivers[0].closed
        pool.clear()

    def test_clear_closes_everything(self):
        pool = WorkerPool()
        entry, _ = pool.attach("k", lambda: (object(), [_FakeDriver()]))
        driver = entry.drivers[0]
        pool.clear()
        assert driver.closed
        assert pool.stats()["entries"] == 0


class TestProcessPoolReuse:
    def test_second_executor_attaches_to_warm_workers(self):
        model_a = make_model(seed=7)
        model_b = make_model(seed=7)  # distinct object, identical content
        ex_a = resolve_executor("sharded:2:process", model_a)
        ex_b = resolve_executor("sharded:2:process", model_b)
        try:
            ex_a.prepare()
            forked = GLOBAL_POOL.stats()["forked"]
            ex_b.prepare()
            assert GLOBAL_POOL.stats()["forked"] == forked
            assert ex_b.runtime_stats()["pool_attach_reused"] is True
            # Both executors drive the same worker bundle.
            assert ex_a._drivers[0] is ex_b._drivers[0]
        finally:
            ex_a.close()
            ex_b.close()
            GLOBAL_POOL.clear()

    def test_different_topologies_do_not_collide(self):
        model = make_model(seed=7)
        ex_a = resolve_executor("sharded:2:process", model)
        ex_b = resolve_executor("pipeline:2:process", model)
        forked_before = GLOBAL_POOL.stats()["forked"]
        try:
            ex_a.prepare()
            ex_b.prepare()
            assert GLOBAL_POOL.stats()["forked"] == forked_before + 2
        finally:
            ex_a.close()
            ex_b.close()
            GLOBAL_POOL.clear()


class TestDeadWorkerRobustness:
    def test_killed_worker_raises_instead_of_hanging(self, fixed_timer):
        """Regression: a worker dying mid-serve must surface as a
        ShardWorkerError naming the failed shard, not a blocked pipe."""
        from repro.serve import ServeEngine, generate_workload

        model = make_model()
        engine = ServeEngine(
            model, backend="sharded:2:process", max_batch_size=4,
            timer=fixed_timer,
        )
        try:
            engine.begin()
            driver = engine.executor._drivers[0]
            victim = driver.procs[1]
            victim.terminate()
            victim.join()
            requests = generate_workload(
                "steady", num_requests=2, vocab_size=64, seed=0
            )
            with pytest.raises(ShardWorkerError, match="shard 1"):
                engine.serve(requests)
        finally:
            engine.close()
            GLOBAL_POOL.clear()

    def test_poisoned_bundle_leaves_the_pool(self):
        model = make_model()
        executor = resolve_executor("sharded:2:process", model)
        try:
            executor.prepare()
            driver = executor._drivers[0]
            driver.procs[0].terminate()
            driver.procs[0].join()
            payload = np.zeros((1, 2, model.config.embed_dim))
            with pytest.raises(ShardWorkerError):
                executor._fanout("qkv", 0, [payload, payload])
            # The dead bundle must not be handed to the next executor.
            assert GLOBAL_POOL.stats()["entries"] == 0
        finally:
            executor.close()
            GLOBAL_POOL.clear()


class TestWorkerPinning:
    def test_assign_worker_cpus_round_robin(self):
        import os

        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no CPU affinity support")
        cpus = sorted(os.sched_getaffinity(0))
        assigned = assign_worker_cpus(len(cpus) + 1)
        assert assigned[0] == cpus[0]
        assert assigned[-1] == cpus[0]  # wraps round-robin
        offset = assign_worker_cpus(1, offset=1)
        assert offset[0] == cpus[1 % len(cpus)]

    def test_unsupported_platform_warns_and_unpins(self, monkeypatch):
        import repro.shard.executor as executor_mod

        monkeypatch.setattr(
            executor_mod.os, "sched_getaffinity", None, raising=False
        )
        with pytest.warns(RuntimeWarning, match="unpinned"):
            assert assign_worker_cpus(3) == [None, None, None]

    def test_pinned_executor_records_cpus(self):
        import os

        if not hasattr(os, "sched_setaffinity"):
            pytest.skip("platform has no CPU affinity support")
        model = make_model()
        executor = resolve_executor("sharded:2:process:pin", model)
        try:
            executor.prepare()
            stats = executor.runtime_stats()
            assert stats["pin_workers"] is True
            assert len(stats["pinned_cpus"]) == 2
            assert executor.name == "sharded:2:process:pin"
        finally:
            executor.close()
            GLOBAL_POOL.clear()

    def test_sim_driver_warns_pin_is_noop(self):
        model = make_model()
        executor = resolve_executor("sharded:2:sim:pin", model)
        try:
            with pytest.warns(RuntimeWarning, match="sim"):
                executor.prepare()
        finally:
            executor.close()
