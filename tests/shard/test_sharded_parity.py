"""Golden-token parity: sharded serving is byte-identical to unsharded.

The tentpole guarantee of the sharding layer: for every legal shard
count, both fan-out drivers, and every precision preset, an engine on a
``sharded:N[:driver]`` backend serves **exactly** the token streams the
``reference`` backend serves — including when sharding composes with
prefix caching, chunked prefill, and prompt-lookup speculation.  Tensor
parallelism moves timings, never a token.
"""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.generation import generate
from repro.nn.model import OPTLanguageModel
from repro.serve import Request, ServeEngine, generate_workload

POLICIES = ("fp64-ref", "bf16-fp8kv")


def make_model(policy=None, seed=11):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


def workload(scenario, count=4, seed=0):
    return generate_workload(scenario, num_requests=count, vocab_size=64, seed=seed)


def served_tokens(model, requests, backend, **engine_kwargs):
    engine = ServeEngine(model, backend=backend, **engine_kwargs)
    try:
        report = engine.serve(requests)
    finally:
        engine.close()
    assert len(report.completed) == len(requests)
    return report, {
        r.request_id: report.by_id(r.request_id).tokens for r in requests
    }


def assert_shard_parity(model, requests, backend, **engine_kwargs):
    """Serve on reference then on ``backend``; demand identical streams."""
    _, ref = served_tokens(model, requests, "reference", **engine_kwargs)
    report, sharded = served_tokens(model, requests, backend, **engine_kwargs)
    for rid, tokens in ref.items():
        np.testing.assert_array_equal(
            sharded[rid], tokens, err_msg=f"request {rid} diverged on {backend}"
        )
    return report


class TestSimDriverParity:
    """The in-process driver: cheap enough to sweep counts x presets."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    def test_steady_parity(self, num_shards, policy, fixed_timer):
        model = make_model(policy)
        assert_shard_parity(
            model,
            workload("steady"),
            f"sharded:{num_shards}:sim",
            max_batch_size=4,
            timer=fixed_timer,
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_prefix_caching_composition(self, policy, fixed_timer):
        model = make_model(policy)
        prompt = np.array([1, 2, 3, 1, 2, 3, 1, 2])
        requests = [
            Request("writer", prompt, max_new_tokens=8, arrival_time=0.0),
            Request("twin", prompt.copy(), max_new_tokens=8, arrival_time=0.05),
        ]
        report = assert_shard_parity(
            model,
            requests,
            "sharded:3:sim",
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
            timer=fixed_timer,
        )
        assert report.pool_stats["blocks_adopted"] > 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_chunked_prefill_composition(self, policy, fixed_timer):
        model = make_model(policy)
        assert_shard_parity(
            model,
            workload("chat"),
            "sharded:2:sim",
            max_batch_size=4,
            prefill_budget=3,
            timer=fixed_timer,
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_speculation_composition(self, policy, fixed_timer):
        model = make_model(policy)
        requests = workload("summarize-copy", count=6)
        report = assert_shard_parity(
            model,
            requests,
            "sharded:2:sim",
            max_batch_size=4,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )
        # Speculation engaged on the sharded backend, and the streams
        # still equal the offline generate() reference.
        assert report.metrics["draft_accepted"] > 0
        for request in requests:
            expected = generate(
                model,
                request.prompt_ids,
                max_new_tokens=request.max_new_tokens,
                temperature=request.temperature,
                top_k=request.top_k,
                rng=np.random.default_rng(request.seed),
                stop_tokens=request.stop_tokens,
            )
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens, expected
            )


class TestProcessDriverParity:
    """Real worker processes over shared-memory rings: one sweep per
    preset keeps the suite fast while still exercising the full IPC
    transport (weight shm, activation rings, result unflattening)."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_process_driver_parity(self, policy, fixed_timer):
        model = make_model(policy)
        assert_shard_parity(
            model,
            workload("chat"),
            "sharded:2:process",
            max_batch_size=4,
            timer=fixed_timer,
        )

    def test_process_and_sim_agree(self, fixed_timer):
        """Both drivers run the same plan; their streams must be equal."""
        model = make_model("bf16-fp8kv")
        requests = workload("steady")
        _, sim = served_tokens(
            model, requests, "sharded:4:sim", max_batch_size=4, timer=fixed_timer
        )
        _, proc = served_tokens(
            model, requests, "sharded:4:process", max_batch_size=4,
            timer=fixed_timer,
        )
        for rid, tokens in sim.items():
            np.testing.assert_array_equal(proc[rid], tokens)


class TestGeneratePath:
    def test_generate_backend_parity(self):
        model = make_model("bf16-fp8kv")
        prompt = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        ref = generate(model, prompt, max_new_tokens=10, temperature=0.0)
        sharded = generate(
            model, prompt, max_new_tokens=10, temperature=0.0,
            backend="sharded:3:sim",
        )
        np.testing.assert_array_equal(sharded, ref)
