"""The fixed-block accumulation contract, pinned at the bit level.

``det_matmul(block=True)`` promises one specific float summation tree —
DET_ATOMS contiguous atoms summed strictly left-to-right from the first
non-empty partial — and the whole sharding layer rests on shards being
able to replay that exact tree.  These tests pin the contract three ways:
against hard-coded golden byte digests (any change to the tree changes
the digest), against an independent in-test reimplementation, and against
the shard-side partials/reduce pipeline for every legal shard count.
"""

import hashlib

import numpy as np
import pytest

from repro.nn.functional import (
    DET_ATOMS,
    det_all_reduce,
    det_block_bounds,
    det_matmul,
    det_matmul_partials,
)

#: sha256 of the blocked/plain kernel outputs on the seeded case below.
#: The two differ on purpose — the blocked tree is NOT the naive
#: left-to-right dot product — and neither may ever drift.
GOLDEN_CASE = dict(seed=2025, m=5, k=29, n=7)
GOLDEN_BLOCKED = "1fb63a23d77abb461ff400cbbdbdacded761d8af13ec62d4f35b7d30fe2936bf"
GOLDEN_PLAIN = "b8774d03e917c3c437343707a966301a6e5eb7969f1de807058879dfb3cd6316"

SHARD_COUNTS = tuple(n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0)


def golden_operands():
    rng = np.random.default_rng(GOLDEN_CASE["seed"])
    a = rng.standard_normal((GOLDEN_CASE["m"], GOLDEN_CASE["k"]))
    b = rng.standard_normal((GOLDEN_CASE["k"], GOLDEN_CASE["n"]))
    return a, b


def digest(array) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


class TestGoldenBitPatterns:
    def test_blocked_kernel_digest(self):
        a, b = golden_operands()
        assert digest(det_matmul(a, b, block=True)) == GOLDEN_BLOCKED

    def test_plain_kernel_digest(self):
        a, b = golden_operands()
        assert digest(det_matmul(a, b)) == GOLDEN_PLAIN

    def test_blocked_tree_is_not_the_plain_tree(self):
        # If these ever collide the blocked mode has silently degenerated
        # into the plain kernel and the sharding exactness argument is
        # resting on coincidence.
        assert GOLDEN_BLOCKED != GOLDEN_PLAIN

    def test_blocked_matches_manual_atom_sum(self):
        """Independent reimplementation: einsum per atom, left-to-right."""
        a, b = golden_operands()
        bounds = det_block_bounds(a.shape[-1])
        out = None
        for t in range(DET_ATOMS):
            lo, hi = bounds[t], bounds[t + 1]
            if hi <= lo:
                continue
            part = np.einsum(
                "...ij,...jk->...ik", a[..., lo:hi], b[lo:hi, :], optimize=False
            )
            out = part if out is None else out + part
        assert out.tobytes() == det_matmul(a, b, block=True).tobytes()


class TestShardReduceParity:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_reduce_bit_equal_for_every_shard_count(self, num_shards):
        a, b = golden_operands()
        k = a.shape[-1]
        bounds = [(s * k) // num_shards for s in range(num_shards + 1)]
        partials = [
            det_matmul_partials(
                a[:, lo:hi], b[lo:hi, :], k_start=lo, k_total=k
            )
            for lo, hi in zip(bounds, bounds[1:])
        ]
        reduced = det_all_reduce(partials)
        assert reduced.tobytes() == det_matmul(a, b, block=True).tobytes()
        assert digest(reduced) == GOLDEN_BLOCKED

    def test_short_contraction_with_empty_atoms(self):
        """K < DET_ATOMS leaves some atoms empty; the tree must still hold."""
        rng = np.random.default_rng(7)
        a = rng.standard_normal((3, 5))
        b = rng.standard_normal((5, 2))
        blocked = det_matmul(a, b, block=True)
        for num_shards in (1, 2, 3):
            bounds = [(s * 5) // num_shards for s in range(num_shards + 1)]
            partials = [
                det_matmul_partials(a[:, lo:hi], b[lo:hi, :], k_start=lo, k_total=5)
                for lo, hi in zip(bounds, bounds[1:])
            ]
            assert det_all_reduce(partials).tobytes() == blocked.tobytes()


class TestAlignmentGuards:
    def test_misaligned_slice_rejected(self):
        a, b = golden_operands()
        # [1, 29) does not start on an atom boundary of K=29.
        with pytest.raises(ValueError, match="atom-aligned"):
            det_matmul_partials(a[:, 1:], b[1:, :], k_start=1, k_total=29)

    def test_contraction_mismatch_rejected(self):
        a, b = golden_operands()
        with pytest.raises(ValueError, match="contraction mismatch"):
            det_matmul_partials(a[:, :-1], b)

    def test_negative_k_total_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            det_block_bounds(-1)

    def test_bounds_are_atom_aligned_for_divisor_shards(self):
        """floor(i*K/N) lands on det_block_bounds for every N | DET_ATOMS."""
        for k in (1, 5, 12, 29, 96, 97):
            bounds = set(det_block_bounds(k))
            for num_shards in SHARD_COUNTS:
                for i in range(num_shards + 1):
                    assert (i * k) // num_shards in bounds

    def test_empty_contraction_falls_back(self):
        a = np.zeros((2, 0))
        b = np.zeros((0, 3))
        out = det_matmul(a, b, block=True)
        assert out.shape == (2, 3)
        assert not out.any()
