"""Shard benchmark harness: cells, best-of-K, comparison, CLI guards."""

import json

import pytest

from repro.shard import bench as shard_bench
from repro.shard.bench import jobs, run_shard_cell, shard_comparison


def fake_row(scenario, policy, backend, tps, digest):
    return {
        "scenario": scenario,
        "policy": policy,
        "backend": backend,
        "token_digest": digest,
        "metrics": {"tokens_per_second": tps},
    }


class TestRunShardCell:
    def test_rejects_non_positive_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_shard_cell(repeats=0, scenario="steady")

    def test_keeps_fastest_repeat(self, monkeypatch):
        speeds = iter([100.0, 300.0, 200.0])

        def fake_run_scenario(**params):
            tps = next(speeds)
            return {"token_digest": "d", "metrics": {"tokens_per_second": tps}}, "x"

        monkeypatch.setattr(
            "repro.serve.bench.run_scenario", fake_run_scenario
        )
        rows, _ = run_shard_cell(repeats=3, scenario="steady")
        assert rows["metrics"]["tokens_per_second"] == 300.0
        assert rows["repeats"] == 3

    def test_digest_drift_across_repeats_fails_loudly(self, monkeypatch):
        digests = iter(["a", "b"])

        def fake_run_scenario(**params):
            return (
                {"token_digest": next(digests),
                 "metrics": {"tokens_per_second": 1.0}},
                "x",
            )

        monkeypatch.setattr(
            "repro.serve.bench.run_scenario", fake_run_scenario
        )
        with pytest.raises(RuntimeError, match="no longer deterministic"):
            run_shard_cell(repeats=2, scenario="steady")

    def test_real_cell_is_deterministic_and_serializable(self):
        rows, text = run_shard_cell(
            repeats=2,
            scenario="steady",
            quick=True,
            num_requests=3,
            model_name="opt-test",
            policy="fp64-ref",
            backend="sharded:2:sim",
        )
        assert rows["backend"] == "sharded:2:sim"
        assert rows["repeats"] == 2
        json.dumps(rows)


class TestJobs:
    def test_grid_declaration(self):
        declared = jobs(
            quick=True,
            scenarios=("steady", "chat"),
            shards=(1, 2),
            drivers=("sim",),
            policies=("fp64-ref",),
        )
        # 2 scenarios x 1 policy x (reference + 2 sharded backends)
        assert len(declared) == 6
        names = {job.name for job in declared}
        assert "shard[steady/fp64-ref/reference]" in names
        assert "shard[chat/fp64-ref/sharded:2:sim]" in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            jobs(scenarios=("no-such-mix",))

    def test_pipeline_mode_grid_declaration(self):
        declared = jobs(
            quick=True,
            scenarios=("steady",),
            mode="pipeline",
            stages=(1, 2),
            drivers=("process",),
            policies=("fp64-ref",),
        )
        names = {job.name for job in declared}
        assert "shard[steady/fp64-ref/reference]" in names
        assert "shard[steady/fp64-ref/pipeline:1:process]" in names
        assert "shard[steady/fp64-ref/pipeline:2:process]" in names

    def test_pipeline_mode_composed_and_pinned_backends(self):
        declared = jobs(
            quick=True,
            scenarios=("steady",),
            mode="pipeline",
            stages=(2,),
            stage_shards=2,
            pin_workers=True,
            drivers=("process",),
            policies=("fp64-ref",),
        )
        names = {job.name for job in declared}
        assert (
            "shard[steady/fp64-ref/pipeline:2+sharded:2:process:pin]" in names
        )


class TestShardComparison:
    def test_ratios_and_digest_flags(self):
        rows = [
            fake_row("steady", "fp64-ref", "reference", 100.0, "ok"),
            fake_row("steady", "fp64-ref", "sharded:1:sim", 110.0, "ok"),
            fake_row("steady", "fp64-ref", "sharded:2:sim", 220.0, "ok"),
            fake_row("steady", "fp64-ref", "sharded:4:sim", 330.0, "BAD"),
        ]
        comp = shard_comparison(rows)
        group = comp["steady/fp64-ref/sim"]
        assert group["N=2"]["tokens_match"] is True
        assert group["N=2"]["tokens_match_reference"] is True
        assert group["N=2"]["tokens_per_second_ratio"] == pytest.approx(2.0)
        assert group["N=4"]["tokens_match"] is False
        assert group["N=4"]["tokens_match_reference"] is False
        assert group["N=1"]["tokens_per_second_ratio"] == pytest.approx(1.0)

    def test_drivers_compare_against_their_own_twin(self):
        rows = [
            fake_row("steady", "fp64-ref", "reference", 100.0, "ok"),
            fake_row("steady", "fp64-ref", "sharded:1:sim", 200.0, "ok"),
            fake_row("steady", "fp64-ref", "sharded:1:process", 100.0, "ok"),
            fake_row("steady", "fp64-ref", "sharded:2:process", 150.0, "ok"),
        ]
        comp = shard_comparison(rows)
        assert comp["steady/fp64-ref/process"]["N=2"][
            "tokens_per_second_ratio"
        ] == pytest.approx(1.5)

    def test_pipeline_rows_compare_against_single_stage_twin(self):
        rows = [
            fake_row("steady", "fp64-ref", "reference", 100.0, "ok"),
            fake_row("steady", "fp64-ref", "pipeline:1:process", 100.0, "ok"),
            fake_row("steady", "fp64-ref", "pipeline:2:process", 130.0, "ok"),
            fake_row(
                "steady", "fp64-ref", "pipeline:2+sharded:2:process",
                140.0, "ok",
            ),
        ]
        comp = shard_comparison(rows)
        group = comp["steady/fp64-ref/process"]
        assert group["P=2"]["tokens_per_second_ratio"] == pytest.approx(1.3)
        assert group["P=2"]["tokens_match"] is True
        assert group["P=2xN=2"]["tokens_per_second_ratio"] == pytest.approx(1.4)
        assert group["P=2xN=2"]["tokens_match_reference"] is True


class TestValidation:
    def test_run_shard_bench_rejects_unknown_scenario(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scenario"):
            shard_bench.run_shard_bench(
                scenarios=("no-such-mix",),
                out_path=str(tmp_path / "x.json"),
            )

    def test_run_shard_bench_rejects_bad_shards(self, tmp_path):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            shard_bench.run_shard_bench(
                shards=(5,), out_path=str(tmp_path / "x.json")
            )

    def test_run_shard_bench_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError, match="--mode"):
            shard_bench.run_shard_bench(
                mode="tensor", out_path=str(tmp_path / "x.json")
            )

    def test_pipeline_mode_rejects_oversized_stage_count(self, tmp_path):
        with pytest.raises(ValueError, match="decoder layers"):
            shard_bench.run_shard_bench(
                mode="pipeline", stages=(1, 99), model_name="opt-test",
                out_path=str(tmp_path / "x.json"),
            )

    def test_pipeline_mode_rejects_oversized_composed_topology(self, tmp_path):
        with pytest.raises(ValueError, match="P\\*N"):
            shard_bench.run_shard_bench(
                mode="pipeline", stages=(2,), stage_shards=4,
                model_name="opt-test", out_path=str(tmp_path / "x.json"),
            )

    def test_pipeline_mode_rejects_bad_stage_shards(self, tmp_path):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            shard_bench.run_shard_bench(
                mode="pipeline", stage_shards=5, model_name="opt-test",
                out_path=str(tmp_path / "x.json"),
            )


class TestCLIGuards:
    """Flag mistakes exit with one-line usage errors, not tracebacks."""

    def test_unknown_scenario_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "shard-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--scenarios", "no-such-mix",
            ])
        assert "shard-bench" in str(excinfo.value)

    def test_bad_shards_list_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "shard-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--shards", "1,two",
            ])
        assert "shard" in str(excinfo.value)

    def test_serve_bench_shards_conflicts_with_backend(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--shards", "2", "--backend", "compiled",
            ])
        assert "--shards" in str(excinfo.value)

    def test_cluster_bench_bad_weights_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "cluster-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--capacity-weights", "2,zero",
            ])
        assert "capacity-weights" in str(excinfo.value)

    def test_cluster_bench_weight_count_mismatch_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "cluster-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--replicas", "3",
                "--capacity-weights", "2,1",
            ])
        assert "one weight per replica" in str(excinfo.value)

    def test_bad_stages_list_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "shard-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--mode", "pipeline", "--stages", "1,two",
            ])
        assert "--stages" in str(excinfo.value)

    def test_oversized_stage_count_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "shard-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--mode", "pipeline", "--stages", "1,99",
                "--model", "opt-test",
            ])
        assert str(excinfo.value).startswith("shard-bench:")
        assert "decoder layers" in str(excinfo.value)

    @pytest.mark.parametrize(
        "spec",
        ["pipeline:0", "pipeline:2:gpu", "pipeline:2+sharded:5"],
    )
    def test_serve_bench_bad_pipeline_spec_is_usage_error(self, tmp_path, spec):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--backend", spec,
            ])
        assert str(excinfo.value).startswith("serve-bench:")

    def test_serve_bench_oversized_stage_count_is_usage_error(self, tmp_path):
        from repro.cli import main

        # serve-bench cells run opt-test (2 decoder layers).
        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--backend", "pipeline:99",
            ])
        assert "decoder layers" in str(excinfo.value)

    @pytest.mark.parametrize(
        "spec", ["pipeline:0", "pipeline:2:gpu", "pipeline:99"]
    )
    def test_cluster_bench_bad_pipeline_spec_is_usage_error(
        self, tmp_path, spec
    ):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "cluster-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--backend", spec,
            ])
        assert str(excinfo.value).startswith("cluster-bench:")

    def test_serve_bench_bad_repeats_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--repeats", "0",
            ])
        assert "--repeats" in str(excinfo.value)
