"""Shard/pipeline spec parsing, backend validation, and plan guards."""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.executor import resolve_executor, validate_backend
from repro.nn.functional import DET_ATOMS
from repro.nn.model import OPTLanguageModel
from repro.shard import (
    PipelinePlan,
    PipelinedExecutor,
    ShardPlan,
    ShardedExecutor,
    parse_pipeline_spec,
    parse_shard_spec,
)
from repro.shard.bench import validate_drivers, validate_shards, validate_stages
from repro.shard.plan import shard_bounds, stage_layer_bounds


def make_model(policy=None):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(11), policy=policy
    )
    model.eval()
    return model


class TestParseShardSpec:
    def test_defaults_to_sim_driver(self):
        assert parse_shard_spec("sharded:2") == (2, "sim", False)

    def test_explicit_driver(self):
        assert parse_shard_spec("sharded:4:process") == (4, "process", False)

    def test_pin_suffix(self):
        assert parse_shard_spec("sharded:2:process:pin") == (2, "process", True)
        assert parse_shard_spec("sharded:2:pin") == (2, "sim", True)

    @pytest.mark.parametrize(
        "spec",
        ["sharded", "sharded:", "shard:2", "sharded:2:sim:extra", "sharded:x",
         "sharded:2:pin:sim", "sharded:2:sim:pin:extra"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_shard_spec(spec)

    @pytest.mark.parametrize("n", [0, -1, 5, 7, 13])
    def test_non_divisor_counts_rejected(self, n):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            parse_shard_spec(f"sharded:{n}")

    def test_unknown_driver_rejected(self):
        with pytest.raises(ValueError, match="driver"):
            parse_shard_spec("sharded:2:threads")


class TestParsePipelineSpec:
    def test_defaults(self):
        assert parse_pipeline_spec("pipeline:2") == (2, 1, "sim", False)

    def test_single_stage_is_valid(self):
        assert parse_pipeline_spec("pipeline:1:process") == (
            1, 1, "process", False,
        )

    def test_driver_and_pin(self):
        assert parse_pipeline_spec("pipeline:2:process:pin") == (
            2, 1, "process", True,
        )

    def test_composed_with_sharded(self):
        assert parse_pipeline_spec("pipeline:2+sharded:2:process") == (
            2, 2, "process", False,
        )
        assert parse_pipeline_spec("pipeline:2+sharded:2:process:pin") == (
            2, 2, "process", True,
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "pipeline", "pipeline:", "pipeline:x", "pipeline:0",
            "pipeline:-1", "pipeline:2:gpu",
            # driver/pin must follow the sharded half in the composed form
            "pipeline:2:process+sharded:2",
            "pipeline:2+sharded:5",      # non-divisor tensor split
            "pipeline:2+sharded:2:gpu",
            "pipeline:2+pipeline:2",     # only sharded composes
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_pipeline_spec(spec)


class TestValidateBackend:
    @pytest.mark.parametrize(
        "spec",
        ["reference", "compiled", "sharded:2", "sharded:12:process",
         "pipeline:2", "pipeline:1:process", "pipeline:2+sharded:2:sim",
         "pipeline:2:process:pin"],
    )
    def test_accepts_known_backends(self, spec):
        validate_backend(spec)

    @pytest.mark.parametrize(
        "spec",
        ["nonsense", "sharded:5", "sharded:2:gpu", "pipeline:0",
         "pipeline:2:gpu", "pipeline:2+sharded:5"],
    )
    def test_rejects_unknown_backends(self, spec):
        with pytest.raises(ValueError):
            validate_backend(spec)

    def test_stage_count_checked_against_model_depth(self):
        num_layers = get_config("opt-test").num_layers
        validate_backend(f"pipeline:{num_layers}", num_layers=num_layers)
        with pytest.raises(ValueError, match="decoder layers"):
            validate_backend(
                f"pipeline:{num_layers + 1}", num_layers=num_layers
            )

    def test_resolve_builds_sharded_executor(self):
        executor = resolve_executor("sharded:3:sim", make_model())
        try:
            assert isinstance(executor, ShardedExecutor)
            assert executor.num_shards == 3
        finally:
            executor.close()

    def test_resolve_builds_pipelined_executor(self):
        executor = resolve_executor("pipeline:2+sharded:2:sim", make_model())
        try:
            assert isinstance(executor, PipelinedExecutor)
            assert executor.num_stages == 2
            assert executor.num_shards == 2
            assert executor.name == "pipeline:2+sharded:2:sim"
        finally:
            executor.close()

    def test_resolve_rejects_stages_beyond_model_depth(self):
        model = make_model()
        with pytest.raises(ValueError, match="decoder layers"):
            resolve_executor(f"pipeline:{len(model.blocks) + 1}:sim", model)


class TestBenchValidators:
    def test_validate_shards_accepts_divisors(self):
        validate_shards([n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0])

    def test_validate_shards_rejects_non_divisor(self):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            validate_shards([2, 5])

    def test_validate_drivers(self):
        validate_drivers(["sim", "process"])
        with pytest.raises(ValueError, match="driver"):
            validate_drivers(["sim", "mpi"])

    def test_validate_stages(self):
        validate_stages([1, 2], num_layers=2)
        with pytest.raises(ValueError, match=">= 1"):
            validate_stages([0])
        with pytest.raises(ValueError, match="decoder layers"):
            validate_stages([3], num_layers=2)


class TestShardPlan:
    def test_non_divisor_count_rejected(self):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            ShardPlan(make_model(), 5)

    def test_count_wider_than_narrowest_axis_rejected(self):
        # opt-test is deliberately tiny; a count that divides DET_ATOMS
        # can still exceed an axis on a wide-enough request.
        model = make_model()
        narrowest = min(
            model.config.embed_dim, model.config.ffn_dim, model.config.vocab_size
        )
        too_many = next(
            (
                n
                for n in range(1, DET_ATOMS + 1)
                if DET_ATOMS % n == 0 and n > narrowest
            ),
            None,
        )
        if too_many is None:
            pytest.skip("every divisor fits this model's axes")
        with pytest.raises(ValueError, match="narrowest"):
            ShardPlan(model, too_many)

    def test_bounds_cover_axis_contiguously(self):
        for dim in (12, 29, 96):
            for n in (1, 2, 3, 4, 6, 12):
                bounds = shard_bounds(dim, n)
                assert bounds[0] == 0 and bounds[-1] == dim
                assert all(lo <= hi for lo, hi in zip(bounds, bounds[1:]))

    def test_plan_exposes_one_state_per_shard(self):
        plan = ShardPlan(make_model(), 4)
        assert len(plan.states()) == 4
        assert len(plan.configs) == 4


class TestPipelinePlan:
    def test_stage_bounds_cover_stack_contiguously(self):
        for layers in (2, 3, 12, 24):
            for stages in (1, 2, 3):
                if stages > layers:
                    continue
                bounds = stage_layer_bounds(layers, stages)
                assert bounds[0] == 0 and bounds[-1] == layers
                # every stage owns at least one layer
                assert all(lo < hi for lo, hi in zip(bounds, bounds[1:]))

    def test_stage_count_beyond_depth_rejected(self):
        model = make_model()
        with pytest.raises(ValueError, match="decoder layers"):
            PipelinePlan(model, len(model.blocks) + 1)

    def test_non_positive_stage_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            PipelinePlan(make_model(), 0)

    def test_logits_slice_lives_only_on_last_stage(self):
        model = make_model()
        plan = PipelinePlan(model, 2, num_shards=2)
        assert len(plan.stages) == 2
        for stage_index, stage in enumerate(plan.stages):
            for arrays in stage.arrays:
                has_logits = "logits_w" in arrays
                assert has_logits == (stage_index == len(plan.stages) - 1)

    def test_stage_arrays_partition_layer_keys(self):
        model = make_model()
        plan = PipelinePlan(model, 2)
        bounds = plan.layer_bounds
        for s, stage in enumerate(plan.stages):
            for arrays in stage.arrays:
                layers = {
                    int(key.split(".", 1)[0][1:])
                    for key in arrays
                    if key != "logits_w"
                }
                assert layers == set(range(bounds[s], bounds[s + 1]))

    def test_stage_of_routes_every_layer(self):
        model = make_model()
        plan = PipelinePlan(model, 2)
        assert len(plan.stage_of) == len(model.blocks)
        for i, s in enumerate(plan.stage_of):
            assert plan.layer_bounds[s] <= i < plan.layer_bounds[s + 1]
