"""Shard spec parsing, backend validation, and plan construction guards."""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.executor import resolve_executor, validate_backend
from repro.nn.functional import DET_ATOMS
from repro.nn.model import OPTLanguageModel
from repro.shard import ShardPlan, ShardedExecutor, parse_shard_spec
from repro.shard.bench import validate_drivers, validate_shards
from repro.shard.plan import shard_bounds


def make_model(policy=None):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(11), policy=policy
    )
    model.eval()
    return model


class TestParseShardSpec:
    def test_defaults_to_sim_driver(self):
        assert parse_shard_spec("sharded:2") == (2, "sim")

    def test_explicit_driver(self):
        assert parse_shard_spec("sharded:4:process") == (4, "process")

    @pytest.mark.parametrize(
        "spec",
        ["sharded", "sharded:", "shard:2", "sharded:2:sim:extra", "sharded:x"],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_shard_spec(spec)

    @pytest.mark.parametrize("n", [0, -1, 5, 7, 13])
    def test_non_divisor_counts_rejected(self, n):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            parse_shard_spec(f"sharded:{n}")

    def test_unknown_driver_rejected(self):
        with pytest.raises(ValueError, match="driver"):
            parse_shard_spec("sharded:2:threads")


class TestValidateBackend:
    @pytest.mark.parametrize(
        "spec", ["reference", "compiled", "sharded:2", "sharded:12:process"]
    )
    def test_accepts_known_backends(self, spec):
        validate_backend(spec)

    @pytest.mark.parametrize("spec", ["nonsense", "sharded:5", "sharded:2:gpu"])
    def test_rejects_unknown_backends(self, spec):
        with pytest.raises(ValueError):
            validate_backend(spec)

    def test_resolve_builds_sharded_executor(self):
        executor = resolve_executor("sharded:3:sim", make_model())
        try:
            assert isinstance(executor, ShardedExecutor)
            assert executor.num_shards == 3
        finally:
            executor.close()


class TestBenchValidators:
    def test_validate_shards_accepts_divisors(self):
        validate_shards([n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0])

    def test_validate_shards_rejects_non_divisor(self):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            validate_shards([2, 5])

    def test_validate_drivers(self):
        validate_drivers(["sim", "process"])
        with pytest.raises(ValueError, match="driver"):
            validate_drivers(["sim", "mpi"])


class TestShardPlan:
    def test_non_divisor_count_rejected(self):
        with pytest.raises(ValueError, match="DET_ATOMS"):
            ShardPlan(make_model(), 5)

    def test_count_wider_than_narrowest_axis_rejected(self):
        # opt-test is deliberately tiny; a count that divides DET_ATOMS
        # can still exceed an axis on a wide-enough request.
        model = make_model()
        narrowest = min(
            model.config.embed_dim, model.config.ffn_dim, model.config.vocab_size
        )
        too_many = next(
            (
                n
                for n in range(1, DET_ATOMS + 1)
                if DET_ATOMS % n == 0 and n > narrowest
            ),
            None,
        )
        if too_many is None:
            pytest.skip("every divisor fits this model's axes")
        with pytest.raises(ValueError, match="narrowest"):
            ShardPlan(model, too_many)

    def test_bounds_cover_axis_contiguously(self):
        for dim in (12, 29, 96):
            for n in (1, 2, 3, 4, 6, 12):
                bounds = shard_bounds(dim, n)
                assert bounds[0] == 0 and bounds[-1] == dim
                assert all(lo <= hi for lo, hi in zip(bounds, bounds[1:]))

    def test_plan_exposes_one_state_per_shard(self):
        plan = ShardPlan(make_model(), 4)
        assert len(plan.states()) == 4
        assert len(plan.configs) == 4
