"""Shared fixtures for the tensor-sharding tests."""

from __future__ import annotations

import pytest


@pytest.fixture
def fixed_timer():
    """Deterministic monotonic clock advancing 1 ms per reading."""

    class _Timer:
        def __init__(self) -> None:
            self.t = 0.0

        def __call__(self) -> float:
            self.t += 0.001
            return self.t

    return _Timer()
