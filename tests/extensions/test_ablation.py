"""Tests for the a0 / lambda ablation utilities."""

import numpy as np
import pytest

from repro.core.ablation import (
    INIT_STRATEGIES,
    RATE_STRATEGIES,
    ablation_study,
    evaluate_strategy,
    typical_norm_squares,
)


@pytest.fixture(scope="module")
def norm_squares():
    return typical_norm_squares(lengths=(64, 512, 4096), trials_per_length=15, seed=0)


class TestTypicalNormSquares:
    def test_positive_and_scaled_with_length(self):
        ms = typical_norm_squares(lengths=(64,), trials_per_length=20)
        assert np.all(ms > 0)
        # Uniform(-1,1) mean-shifted: E[m] ~ d/3.
        assert 10 < ms.mean() < 35

    def test_deterministic(self):
        a = typical_norm_squares(seed=5, trials_per_length=3)
        b = typical_norm_squares(seed=5, trials_per_length=3)
        np.testing.assert_array_equal(a, b)


class TestEvaluateStrategy:
    def test_paper_strategies_converge_fast(self, norm_squares):
        mean_steps, converged, err5 = evaluate_strategy(
            INIT_STRATEGIES["exponent (Eq. 6)"],
            RATE_STRATEGIES["exponent (Eq. 10)"],
            norm_squares,
        )
        assert converged == 1.0
        assert mean_steps <= 6.0
        assert err5 < 5e-3

    def test_oracle_init_converges_immediately(self, norm_squares):
        mean_steps, converged, _ = evaluate_strategy(
            INIT_STRATEGIES["oracle 1/sqrt(m)"],
            RATE_STRATEGIES["exponent (Eq. 10)"],
            norm_squares,
        )
        assert converged == 1.0
        assert mean_steps == 0.0

    def test_constant_rate_fails_for_large_norms(self, norm_squares):
        _, converged, _ = evaluate_strategy(
            INIT_STRATEGIES["exponent (Eq. 6)"],
            RATE_STRATEGIES["constant 1e-3"],
            norm_squares,
            max_steps=20,
        )
        assert converged < 1.0


class TestAblationStudy:
    def test_grid_shape(self, norm_squares):
        results = ablation_study(norm_squares, max_steps=20)
        assert len(results) == len(INIT_STRATEGIES) * len(RATE_STRATEGIES)
        assert len({(r.init_name, r.rate_name) for r in results}) == len(results)

    def test_paper_choice_is_best_divisionfree_option(self, norm_squares):
        """Eq. 6 + Eq. 10 beats every other division-free combination."""
        results = {(r.init_name, r.rate_name): r for r in ablation_study(norm_squares, max_steps=30)}
        paper = results[("exponent (Eq. 6)", "exponent (Eq. 10)")]
        division_free_alternatives = [
            results[("constant 1.0", "exponent (Eq. 10)")],
            results[("constant 1.0", "constant 1e-3")],
            results[("exponent (Eq. 6)", "constant 1e-3")],
        ]
        for alt in division_free_alternatives:
            assert paper.converged_fraction >= alt.converged_fraction
            assert paper.mean_steps_to_tolerance <= alt.mean_steps_to_tolerance

    def test_as_row(self, norm_squares):
        row = ablation_study(norm_squares[:5], max_steps=10)[0].as_row()
        assert set(row) == {"init", "rate", "mean_steps", "converged", "rel_err@5"}

    def test_custom_strategies(self, norm_squares):
        results = ablation_study(
            norm_squares[:5],
            init_strategies={"only": INIT_STRATEGIES["exponent (Eq. 6)"]},
            rate_strategies={"only": RATE_STRATEGIES["exponent (Eq. 10)"]},
        )
        assert len(results) == 1
