"""Tests for the data-movement and throughput models."""

import pytest

from repro.macro.latency import LatencyModel
from repro.macro.throughput import ThroughputModel
from repro.macro.traffic import (
    DDR4_CHANNEL,
    HBM2_STACK,
    PCIE4_X16,
    MemoryInterface,
    TrafficModel,
)


class TestMemoryInterface:
    def test_transfer_time(self):
        iface = MemoryInterface("test", bandwidth_gb_s=10.0, latency_us=1.0)
        # 10 GB/s = 10 KB/us; 100 KB takes 10 us + 1 us latency.
        assert iface.transfer_time_us(100e3) == pytest.approx(11.0)

    def test_presets_ordering(self):
        assert HBM2_STACK.bandwidth_gb_s > PCIE4_X16.bandwidth_gb_s
        assert DDR4_CHANNEL.latency_us < PCIE4_X16.latency_us

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryInterface("bad", bandwidth_gb_s=0.0)
        with pytest.raises(ValueError):
            MemoryInterface("bad", bandwidth_gb_s=1.0, latency_us=-1.0)
        with pytest.raises(ValueError):
            DDR4_CHANNEL.transfer_time_us(-1.0)


class TestTrafficModel:
    def test_bytes_scale_with_format_and_tokens(self):
        model = TrafficModel()
        fp32 = model.report(768, 128, fmt="fp32")
        fp16 = model.report(768, 128, fmt="fp16")
        assert fp32.host_bytes_moved == pytest.approx(2 * fp16.host_bytes_moved)
        more_tokens = model.report(768, 256, fmt="fp16")
        assert more_tokens.host_bytes_moved == pytest.approx(2 * fp16.host_bytes_moved)

    def test_exact_byte_count(self):
        report = TrafficModel().report(768, 1, fmt="fp16")
        assert report.host_bytes_moved == 2 * 768 * 2  # out and back, 2 B/element

    def test_energy_ratio_is_dram_vs_sram(self):
        report = TrafficModel().report(1024, 64, fmt="bf16")
        assert report.energy_ratio == pytest.approx(30.0)  # 15 pJ/bit vs 0.5 pJ/bit
        assert report.host_energy_uj > report.onchip_energy_uj

    def test_onchip_time_uses_macro_latency(self):
        model = TrafficModel(clock_mhz=100.0, macros=1)
        report = model.report(768, 10, fmt="fp16")
        expected = LatencyModel().total_cycles(768, 5) * 10 / 100.0
        assert report.onchip_time_us == pytest.approx(expected)

    def test_multiple_macros_divide_time(self):
        one = TrafficModel(macros=1).report(768, 100, fmt="fp16")
        four = TrafficModel(macros=4).report(768, 100, fmt="fp16")
        assert four.onchip_time_us == pytest.approx(one.onchip_time_us / 4.0)

    def test_dram_occupancy_positive(self):
        report = TrafficModel().report(512, 32)
        assert report.dram_occupancy_avoided_us > 0
        assert report.traffic_saving_bytes == report.host_bytes_moved

    def test_as_row_and_sweep(self):
        model = TrafficModel()
        rows = [r.as_row() for r in model.sweep_tokens(256, (16, 64))]
        assert len(rows) == 2
        assert rows[1]["dram_traffic_MB"] > rows[0]["dram_traffic_MB"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(clock_mhz=0.0)
        with pytest.raises(ValueError):
            TrafficModel(macros=0)
        with pytest.raises(ValueError):
            TrafficModel().report(0, 10)


class TestThroughputModel:
    def test_vectors_per_fill(self):
        model = ThroughputModel()
        assert model.vectors_per_fill(1024) == 1
        assert model.vectors_per_fill(512) == 2
        assert model.vectors_per_fill(64) == 16
        assert model.vectors_per_fill(768) == 1

    def test_report_consistency(self):
        model = ThroughputModel()
        report = model.report(256, num_steps=5)
        assert report.cycles_per_vector == LatencyModel().total_cycles(256, 5)
        assert report.cycles_per_batch == (
            report.load_cycles_per_fill + report.vectors_per_fill * report.cycles_per_vector
        )
        assert report.effective_cycles_per_vector > report.cycles_per_vector / report.vectors_per_fill

    def test_throughput_decreases_with_length(self):
        model = ThroughputModel()
        rates = [model.report(d).vectors_per_second for d in (64, 256, 1024)]
        assert rates == sorted(rates, reverse=True)

    def test_throughput_at_paper_clock(self):
        # d=1024 takes ~222 cycles + 16 load cycles at 100 MHz -> ~420k vectors/s.
        rate = ThroughputModel(clock_mhz=100.0).report(1024).vectors_per_second
        assert 3e5 < rate < 5e5

    def test_macros_required(self):
        model = ThroughputModel()
        assert model.macros_required(768, 1e5) == 1
        assert model.macros_required(768, 5e6) > 1
        assert model.macros_required(768, 1.0) == 1

    def test_sweep_and_rows(self):
        rows = [r.as_row() for r in ThroughputModel().sweep((64, 128))]
        assert rows[0]["d"] == 64
        assert rows[0]["vectors_per_fill"] == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputModel(clock_mhz=-1.0)
        with pytest.raises(ValueError):
            ThroughputModel().vectors_per_fill(2048)
        with pytest.raises(ValueError):
            ThroughputModel().macros_required(64, 0.0)
