"""Tests for the macro-backed normalizer, multi-vector mode, FP8 extension."""

import numpy as np
import pytest

from repro.baselines.exact import exact_layernorm
from repro.core.layernorm import IterL2Norm, IterL2NormConfig
from repro.experiments.extension_fp8 import mixed_precision_layernorm, run as run_fp8
from repro.fpformats.quantize import quantize
from repro.fpformats.spec import FLOAT8_E4M3, FLOAT8_E5M2, get_format
from repro.integration import MacroBackedLayerNorm, normalization_cost_report
from repro.macro.latency import LatencyModel
from repro.macro.simulator import IterL2NormMacro, MacroConfig
from repro.nn.config import get_config


class TestFP8Formats:
    def test_registered(self):
        assert get_format("fp8_e4m3") is FLOAT8_E4M3
        assert get_format("e5m2") is FLOAT8_E5M2

    def test_biases(self):
        assert FLOAT8_E4M3.bias == 7
        assert FLOAT8_E5M2.bias == 15

    def test_quantization_granularity(self):
        # E4M3 has a 3-bit mantissa: steps of 1/8 around 1.0.
        assert quantize(1.125, "fp8_e4m3") == 1.125
        assert quantize(1.05, "fp8_e4m3") == 1.0
        # E5M2 has a 2-bit mantissa: steps of 1/4 around 1.0.
        assert quantize(1.25, "fp8_e5m2") == 1.25
        assert quantize(1.1, "fp8_e5m2") == 1.0

    def test_iteration_runs_in_fp8(self):
        from repro.core.iteration import iterate_a

        a = iterate_a(37.5, num_steps=5, fmt="fp8_e4m3")
        assert a == quantize(a, "fp8_e4m3")
        # Within the format's resolution of the true value.
        assert abs(a - 1 / np.sqrt(37.5)) / (1 / np.sqrt(37.5)) < 0.15


class TestMixedPrecisionLayerNorm:
    def test_bf16_scalar_matches_plain_bf16_band(self, rng):
        x = rng.uniform(-1, 1, size=(30, 256))
        out = mixed_precision_layernorm(x, "bf16")
        err = np.abs(out - exact_layernorm(x)).mean()
        assert err < 1e-2

    def test_fp8_scalar_coarser_but_usable(self, rng):
        x = rng.uniform(-1, 1, size=(30, 256))
        errs = {}
        for fmt in ("bf16", "fp8_e4m3", "fp8_e5m2"):
            out = mixed_precision_layernorm(x, fmt)
            errs[fmt] = np.abs(out - exact_layernorm(x)).mean()
        assert errs["bf16"] < errs["fp8_e4m3"]
        assert errs["bf16"] < errs["fp8_e5m2"]
        # Both 8-bit variants remain usable normalizations (few-percent error).
        assert errs["fp8_e4m3"] < 0.2
        assert errs["fp8_e5m2"] < 0.2

    def test_run_driver(self):
        rows, text = run_fp8(lengths=(64,), trials=20)
        assert len(rows) == 3
        assert "Extension" in text


class TestMultiVectorMacro:
    def test_batch_matches_individual_runs(self, rng):
        macro = IterL2NormMacro(MacroConfig(fmt="fp32"))
        vectors = rng.uniform(-1, 1, size=(5, 128))
        outputs, cycles, results = macro.normalize_batch(vectors)
        assert len(results) == 5
        for i in range(5):
            single = IterL2NormMacro(MacroConfig(fmt="fp32")).normalize(vectors[i])
            np.testing.assert_array_equal(outputs[i], single.output)

    def test_cycle_accounting_includes_loads(self, rng):
        macro = IterL2NormMacro(MacroConfig(fmt="fp32"))
        vectors = rng.uniform(-1, 1, size=(4, 64))
        _, cycles, results = macro.normalize_batch(vectors)
        per_vector = sum(r.total_cycles for r in results)
        assert cycles == per_vector + 4  # one load cycle per 64-element chunk

    def test_validation(self, rng):
        macro = IterL2NormMacro()
        with pytest.raises(ValueError):
            macro.normalize_batch(rng.uniform(size=64))
        with pytest.raises(ValueError):
            macro.normalize_batch(rng.uniform(size=(1, 2000)))


class TestMacroBackedLayerNorm:
    def test_matches_pure_algorithm(self, rng):
        d = 96
        gamma = rng.uniform(0.5, 1.5, d)
        beta = rng.normal(size=d)
        macro_ln = MacroBackedLayerNorm(d, fmt="fp32", num_steps=5, gamma=gamma, beta=beta)
        module = IterL2Norm(d, IterL2NormConfig(num_steps=5, fmt="fp32"), gamma=gamma, beta=beta)
        x = rng.uniform(-1, 1, size=(6, d))
        np.testing.assert_array_equal(macro_ln(x), module(x))

    def test_cycle_counters(self, rng):
        d = 128
        macro_ln = MacroBackedLayerNorm(d, fmt="fp32")
        x = rng.uniform(-1, 1, size=(3, d))
        macro_ln(x)
        assert macro_ln.vectors_normalized == 3
        expected = 3 * LatencyModel().total_cycles(d, 5) + 3 * 2  # + load cycles
        assert macro_ln.cycles_consumed == expected
        macro_ln.reset_counters()
        assert macro_ln.cycles_consumed == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MacroBackedLayerNorm(2048)
        with pytest.raises(ValueError):
            MacroBackedLayerNorm(8, gamma=np.ones(9))
        with pytest.raises(ValueError):
            MacroBackedLayerNorm(8)(np.zeros((2, 9)))


class TestNormalizationCostReport:
    def test_opt125m_report(self):
        report = normalization_cost_report(get_config("opt-125m"))
        assert report.layernorms_per_token == 25
        assert report.cycles_per_normalization == LatencyModel().total_cycles(768, 5)
        assert report.cycles_per_token == 25 * report.cycles_per_normalization
        assert report.macros_for_realtime >= 1

    def test_bigger_model_costs_more(self):
        small = normalization_cost_report(get_config("opt-125m"))
        large = normalization_cost_report(get_config("opt-350m"))
        assert large.cycles_per_token > small.cycles_per_token

    def test_higher_token_rate_needs_more_macros(self):
        low = normalization_cost_report(get_config("opt-125m"), target_tokens_per_second=1e3)
        high = normalization_cost_report(get_config("opt-125m"), target_tokens_per_second=1e6)
        assert high.macros_for_realtime > low.macros_for_realtime

    def test_as_row(self):
        row = normalization_cost_report(get_config("opt-test")).as_row()
        assert set(row) == {
            "model",
            "d",
            "LN/token",
            "cycles/LN",
            "cycles/token",
            "us/token",
            "macros_needed",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            normalization_cost_report(get_config("opt-test"), clock_mhz=0.0)
        with pytest.raises(ValueError):
            normalization_cost_report(get_config("opt-test"), target_tokens_per_second=0.0)
