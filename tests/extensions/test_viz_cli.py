"""Tests for the ASCII visualization helpers and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.viz import bar_chart, histogram_chart, line_plot


class TestLinePlot:
    def test_basic_render(self):
        x = np.arange(10)
        text = line_plot({"series": (x, x**2)}, width=30, height=8, title="squares")
        lines = text.splitlines()
        assert lines[0] == "squares"
        assert any("*" in line for line in lines)
        assert "series" in lines[-1]

    def test_multiple_series_distinct_markers(self):
        x = np.arange(5)
        text = line_plot({"a": (x, x), "b": (x, 2 * x)}, width=20, height=6)
        assert "*" in text and "+" in text

    def test_log_scale(self):
        x = np.arange(1, 6)
        text = line_plot({"s": (x, 10.0**x)}, log_y=True, width=20, height=6)
        assert "1e+05" in text or "100000" in text or "1e+05" in text.replace(" ", "")

    def test_constant_series(self):
        x = np.arange(4)
        text = line_plot({"flat": (x, np.ones(4))}, width=20, height=5)
        assert "*" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"s": (np.arange(3), np.arange(4))})
        with pytest.raises(ValueError):
            line_plot({"s": (np.arange(3), np.arange(3))}, width=5)
        with pytest.raises(ValueError):
            line_plot({"s": (np.arange(3), np.array([0.0, 1.0, 2.0]))}, log_y=True)


class TestBarChart:
    def test_render_and_scaling(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_title_and_unit(self):
        text = bar_chart({"x": 3.0}, title="T", unit=" mW")
        assert text.startswith("T")
        assert "3 mW" in text

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})


class TestHistogramChart:
    def test_render(self):
        counts = np.array([5, 2, 1])
        edges = np.array([0.0, 0.1, 0.2, 0.3])
        text = histogram_chart(counts, edges, title="H")
        assert text.startswith("H")
        assert text.count("|") == 6  # two per bar

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_chart(np.array([1, 2]), np.array([0.0, 1.0]))


class TestCLI:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "precision",
            "compare",
            "convergence",
            "latency",
            "synthesis",
            "llm",
            "traffic",
            "throughput",
            "all",
        ):
            assert command in text

    def test_latency_command(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "116" in out or "117" in out

    def test_synthesis_command(self, capsys):
        assert main(["synthesis"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "Table III" in out

    def test_traffic_command(self, capsys):
        assert main(["traffic", "--embed-dim", "256", "--interface", "hbm2"]) == 0
        out = capsys.readouterr().out
        assert "on-chip" in out and "energy_ratio" in out

    def test_throughput_command(self, capsys):
        assert main(["throughput", "--tokens-per-second", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "macros needed" in out

    def test_precision_command_small(self, capsys):
        assert main(["precision", "--trials", "5"]) == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
