"""Tests for the top-level macro simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_layernorm
from repro.core.layernorm import IterL2Norm, IterL2NormConfig
from repro.macro.latency import LatencyModel
from repro.macro.simulator import IterL2NormMacro, MacroConfig


class TestMacroConfig:
    def test_defaults(self):
        config = MacroConfig()
        assert config.max_vector_length == 1024
        assert config.chunk_elems == 64
        assert config.num_steps == 5

    def test_validation(self):
        with pytest.raises(KeyError):
            MacroConfig(fmt="fp12")
        with pytest.raises(ValueError):
            MacroConfig(num_steps=-1)
        with pytest.raises(ValueError):
            MacroConfig(num_banks=0)


class TestFunctionalEquivalence:
    def test_matches_iterl2norm_module_bitexactly(self, rng, paper_format):
        """The macro and the pure-algorithm module produce identical outputs."""
        d = 384
        x = rng.uniform(-1, 1, size=d)
        macro = IterL2NormMacro(MacroConfig(fmt=paper_format, num_steps=5))
        module = IterL2Norm(d, IterL2NormConfig(num_steps=5, fmt=paper_format))
        np.testing.assert_array_equal(macro.normalize(x).output, module(x))

    def test_with_affine_parameters(self, rng):
        d = 256
        x = rng.uniform(-1, 1, size=d)
        gamma, beta = rng.uniform(0.5, 1.5, d), rng.normal(size=d)
        macro = IterL2NormMacro(MacroConfig(fmt="fp32"))
        result = macro.normalize(x, gamma, beta)
        expected = exact_layernorm(x, gamma, beta)
        assert np.abs(result.output - expected).mean() < 5e-3

    def test_error_band_against_exact(self, rng, paper_format):
        d = 512
        x = rng.uniform(-1, 1, size=d)
        macro = IterL2NormMacro(MacroConfig(fmt=paper_format))
        err = np.abs(macro.normalize(x).output - exact_layernorm(x))
        assert err.mean() < 2e-2

    def test_intermediate_values_reported(self, rng):
        d = 128
        x = rng.uniform(-1, 1, size=d)
        macro = IterL2NormMacro(MacroConfig(fmt="fp64", num_steps=25))
        result = macro.normalize(x)
        assert result.mean == pytest.approx(x.mean(), rel=1e-10)
        assert result.norm_squared == pytest.approx(float((x - x.mean()) @ (x - x.mean())), rel=1e-10)
        assert result.scale == pytest.approx(np.sqrt(d) / np.sqrt(result.norm_squared), rel=1e-8)


class TestLatencyBehaviour:
    def test_latency_matches_closed_form_model(self, rng):
        model = LatencyModel()
        for d in (64, 100, 384, 1000, 1024):
            macro = IterL2NormMacro(MacroConfig(fmt="fp32"))
            result = macro.normalize(rng.uniform(-1, 1, size=d))
            assert result.total_cycles == model.total_cycles(d, 5)

    def test_latency_independent_of_format(self, rng):
        """Fig. 5: 'the latency does not rely on the data format'."""
        x = rng.uniform(-1, 1, size=320)
        cycles = {
            fmt: IterL2NormMacro(MacroConfig(fmt=fmt)).normalize(x).total_cycles
            for fmt in ("fp32", "fp16", "bf16")
        }
        assert len(set(cycles.values())) == 1

    def test_latency_in_paper_range(self, rng):
        """116-227 cycles for 64 <= d <= 1024 (within a few cycles)."""
        low = IterL2NormMacro(MacroConfig()).normalize(rng.uniform(-1, 1, 64)).total_cycles
        high = IterL2NormMacro(MacroConfig()).normalize(rng.uniform(-1, 1, 1024)).total_cycles
        assert abs(low - 116) <= 10
        assert abs(high - 227) <= 10

    def test_latency_monotone_in_length(self, rng):
        cycles = [
            IterL2NormMacro(MacroConfig()).normalize(rng.uniform(-1, 1, d)).total_cycles
            for d in (64, 128, 256, 512, 1024)
        ]
        assert cycles == sorted(cycles)

    def test_latency_scales_with_iteration_count(self, rng):
        x = rng.uniform(-1, 1, 128)
        c3 = IterL2NormMacro(MacroConfig(num_steps=3)).normalize(x).total_cycles
        c10 = IterL2NormMacro(MacroConfig(num_steps=10)).normalize(x).total_cycles
        assert c10 - c3 == 7 * 12  # CYCLES_PER_STEP per extra step

    def test_phase_breakdown_sums_to_total(self, rng):
        result = IterL2NormMacro(MacroConfig()).normalize(rng.uniform(-1, 1, 384))
        assert sum(result.phase_cycles.values()) == result.total_cycles
        assert set(result.phase_cycles) == {
            "mean",
            "shift",
            "norm_squared",
            "iteration",
            "output",
            "control",
        }


class TestErrorHandling:
    def test_run_without_load_raises(self):
        with pytest.raises(RuntimeError):
            IterL2NormMacro().run()

    def test_oversized_vector_rejected(self, rng):
        with pytest.raises(ValueError):
            IterL2NormMacro().load(rng.uniform(size=1025))

    def test_empty_and_matrix_inputs_rejected(self, rng):
        with pytest.raises(ValueError):
            IterL2NormMacro().load(np.array([]))
        with pytest.raises(ValueError):
            IterL2NormMacro().load(rng.uniform(size=(2, 8)))

    def test_constant_vector(self):
        result = IterL2NormMacro(MacroConfig(fmt="fp32")).normalize(np.full(64, 3.0))
        np.testing.assert_array_equal(result.output, np.zeros(64))


# -- property-based tests -----------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=256),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_macro_equals_module_for_any_length(d, seed):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=d)
    macro_out = IterL2NormMacro(MacroConfig(fmt="fp32")).normalize(x).output
    module_out = IterL2Norm(d, IterL2NormConfig(num_steps=5, fmt="fp32"))(x)
    np.testing.assert_array_equal(macro_out, module_out)
