"""Arrival processes backing the serving workload generator."""

import numpy as np
import pytest

from repro.macro.traffic import (
    ARRIVAL_PROCESSES,
    BurstyArrivals,
    PoissonArrivals,
    SessionArrivals,
    SteadyArrivals,
    get_arrival_process,
)


class TestRegistry:
    def test_names(self):
        assert set(ARRIVAL_PROCESSES) == {"steady", "poisson", "bursty", "session"}

    def test_factory(self):
        process = get_arrival_process("poisson", rate=5.0)
        assert isinstance(process, PoissonArrivals)
        with pytest.raises(KeyError):
            get_arrival_process("nope", rate=1.0)


class TestSteady:
    def test_exact_spacing(self):
        times = SteadyArrivals(rate=4.0).arrival_times(8, np.random.default_rng(0))
        np.testing.assert_allclose(np.diff(times), 0.25)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            SteadyArrivals(rate=0.0)


class TestPoisson:
    def test_mean_interarrival_near_inverse_rate(self):
        rng = np.random.default_rng(7)
        gaps = PoissonArrivals(rate=10.0).interarrival_times(4000, rng)
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.1)

    def test_seeded_determinism(self):
        a = PoissonArrivals(rate=3.0).arrival_times(50, np.random.default_rng(1))
        b = PoissonArrivals(rate=3.0).arrival_times(50, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestBursty:
    def test_higher_variance_than_poisson(self):
        """The point of the MMPP: same-ish mean, much burstier gaps."""
        rng = np.random.default_rng(0)
        bursty = BurstyArrivals(rate=10.0).interarrival_times(4000, rng)
        poisson = PoissonArrivals(rate=10.0).interarrival_times(
            4000, np.random.default_rng(0)
        )
        cv_bursty = np.std(bursty) / np.mean(bursty)
        cv_poisson = np.std(poisson) / np.mean(poisson)
        assert cv_bursty > cv_poisson

    def test_arrival_times_monotone(self):
        times = BurstyArrivals(rate=5.0).arrival_times(100, np.random.default_rng(2))
        assert np.all(np.diff(times) >= 0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate=1.0, persistence=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=1.0, burst_factor=0.0)


class TestSession:
    def test_turns_cluster_within_sessions(self):
        """Intra-session (think-time) gaps are much shorter than session gaps."""
        rng = np.random.default_rng(0)
        process = SessionArrivals(rate=10.0, session_length=4, think_scale=0.1)
        gaps = process.interarrival_times(4000, rng)
        session_gaps = gaps[::4]
        think_gaps = np.concatenate([gaps[1::4], gaps[2::4], gaps[3::4]])
        assert np.mean(think_gaps) < np.mean(session_gaps) / 5

    def test_factory_accepts_session_kwargs(self):
        process = get_arrival_process("session", rate=2.0, session_length=3)
        assert isinstance(process, SessionArrivals)
        assert process.session_length == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SessionArrivals(rate=1.0, session_length=0)
        with pytest.raises(ValueError):
            SessionArrivals(rate=1.0, think_scale=0.0)


class TestEdgeCases:
    def test_zero_requests(self):
        assert SteadyArrivals(rate=1.0).arrival_times(0, np.random.default_rng(0)).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SteadyArrivals(rate=1.0).arrival_times(-1, np.random.default_rng(0))
