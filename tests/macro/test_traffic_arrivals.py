"""Arrival processes backing the serving workload generator."""

import numpy as np
import pytest

from repro.macro.traffic import (
    ARRIVAL_PROCESSES,
    BurstyArrivals,
    PoissonArrivals,
    SessionArrivals,
    SteadyArrivals,
    WaveArrivals,
    get_arrival_process,
)


class TestRegistry:
    def test_names(self):
        assert set(ARRIVAL_PROCESSES) == {
            "steady", "poisson", "bursty", "session", "wave",
        }

    def test_factory(self):
        process = get_arrival_process("poisson", rate=5.0)
        assert isinstance(process, PoissonArrivals)
        with pytest.raises(KeyError):
            get_arrival_process("nope", rate=1.0)


class TestSteady:
    def test_exact_spacing(self):
        times = SteadyArrivals(rate=4.0).arrival_times(8, np.random.default_rng(0))
        np.testing.assert_allclose(np.diff(times), 0.25)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            SteadyArrivals(rate=0.0)


class TestPoisson:
    def test_mean_interarrival_near_inverse_rate(self):
        rng = np.random.default_rng(7)
        gaps = PoissonArrivals(rate=10.0).interarrival_times(4000, rng)
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.1)

    def test_seeded_determinism(self):
        a = PoissonArrivals(rate=3.0).arrival_times(50, np.random.default_rng(1))
        b = PoissonArrivals(rate=3.0).arrival_times(50, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestBursty:
    def test_higher_variance_than_poisson(self):
        """The point of the MMPP: same-ish mean, much burstier gaps."""
        rng = np.random.default_rng(0)
        bursty = BurstyArrivals(rate=10.0).interarrival_times(4000, rng)
        poisson = PoissonArrivals(rate=10.0).interarrival_times(
            4000, np.random.default_rng(0)
        )
        cv_bursty = np.std(bursty) / np.mean(bursty)
        cv_poisson = np.std(poisson) / np.mean(poisson)
        assert cv_bursty > cv_poisson

    def test_arrival_times_monotone(self):
        times = BurstyArrivals(rate=5.0).arrival_times(100, np.random.default_rng(2))
        assert np.all(np.diff(times) >= 0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate=1.0, persistence=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=1.0, burst_factor=0.0)


class TestSession:
    def test_turns_cluster_within_sessions(self):
        """Intra-session (think-time) gaps are much shorter than session gaps."""
        rng = np.random.default_rng(0)
        process = SessionArrivals(rate=10.0, session_length=4, think_scale=0.1)
        gaps = process.interarrival_times(4000, rng)
        session_gaps = gaps[::4]
        think_gaps = np.concatenate([gaps[1::4], gaps[2::4], gaps[3::4]])
        assert np.mean(think_gaps) < np.mean(session_gaps) / 5

    def test_factory_accepts_session_kwargs(self):
        process = get_arrival_process("session", rate=2.0, session_length=3)
        assert isinstance(process, SessionArrivals)
        assert process.session_length == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SessionArrivals(rate=1.0, session_length=0)
        with pytest.raises(ValueError):
            SessionArrivals(rate=1.0, think_scale=0.0)


class TestWave:
    def test_in_wave_gaps_much_shorter_than_wave_gaps(self):
        """A wave lands nearly together; the next wave is a long gap away."""
        rng = np.random.default_rng(0)
        process = WaveArrivals(rate=10.0, wave_size=4, spread=0.02)
        gaps = process.interarrival_times(4000, rng)
        wave_gaps = gaps[::4]
        in_wave = np.concatenate([gaps[1::4], gaps[2::4], gaps[3::4]])
        assert np.mean(in_wave) < np.mean(wave_gaps) / 10

    def test_wave_sizes_override_tiles_the_pattern(self):
        """Per-stage sizes repeat until the request count is covered."""
        rng = np.random.default_rng(3)
        process = WaveArrivals(rate=10.0, spread=0.001, wave_sizes=(3, 1))
        gaps = process.interarrival_times(8, rng)
        assert gaps.size == 8
        # Wave heads sit at offsets 0, 3, 4, 7 (sizes 3, 1, 3, 1); the
        # two requests following each size-3 head are in-wave stragglers.
        heads = gaps[[0, 3, 4, 7]]
        in_wave = gaps[[1, 2, 5, 6]]
        assert in_wave.max() < heads.min()

    def test_seeded_determinism_and_monotone_times(self):
        a = WaveArrivals(rate=5.0, wave_size=3).arrival_times(
            30, np.random.default_rng(1)
        )
        b = WaveArrivals(rate=5.0, wave_size=3).arrival_times(
            30, np.random.default_rng(1)
        )
        np.testing.assert_array_equal(a, b)
        assert np.all(np.diff(a) >= 0)

    def test_factory_accepts_wave_kwargs(self):
        process = get_arrival_process("wave", rate=2.0, wave_sizes=(4, 2, 1))
        assert isinstance(process, WaveArrivals)
        assert process.wave_sizes == (4, 2, 1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WaveArrivals(rate=0.0)
        with pytest.raises(ValueError):
            WaveArrivals(rate=1.0, wave_size=0)
        with pytest.raises(ValueError):
            WaveArrivals(rate=1.0, spread=0.0)
        with pytest.raises(ValueError):
            WaveArrivals(rate=1.0, wave_sizes=(2, 0))


class TestSessionScaling:
    """The cluster-scale discipline: per-session gaps from spawned RNGs."""

    def test_prefix_stable_under_session_count(self):
        """Scaling 5 sessions to 2000 leaves the first 5 bit-identical:
        session k's draws depend only on (seed, k), never on the total."""
        process = SessionArrivals(rate=10.0, session_length=4)
        small = process.interarrival_times(4 * 5, np.random.default_rng(42))
        large = process.interarrival_times(4 * 2000, np.random.default_rng(42))
        np.testing.assert_array_equal(small, large[: small.size])

    def test_parent_stream_untouched_by_spawning(self):
        """Drawing arrivals must not advance the caller's generator — the
        workload generator draws prompts from the same stream afterwards."""
        process = SessionArrivals(rate=10.0, session_length=4)
        used = np.random.default_rng(9)
        process.interarrival_times(12, used)
        fresh = np.random.default_rng(9)
        np.testing.assert_array_equal(used.normal(size=4), fresh.normal(size=4))

    def test_partial_trailing_session(self):
        """A request count that is not a session multiple still fills n."""
        process = SessionArrivals(rate=10.0, session_length=4)
        gaps = process.interarrival_times(10, np.random.default_rng(0))
        assert gaps.size == 10
        assert np.all(gaps >= 0)

    def test_tens_of_thousands_of_sessions(self):
        """The scale the cluster benchmark needs: 10k sessions, instantly."""
        process = SessionArrivals(rate=100.0, session_length=3)
        gaps = process.interarrival_times(3 * 10_000, np.random.default_rng(1))
        assert gaps.size == 30_000
        times = np.cumsum(gaps)
        assert np.all(np.diff(times) >= 0)
        # Mean rate stays near the configured rate at scale.
        assert times[-1] / gaps.size == pytest.approx(1 / 100.0, rel=0.25)


class TestEdgeCases:
    def test_zero_requests(self):
        assert SteadyArrivals(rate=1.0).arrival_times(0, np.random.default_rng(0)).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SteadyArrivals(rate=1.0).arrival_times(-1, np.random.default_rng(0))
