"""Tests for the Add/Mul blocks and the phase controllers."""

import numpy as np
import pytest

from repro.fpformats.arithmetic import FormatArithmetic
from repro.macro.blocks import AddBlock, MulBlock
from repro.macro.buffers import InputBuffer, ParamBuffer, PartialSumBuffer
from repro.macro.controllers import (
    IterationController,
    MeanController,
    NormController,
    OutputController,
    ShiftController,
)


class TestAddBlock:
    def test_reduce_chunk_matches_tree_sum(self, rng):
        add = AddBlock("fp32")
        chunk = rng.uniform(-1, 1, size=64)
        arith = FormatArithmetic("fp32", tree_fan_in=8)
        assert add.reduce_chunk(chunk) == pytest.approx(arith.tree_sum(chunk), abs=0)

    def test_reduce_partial_chunk(self, rng):
        add = AddBlock("fp64")
        chunk = rng.uniform(-1, 1, size=40)
        assert add.reduce_chunk(chunk) == pytest.approx(chunk.sum(), rel=1e-12)

    def test_reduce_rejects_oversized(self, rng):
        add = AddBlock("fp32")
        with pytest.raises(ValueError):
            add.reduce_chunk(rng.uniform(size=65))
        with pytest.raises(ValueError):
            add.reduce_partials(rng.uniform(size=65))

    def test_elementwise_ops(self, rng):
        add = AddBlock("fp64")
        a, b = rng.normal(size=64), rng.normal(size=64)
        np.testing.assert_array_equal(add.elementwise_add(a, b), a + b)
        np.testing.assert_array_equal(add.elementwise_sub(a, b), a - b)
        assert add.scalar_add(1.5, 2.5) == 4.0
        assert add.scalar_sub(1.5, 2.5) == -1.0

    def test_latency_constant(self):
        assert AddBlock("fp32").latency == 2
        assert MulBlock("bf16").latency == 2

    def test_invocation_counter(self, rng):
        add = AddBlock("fp32")
        add.reduce_chunk(rng.uniform(size=64))
        add.scalar_add(1.0, 2.0)
        assert add.invocations == 2


class TestMulBlock:
    def test_elementwise(self, rng):
        mul = MulBlock("fp64")
        a, b = rng.normal(size=64), rng.normal(size=64)
        np.testing.assert_array_equal(mul.elementwise_mul(a, b), a * b)

    def test_scalar(self):
        mul = MulBlock("bf16")
        assert mul.scalar_mul(1.5, 2.0) == 3.0

    def test_lane_limit(self, rng):
        mul = MulBlock("fp32")
        with pytest.raises(ValueError):
            mul.elementwise_mul(rng.uniform(size=65), 2.0)

    def test_results_quantized(self):
        mul = MulBlock("bf16")
        result = mul.scalar_mul(1.0 + 2.0**-7, 1.0 + 2.0**-7)
        from repro.fpformats.quantize import quantize

        assert result == quantize(result, "bf16")


def _loaded_macro_parts(rng, d=192, fmt="fp64"):
    buffer = InputBuffer(fmt)
    x = rng.uniform(-1, 1, size=d)
    buffer.load_vector(x)
    add, mul = AddBlock(fmt), MulBlock(fmt)
    psum = PartialSumBuffer(fmt, capacity=16)
    return buffer, add, mul, psum, x


class TestControllers:
    def test_mean_controller(self, rng):
        buffer, add, mul, psum, x = _loaded_macro_parts(rng)
        result = MeanController(add, mul, psum).execute(buffer, x.size)
        assert result.value == pytest.approx(x.mean(), rel=1e-10)
        assert result.cycles == int(np.ceil(x.size / 64)) + 6

    def test_shift_controller(self, rng):
        buffer, add, mul, psum, x = _loaded_macro_parts(rng)
        mean = x.mean()
        result = ShiftController(add).execute(buffer, x.size, mean)
        np.testing.assert_allclose(buffer.read_vector(x.size), x - mean, rtol=1e-12)
        assert result.cycles == 2 * int(np.ceil(x.size / 64)) + 2

    def test_shift_preserves_tail_padding(self, rng):
        """Mean-shifting a non-multiple-of-64 vector must not touch the padding."""
        buffer, add, mul, psum, x = _loaded_macro_parts(rng, d=100)
        ShiftController(add).execute(buffer, 100, x.mean())
        tail = buffer.read_chunk(1)
        np.testing.assert_array_equal(tail[36:], np.zeros(28))

    def test_norm_controller(self, rng):
        buffer, add, mul, psum, x = _loaded_macro_parts(rng)
        result = NormController(add, mul, psum).execute(buffer, x.size)
        assert result.value == pytest.approx(float(x @ x), rel=1e-10)

    def test_iteration_controller_initial_values(self):
        ctrl = IterationController(AddBlock("fp32"), MulBlock("fp32"), "fp32")
        a0, lam = ctrl.initial_values(8.0)
        assert a0 == pytest.approx(0.25, rel=1e-6)
        assert lam == pytest.approx(0.345 / 8.0, rel=1e-6)

    def test_iteration_controller_converges(self):
        ctrl = IterationController(AddBlock("fp64"), MulBlock("fp64"), "fp64")
        d, m = 64, 21.7
        result = ctrl.execute(m, d, num_steps=20)
        assert result.value == pytest.approx(np.sqrt(d) / np.sqrt(m), rel=1e-6)
        assert result.cycles == 4 + 20 * 12 + 2

    def test_iteration_controller_zero_m(self):
        ctrl = IterationController(AddBlock("fp32"), MulBlock("fp32"), "fp32")
        result = ctrl.execute(0.0, 64, num_steps=5)
        assert result.value == 0.0

    def test_output_controller(self, rng):
        buffer, add, mul, psum, x = _loaded_macro_parts(rng)
        d = x.size
        mean = x.mean()
        ShiftController(add).execute(buffer, d, mean)
        gamma_buf, beta_buf = ParamBuffer("fp64", 1024), ParamBuffer("fp64", 1024)
        gamma, beta = rng.uniform(0.5, 1.5, d), rng.normal(size=d)
        gamma_buf.load(gamma)
        beta_buf.load(beta)
        y = x - mean
        scale = np.sqrt(d) / np.linalg.norm(y)
        result = OutputController(add, mul).execute(buffer, gamma_buf, beta_buf, d, scale)
        expected = gamma * (y * scale) + beta
        np.testing.assert_allclose(result.value, expected, rtol=1e-10)
        assert result.cycles == 3 * int(np.ceil(d / 64)) + 6
