"""Tests for the latency, memory, area/power, and comparison models."""

import numpy as np
import pytest

from repro.macro.area_power import (
    AreaPowerModel,
    adder_area_units,
    multiplier_area_units,
    synthesis_report,
)
from repro.macro.comparison import COMPARISON_TABLE, comparison_table, our_records
from repro.macro.latency import LatencyModel, latency_cycles
from repro.macro.memory import memory_report
from repro.fpformats.spec import BFLOAT16, FLOAT16, FLOAT32


class TestLatencyModel:
    def test_chunk_count(self):
        model = LatencyModel()
        assert model.chunks(64) == 1
        assert model.chunks(65) == 2
        assert model.chunks(1024) == 16

    def test_paper_range(self):
        """Fig. 5 reports 116-227 cycles over 64 <= d <= 1024."""
        assert abs(latency_cycles(64) - 116) <= 10
        assert abs(latency_cycles(1024) - 227) <= 10

    def test_affine_in_chunk_count(self):
        """Latency is an affine function of ceil(d/64)."""
        model = LatencyModel()
        cycles = [model.total_cycles(64 * c) for c in range(1, 17)]
        diffs = set(np.diff(cycles))
        assert len(diffs) == 1  # constant increment per extra chunk

    def test_same_latency_within_chunk(self):
        model = LatencyModel()
        assert model.total_cycles(65) == model.total_cycles(128)
        assert model.total_cycles(1) == model.total_cycles(64)

    def test_breakdown_sums_to_total(self):
        model = LatencyModel()
        breakdown = model.breakdown(384)
        assert sum(breakdown.values()) == model.total_cycles(384)

    def test_iteration_steps_term(self):
        model = LatencyModel()
        assert model.total_cycles(64, num_steps=6) - model.total_cycles(64, num_steps=5) == 12

    def test_sweep(self):
        model = LatencyModel()
        sweep = model.sweep([64, 128])
        assert sweep == [(64, model.total_cycles(64)), (128, model.total_cycles(128))]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            LatencyModel().chunks(0)


class TestMemoryReport:
    def test_fp32_totals_match_paper(self):
        report = memory_report("fp32")
        assert report.input_buffer_kib == 32.0
        assert report.total_kib == 96.5

    def test_fp16_bf16_half_of_fp32(self):
        fp32 = memory_report("fp32").total_kib
        for fmt in ("fp16", "bf16"):
            assert memory_report(fmt).total_kib == pytest.approx(fp32 / 2.0)
            assert memory_report(fmt).total_kib == pytest.approx(48.25)

    def test_partial_sum_sizes(self):
        assert memory_report("fp32").partial_sum_kib == 0.5
        assert memory_report("fp16").partial_sum_kib == 0.25

    def test_total_bits(self):
        assert memory_report("fp32").total_bits == int(96.5 * 1024)

    def test_custom_geometry(self):
        report = memory_report("fp32", max_vector_length=512, partial_sum_entries=8)
        assert report.input_buffer_kib == 16.0

    def test_as_dict(self):
        d = memory_report("bf16").as_dict()
        assert d["total_kib"] == pytest.approx(48.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_report("fp32", max_vector_length=0)
        with pytest.raises(ValueError):
            memory_report("fp32", partial_sum_entries=0)


class TestAreaPowerModel:
    def test_datapath_complexity_ordering(self):
        """FP32 > FP16 > BF16 in logic complexity (Sec. V-C)."""
        assert (
            multiplier_area_units(FLOAT32)
            > multiplier_area_units(FLOAT16)
            > multiplier_area_units(BFLOAT16)
        )
        assert adder_area_units(FLOAT32) > adder_area_units(FLOAT16) > adder_area_units(BFLOAT16)

    def test_table2_totals_close_to_paper(self):
        paper = {
            "fp32": (269.3, 2.4, 22.9),
            "fp16": (100.1, 1.1, 8.4),
            "bf16": (87.0, 1.0, 7.3),
        }
        for report in synthesis_report():
            cells_k, area, power = paper[report.fmt]
            assert report.cell_count / 1e3 == pytest.approx(cells_k, rel=0.02)
            assert report.area_mm2 == pytest.approx(area, rel=0.08)
            assert report.power_mw == pytest.approx(power, rel=0.02)

    def test_area_without_datapath_close_to_paper(self):
        paper = {"fp32": 1.7, "fp16": 0.8, "bf16": 0.8}
        for report in synthesis_report():
            assert report.area_without_datapath_mm2 == pytest.approx(
                paper[report.fmt], rel=0.12
            )

    def test_memory_is_largest_area_component(self):
        """Fig. 6a-c: the buffers dominate the macro area for every format."""
        for report in synthesis_report():
            breakdown = report.area_breakdown_mm2
            assert breakdown["memory"] == max(breakdown.values())

    def test_datapath_dominates_power(self):
        """Fig. 6d-f: multipliers + adders dominate the power for every format."""
        for report in synthesis_report():
            breakdown = report.power_breakdown_mw
            datapath = breakdown["mul_block"] + breakdown["add_block"]
            assert datapath > breakdown["memory"]
            assert datapath > breakdown["control"]
            assert datapath > 0.5 * report.power_mw

    def test_fractions_sum_to_one(self):
        for report in synthesis_report():
            assert sum(report.area_fractions().values()) == pytest.approx(1.0)
            assert sum(report.power_fractions().values()) == pytest.approx(1.0)

    def test_fp32_roughly_twice_fp16(self):
        reports = {r.fmt: r for r in synthesis_report()}
        assert reports["fp32"].area_mm2 / reports["fp16"].area_mm2 == pytest.approx(2.2, rel=0.15)
        assert reports["fp32"].power_mw / reports["fp16"].power_mw == pytest.approx(2.7, rel=0.15)

    def test_bf16_smaller_than_fp16(self):
        reports = {r.fmt: r for r in synthesis_report()}
        assert reports["bf16"].cell_count < reports["fp16"].cell_count
        assert reports["bf16"].power_mw < reports["fp16"].power_mw

    def test_as_row_keys(self):
        row = synthesis_report()[0].as_row()
        assert set(row) == {
            "format",
            "memory_kib",
            "cells_k",
            "area_mm2",
            "area_wo_addmul_mm2",
            "power_mw",
        }

    def test_custom_datapath_scales_area(self):
        small = AreaPowerModel(num_multipliers=16, num_adders=16).report("fp32")
        large = AreaPowerModel(num_multipliers=128, num_adders=128).report("fp32")
        assert large.area_mm2 > small.area_mm2
        assert large.cell_count > small.cell_count

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaPowerModel(num_multipliers=0)


class TestComparisonTable:
    def test_literature_rows_present(self):
        names = {r.name for r in COMPARISON_TABLE}
        assert names == {"SwiftTron", "NN-LUT", "PIM-GPT", "SOLE"}

    def test_swifttron_numbers(self):
        swifttron = next(r for r in COMPARISON_TABLE if r.name == "SwiftTron")
        assert swifttron.area_mm2 == 68.3
        assert swifttron.power_w == 2.0
        assert not swifttron.division_free

    def test_ours_rows_generated(self):
        ours = our_records()
        assert len(ours) == 3
        for record in ours:
            assert record.division_free
            assert record.clock_mhz == 100.0
            assert record.area_mm2 is not None and record.area_mm2 < 3.0

    def test_iterl2norm_macro_much_smaller_than_swifttron(self):
        """The headline Table III contrast: mm^2-scale vs 68.3 mm^2, mW vs 2 W."""
        swifttron = next(r for r in COMPARISON_TABLE if r.name == "SwiftTron")
        for record in our_records():
            assert record.area_mm2 < swifttron.area_mm2 / 20
            assert record.power_w < swifttron.power_w / 50

    def test_full_table_rows(self):
        assert len(comparison_table(include_ours=True)) == 7
        assert len(comparison_table(include_ours=False)) == 4

    def test_as_row(self):
        row = COMPARISON_TABLE[0].as_row()
        assert row["implementation"] == "SwiftTron"
        assert "division" in row["operations"]
