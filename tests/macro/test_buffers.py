"""Tests for the macro's on-chip buffers and the Fig. 1b data organization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.macro.buffers import (
    CHUNK_ELEMS,
    MAX_VECTOR_LENGTH,
    InputBuffer,
    ParamBuffer,
    PartialSumBuffer,
)


class TestGeometryConstants:
    def test_paper_geometry(self):
        assert CHUNK_ELEMS == 64
        assert MAX_VECTOR_LENGTH == 1024


class TestInputBuffer:
    def test_capacity(self):
        buffer = InputBuffer("fp32")
        assert buffer.capacity == 1024
        assert buffer.chunk_elems == 64

    def test_fig1b_striping(self):
        """Row i of bank b stores x[wb*(b + nb*i) : wb*(b + nb*i + 1)]."""
        buffer = InputBuffer("fp32")
        # Element index 0 -> bank 0, row 0, col 0.
        assert buffer.element_address(0) == (0, 0, 0)
        # Element 8 starts bank 1's first row.
        assert buffer.element_address(8) == (1, 0, 0)
        # Element 64 wraps to bank 0, row 1.
        assert buffer.element_address(64) == (0, 1, 0)
        # Element wb*(b + nb*i) with b=3, i=2 -> bank 3, row 2.
        assert buffer.element_address(8 * (3 + 8 * 2)) == (3, 2, 0)

    def test_roundtrip(self, rng):
        buffer = InputBuffer("fp32")
        x = rng.uniform(-1, 1, size=384)
        buffer.load_vector(x)
        read_back = buffer.read_vector(384)
        np.testing.assert_array_equal(read_back, np.asarray(x, dtype=np.float32))

    def test_chunk_read_matches_slices(self, rng):
        buffer = InputBuffer("fp64")
        x = rng.uniform(-1, 1, size=256)
        buffer.load_vector(x)
        for c in range(4):
            np.testing.assert_array_equal(buffer.read_chunk(c), x[c * 64 : (c + 1) * 64])

    def test_partial_tail_chunk_zero_padded(self, rng):
        buffer = InputBuffer("fp64")
        x = rng.uniform(-1, 1, size=100)
        buffer.load_vector(x)
        chunk = buffer.read_chunk(1, length=36)
        np.testing.assert_array_equal(chunk[:36], x[64:100])
        np.testing.assert_array_equal(chunk[36:], np.zeros(28))

    def test_write_chunk(self, rng):
        buffer = InputBuffer("fp64")
        x = rng.uniform(-1, 1, size=128)
        buffer.load_vector(x)
        new_chunk = rng.uniform(-1, 1, size=64)
        buffer.write_chunk(1, new_chunk)
        np.testing.assert_array_equal(buffer.read_chunk(1), new_chunk)
        np.testing.assert_array_equal(buffer.read_chunk(0), x[:64])

    def test_values_quantized_to_format(self):
        buffer = InputBuffer("bf16")
        buffer.load_vector(np.array([1.0 + 2.0**-12]))
        assert buffer.read_chunk(0)[0] == 1.0

    def test_capacity_enforced(self, rng):
        buffer = InputBuffer("fp32")
        with pytest.raises(ValueError):
            buffer.load_vector(rng.uniform(size=1025))

    def test_offset_rows(self, rng):
        buffer = InputBuffer("fp64")
        a = rng.uniform(-1, 1, size=64)
        b = rng.uniform(-1, 1, size=64)
        buffer.load_vector(a, offset_rows=0)
        buffer.load_vector(b, offset_rows=1)
        np.testing.assert_array_equal(buffer.read_vector(64, offset_rows=1), b)
        np.testing.assert_array_equal(buffer.read_vector(64, offset_rows=0), a)

    def test_invalid_addresses(self, rng):
        buffer = InputBuffer("fp32")
        with pytest.raises(IndexError):
            buffer.element_address(1024)
        with pytest.raises(IndexError):
            buffer.read_chunk(16)
        with pytest.raises(ValueError):
            buffer.write_chunk(0, np.zeros(10))
        with pytest.raises(ValueError):
            buffer.load_vector(rng.uniform(size=(2, 4)))

    def test_access_counters(self, rng):
        buffer = InputBuffer("fp32")
        buffer.load_vector(rng.uniform(size=128))
        buffer.read_chunk(0)
        buffer.read_chunk(1)
        assert buffer.reads == 2
        assert buffer.writes == 2  # two chunk rows written by the load

    def test_custom_geometry(self):
        buffer = InputBuffer("fp16", num_banks=4, bank_rows=2, bank_width=4)
        assert buffer.capacity == 32
        assert buffer.chunk_elems == 16
        with pytest.raises(ValueError):
            InputBuffer("fp16", num_banks=0)


class TestParamBuffer:
    def test_load_and_read(self, rng):
        buffer = ParamBuffer("fp64", capacity=256)
        gamma = rng.uniform(0.5, 1.5, size=200)
        buffer.load(gamma)
        np.testing.assert_array_equal(buffer.read_chunk(0), gamma[:64])
        chunk3 = buffer.read_chunk(3)
        np.testing.assert_array_equal(chunk3[:8], gamma[192:200])
        np.testing.assert_array_equal(chunk3[8:], np.zeros(56))

    def test_capacity_enforced(self, rng):
        buffer = ParamBuffer("fp32", capacity=64)
        with pytest.raises(ValueError):
            buffer.load(rng.uniform(size=65))
        with pytest.raises(IndexError):
            buffer.read_chunk(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParamBuffer("fp32", capacity=0)
        with pytest.raises(ValueError):
            ParamBuffer("fp32").load(np.ones((2, 2)))


class TestPartialSumBuffer:
    def test_push_and_drain(self):
        buffer = PartialSumBuffer("fp64", capacity=4)
        for v in (1.0, 2.0, 3.0):
            buffer.push(v)
        assert len(buffer) == 3
        np.testing.assert_array_equal(buffer.drain(), [1.0, 2.0, 3.0])
        assert len(buffer) == 0

    def test_overflow(self):
        buffer = PartialSumBuffer("fp32", capacity=2)
        buffer.push(1.0)
        buffer.push(2.0)
        with pytest.raises(OverflowError):
            buffer.push(3.0)

    def test_quantizes_entries(self):
        buffer = PartialSumBuffer("bf16", capacity=2)
        buffer.push(1.0 + 2.0**-12)
        assert buffer.drain()[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PartialSumBuffer("fp32", capacity=0)


# -- property-based tests -----------------------------------------------------------


@given(st.integers(min_value=0, max_value=1023))
@settings(max_examples=200, deadline=None)
def test_striping_is_a_bijection(index):
    """Every flat index maps to a unique (bank, row, col) and back."""
    buffer = InputBuffer("fp32")
    bank, row, col = buffer.element_address(index)
    assert 0 <= bank < 8 and 0 <= row < 16 and 0 <= col < 8
    reconstructed = 8 * (bank + 8 * row) + col
    assert reconstructed == index


@given(st.integers(min_value=1, max_value=1024), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_load_read_roundtrip_any_length(length, seed):
    rng = np.random.default_rng(seed)
    buffer = InputBuffer("fp64")
    x = rng.uniform(-1, 1, size=length)
    buffer.load_vector(x)
    np.testing.assert_array_equal(buffer.read_vector(length), x)
