"""Tests for the parallel cache-aware experiment engine."""

import json

import numpy as np
import pytest

from repro.engine import Job, ResultCache, code_fingerprint, run_jobs
from repro.engine.cache import _NumpyJSONEncoder
from repro.engine.job import engine_job
from repro.experiments import fig3, fig4, fig5, table2, table4


def tiny_fig3_job(seed=0):
    return fig3.job(lengths=(64,), formats=("fp32",), trials=5, seed=seed)


def tiny_fig4_job(seed=0):
    return fig4.job(length=64, formats=("fp32",), step_counts=(1, 3), trials=5, seed=seed)


class TestJob:
    def test_target_resolution(self):
        job = tiny_fig3_job()
        assert job.resolve() is fig3.run

    def test_bad_target_format_rejected(self):
        with pytest.raises(ValueError):
            Job(name="x", target="no.colon.here", params={})

    def test_missing_attribute_rejected(self):
        job = Job(name="x", target="repro.experiments.fig3:not_a_function")
        with pytest.raises(AttributeError):
            job.resolve()

    def test_non_serializable_params_rejected(self):
        with pytest.raises(TypeError):
            Job(name="x", target="a:b", params={"f": object()})

    def test_seeded_job_passes_seed(self):
        job = tiny_fig3_job(seed=7)
        assert job.kwargs()["seed"] == 7

    def test_unseeded_job_omits_seed(self):
        job = table2.job()
        assert "seed" not in job.kwargs()

    def test_hash_is_stable_and_discriminating(self):
        code = "abc"
        a = tiny_fig3_job().config_hash(code)
        assert a == tiny_fig3_job().config_hash(code)
        # Any config change invalidates the hash.
        assert a != tiny_fig3_job(seed=1).config_hash(code)
        assert a != fig3.job(lengths=(64,), formats=("fp32",), trials=6).config_hash(code)
        assert a != tiny_fig3_job().config_hash("other-code-version")

    def test_hash_ignores_param_ordering_and_numpy_types(self):
        code = "abc"
        j1 = Job(name="x", target="a:b", params={"p": 1, "q": [2.0]})
        j2 = Job(name="x", target="a:b", params={"q": (np.float64(2.0),), "p": np.int64(1)})
        assert j1.config_hash(code) == j2.config_hash(code)

    def test_engine_job_coerces_tuples_to_lists(self):
        """Factory params hash identically to their cached-JSON list form."""
        via_helper = engine_job(
            "x", "a:b", seed=2, lengths=(64, 128), trials=np.int64(5)
        )
        direct = Job(
            name="x", target="a:b", params={"lengths": [64, 128], "trials": 5}, seed=2
        )
        assert via_helper.params["lengths"] == [64, 128]
        assert via_helper.config_hash("c") == direct.config_hash("c")

    def test_code_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # valid hex


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"rows": [{"a": np.float64(1.5)}], "text": "t"})
        payload = cache.get("deadbeef")
        assert payload == {"rows": [{"a": 1.5}], "text": "t"}

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"rows": [], "text": ""})
        cache.path_for("k").write_text("{ not json")
        assert cache.get("k") is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"rows": [], "text": ""})
        cache.put("k2", {"rows": [], "text": ""})
        assert cache.clear() == 2
        assert cache.get("k1") is None

    def test_numpy_encoder_handles_arrays_and_scalars(self):
        blob = json.dumps(
            {"i": np.int64(3), "f": np.float64(0.5), "b": np.bool_(True), "a": np.arange(3)},
            cls=_NumpyJSONEncoder,
        )
        assert json.loads(blob) == {"i": 3, "f": 0.5, "b": True, "a": [0, 1, 2]}


class TestScheduler:
    def test_cache_hit_skips_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_fig3_job()
        first = run_jobs([job], cache=cache)[0]
        assert not first.cached
        second = run_jobs([job], cache=cache)[0]
        assert second.cached
        assert second.text == first.text
        assert second.key == first.key

    def test_changed_params_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([tiny_fig3_job(seed=0)], cache=cache)
        outcome = run_jobs([tiny_fig3_job(seed=1)], cache=cache)[0]
        assert not outcome.cached

    def test_no_cache_forces_recompute_but_stores(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_fig3_job()
        run_jobs([job], cache=cache)
        outcome = run_jobs([job], cache=cache, no_cache=True)[0]
        assert not outcome.cached
        # The recomputed result was re-stored and is a hit afterwards.
        assert run_jobs([job], cache=cache)[0].cached

    def test_parallel_equals_serial(self, tmp_path):
        jobs = [tiny_fig3_job(), tiny_fig4_job(), fig5.job(cross_check_simulator=False)]
        serial = run_jobs(jobs, max_workers=1)
        parallel = run_jobs(jobs, max_workers=2)
        assert [o.job.name for o in serial] == [o.job.name for o in parallel]
        for s, p in zip(serial, parallel):
            assert s.text == p.text
            assert s.rows == p.rows

    def test_outcomes_preserve_input_order(self):
        jobs = [fig5.job(cross_check_simulator=False), tiny_fig3_job()]
        outcomes = run_jobs(jobs, max_workers=2)
        assert [o.job.name for o in outcomes] == ["Fig. 5", "Fig. 3"]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            run_jobs([], max_workers=0)

    def test_cached_rows_round_trip_numpy_rows(self, tmp_path):
        """Rows survive the JSON round-trip with exact float values."""
        cache = ResultCache(tmp_path)
        job = tiny_fig4_job()
        fresh = run_jobs([job], cache=cache)[0]
        replay = run_jobs([job], cache=cache)[0]
        assert replay.cached
        for fresh_row, cached_row in zip(fresh.rows, replay.rows):
            for key, value in fresh_row.items():
                assert cached_row[key] == value


class TestTable4Cells:
    def test_cell_job_matches_direct_run(self):
        """A cell job (post JSON-style params) reproduces table4.run rows."""
        from repro.eval.perplexity import LLMEvalConfig

        config = LLMEvalConfig(
            tasks=("wikitext2-sim",),
            models=("opt-125m-sim",),
            formats=("fp32",),
            step_counts=(3,),
            train_steps=5,
            seq_len=16,
            eval_windows=2,
        )
        direct_rows, _ = table4.run(config)
        (job,) = table4.jobs(config)
        # Simulate the cache round-trip: params become plain JSON values.
        params = json.loads(json.dumps(job.params, cls=_NumpyJSONEncoder))
        rows, text = table4.run_cell_job(seed=job.seed, **params)
        assert rows == direct_rows
        merged_rows, merged_text = table4.merge_cell_rows([rows])
        assert merged_rows == rows
        assert "Table IV" in merged_text
