"""Shared fixtures for the IterL2Norm reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_vector(rng: np.random.Generator) -> np.ndarray:
    """A 384-long uniform(-1, 1) vector (the paper's inset length)."""
    return rng.uniform(-1.0, 1.0, size=384)


@pytest.fixture
def uniform_batch(rng: np.random.Generator) -> np.ndarray:
    """A small batch of uniform(-1, 1) vectors of length 128."""
    return rng.uniform(-1.0, 1.0, size=(16, 128))


@pytest.fixture(params=["fp32", "fp16", "bf16"])
def paper_format(request) -> str:
    """Parametrized fixture over the three formats the paper evaluates."""
    return request.param
