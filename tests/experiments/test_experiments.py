"""Smoke and shape tests for the per-table/figure experiment drivers.

These run each driver at reduced trial counts and assert the qualitative
claims the paper makes about each table/figure — the "shape" the
reproduction is expected to preserve (see EXPERIMENTS.md).
"""

import pytest

from repro.eval.perplexity import LLMEvalConfig
from repro.experiments import fig3, fig4, fig5, fig6, table1, table2, table3, table4


class TestFig3:
    def test_rows_and_bands(self):
        rows, text = fig3.run(lengths=(64, 256), formats=("fp32", "bf16"), trials=30)
        assert len(rows) == 4
        assert "Fig. 3" in text
        fp32_rows = [r for r in rows if r["format"] == "fp32"]
        bf16_rows = [r for r in rows if r["format"] == "bf16"]
        # FP32 errors sit well below BF16 errors (Fig. 3a vs 3c).
        assert max(r["mean_err"] for r in fp32_rows) < min(r["mean_err"] for r in bf16_rows)
        # All errors are in sane bands.
        assert all(r["mean_err"] < 0.05 for r in rows)


class TestTable1:
    def test_comparison_shape(self):
        rows, text = table1.run(lengths=(768, 2048), formats=("fp32",), trials=30)
        assert len(rows) == 2
        assert "Table I" in text
        for row in rows:
            assert row["winner"] in ("iterl2norm", "fisr")
            assert row["iterl2norm_max"] >= row["iterl2norm_mean"]

    def test_iterl2norm_wins_majority_fp32(self):
        """The paper's headline: IterL2Norm beats FISR in most FP32 cases."""
        rows, _ = table1.run(
            lengths=(768, 1024, 2048, 2560, 4096), formats=("fp32",), trials=60
        )
        wins = sum(1 for r in rows if r["winner"] == "iterl2norm")
        assert wins >= 3


class TestFig4:
    def test_convergence_shape(self):
        rows, text = fig4.run(
            length=256, formats=("fp32", "bf16"), step_counts=(1, 3, 5, 8), trials=30
        )
        assert "Fig. 4" in text
        fp32 = [r["mean_err"] for r in rows if r["format"] == "fp32"]
        bf16 = [r["mean_err"] for r in rows if r["format"] == "bf16"]
        # Error decreases with steps for fp32 and saturates for bf16.
        assert fp32[0] > fp32[-1]
        assert bf16[-1] == pytest.approx(bf16[-2], rel=0.5)
        # The bf16 floor sits above the fp32 floor.
        assert bf16[-1] > fp32[-1]


class TestFig5:
    def test_latency_series(self):
        rows, text = fig5.run(cross_check_simulator=True)
        assert len(rows) == 16
        cycles = [r["cycles"] for r in rows]
        assert cycles == sorted(cycles)
        assert abs(cycles[0] - 116) <= 10 and abs(cycles[-1] - 227) <= 10
        assert "agreement on first 4 lengths: True" in text


class TestTable2:
    def test_model_close_to_paper(self):
        rows, text = table2.run()
        assert "Table II" in text
        for row in rows:
            if row["paper_area_mm2"] is not None:
                assert row["area_mm2"] == pytest.approx(row["paper_area_mm2"], rel=0.1)
                assert row["power_mw"] == pytest.approx(row["paper_power_mw"], rel=0.05)


class TestFig6:
    def test_breakdown_claims(self):
        breakdowns, text = fig6.run()
        assert "area breakdown" in text
        for fmt, parts in breakdowns.items():
            area = parts["area"]
            power = parts["power"]
            assert max(area, key=area.get) == "memory"
            assert power["mul_block"] + power["add_block"] > 0.5


class TestTable3:
    def test_rows(self):
        rows, text = table3.run()
        assert "Table III" in text
        assert len(rows) == 7
        ours = [r for r in rows if "IterL2Norm" in str(r["implementation"])]
        assert len(ours) == 3
        assert all(r["clock_mhz"] == 100.0 for r in ours)


class TestTable4:
    def test_quick_grid(self):
        config = LLMEvalConfig(
            tasks=("bst-sim",),
            models=("opt-125m-sim",),
            formats=("fp32",),
            step_counts=(3, 10),
            train_steps=25,
            seq_len=32,
            eval_windows=5,
        )
        rows, text = table4.run(config)
        assert "Table IV" in text
        assert len(rows) == 2
        by_steps = {r["steps"]: r for r in rows}
        # The 10-step perplexity is at least as close to the baseline as 3-step.
        assert abs(by_steps[10]["delta"]) <= abs(by_steps[3]["delta"]) + 1e-6
        assert abs(by_steps[10]["delta"]) < 0.01 * by_steps[10]["baseline_ppl"]


class TestRunnerSpecGuards:
    def test_spec_knobs_without_strategy_rejected(self):
        import pytest

        from repro.experiments.runner import build_sections

        with pytest.raises(ValueError, match="decode-strategy"):
            build_sections(quick=True, include_serve=True, max_draft=8)

    def test_strategy_without_serve_rejected(self):
        import pytest

        from repro.experiments.runner import build_sections

        with pytest.raises(ValueError, match="serve"):
            build_sections(quick=True, decode_strategy="prompt-lookup")

    def test_spec_section_declares_paired_cells(self):
        from repro.experiments.runner import build_sections

        sections = dict(
            build_sections(
                quick=True, include_serve=True,
                decode_strategy="prompt-lookup", ngram=2, max_draft=6,
            )
        )
        strategies = {
            job.params["decode_strategy"]
            for job in sections["Serve bench"]
            if job.params["scenario"] == "summarize-copy"
        }
        assert strategies == {"one-token", "prompt-lookup"}
