"""The precision-sweep experiment: cells, job declaration, JSON output."""

import json

import pytest

from repro.experiments.precision_sweep import (
    DEFAULT_NORMALIZERS,
    _cell_policy,
    jobs,
    merge_cell_rows,
    run_cell,
    run_sweep,
)
from repro.precision.policy import DEFAULT_SWEEP_POLICIES

#: Tiny overrides so a cell trains + serves in well under a second.
TINY = dict(
    quick=True,
    train_steps=4,
    eval_windows=2,
    num_requests=3,
    max_batch_size=2,
)


class TestCellPolicy:
    def test_baseline_keeps_preset(self):
        assert _cell_policy("fp16", "baseline").name == "fp16"

    def test_normalizer_inherits_activation_format(self):
        applied = _cell_policy("bf16", "iterl2norm")
        assert applied.normalizer == "iterl2norm"
        assert applied.normalizer_fmt == "bf16"
        assert dict(applied.normalizer_kwargs) == {"num_steps": 5}

    def test_fp64_ref_keeps_factory_default_format(self):
        assert _cell_policy("fp64-ref", "iterl2norm").normalizer_fmt is None

    def test_unknown_normalizer(self):
        with pytest.raises(KeyError):
            _cell_policy("fp16", "nope")


class TestRunCell:
    def test_rows_and_text(self):
        rows, text = run_cell(policy="fp16", normalizer="iterl2norm", seed=0, **TINY)
        assert rows["policy"] == "fp16"
        assert rows["normalizer"] == "iterl2norm"
        assert rows["perplexity"] > 0
        assert rows["serve"]["tokens_per_second"] > 0
        assert rows["policy_spec"]["kv_cache_fmt"] == "fp16"
        assert "fp16" in text and "tok/s" in text
        json.dumps(rows)  # engine-cacheable: must be JSON-serializable

    def test_perplexity_deterministic_per_seed(self):
        a, _ = run_cell(policy="bf16", normalizer="baseline", seed=3, **TINY)
        b, _ = run_cell(policy="bf16", normalizer="baseline", seed=3, **TINY)
        assert a["perplexity"] == b["perplexity"]
        assert a["serve"]["tokens_generated"] == b["serve"]["tokens_generated"]


class TestJobs:
    def test_grid_declaration(self):
        declared = jobs(quick=True, seed=2)
        assert len(declared) == len(DEFAULT_SWEEP_POLICIES) * len(DEFAULT_NORMALIZERS)
        names = {job.name for job in declared}
        assert "precision[fp64-ref/baseline]" in names
        assert "precision[bf16-fp8kv/iterl2norm]" in names
        assert all(job.seed == 2 for job in declared)

    def test_invalid_policy_rejected_before_scheduling(self):
        with pytest.raises(KeyError):
            jobs(policies=("fp64-ref", "int4"))

    def test_invalid_normalizer_rejected_before_scheduling(self):
        with pytest.raises(KeyError, match="unknown normalizer"):
            jobs(normalizers=("baseline", "iterl2nrm"))


class TestRunSweep:
    def test_writes_payload_and_comparison(self, tmp_path):
        out = tmp_path / "BENCH_precision.json"
        payload, text = run_sweep(
            jobs_n=1,
            seed=0,
            out_path=str(out),
            policies=("fp64-ref", "fp16"),
            normalizers=("baseline", "iterl2norm"),
            use_cache=False,
            stream=open("/dev/null", "w"),
            **TINY,
        )
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk["config"]["policies"] == ["fp64-ref", "fp16"]
        assert len(on_disk["results"]) == 4
        comparison = on_disk["comparison"]["fp16"]
        for normalizer in ("baseline", "iterl2norm"):
            cell = comparison[normalizer]
            assert "perplexity_delta" in cell
            assert cell["tokens_per_second_ratio"] > 0
        assert "wrote" in text

    def test_merge_cell_rows_table(self):
        rows, _ = run_cell(policy="fp32", normalizer="baseline", seed=0, **TINY)
        merged, table = merge_cell_rows([rows])
        assert merged == [rows]
        assert "fp32" in table and "perplexity" in table
