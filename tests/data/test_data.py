"""Tests for the tokenizer, synthetic corpora, and dataset utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.corpus import (
    CorpusSpec,
    generate_bst_like_corpus,
    generate_corpus,
    generate_wikitext_like_corpus,
)
from repro.data.datasets import build_dataset
from repro.data.tokenizer import WordTokenizer


class TestWordTokenizer:
    def test_special_tokens(self):
        tok = WordTokenizer()
        assert tok.pad_id == 0
        assert tok.unk_id == 1
        assert tok.eot_id == 2
        assert tok.vocab_size == 3

    def test_fit_and_encode(self):
        tok = WordTokenizer(max_vocab_size=32).fit("the cat sat on the mat . the cat .")
        ids = tok.encode("the cat")
        assert len(ids) == 2
        assert ids[0] != tok.unk_id

    def test_unknown_words_map_to_unk(self):
        tok = WordTokenizer(max_vocab_size=16).fit("alpha beta gamma")
        ids = tok.encode("delta")
        assert list(ids) == [tok.unk_id]

    def test_frequency_truncation(self):
        text = "common " * 100 + "rare1 rare2 rare3 rare4 rare5"
        tok = WordTokenizer(max_vocab_size=5).fit(text)  # 3 specials + 2 words
        assert tok.vocab_size == 5
        assert "common" in tok.token_to_id

    def test_decode_roundtrip(self):
        tok = WordTokenizer(max_vocab_size=64).fit("hello world , nice day !")
        text = "hello world !"
        assert tok.decode(tok.encode(text)) == text

    def test_append_eot(self):
        tok = WordTokenizer().fit("a b c")
        ids = tok.encode("a", append_eot=True)
        assert ids[-1] == tok.eot_id

    def test_decode_skips_specials(self):
        tok = WordTokenizer().fit("x y")
        assert tok.decode(np.array([tok.pad_id, tok.eot_id])) == ""

    def test_decode_rejects_out_of_range(self):
        tok = WordTokenizer().fit("x")
        with pytest.raises(ValueError):
            tok.decode(np.array([999]))

    def test_case_insensitive(self):
        tok = WordTokenizer().fit("Hello HELLO hello")
        assert tok.vocab_size == 4  # specials + "hello"

    def test_validation(self):
        with pytest.raises(ValueError):
            WordTokenizer(max_vocab_size=3)


class TestCorpora:
    def test_wikitext_like_deterministic(self):
        a = generate_wikitext_like_corpus(CorpusSpec("w", seed=7))
        b = generate_wikitext_like_corpus(CorpusSpec("w", seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_wikitext_like_corpus(CorpusSpec("w", seed=1))
        b = generate_wikitext_like_corpus(CorpusSpec("w", seed=2))
        assert a != b

    def test_wikitext_structure(self):
        text = generate_wikitext_like_corpus(CorpusSpec("w", num_documents=5, seed=0))
        assert text.count("= the") == 5  # one heading per document

    def test_bst_structure(self):
        text = generate_bst_like_corpus(CorpusSpec("b", num_documents=3, seed=0))
        assert text.count("your persona :") == 3
        assert "speaker a :" in text and "speaker b :" in text

    def test_corpora_have_different_statistics(self):
        wiki = generate_wikitext_like_corpus()
        bst = generate_bst_like_corpus()
        wiki_words = set(wiki.split())
        bst_words = set(bst.split())
        overlap = len(wiki_words & bst_words) / min(len(wiki_words), len(bst_words))
        assert overlap < 0.5  # the two tasks look different to the model

    def test_named_generator(self):
        assert "persona" in generate_corpus("bst-sim")
        with pytest.raises(KeyError):
            generate_corpus("unknown-corpus")

    def test_size_scaling(self):
        small = generate_wikitext_like_corpus(CorpusSpec("w", num_documents=4))
        large = generate_wikitext_like_corpus(CorpusSpec("w", num_documents=64))
        assert len(large) > len(small) * 8

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CorpusSpec("x", num_documents=0)


class TestBuildDataset:
    def test_build_and_split(self):
        ds = build_dataset("wikitext2-sim", max_vocab_size=256)
        assert ds.train_tokens.size > ds.valid_tokens.size
        assert ds.vocab_size <= 256
        assert ds.train_tokens.dtype == np.int64

    def test_tokens_within_vocab(self):
        ds = build_dataset("bst-sim", max_vocab_size=128)
        assert ds.train_tokens.max() < ds.vocab_size
        assert ds.valid_tokens.min() >= 0

    def test_eval_windows(self):
        ds = build_dataset("wikitext2-sim")
        inputs, targets = ds.eval_windows(seq_len=32, max_windows=4)
        assert inputs.shape == (4, 32)
        np.testing.assert_array_equal(inputs[:, 1:], targets[:, :-1])

    def test_eval_windows_validation(self):
        ds = build_dataset("wikitext2-sim")
        with pytest.raises(ValueError):
            ds.eval_windows(seq_len=1)
        with pytest.raises(ValueError):
            ds.eval_windows(seq_len=10**6)

    def test_valid_fraction_validation(self):
        with pytest.raises(ValueError):
            build_dataset("wikitext2-sim", valid_fraction=0.0)

    def test_deterministic(self):
        a = build_dataset("bst-sim", spec=CorpusSpec("bst-sim", seed=3))
        b = build_dataset("bst-sim", spec=CorpusSpec("bst-sim", seed=3))
        np.testing.assert_array_equal(a.train_tokens, b.train_tokens)


# -- property-based tests -----------------------------------------------------------


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd", "Zs")), max_size=200))
@settings(max_examples=100, deadline=None)
def test_tokenizer_encode_never_fails_after_fit(text):
    tok = WordTokenizer(max_vocab_size=64).fit("some base corpus text")
    ids = tok.encode(text)
    assert np.all((ids >= 0) & (ids < tok.vocab_size))


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_corpus_generation_is_pure(num_docs, seed):
    spec = CorpusSpec("w", num_documents=num_docs, seed=seed)
    assert generate_wikitext_like_corpus(spec) == generate_wikitext_like_corpus(spec)
