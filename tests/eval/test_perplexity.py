"""Tests for the LLM-level (Table IV) evaluation harness."""

import numpy as np
import pytest

from repro.eval.perplexity import (
    LLMEvalConfig,
    LLMEvalResult,
    evaluate_perplexity,
    perplexity_experiment,
    prepare_model,
)


@pytest.fixture(scope="module")
def quick_config():
    return LLMEvalConfig(
        tasks=("wikitext2-sim",),
        models=("opt-125m-sim",),
        formats=("fp32",),
        step_counts=(3, 10),
        train_steps=30,
        batch_size=4,
        seq_len=32,
        eval_windows=6,
        seed=0,
    )


@pytest.fixture(scope="module")
def trained(quick_config):
    return prepare_model("wikitext2-sim", "opt-125m-sim", quick_config)


class TestPrepareModel:
    def test_model_and_dataset_compatible(self, trained, quick_config):
        model, dataset, config = trained
        assert dataset.vocab_size <= config.vocab_size
        assert model.config.name == "opt-125m-sim"

    def test_training_happened(self, trained, quick_config):
        model, dataset, _ = trained
        ppl = evaluate_perplexity(model, dataset, quick_config)
        # A trained model must beat the uniform baseline over the vocabulary.
        assert ppl < dataset.vocab_size * 0.5


class TestEvaluatePerplexity:
    def test_perplexity_positive_and_finite(self, trained, quick_config):
        model, dataset, _ = trained
        ppl = evaluate_perplexity(model, dataset, quick_config)
        assert np.isfinite(ppl) and ppl > 1.0

    def test_swap_changes_perplexity_marginally(self, trained, quick_config):
        model, dataset, _ = trained
        model.replace_layernorm("exact", fmt="fp32")
        baseline = evaluate_perplexity(model, dataset, quick_config)
        model.replace_layernorm("iterl2norm", fmt="fp32", num_steps=5)
        swapped = evaluate_perplexity(model, dataset, quick_config)
        model.restore_layernorm()
        assert abs(swapped - baseline) / baseline < 0.02

    def test_more_steps_closer_to_baseline(self, trained, quick_config):
        """The Table IV trend: the delta shrinks as iterations increase."""
        model, dataset, _ = trained
        model.replace_layernorm("exact", fmt="fp32")
        baseline = evaluate_perplexity(model, dataset, quick_config)
        deltas = {}
        for steps in (1, 3, 10):
            model.replace_layernorm("iterl2norm", fmt="fp32", num_steps=steps)
            deltas[steps] = abs(evaluate_perplexity(model, dataset, quick_config) - baseline)
        model.restore_layernorm()
        assert deltas[10] <= deltas[1]
        assert deltas[10] < 0.01 * baseline


class TestPerplexityExperiment:
    def test_grid_structure(self, quick_config):
        results = perplexity_experiment(quick_config)
        assert len(results) == 1
        result = results[0]
        assert isinstance(result, LLMEvalResult)
        assert set(result.perplexity_by_steps) == {3, 10}
        assert result.baseline_perplexity > 1.0

    def test_deltas_and_rows(self, quick_config):
        result = perplexity_experiment(quick_config)[0]
        rows = result.as_rows()
        assert len(rows) == 2
        for row in rows:
            assert row["delta"] == pytest.approx(
                row["ppl"] - result.baseline_perplexity
            )

    def test_delta_at_ten_steps_is_tiny(self, quick_config):
        result = perplexity_experiment(quick_config)[0]
        assert abs(result.deltas[10]) < 0.01 * result.baseline_perplexity
