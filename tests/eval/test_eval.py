"""Tests for the evaluation harness (precision, latency, synthesis, reporting)."""

import pytest

from repro.eval.latency import FIG5_LENGTHS, latency_sweep
from repro.eval.precision import (
    OPT_LENGTHS,
    convergence_sweep,
    error_histogram,
    evaluate_method,
    method_comparison,
    precision_sweep,
)
from repro.eval.reporting import format_breakdown, format_table
from repro.eval.synthesis import area_power_breakdowns, comparison_rows, synthesis_rows


class TestEvaluateMethod:
    def test_iterl2norm_fp32_error_band(self):
        result = evaluate_method("iterl2norm", 384, "fp32", trials=50, seed=0)
        assert result.stats.mean < 5e-3
        assert result.stats.count == 50 * 384

    def test_fisr_error_band(self):
        result = evaluate_method("fisr", 384, "fp32", trials=50, seed=0)
        assert result.stats.mean < 5e-3

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            evaluate_method("magic", 64, "fp32", trials=2)

    def test_seed_reproducibility(self):
        a = evaluate_method("iterl2norm", 128, "bf16", trials=20, seed=3)
        b = evaluate_method("iterl2norm", 128, "bf16", trials=20, seed=3)
        assert a.stats.mean == b.stats.mean

    def test_as_row(self):
        row = evaluate_method("iterl2norm", 64, "fp16", trials=5).as_row()
        assert row["d"] == 64 and row["format"] == "fp16"


class TestSweeps:
    def test_precision_sweep_shape(self):
        results = precision_sweep(lengths=(64, 128), formats=("fp32",), trials=10)
        assert len(results) == 2
        assert {r.length for r in results} == {64, 128}

    def test_error_histogram(self):
        counts, edges = error_histogram(length=128, fmt="fp32", trials=20, bins=10)
        assert counts.sum() == 20
        assert len(edges) == 11

    def test_method_comparison_winner_field(self):
        rows = method_comparison(lengths=(768,), formats=("fp32",), trials=20)
        assert len(rows) == 1
        assert rows[0]["winner"] in ("iterl2norm", "fisr")
        assert rows[0]["iterl2norm_mean"] > 0

    def test_convergence_sweep_error_decreases(self):
        results = convergence_sweep(
            length=256, formats=("fp32",), step_counts=(1, 3, 5), trials=30
        )
        errors = [r.stats.mean for r in results]
        assert errors[0] > errors[1] > errors[2]

    def test_fp16_bf16_floor_higher_than_fp32(self):
        """Fig. 4's ordering: the fp32 floor is below the 16-bit floors."""
        by_fmt = {}
        for fmt in ("fp32", "fp16", "bf16"):
            result = evaluate_method("iterl2norm", 256, fmt, num_steps=10, trials=30)
            by_fmt[fmt] = result.stats.mean
        assert by_fmt["fp32"] < by_fmt["fp16"]
        assert by_fmt["fp32"] < by_fmt["bf16"]

    def test_opt_lengths_constant(self):
        assert OPT_LENGTHS[0] == 768 and OPT_LENGTHS[-1] == 12288 and len(OPT_LENGTHS) == 9


class TestLatencySweep:
    def test_model_sweep_range(self):
        sweep = latency_sweep()
        assert sweep.lengths == FIG5_LENGTHS
        assert abs(sweep.min_cycles - 116) <= 10
        assert abs(sweep.max_cycles - 227) <= 10

    def test_monotone(self):
        sweep = latency_sweep()
        assert list(sweep.cycles) == sorted(sweep.cycles)

    def test_simulator_agrees_with_model(self):
        model = latency_sweep(lengths=(64, 128, 256), use_simulator=False)
        sim = latency_sweep(lengths=(64, 128, 256), use_simulator=True)
        assert model.cycles == sim.cycles

    def test_microseconds_conversion(self):
        sweep = latency_sweep(lengths=(64,))
        assert sweep.microseconds_at_100mhz[0] == sweep.cycles[0] / 100.0

    def test_as_rows(self):
        rows = latency_sweep(lengths=(64, 128)).as_rows()
        assert rows[0]["d"] == 64 and "cycles" in rows[0]


class TestSynthesisRows:
    def test_table2_rows(self):
        rows = synthesis_rows()
        assert [r["format"] for r in rows] == ["fp32", "fp16", "bf16"]
        assert rows[0]["memory_kib"] == 96.5

    def test_breakdowns_structure(self):
        breakdowns = area_power_breakdowns(("fp32",))
        assert set(breakdowns["fp32"]) == {"area", "power"}
        assert sum(breakdowns["fp32"]["area"].values()) == pytest.approx(1.0)

    def test_comparison_rows(self):
        rows = comparison_rows()
        names = [r["implementation"] for r in rows]
        assert "SwiftTron" in names
        assert any("IterL2Norm" in n for n in names)
        assert len(comparison_rows(include_ours=False)) == 4


class TestReporting:
    def test_format_table_basic(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "10" in lines[3]

    def test_format_table_with_title_and_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"], title="T")
        assert text.startswith("T\n")
        assert "a" not in text.splitlines()[1]

    def test_format_table_missing_keys(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_breakdown(self):
        text = format_breakdown({"memory": 0.6, "logic": 0.4}, title="Area")
        assert "60.0%" in text and text.startswith("Area")
