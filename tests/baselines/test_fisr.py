"""Tests for the fast inverse square root baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_layernorm
from repro.baselines.fisr import (
    FISRLayerNorm,
    fast_inverse_sqrt,
    fisr_l2_normalize,
    fisr_magic_constant,
)


class TestMagicConstant:
    def test_fp32_reproduces_quake_constant(self):
        """The derived constant matches the famous 0x5f3759df up to ~1 part in 1e6."""
        magic = fisr_magic_constant("fp32")
        assert abs(magic - 0x5F3759DF) <= 2048  # within a few mantissa LSBs

    def test_fp32_leading_bits(self):
        assert fisr_magic_constant("fp32") >> 16 == 0x5F37

    def test_bf16_constant(self):
        assert fisr_magic_constant("bf16") == 0x5F37

    def test_fp16_constant_range(self):
        magic = fisr_magic_constant("fp16")
        assert 0x5900 <= magic <= 0x5A00  # ~1.5 * 2^10 * (15 - sigma)


class TestFastInverseSqrt:
    def test_accuracy_with_one_newton_step(self, rng):
        x = rng.uniform(1e-3, 1e6, size=2000)
        approx = np.asarray(fast_inverse_sqrt(x, "fp32", newton_steps=1))
        rel = np.abs(approx - 1.0 / np.sqrt(x)) * np.sqrt(x)
        assert rel.max() < 2e-3  # classic FISR bound ~1.75e-3

    def test_accuracy_improves_with_newton_steps(self, rng):
        x = rng.uniform(0.1, 100.0, size=500)
        errors = []
        for steps in (0, 1, 2):
            approx = np.asarray(fast_inverse_sqrt(x, "fp32", newton_steps=steps))
            errors.append(np.mean(np.abs(approx - 1.0 / np.sqrt(x)) * np.sqrt(x)))
        assert errors[0] > errors[1] > errors[2]

    def test_scalar_interface(self):
        assert fast_inverse_sqrt(4.0, "fp32") == pytest.approx(0.5, rel=2e-3)
        assert isinstance(fast_inverse_sqrt(4.0, "fp32"), float)

    def test_bf16_coarser_than_fp32(self, rng):
        x = rng.uniform(0.5, 50.0, size=500)
        err32 = np.abs(np.asarray(fast_inverse_sqrt(x, "fp32")) - 1 / np.sqrt(x))
        err16 = np.abs(np.asarray(fast_inverse_sqrt(x, "bf16")) - 1 / np.sqrt(x))
        assert err16.mean() > err32.mean()

    def test_magic_override(self):
        default = fast_inverse_sqrt(2.0, "fp32", newton_steps=0)
        shifted = fast_inverse_sqrt(2.0, "fp32", newton_steps=0, magic=0x5F000000)
        assert default != shifted

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fast_inverse_sqrt(0.0, "fp32")
        with pytest.raises(ValueError):
            fast_inverse_sqrt(np.array([1.0, -2.0]), "fp32")


class TestFISRL2Normalize:
    def test_near_unit_norm(self, rng):
        y = rng.uniform(-1, 1, size=256)
        normalized = fisr_l2_normalize(y, "fp32")
        assert np.linalg.norm(normalized) == pytest.approx(1.0, rel=5e-3)

    def test_zero_vector(self):
        np.testing.assert_array_equal(fisr_l2_normalize(np.zeros(8), "fp32"), np.zeros(8))

    def test_scale_by_sqrt_d(self, rng):
        y = rng.uniform(-1, 1, size=64)
        scaled = fisr_l2_normalize(y, "fp32", scale_by_sqrt_d=True)
        assert np.linalg.norm(scaled) == pytest.approx(8.0, rel=5e-3)

    def test_rejects_matrix(self, rng):
        with pytest.raises(ValueError):
            fisr_l2_normalize(rng.normal(size=(2, 8)), "fp32")


class TestFISRLayerNorm:
    def test_error_band_fp32(self, rng):
        layer = FISRLayerNorm(384, fmt="fp32")
        x = rng.uniform(-1, 1, size=(200, 384))
        err = np.abs(layer(x) - exact_layernorm(x))
        assert err.mean() < 5e-3

    def test_error_band_bf16(self, rng):
        layer = FISRLayerNorm(384, fmt="bf16")
        x = rng.uniform(-1, 1, size=(100, 384))
        err = np.abs(layer(x) - exact_layernorm(x))
        assert err.mean() < 2e-2

    def test_affine_params(self, rng):
        gamma, beta = rng.uniform(0.5, 1.5, 64), rng.normal(size=64)
        layer = FISRLayerNorm(64, gamma=gamma, beta=beta, fmt="fp32", newton_steps=3)
        x = rng.normal(size=(8, 64))
        np.testing.assert_allclose(layer(x), exact_layernorm(x, gamma, beta), atol=2e-3)

    def test_constant_row(self):
        layer = FISRLayerNorm(16, fmt="fp32")
        np.testing.assert_allclose(layer(np.full((2, 16), 5.0)), 0.0, atol=1e-12)

    def test_preserves_shape(self, rng):
        layer = FISRLayerNorm(32, fmt="bf16")
        assert layer(rng.normal(size=(2, 3, 32))).shape == (2, 3, 32)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FISRLayerNorm(0)
        with pytest.raises(ValueError):
            FISRLayerNorm(8, gamma=np.ones(3))
        with pytest.raises(ValueError):
            FISRLayerNorm(8)(rng.normal(size=(2, 9)))


# -- property-based tests -----------------------------------------------------------


@given(st.floats(min_value=1e-6, max_value=1e12))
@settings(max_examples=200, deadline=None)
def test_fisr_relative_error_bound(x):
    """One Newton step keeps the relative error below the classic 0.2% bound."""
    approx = fast_inverse_sqrt(x, "fp32", newton_steps=1)
    rel = abs(approx - 1.0 / np.sqrt(x)) * np.sqrt(x)
    assert rel < 2.5e-3


@given(st.floats(min_value=1e-3, max_value=1e6))
@settings(max_examples=100, deadline=None)
def test_fisr_initial_guess_within_ten_percent(x):
    """Even with zero Newton steps the bit-trick guess is within ~6%."""
    approx = fast_inverse_sqrt(x, "fp32", newton_steps=0)
    rel = abs(approx - 1.0 / np.sqrt(x)) * np.sqrt(x)
    assert rel < 0.1
