"""Tests for the exact layer-norm / L2-norm baselines (the ground truth)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactLayerNorm, exact_l2_normalize, exact_layernorm


class TestExactL2Normalize:
    def test_unit_norm(self, rng):
        y = rng.normal(size=100)
        assert np.linalg.norm(exact_l2_normalize(y)) == pytest.approx(1.0, rel=1e-12)

    def test_zero_vector(self):
        np.testing.assert_array_equal(exact_l2_normalize(np.zeros(8)), np.zeros(8))

    def test_axis_argument(self, rng):
        x = rng.normal(size=(5, 20))
        norms = np.linalg.norm(exact_l2_normalize(x, axis=-1), axis=-1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-12)

    def test_direction_preserved(self, rng):
        y = rng.normal(size=30)
        normalized = exact_l2_normalize(y)
        np.testing.assert_allclose(normalized * np.linalg.norm(y), y, rtol=1e-12)


class TestExactLayerNorm:
    def test_zero_mean_unit_std(self, rng):
        x = rng.normal(5.0, 3.0, size=(10, 64))
        z = exact_layernorm(x)
        np.testing.assert_allclose(z.mean(axis=-1), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=-1), 1.0, rtol=1e-12)

    def test_affine_parameters(self, rng):
        x = rng.normal(size=(4, 16))
        gamma = rng.uniform(0.5, 2.0, 16)
        beta = rng.normal(size=16)
        z = exact_layernorm(x, gamma, beta)
        z_plain = exact_layernorm(x)
        np.testing.assert_allclose(z, z_plain * gamma + beta, rtol=1e-12)

    def test_eps_matches_torch_formula(self, rng):
        x = rng.normal(size=(3, 8))
        eps = 1e-5
        z = exact_layernorm(x, eps=eps)
        mean = x.mean(-1, keepdims=True)
        var = x.var(-1, keepdims=True)
        np.testing.assert_allclose(z, (x - mean) / np.sqrt(var + eps), rtol=1e-12)

    def test_constant_row_without_eps(self):
        z = exact_layernorm(np.full((2, 8), 3.0))
        np.testing.assert_array_equal(z, np.zeros((2, 8)))

    def test_relation_to_l2_normalization(self, rng):
        """Step 2 of the paper: y/sigma == sqrt(d) * y / ||y|| for centered y."""
        d = 48
        x = rng.normal(size=d)
        y = x - x.mean()
        np.testing.assert_allclose(
            exact_layernorm(x), np.sqrt(d) * exact_l2_normalize(y), rtol=1e-10
        )


class TestExactLayerNormModule:
    def test_matches_functional(self, rng):
        x = rng.normal(size=(6, 32))
        module = ExactLayerNorm(32)
        np.testing.assert_array_equal(module(x), exact_layernorm(x))

    def test_output_quantization(self, rng):
        from repro.fpformats.quantize import quantize

        x = rng.normal(size=(4, 16))
        module = ExactLayerNorm(16, fmt="bf16")
        out = module(x)
        np.testing.assert_array_equal(out, np.asarray(quantize(out, "bf16")))

    def test_affine(self, rng):
        gamma, beta = rng.uniform(0.5, 1.5, 24), rng.normal(size=24)
        module = ExactLayerNorm(24, gamma=gamma, beta=beta)
        x = rng.normal(size=(2, 24))
        np.testing.assert_allclose(module(x), exact_layernorm(x, gamma, beta), rtol=1e-12)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ExactLayerNorm(0)
        with pytest.raises(ValueError):
            ExactLayerNorm(8, gamma=np.ones(7))
        module = ExactLayerNorm(8)
        with pytest.raises(ValueError):
            module(rng.normal(size=(2, 9)))


# -- property-based tests -----------------------------------------------------------


@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=64),
    st.floats(min_value=-100, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_exact_layernorm_shift_invariance(values, shift):
    x = np.asarray(values)
    if x.std() < 1e-9:
        return  # constant rows are a separate case
    np.testing.assert_allclose(
        exact_layernorm(x), exact_layernorm(x + shift), atol=1e-6
    )
