"""Tests for the LUT, integer, and Newton baselines and the method registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_layernorm
from repro.baselines.int_sqrt import integer_isqrt, integer_layernorm, quantize_to_int
from repro.baselines.lut_invsqrt import LUTInverseSqrt, LUTLayerNorm
from repro.baselines.newton import newton_inverse_sqrt, newton_inverse_sqrt_step
from repro.baselines.registry import available_methods, get_normalizer, register_normalizer


class TestLUTInverseSqrt:
    def test_accuracy_16_segments(self, rng):
        lut = LUTInverseSqrt(num_segments=16, fmt="fp32")
        x = rng.uniform(1e-3, 1e5, size=2000)
        approx = np.asarray(lut(x))
        rel = np.abs(approx - 1.0 / np.sqrt(x)) * np.sqrt(x)
        assert rel.max() < 5e-3

    def test_more_segments_more_accurate(self):
        coarse = LUTInverseSqrt(num_segments=4).max_relative_error()
        fine = LUTInverseSqrt(num_segments=64).max_relative_error()
        assert fine < coarse

    def test_range_reduction_consistency(self):
        lut = LUTInverseSqrt()
        # x and 4x differ exactly by a factor of 2 in the result.
        assert float(lut(2.0)) == pytest.approx(2.0 * float(lut(8.0)), rel=1e-6)

    def test_table_bits(self):
        lut = LUTInverseSqrt(num_segments=8, fmt="fp16")
        assert lut.table_bits == 2 * 8 * 16

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            LUTInverseSqrt(num_segments=1)
        with pytest.raises(ValueError):
            LUTInverseSqrt()(0.0)

    def test_scalar_interface(self):
        assert isinstance(LUTInverseSqrt()(3.0), float)


class TestLUTLayerNorm:
    def test_error_band(self, rng):
        layer = LUTLayerNorm(256, fmt="fp32", num_segments=32)
        x = rng.uniform(-1, 1, size=(50, 256))
        err = np.abs(layer(x) - exact_layernorm(x))
        assert err.mean() < 5e-3

    def test_constant_row(self):
        layer = LUTLayerNorm(8)
        np.testing.assert_allclose(layer(np.full((1, 8), 2.0)), 0.0, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            LUTLayerNorm(0)
        with pytest.raises(ValueError):
            LUTLayerNorm(8, gamma=np.ones(5))


class TestIntegerSqrt:
    def test_exact_squares(self):
        for n in (0, 1, 4, 9, 16, 144, 10**12):
            assert integer_isqrt(n) == int(np.sqrt(n))

    def test_floor_behaviour(self):
        assert integer_isqrt(15) == 3
        assert integer_isqrt(17) == 4
        assert integer_isqrt(2) == 1

    def test_large_values(self):
        n = (10**18 + 7) ** 2
        assert integer_isqrt(n) == 10**18 + 7
        assert integer_isqrt(n - 1) == 10**18 + 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            integer_isqrt(-1)


class TestQuantizeToInt:
    def test_roundtrip(self, rng):
        x = rng.uniform(-1, 1, size=100)
        q = quantize_to_int(x, scale=2.0**-10)
        np.testing.assert_allclose(q * 2.0**-10, x, atol=2.0**-11 + 1e-12)

    def test_clipping(self):
        q = quantize_to_int(np.array([1e20]), scale=1.0, bits=8)
        assert q[0] == 127

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_to_int(np.ones(3), scale=0.0)
        with pytest.raises(ValueError):
            quantize_to_int(np.ones(3), scale=1.0, bits=1)


class TestIntegerLayerNorm:
    def test_approximates_exact_layernorm(self, rng):
        x = rng.uniform(-1, 1, size=512)
        ours = integer_layernorm(x)
        exact = exact_layernorm(x)
        assert np.abs(ours - exact).mean() < 5e-3

    def test_constant_input(self):
        np.testing.assert_array_equal(integer_layernorm(np.full(16, 3.0)), np.zeros(16))

    def test_affine(self, rng):
        x = rng.uniform(-1, 1, size=64)
        gamma, beta = rng.uniform(0.5, 1.5, 64), rng.normal(size=64)
        ours = integer_layernorm(x, gamma=gamma, beta=beta)
        np.testing.assert_allclose(ours, exact_layernorm(x, gamma, beta), atol=2e-2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            integer_layernorm(rng.normal(size=(2, 4)))
        with pytest.raises(ValueError):
            integer_layernorm(np.array([]))


class TestNewton:
    def test_newton_step_improves_estimate(self):
        x, y = 4.0, 0.4
        better = newton_inverse_sqrt_step(x, y)
        assert abs(better - 0.5) < abs(y - 0.5)

    def test_newton_full_accuracy(self, rng):
        x = rng.uniform(1e-3, 1e5, size=500)
        approx = np.asarray(newton_inverse_sqrt(x, steps=4, fmt="fp32"))
        rel = np.abs(approx - 1.0 / np.sqrt(x)) * np.sqrt(x)
        assert rel.max() < 1e-4

    def test_zero_steps_is_exponent_seed(self):
        seed = newton_inverse_sqrt(2.0, steps=0, fmt="fp32")
        assert seed == pytest.approx(2.0 ** (-1.0), rel=1e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            newton_inverse_sqrt(-1.0)
        with pytest.raises(ValueError):
            newton_inverse_sqrt(1.0, steps=-1)


class TestRegistry:
    def test_builtin_methods_present(self):
        methods = available_methods()
        for name in ("exact", "iterl2norm", "fisr", "lut"):
            assert name in methods

    def test_factories_produce_working_normalizers(self, rng):
        x = rng.uniform(-1, 1, size=(4, 64))
        exact = exact_layernorm(x)
        for name in ("exact", "iterl2norm", "fisr", "lut"):
            normalizer = get_normalizer(name, 64, fmt="fp32")
            out = normalizer(x)
            assert out.shape == x.shape
            assert np.abs(out - exact).mean() < 1e-2

    def test_kwargs_forwarded(self, rng):
        normalizer = get_normalizer("iterl2norm", 32, fmt="fp32", num_steps=2)
        assert normalizer.config.num_steps == 2

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            get_normalizer("does-not-exist", 8)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            register_normalizer("exact", lambda d, fmt=None: None)

    def test_case_insensitive(self):
        normalizer = get_normalizer("ITERL2NORM", 16, fmt="fp64")
        assert normalizer.normalized_dim == 16


# -- property-based tests -----------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**15))
@settings(max_examples=200, deadline=None)
def test_integer_isqrt_definition(n):
    root = integer_isqrt(n)
    assert root * root <= n < (root + 1) * (root + 1)


@given(st.floats(min_value=1e-3, max_value=1e6))
@settings(max_examples=100, deadline=None)
def test_lut_relative_error_bound(x):
    lut = LUTInverseSqrt(num_segments=16, fmt="fp32")
    rel = abs(float(lut(x)) - 1.0 / np.sqrt(x)) * np.sqrt(x)
    assert rel < 5e-3
