"""Tests for the a0 initialization (Eq. 6) and update-rate rule (Eq. 10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.initialization import (
    LAMBDA_COEFFICIENT,
    initial_a,
    initial_a_exact,
    lambda_coefficient_for,
    required_lambda,
    update_rate,
)


class TestInitialA:
    def test_power_of_two_inputs(self):
        # m = 4: E(m)-bias = 2, a0 = 2^(-3/2); a_inf = 0.5.
        assert initial_a(4.0, "fp32") == pytest.approx(2.0 ** (-1.5), rel=1e-6)

    def test_ratio_bound_from_paper(self, rng):
        """0.7 < a0 / a_inf <= 1 for any positive m (Sec. III-B)."""
        for m in rng.uniform(1e-6, 1e6, size=500):
            ratio = initial_a(float(m), "fp32") / initial_a_exact(float(m))
            assert 0.7 < ratio <= 1.0 + 1e-6

    def test_ratio_lower_bound_is_sqrt_half(self):
        # The worst case is a significand just above 1 (a_inf = 1, a0 = 2^-0.5).
        m = 1.0 + 1e-12
        ratio = initial_a(m, "fp64") / initial_a_exact(m)
        assert ratio == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-6)

    def test_same_result_for_fp32_and_bf16(self):
        # Both formats share the exponent layout, and a0 only reads E(m).
        # Odd unbiased exponents give integer halved exponents, so a0 is a
        # power of two and format-independent.
        for m in (0.125, 8.0, 512.0):
            assert initial_a(m, "fp32") == initial_a(m, "bf16")

    def test_fp16_bias_is_used(self):
        # The unbiased exponent is what matters, so fp16 gives the same a0
        # as fp32 when the halved exponent is an integer (m = 8 -> a0 = 0.25).
        assert initial_a(8.0, "fp16") == initial_a(8.0, "fp32") == 0.25

    def test_rejects_nonpositive_or_nonfinite(self):
        for bad in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValueError):
                initial_a(bad, "fp32")

    def test_initial_a_exact(self):
        assert initial_a_exact(16.0) == 0.25
        with pytest.raises(ValueError):
            initial_a_exact(0.0)


class TestUpdateRate:
    def test_formula_for_power_of_two(self):
        # m = 8 -> E(m)-bias = 3 -> lambda = 0.345 / 8.
        assert update_rate(8.0, "fp32") == pytest.approx(0.345 / 8.0, rel=1e-6)

    def test_lambda_times_m_in_paper_band(self, rng):
        """lambda * m lies in [0.345, 0.69) - the band implied by Eq. (10)."""
        for m in rng.uniform(1e-3, 1e5, size=500):
            product = update_rate(float(m), "fp32") * float(m)
            assert 0.345 * (1 - 1e-6) <= product < 0.69 * (1 + 1e-3)

    def test_safety_factor(self):
        base = update_rate(10.0, "fp32")
        assert update_rate(10.0, "fp32", safety_factor=2.0) == pytest.approx(
            2.0 * base, rel=1e-6
        )

    def test_custom_coefficient(self):
        assert update_rate(8.0, "fp32", coefficient=0.5) == pytest.approx(0.0625, rel=1e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            update_rate(-1.0)
        with pytest.raises(ValueError):
            update_rate(1.0, coefficient=0.0)
        with pytest.raises(ValueError):
            update_rate(1.0, safety_factor=0.0)

    def test_discrete_stability(self, rng):
        """lambda * m < 1 guarantees the Euler update is locally stable."""
        for m in rng.uniform(1e-3, 1e6, size=200):
            assert update_rate(float(m), "fp32") * float(m) < 1.0


class TestRequiredLambda:
    def test_reference_bound_is_tighter_than_hardware_rule_worst_case(self):
        # For a significand of exactly 1 the hardware rule equals the bound/2;
        # the reference bound uses the true 1/m.
        m = 16.0
        exact = required_lambda(m)
        hardware = update_rate(m, "fp32")
        assert exact == pytest.approx(-np.log(1e-3) / (2 * m * 5), rel=1e-12)
        assert hardware >= exact * 0.49  # paper uses the lower end of the m^-1 range

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            required_lambda(0.0)
        with pytest.raises(ValueError):
            required_lambda(1.0, tolerance=2.0)
        with pytest.raises(ValueError):
            required_lambda(1.0, target_steps=0)


class TestLambdaCoefficient:
    def test_paper_constant(self):
        """delta_c = 1e-3 and n_c = 5 give the paper's 0.345 coefficient."""
        coeff = lambda_coefficient_for(1e-3, 5)
        assert coeff == pytest.approx(0.6908, rel=1e-3) or coeff == pytest.approx(
            0.345 * 2, rel=1e-2
        )
        # The hardware constant is half of this (worst-case significand bound).
        assert LAMBDA_COEFFICIENT == pytest.approx(coeff / 2.0, rel=2e-2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            lambda_coefficient_for(0.0, 5)
        with pytest.raises(ValueError):
            lambda_coefficient_for(0.5, 0)


# -- property-based tests -----------------------------------------------------------


@given(st.floats(min_value=1e-6, max_value=1e6))
@settings(max_examples=200, deadline=None)
def test_initial_a_is_exponent_halving(m):
    """log2(a0) is (minus) half an integer, up to fp32 quantization of a0."""
    a0 = initial_a(m, "fp32")
    log2 = np.log2(a0)
    assert log2 == pytest.approx(round(log2 * 2) / 2, abs=1e-6)


@given(st.floats(min_value=1e-6, max_value=1e6))
@settings(max_examples=200, deadline=None)
def test_update_rate_satisfies_convergence_inequality_within_band(m):
    """Eq. (10)'s lambda keeps the 5-step transient below ~3.2% of its start.

    exp(-2 m n lambda) with lambda*m >= 0.345 and n = 5 is at most e^-3.45.
    """
    lam = update_rate(m, "fp32")
    transient = np.exp(-2.0 * m * 5 * lam)
    assert transient <= np.exp(-3.45) * (1 + 1e-3)
