"""Tests for the discrete IterL2Norm scalar iteration and vector normalizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamics import analytical_a
from repro.core.iteration import (
    iterate_a,
    iterate_a_batch,
    iterate_a_trace,
    iterl2norm_vector,
)


class TestScalarIteration:
    def test_converges_to_inverse_norm(self, rng):
        for m in rng.uniform(0.01, 1e4, size=50):
            a = iterate_a(float(m), num_steps=30)
            assert a == pytest.approx(1.0 / np.sqrt(m), rel=1e-9)

    def test_five_steps_reach_paper_tolerance(self, rng):
        """Five steps land within ~0.2% of the fixed point for any m (fp64)."""
        for m in rng.uniform(0.01, 1e4, size=200):
            a = iterate_a(float(m), num_steps=5)
            rel_err = abs(a - 1.0 / np.sqrt(m)) * np.sqrt(m)
            assert rel_err < 4e-3

    def test_zero_steps_returns_a0(self):
        trace = iterate_a_trace(4.0, num_steps=0)
        assert trace.final_a == trace.a_history[0]
        assert trace.num_steps == 0

    def test_trace_lengths(self):
        trace = iterate_a_trace(10.0, num_steps=7)
        assert len(trace.a_history) == 8
        assert len(trace.delta_history) == 7

    def test_error_history_decreases(self):
        trace = iterate_a_trace(123.4, num_steps=8)
        errors = trace.error_history()
        assert errors[-1] < errors[0]
        # Monotone decrease for the default (under-relaxed) update rate.
        assert np.all(np.diff(errors) <= 1e-15)

    def test_explicit_lambda_and_a0(self):
        a = iterate_a(4.0, num_steps=50, lam=0.05, a0=0.1)
        assert a == pytest.approx(0.5, rel=1e-6)

    def test_format_rounded_iteration_stays_in_format(self):
        from repro.fpformats.quantize import quantize

        trace = iterate_a_trace(37.5, num_steps=5, fmt="bf16")
        for a in trace.a_history:
            assert a == quantize(a, "bf16")

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            iterate_a(-1.0)
        with pytest.raises(ValueError):
            iterate_a(np.nan)
        with pytest.raises(ValueError):
            iterate_a(1.0, num_steps=-1)

    def test_tracks_analytical_solution_for_small_lambda(self):
        """With a small lambda the Euler iterate follows Eq. (9) closely."""
        m, lam, a0 = 9.0, 0.002, 0.2
        trace = iterate_a_trace(m, num_steps=40, lam=lam, a0=a0)
        analytic = np.asarray(analytical_a(a0, m, lam, np.arange(41)))
        np.testing.assert_allclose(trace.a_history, analytic, rtol=2e-2)


class TestBatchIteration:
    def test_matches_scalar_iteration_exactly(self, rng):
        ms = rng.uniform(0.01, 5e3, size=64)
        for fmt in (None, "fp32", "bf16"):
            batch = iterate_a_batch(ms, num_steps=5, fmt=fmt)
            scalar = np.array([iterate_a(float(m), num_steps=5, fmt=fmt) for m in ms])
            np.testing.assert_array_equal(batch, scalar)

    def test_zero_m_gives_zero_a(self):
        result = iterate_a_batch(np.array([4.0, 0.0, 1.0]))
        assert result[1] == 0.0
        assert result[0] > 0 and result[2] > 0

    def test_scalar_input_gives_length_one_array(self):
        result = iterate_a_batch(2.0)
        assert result.shape == (1,)

    def test_preserves_shape(self, rng):
        ms = rng.uniform(0.1, 10.0, size=(3, 4))
        assert iterate_a_batch(ms).shape == (3, 4)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            iterate_a_batch(np.array([1.0]), num_steps=-2)


class TestVectorNormalizer:
    def test_unit_norm_output(self, uniform_vector):
        normalized = iterl2norm_vector(uniform_vector, num_steps=20)
        assert np.linalg.norm(normalized) == pytest.approx(1.0, rel=1e-6)

    def test_direction_preserved(self, uniform_vector):
        normalized = iterl2norm_vector(uniform_vector, num_steps=10)
        cosine = np.dot(normalized, uniform_vector) / (
            np.linalg.norm(normalized) * np.linalg.norm(uniform_vector)
        )
        assert cosine == pytest.approx(1.0, abs=1e-12)

    def test_scale_by_sqrt_d(self, uniform_vector):
        d = uniform_vector.size
        scaled = iterl2norm_vector(uniform_vector, num_steps=20, scale_by_sqrt_d=True)
        assert np.linalg.norm(scaled) == pytest.approx(np.sqrt(d), rel=1e-5)

    def test_matches_exact_l2_normalization(self, rng):
        from repro.baselines.exact import exact_l2_normalize

        y = rng.normal(size=256)
        ours = iterl2norm_vector(y, num_steps=25)
        np.testing.assert_allclose(ours, exact_l2_normalize(y), atol=1e-9)

    def test_zero_vector_maps_to_zero(self):
        assert np.all(iterl2norm_vector(np.zeros(16)) == 0.0)

    def test_format_error_band_fp32(self, rng):
        """In fp32 with 5 steps the error stays in the paper's 1e-3 band."""
        y = rng.uniform(-1, 1, size=512)
        ours = iterl2norm_vector(y, num_steps=5, fmt="fp32")
        exact = y / np.linalg.norm(y)
        assert np.max(np.abs(ours - exact)) < 5e-3

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            iterl2norm_vector(rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            iterl2norm_vector(np.array([]))


# -- property-based tests -----------------------------------------------------------


@given(st.floats(min_value=1e-4, max_value=1e6))
@settings(max_examples=200, deadline=None)
def test_iteration_converges_for_any_positive_m(m):
    a = iterate_a(m, num_steps=40)
    assert a == pytest.approx(1.0 / np.sqrt(m), rel=1e-8)


@given(st.floats(min_value=1e-4, max_value=1e6), st.integers(min_value=0, max_value=8))
@settings(max_examples=200, deadline=None)
def test_iterate_never_overshoots_into_negative(m, steps):
    """a stays positive for the paper's a0/lambda rules."""
    trace = iterate_a_trace(m, num_steps=steps)
    assert all(a > 0 for a in trace.a_history)


@given(
    st.lists(st.floats(min_value=-100.0, max_value=100.0), min_size=2, max_size=128).filter(
        lambda v: any(abs(x) > 1e-3 for x in v)
    )
)
@settings(max_examples=100, deadline=None)
def test_vector_normalizer_produces_unit_norm(values):
    y = np.asarray(values)
    normalized = iterl2norm_vector(y, num_steps=30)
    assert np.linalg.norm(normalized) == pytest.approx(1.0, rel=1e-5)
