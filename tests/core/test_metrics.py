"""Tests for the error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    absolute_error,
    error_stats,
    error_stats_between,
    relative_error,
)


class TestAbsoluteError:
    def test_basic(self):
        np.testing.assert_array_equal(
            absolute_error(np.array([1.0, 2.0]), np.array([1.5, 1.0])),
            np.array([0.5, 1.0]),
        )

    def test_zero_for_identical(self, rng):
        x = rng.normal(size=20)
        assert np.all(absolute_error(x, x) == 0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            absolute_error(np.zeros(3), np.zeros(4))


class TestRelativeError:
    def test_basic(self):
        rel = relative_error(np.array([1.1]), np.array([1.0]))
        assert rel[0] == pytest.approx(0.1)

    def test_floor_prevents_division_by_zero(self):
        rel = relative_error(np.array([1e-3]), np.array([0.0]), floor=1e-6)
        assert np.isfinite(rel[0])


class TestErrorStats:
    def test_values(self):
        stats = error_stats(np.array([0.0, 1.0, 2.0, 3.0]))
        assert stats.mean == 1.5
        assert stats.max == 3.0
        assert stats.median == 1.5
        assert stats.count == 4
        assert stats.rms == pytest.approx(np.sqrt(14 / 4))

    def test_flattens_input(self):
        stats = error_stats(np.ones((2, 3)))
        assert stats.count == 6
        assert stats.mean == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            error_stats(np.array([]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            error_stats(np.array([-0.1]))

    def test_as_dict_roundtrip(self):
        stats = error_stats(np.array([1.0, 2.0]))
        d = stats.as_dict()
        assert d["mean"] == stats.mean
        assert d["max"] == stats.max
        assert set(d) == {"mean", "max", "median", "p99", "rms", "count"}

    def test_between_helper(self, rng):
        a, b = rng.normal(size=50), rng.normal(size=50)
        stats = error_stats_between(a, b)
        assert stats.max == pytest.approx(np.abs(a - b).max())

    def test_is_frozen(self):
        stats = error_stats(np.array([1.0]))
        with pytest.raises(Exception):
            stats.mean = 0.0  # type: ignore[misc]


# -- property-based tests -----------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_error_stats_orderings(errors):
    stats = error_stats(np.asarray(errors))
    tol = 1e-9 * (1.0 + stats.max)
    assert 0.0 <= stats.median <= stats.max + tol
    assert stats.mean <= stats.max + tol
    assert stats.p99 <= stats.max + tol
    assert stats.rms >= stats.mean - tol  # RMS >= arithmetic mean
