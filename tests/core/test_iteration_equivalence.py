"""Element-by-element equivalence of ``iterate_a_batch`` and ``iterate_a``.

The batch iteration is the hot path of the transformer substrate (every
token row goes through it), so it must agree with the scalar reference
*bitwise* in every format — including the awkward corners: values that are
subnormal in the working format, values near the format's overflow
boundary, values that underflow to zero when quantized, and non-positive
rows (which the batch path defines as ``a = 0``).
"""

import numpy as np
import pytest

from repro.core.iteration import iterate_a, iterate_a_batch
from repro.fpformats.spec import get_format

PAPER_FORMATS = ("fp32", "fp16", "bf16")

#: Hand-picked m values per format: ordinary magnitudes, values that are
#: subnormal once quantized, and values just below the overflow boundary.
EDGE_M = {
    "fp32": [
        1e-3, 0.25, 1.0, 3.7, 1e4,
        1e-39,            # subnormal in fp32
        2.5e-38,          # just above fp32's min normal
        3.0e38,           # near fp32 max_finite (3.4e38)
    ],
    "fp16": [
        1e-3, 0.25, 1.0, 3.7, 1e4,
        1e-7,             # subnormal in fp16 (min normal 6.1e-5)
        7e-5,             # just above fp16's min normal
        6.0e4,            # near fp16 max_finite (65504)
    ],
    "bf16": [
        1e-3, 0.25, 1.0, 3.7, 1e4,
        1e-39,            # subnormal in bf16
        2.5e-38,
        3.0e38,           # near bf16 max_finite (3.39e38)
    ],
}


@pytest.fixture(params=PAPER_FORMATS)
def fmt(request) -> str:
    return request.param


class TestElementwiseEquivalence:
    @pytest.mark.parametrize("num_steps", [0, 1, 3, 5, 10])
    def test_random_batch_matches_scalar(self, rng, fmt, num_steps):
        ms = rng.uniform(1e-3, 5e3, size=128)
        batch = iterate_a_batch(ms, num_steps=num_steps, fmt=fmt)
        scalar = np.array(
            [iterate_a(float(m), num_steps=num_steps, fmt=fmt) for m in ms]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_edge_magnitudes_match_scalar(self, fmt):
        ms = np.asarray(EDGE_M[fmt])
        batch = iterate_a_batch(ms, num_steps=5, fmt=fmt)
        scalar = np.array([iterate_a(float(m), num_steps=5, fmt=fmt) for m in ms])
        np.testing.assert_array_equal(batch, scalar)

    def test_underflowing_m_matches_scalar_fallback(self, fmt):
        """m > 0 that quantizes to zero uses the min-subnormal fallback."""
        spec = get_format(fmt)
        m = spec.min_positive_subnormal * 0.25  # quantizes to 0 in fmt
        assert float(np.asarray(m)) > 0.0
        batch = iterate_a_batch(np.array([m]), num_steps=5, fmt=fmt)
        scalar = iterate_a(m, num_steps=5, fmt=fmt)
        assert batch[0] == scalar
        assert batch[0] > 0.0

    def test_subnormal_m_stays_positive_and_exact(self, fmt):
        spec = get_format(fmt)
        m = spec.min_positive_subnormal * 3.0
        batch = iterate_a_batch(np.array([m]), num_steps=5, fmt=fmt)
        assert batch[0] == iterate_a(m, num_steps=5, fmt=fmt)

    def test_mixed_batch_with_non_positive_entries(self, fmt):
        """Non-positive rows yield a = 0; positive rows match the scalar."""
        ms = np.array([4.0, 0.0, -3.5, 1.0])
        batch = iterate_a_batch(ms, num_steps=5, fmt=fmt)
        assert batch[1] == 0.0
        assert batch[2] == 0.0
        assert batch[0] == iterate_a(4.0, num_steps=5, fmt=fmt)
        assert batch[3] == iterate_a(1.0, num_steps=5, fmt=fmt)

    def test_fp64_exact_path_matches_scalar(self, rng):
        ms = rng.uniform(0.01, 100.0, size=32)
        np.testing.assert_array_equal(
            iterate_a_batch(ms, num_steps=5, fmt=None),
            np.array([iterate_a(float(m), num_steps=5) for m in ms]),
        )

    def test_explicit_lam_and_a0_match_scalar(self, rng, fmt):
        ms = rng.uniform(0.5, 8.0, size=16)
        batch = iterate_a_batch(ms, num_steps=6, lam=0.05, a0=0.3, fmt=fmt)
        scalar = np.array(
            [iterate_a(float(m), num_steps=6, lam=0.05, a0=0.3, fmt=fmt) for m in ms]
        )
        np.testing.assert_array_equal(batch, scalar)
