"""Tests for the IterL2Norm-based layer normalization (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_layernorm
from repro.core.layernorm import IterL2Norm, IterL2NormConfig, iterl2norm_layernorm


class TestConfig:
    def test_defaults(self):
        config = IterL2NormConfig()
        assert config.num_steps == 5
        assert config.fmt == "fp64"
        assert config.elementwise_affine is True

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            IterL2NormConfig(num_steps=-1)

    def test_rejects_unknown_format(self):
        with pytest.raises(KeyError):
            IterL2NormConfig(fmt="fp12")


class TestIterL2NormModule:
    def test_matches_exact_layernorm_in_fp64(self, uniform_batch):
        layer = IterL2Norm(128, IterL2NormConfig(num_steps=30, fmt="fp64"))
        np.testing.assert_allclose(
            layer(uniform_batch), exact_layernorm(uniform_batch), atol=1e-8
        )

    def test_paper_error_band_fp32(self, rng):
        layer = IterL2Norm(384, IterL2NormConfig(num_steps=5, fmt="fp32"))
        x = rng.uniform(-1, 1, size=(100, 384))
        err = np.abs(layer(x) - exact_layernorm(x))
        assert err.mean() < 5e-3
        assert err.max() < 5e-2

    def test_paper_error_band_bf16(self, rng):
        layer = IterL2Norm(384, IterL2NormConfig(num_steps=5, fmt="bf16"))
        x = rng.uniform(-1, 1, size=(100, 384))
        err = np.abs(layer(x) - exact_layernorm(x))
        assert err.mean() < 2e-2

    def test_output_statistics(self, rng):
        """Normalized rows have ~zero mean and ~unit standard deviation."""
        layer = IterL2Norm(256, IterL2NormConfig(num_steps=20))
        x = rng.normal(3.0, 5.0, size=(32, 256))
        z = layer(x)
        np.testing.assert_allclose(z.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(z.std(axis=-1), 1.0, rtol=1e-4)

    def test_gamma_beta_applied(self, rng):
        gamma = rng.uniform(0.5, 2.0, size=64)
        beta = rng.normal(size=64)
        layer = IterL2Norm(64, IterL2NormConfig(num_steps=20), gamma=gamma, beta=beta)
        x = rng.normal(size=(8, 64))
        expected = exact_layernorm(x, gamma, beta)
        np.testing.assert_allclose(layer(x), expected, atol=1e-7)

    def test_affine_disabled(self, rng):
        config = IterL2NormConfig(num_steps=20, elementwise_affine=False)
        layer = IterL2Norm(32, config, gamma=np.full(32, 7.0))
        x = rng.normal(size=(4, 32))
        np.testing.assert_allclose(layer(x), exact_layernorm(x), atol=1e-7)

    def test_constant_row_outputs_beta(self):
        beta = np.linspace(-1, 1, 16)
        layer = IterL2Norm(16, IterL2NormConfig(num_steps=5), beta=beta)
        z = layer(np.full((3, 16), 2.5))
        np.testing.assert_allclose(z, np.broadcast_to(beta, (3, 16)), atol=1e-12)

    def test_preserves_leading_shape(self, rng):
        layer = IterL2Norm(32, IterL2NormConfig(num_steps=3))
        x = rng.normal(size=(2, 5, 7, 32))
        assert layer(x).shape == (2, 5, 7, 32)

    def test_single_row_input(self, rng):
        layer = IterL2Norm(48, IterL2NormConfig(num_steps=5, fmt="fp32"))
        x = rng.uniform(-1, 1, size=48)
        assert layer(x).shape == (48,)

    def test_more_steps_reduce_error(self, rng):
        x = rng.uniform(-1, 1, size=(50, 384))
        exact = exact_layernorm(x)
        errors = []
        for steps in (1, 3, 5, 10):
            layer = IterL2Norm(384, IterL2NormConfig(num_steps=steps, fmt="fp64"))
            errors.append(np.abs(layer(x) - exact).mean())
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-5

    def test_wrong_last_dim_raises(self, rng):
        layer = IterL2Norm(16)
        with pytest.raises(ValueError):
            layer(rng.normal(size=(4, 17)))

    def test_wrong_param_shape_raises(self):
        with pytest.raises(ValueError):
            IterL2Norm(8, gamma=np.ones(9))
        with pytest.raises(ValueError):
            IterL2Norm(8, beta=np.ones((8, 1)))
        with pytest.raises(ValueError):
            IterL2Norm(0)

    def test_params_quantized_to_format(self):
        layer = IterL2Norm(4, IterL2NormConfig(fmt="bf16"), gamma=np.full(4, 1.0 + 2**-12))
        np.testing.assert_array_equal(layer.gamma, np.ones(4))


class TestFunctionalForm:
    def test_matches_module(self, rng):
        x = rng.uniform(-1, 1, size=(6, 96))
        module = IterL2Norm(96, IterL2NormConfig(num_steps=5, fmt="fp32"))
        functional = iterl2norm_layernorm(x, num_steps=5, fmt="fp32")
        np.testing.assert_array_equal(functional, module(x))

    def test_with_affine_params(self, rng):
        x = rng.normal(size=(3, 32))
        gamma, beta = rng.uniform(0.5, 1.5, 32), rng.normal(size=32)
        out = iterl2norm_layernorm(x, gamma=gamma, beta=beta, num_steps=20)
        np.testing.assert_allclose(out, exact_layernorm(x, gamma, beta), atol=1e-7)


# -- property-based tests -----------------------------------------------------------


@given(
    st.integers(min_value=2, max_value=64),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_layernorm_output_mean_is_zero(d, batch, seed):
    """Invariant: without beta, every output row has (near-)zero mean."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, d)) * rng.uniform(0.1, 10)
    layer = IterL2Norm(d, IterL2NormConfig(num_steps=5, fmt="fp32"))
    z = layer(x)
    assert np.all(np.abs(z.mean(axis=-1)) < 1e-2)


@given(
    st.integers(min_value=4, max_value=48),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_layernorm_is_shift_invariant(d, seed):
    """Layer norm is invariant to adding a constant to every element."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, d))
    layer = IterL2Norm(d, IterL2NormConfig(num_steps=8, fmt="fp64"))
    np.testing.assert_allclose(layer(x), layer(x + 13.0), atol=1e-5)


@given(
    st.integers(min_value=4, max_value=48),
    st.floats(min_value=0.1, max_value=50.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_layernorm_is_scale_invariant(d, scale, seed):
    """Layer norm (without affine) is invariant to positive rescaling."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, d))
    layer = IterL2Norm(d, IterL2NormConfig(num_steps=10, fmt="fp64"))
    np.testing.assert_allclose(layer(x), layer(scale * x), atol=1e-4)
