"""Tests for the convergence diagnostics."""

import numpy as np
import pytest

from repro.core.convergence import (
    convergence_report,
    iterations_to_tolerance,
    worst_case_steps,
)
from repro.core.iteration import iterate_a_trace


class TestIterationsToTolerance:
    def test_converged_trace(self):
        trace = iterate_a_trace(100.0, num_steps=20)
        steps = iterations_to_tolerance(trace, tolerance=1e-3)
        assert steps is not None
        assert steps <= 6  # the paper's five plus slack for worst-case significand

    def test_unconverged_trace_returns_none(self):
        # A tiny lambda cannot converge in two steps.
        trace = iterate_a_trace(100.0, num_steps=2, lam=1e-6)
        assert iterations_to_tolerance(trace, tolerance=1e-6) is None

    def test_rejects_bad_tolerance(self):
        trace = iterate_a_trace(4.0, num_steps=2)
        with pytest.raises(ValueError):
            iterations_to_tolerance(trace, tolerance=0.0)

    def test_zero_steps_when_a0_exact(self):
        trace = iterate_a_trace(4.0, num_steps=3, a0=0.5)
        assert iterations_to_tolerance(trace, tolerance=1e-6) == 0


class TestConvergenceReport:
    def test_report_fields(self):
        report = convergence_report(50.0, num_steps=10)
        assert report.m == 50.0
        assert len(report.error_trace) == 11
        assert len(report.analytical_trace) == 11
        assert report.final_error == report.error_trace[-1]
        assert report.relative_final_error == pytest.approx(
            report.final_error * np.sqrt(50.0)
        )

    def test_final_error_small_after_ten_steps(self, rng):
        for m in rng.uniform(0.1, 1e4, size=20):
            report = convergence_report(float(m), num_steps=10)
            assert report.relative_final_error < 1e-4

    def test_analytical_trace_decreases(self):
        report = convergence_report(64.0, num_steps=10)
        analytic = np.asarray(report.analytical_trace)
        assert analytic[-1] < analytic[0]

    def test_format_option(self):
        report = convergence_report(12.3, num_steps=5, fmt="bf16")
        # In bf16 the error floor is set by the 7-bit mantissa.
        assert report.relative_final_error < 2e-2


class TestWorstCaseSteps:
    def test_paper_claim_five_steps(self, rng):
        """With the paper's a0/lambda rules, <= 5-6 steps reach 0.1% everywhere."""
        ms = rng.uniform(1e-2, 1e4, size=100)
        worst = worst_case_steps(ms, tolerance=1e-3, max_steps=20)
        assert worst <= 6

    def test_raises_when_never_converging(self):
        with pytest.raises(RuntimeError):
            # m just above 1 starts ~30% away; one step cannot reach 1e-9.
            worst_case_steps(np.array([1.0 + 1e-7]), tolerance=1e-9, max_steps=1)
