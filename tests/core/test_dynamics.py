"""Tests for the continuous dynamics of Theorem II.1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamics import (
    NormalizationDynamics,
    analytical_a,
    analytical_k,
    fixed_points,
    integrate_ode,
)


class TestFixedPoints:
    def test_three_fixed_points(self):
        points = fixed_points(norm_y=2.0, alpha=1.0)
        assert len(points) == 3
        assert sorted(p.k for p in points) == [-2.0, 0.0, 2.0]

    def test_zero_is_unstable_others_stable(self):
        points = {p.k: p.stable for p in fixed_points(norm_y=3.0)}
        assert points[0.0] is False
        assert points[3.0] is True
        assert points[-3.0] is True

    def test_alpha_scaling(self):
        points = fixed_points(norm_y=2.0, alpha=4.0)
        assert max(p.k for p in points) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fixed_points(0.0)
        with pytest.raises(ValueError):
            fixed_points(1.0, alpha=-1.0)


class TestVectorDynamics:
    def test_steady_state_is_normalized(self, rng):
        y = rng.normal(size=32)
        dyn = NormalizationDynamics(y)
        steady = dyn.steady_state()
        assert np.linalg.norm(steady) == pytest.approx(1.0, rel=1e-12)
        np.testing.assert_allclose(steady, y / np.linalg.norm(y), rtol=1e-12)

    def test_steady_state_with_alpha(self, rng):
        y = rng.normal(size=16)
        dyn = NormalizationDynamics(y, alpha=4.0)
        assert np.linalg.norm(dyn.steady_state()) == pytest.approx(0.5, rel=1e-12)

    def test_derivative_vanishes_at_steady_state(self, rng):
        y = rng.normal(size=16)
        dyn = NormalizationDynamics(y)
        deriv = dyn.derivative(dyn.steady_state())
        np.testing.assert_allclose(deriv, 0.0, atol=1e-12)

    def test_ode_integration_converges_to_steady_state(self, rng):
        y = rng.normal(size=8)
        dyn = NormalizationDynamics(y)
        y_tilde0 = 0.1 * y / np.dot(y, y)  # positive k0
        final = integrate_ode(dyn, y_tilde0, t_end=20.0 / dyn.m, dt=0.05 / dyn.m)
        np.testing.assert_allclose(final, dyn.steady_state(), rtol=1e-5, atol=1e-8)

    def test_negative_initial_k_converges_to_negative_fixed_point(self, rng):
        y = rng.normal(size=8)
        dyn = NormalizationDynamics(y)
        y_tilde0 = -0.1 * y / np.dot(y, y)  # negative k0
        final = integrate_ode(dyn, y_tilde0, t_end=20.0 / dyn.m, dt=0.05 / dyn.m)
        np.testing.assert_allclose(final, -dyn.steady_state(), rtol=1e-5, atol=1e-8)

    def test_trajectory_stays_parallel_to_y(self, rng):
        y = rng.normal(size=8)
        dyn = NormalizationDynamics(y)
        state = 0.2 * y / np.dot(y, y)
        for _ in range(50):
            state = state + (0.01 / dyn.m) * dyn.derivative(state) * dyn.tau
            cosine = np.dot(state, y) / (np.linalg.norm(state) * np.linalg.norm(y))
            assert cosine == pytest.approx(1.0, abs=1e-10)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            NormalizationDynamics(np.zeros(4))
        with pytest.raises(ValueError):
            NormalizationDynamics(rng.normal(size=(2, 2)))
        with pytest.raises(ValueError):
            NormalizationDynamics(rng.normal(size=4), alpha=0.0)
        with pytest.raises(ValueError):
            NormalizationDynamics(rng.normal(size=4), tau=-1.0)

    def test_integrate_rejects_bad_steps(self, rng):
        dyn = NormalizationDynamics(rng.normal(size=4))
        with pytest.raises(ValueError):
            integrate_ode(dyn, np.ones(4), t_end=0.0)
        with pytest.raises(ValueError):
            integrate_ode(dyn, np.ones(4), t_end=1.0, dt=0.0)


class TestAnalyticalSolutions:
    def test_analytical_a_limit(self):
        m = 10.0
        a_inf = analytical_a(a0=0.2, m=m, lam=0.05, steps=10_000)
        assert a_inf == pytest.approx(1.0 / np.sqrt(m), rel=1e-9)

    def test_analytical_a_initial_value(self):
        assert analytical_a(a0=0.3, m=5.0, lam=0.1, steps=0) == pytest.approx(0.3)

    def test_analytical_a_monotone_increase_from_below(self):
        m = 4.0
        trajectory = np.asarray(analytical_a(0.1, m, 0.05, np.arange(50)))
        assert np.all(np.diff(trajectory) > 0)
        assert np.all(trajectory <= 1.0 / np.sqrt(m) + 1e-12)

    def test_analytical_a_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            analytical_a(0.1, 0.0, 0.1, 5)

    def test_analytical_k_limits(self):
        k_inf = analytical_k(k0=0.5, norm_y=3.0, alpha=1.0, t=1e3)
        assert k_inf == pytest.approx(3.0, rel=1e-9)
        k_neg = analytical_k(k0=-0.5, norm_y=3.0, alpha=1.0, t=1e3)
        assert k_neg == pytest.approx(-3.0, rel=1e-9)

    def test_analytical_k_zero_stays_zero(self):
        assert analytical_k(0.0, 2.0, 1.0, 5.0) == 0.0

    def test_analytical_k_matches_derivative(self):
        # d/dt (1/k^2) check via small finite difference.
        k0, norm_y, alpha = 0.7, 2.0, 1.0
        dt = 1e-6
        k_t = analytical_k(k0, norm_y, alpha, 1.0)
        k_t_dt = analytical_k(k0, norm_y, alpha, 1.0 + dt)
        numeric = (k_t_dt - k_t) / dt
        analytic = k_t * norm_y**2 - alpha * k_t**3
        assert numeric == pytest.approx(analytic, rel=1e-4)

    def test_analytical_k_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            analytical_k(1.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            analytical_k(1.0, 1.0, -1.0, 1.0)


# -- property-based tests -----------------------------------------------------------


@given(
    st.floats(min_value=0.01, max_value=1e4),
    st.floats(min_value=0.01, max_value=0.9),
)
@settings(max_examples=100, deadline=None)
def test_analytical_a_always_converges_to_inverse_norm(m, ratio):
    """For any positive m and a0 below the fixed point, Eq. (9) -> 1/sqrt(m)."""
    a0 = ratio / np.sqrt(m)
    lam = 0.5 / m
    a_final = analytical_a(a0, m, lam, 200)
    assert a_final == pytest.approx(1.0 / np.sqrt(m), rel=1e-6)


@given(st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=50, deadline=None)
def test_fixed_points_match_theorem(norm_y):
    stable = [p.k for p in fixed_points(norm_y) if p.stable]
    assert sorted(stable) == pytest.approx([-norm_y, norm_y])
