"""Cross-module integration tests.

These tests exercise full paths through the library: algorithm vs macro vs
baseline consistency, the normalizer registry inside the transformer, and a
miniature version of each paper experiment running end to end.
"""

import numpy as np
import pytest

from repro import (
    ExactLayerNorm,
    FISRLayerNorm,
    IterL2Norm,
    IterL2NormConfig,
    exact_layernorm,
    iterl2norm_vector,
)
from repro.baselines.exact import exact_l2_normalize
from repro.core.initialization import initial_a, update_rate
from repro.core.iteration import iterate_a_trace
from repro.data.datasets import build_dataset
from repro.macro.latency import LatencyModel
from repro.macro.simulator import IterL2NormMacro, MacroConfig
from repro.nn.config import get_config
from repro.nn.model import OPTLanguageModel
from repro.nn.trainer import Trainer, TrainingConfig


class TestAlgorithmMacroConsistency:
    def test_three_implementations_agree(self, rng, paper_format):
        """Pure algorithm, layer-norm module, and macro agree bit-exactly."""
        d = 320
        x = rng.uniform(-1, 1, size=d)
        module_out = IterL2Norm(d, IterL2NormConfig(num_steps=5, fmt=paper_format))(x)
        macro_out = IterL2NormMacro(MacroConfig(fmt=paper_format)).normalize(x).output
        np.testing.assert_array_equal(module_out, macro_out)

    def test_vector_normalizer_consistent_with_layernorm(self, rng):
        """Algorithm 1 is Step-2 L2 normalization of the mean-shifted input."""
        d = 200
        x = rng.uniform(-1, 1, size=d)
        y = x - x.mean()
        via_vector = np.sqrt(d) * iterl2norm_vector(y, num_steps=30)
        via_layernorm = IterL2Norm(d, IterL2NormConfig(num_steps=30))(x)
        np.testing.assert_allclose(via_vector, via_layernorm, atol=1e-9)

    def test_macro_latency_model_full_sweep_agreement(self, rng):
        """Closed-form latency equals the simulator for every chunk count."""
        model = LatencyModel()
        for chunks in range(1, 17):
            d = 64 * chunks
            sim = IterL2NormMacro(MacroConfig()).normalize(rng.uniform(-1, 1, d))
            assert sim.total_cycles == model.total_cycles(d)


class TestMethodOrdering:
    def test_error_ordering_across_methods(self, rng):
        """Exact < IterL2Norm(fp32) comparable to FISR(fp32) << bf16 variants."""
        d = 512
        x = rng.uniform(-1, 1, size=(64, d))
        reference = exact_layernorm(x)

        exact32 = ExactLayerNorm(d, fmt="fp32")(x)
        iter32 = IterL2Norm(d, IterL2NormConfig(5, "fp32"))(x)
        fisr32 = FISRLayerNorm(d, fmt="fp32")(x)
        iter16 = IterL2Norm(d, IterL2NormConfig(5, "bf16"))(x)

        err = lambda z: np.abs(z - reference).mean()  # noqa: E731
        assert err(exact32) < err(iter32)
        assert err(iter32) < err(iter16)
        assert err(fisr32) < err(iter16)
        assert err(iter32) < 5e-3 and err(fisr32) < 5e-3

    def test_registry_round_trip_in_model(self, rng):
        """Every registered normalizer can be swapped into the model."""
        model = OPTLanguageModel(get_config("opt-test"), rng=rng)
        model.eval()
        ids = rng.integers(0, 64, size=(1, 12))
        baseline = model(ids)
        for method in ("exact", "iterl2norm", "fisr", "lut"):
            model.replace_layernorm(method, fmt="fp32")
            out = model(ids)
            assert np.all(np.isfinite(out))
            np.testing.assert_allclose(out, baseline, atol=0.1)
        model.restore_layernorm()


class TestHardwareRulesInsideFullPath:
    def test_initialization_rules_used_by_layernorm(self, rng):
        """The layer norm's internal iteration uses Eq. (6)/(10) values."""
        d = 128
        x = rng.uniform(-1, 1, size=d)
        y = x - x.mean()
        m = float(y @ y)
        trace = iterate_a_trace(m, num_steps=5, fmt="fp32")
        assert trace.a_history[0] == initial_a(m, "fp32")
        assert trace.lam == update_rate(m, "fp32")

    def test_normalized_output_close_to_unit_sphere(self, rng):
        for d in (64, 200, 1024):
            x = rng.uniform(-1, 1, size=d)
            y = x - x.mean()
            out = iterl2norm_vector(y, num_steps=5, fmt="fp32")
            assert np.linalg.norm(out) == pytest.approx(1.0, rel=5e-3)
            np.testing.assert_allclose(
                out, exact_l2_normalize(y), atol=5e-3
            )


class TestMiniLLMPipeline:
    def test_train_swap_evaluate(self, rng):
        """A miniature Table IV: train, swap the normalizer, compare perplexity."""
        dataset = build_dataset("bst-sim", max_vocab_size=64)
        config = get_config("opt-test")
        model = OPTLanguageModel(config, rng=rng)
        trainer = Trainer(model, TrainingConfig(num_steps=40, batch_size=4, seq_len=16, seed=1))
        result = trainer.train(np.clip(dataset.train_tokens, 0, config.vocab_size - 1))
        assert result.final_loss < result.initial_loss

        inputs, targets = dataset.eval_windows(16, max_windows=4)
        inputs = np.clip(inputs, 0, config.vocab_size - 1)
        targets = np.clip(targets, 0, config.vocab_size - 1)

        from repro.nn.functional import cross_entropy, perplexity_from_loss

        model.eval()
        model.replace_layernorm("exact", fmt="fp32")
        baseline = perplexity_from_loss(cross_entropy(model(inputs), targets)[0])
        model.replace_layernorm("iterl2norm", fmt="fp32", num_steps=5)
        swapped = perplexity_from_loss(cross_entropy(model(inputs), targets)[0])
        assert abs(swapped - baseline) / baseline < 0.02
