"""Tests for the OPT-style language model, optimizers, trainer, and generation."""

import numpy as np
import pytest

from repro.nn.config import OPT_CONFIGS, OPTConfig, get_config
from repro.nn.generation import generate
from repro.nn.model import OPTLanguageModel
from repro.nn.module import Parameter
from repro.nn.optimizer import SGD, Adam
from repro.nn.trainer import Trainer, TrainingConfig


@pytest.fixture
def tiny_model(rng):
    return OPTLanguageModel(get_config("opt-test"), rng=rng)


class TestConfig:
    def test_presets_exist(self):
        for name in ("opt-125m", "opt-350m", "opt-125m-sim", "opt-350m-sim", "opt-test"):
            assert name in OPT_CONFIGS

    def test_paper_shapes(self):
        cfg125 = get_config("opt-125m")
        cfg350 = get_config("opt-350m")
        assert (cfg125.embed_dim, cfg125.num_layers, cfg125.num_heads) == (768, 12, 12)
        assert (cfg350.embed_dim, cfg350.num_layers, cfg350.num_heads) == (1024, 24, 16)

    def test_sim_models_preserve_ordering(self):
        small = get_config("opt-125m-sim")
        large = get_config("opt-350m-sim")
        assert large.embed_dim > small.embed_dim
        assert large.num_layers > small.num_layers

    def test_num_layernorms(self):
        assert get_config("opt-125m").num_layernorms == 25
        assert get_config("opt-test").num_layernorms == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            OPTConfig("bad", 10, 10, embed_dim=10, num_layers=1, num_heads=3, ffn_dim=10)
        with pytest.raises(KeyError):
            get_config("opt-13b")


class TestModelForward:
    def test_logits_shape(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(2, 8))
        assert tiny_model(ids).shape == (2, 8, 64)

    def test_causality_of_logits(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(1, 6))
        logits1 = tiny_model(ids)
        ids2 = ids.copy()
        ids2[0, 5] = (ids2[0, 5] + 1) % 64
        logits2 = tiny_model(ids2)
        np.testing.assert_allclose(logits1[0, :5], logits2[0, :5], atol=1e-10)

    def test_sequence_length_limit(self, tiny_model, rng):
        with pytest.raises(ValueError):
            tiny_model(rng.integers(0, 64, size=(1, 33)))

    def test_rejects_1d_input(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model(np.array([1, 2, 3]))

    def test_loss_positive(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(2, 8))
        targets = rng.integers(0, 64, size=(2, 8))
        loss, logits = tiny_model.loss(ids, targets)
        assert loss > 0
        assert logits.shape == (2, 8, 64)

    def test_layer_norm_count(self, tiny_model):
        assert len(tiny_model.layer_norms()) == tiny_model.config.num_layernorms

    def test_parameter_count_positive(self, tiny_model):
        assert tiny_model.num_parameters() > 10_000


class TestModelBackward:
    def test_gradients_flow_to_all_parameters(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(2, 8))
        targets = rng.integers(0, 64, size=(2, 8))
        tiny_model.zero_grad()
        tiny_model.loss(ids, targets)
        tiny_model.backward()
        zero_grads = [
            name
            for name, p in tiny_model.named_parameters()
            if not np.any(p.grad != 0.0)
        ]
        assert zero_grads == []

    def test_embedding_gradient_matches_numeric(self, rng):
        """Spot-check the full-model gradient on a few embedding entries."""
        model = OPTLanguageModel(get_config("opt-test"), rng=rng)
        ids = rng.integers(0, 64, size=(1, 4))
        targets = rng.integers(0, 64, size=(1, 4))
        model.zero_grad()
        model.loss(ids, targets)
        model.backward()
        param = model.token_embedding.weight
        analytic = param.grad.copy()

        eps = 1e-5
        token = int(ids[0, 0])
        for j in (0, 7, 15):
            original = param.data[token, j]
            param.data[token, j] = original + eps
            plus, _ = model.loss(ids, targets)
            param.data[token, j] = original - eps
            minus, _ = model.loss(ids, targets)
            param.data[token, j] = original
            numeric = (plus - minus) / (2 * eps)
            assert analytic[token, j] == pytest.approx(numeric, abs=1e-4)

    def test_backward_without_loss_raises(self, tiny_model):
        with pytest.raises(RuntimeError):
            tiny_model.backward()


class TestLayerNormSwap:
    def test_swap_changes_eval_output_only_slightly(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(2, 8))
        tiny_model.eval()
        baseline = tiny_model(ids)
        tiny_model.replace_layernorm("iterl2norm", fmt="fp32", num_steps=5)
        swapped = tiny_model(ids)
        assert not np.array_equal(baseline, swapped)
        np.testing.assert_allclose(baseline, swapped, atol=0.05)

    def test_restore(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(1, 8))
        tiny_model.eval()
        baseline = tiny_model(ids)
        tiny_model.replace_layernorm("iterl2norm", fmt="bf16", num_steps=3)
        tiny_model.restore_layernorm()
        np.testing.assert_array_equal(tiny_model(ids), baseline)

    def test_swap_reuses_trained_gamma_beta(self, tiny_model, rng):
        for norm in tiny_model.layer_norms():
            norm.gamma.data = rng.uniform(0.5, 1.5, norm.normalized_dim)
        tiny_model.replace_layernorm("exact", fmt=None)
        for norm in tiny_model.layer_norms():
            np.testing.assert_array_equal(norm.eval_normalizer.gamma, norm.gamma.data)

    def test_training_mode_unaffected_by_swap(self, tiny_model, rng):
        ids = rng.integers(0, 64, size=(1, 8))
        tiny_model.train()
        before = tiny_model(ids)
        tiny_model.replace_layernorm("iterl2norm", fmt="bf16", num_steps=3)
        tiny_model.train()
        np.testing.assert_array_equal(tiny_model(ids), before)


class TestOptimizers:
    def test_sgd_reduces_quadratic(self):
        param = Parameter(np.array([5.0]))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            param.grad = 2 * param.data  # d/dx x^2
            opt.step()
        assert abs(param.data[0]) < 1e-3

    def test_sgd_momentum(self):
        param = Parameter(np.array([5.0]))
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            param.grad = 2 * param.data
            opt.step()
        assert abs(param.data[0]) < 1e-2

    def test_adam_reduces_quadratic(self):
        param = Parameter(np.array([3.0, -4.0]))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            param.grad = 2 * param.data
            opt.step()
        assert np.all(np.abs(param.data) < 1e-2)

    def test_adam_weight_decay(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.01, weight_decay=0.1)
        opt.zero_grad()
        param.grad = np.zeros(1)
        opt.step()
        assert param.data[0] < 1.0

    def test_validation(self):
        param = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            Adam([param], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([param], momentum=1.5)
        with pytest.raises(ValueError):
            Adam([param], betas=(1.0, 0.9))


class TestTrainer:
    def test_training_reduces_loss(self, rng):
        model = OPTLanguageModel(get_config("opt-test"), rng=rng)
        # A highly regular token stream is easy to learn in a few steps.
        tokens = np.tile(np.arange(16), 200)
        trainer = Trainer(model, TrainingConfig(num_steps=60, batch_size=4, seq_len=16, seed=0))
        result = trainer.train(tokens)
        assert result.final_loss < result.initial_loss * 0.8

    def test_sample_batch_shapes_and_shift(self, rng):
        model = OPTLanguageModel(get_config("opt-test"), rng=rng)
        trainer = Trainer(model, TrainingConfig(num_steps=1, batch_size=3, seq_len=8))
        tokens = np.arange(100) % 64
        inputs, targets = trainer.sample_batch(tokens)
        assert inputs.shape == targets.shape == (3, 8)
        np.testing.assert_array_equal(inputs[:, 1:], targets[:, :-1])

    def test_short_stream_rejected(self, rng):
        model = OPTLanguageModel(get_config("opt-test"), rng=rng)
        trainer = Trainer(model, TrainingConfig(num_steps=1, seq_len=16))
        with pytest.raises(ValueError):
            trainer.sample_batch(np.arange(10))

    def test_gradient_clipping_bounds_update(self, rng):
        model = OPTLanguageModel(get_config("opt-test"), rng=rng)
        trainer = Trainer(model, TrainingConfig(num_steps=1, grad_clip=0.5))
        for p in model.parameters():
            p.grad = np.full_like(p.data, 10.0)
        trainer._clip_gradients()
        total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in model.parameters()))
        assert total == pytest.approx(0.5, rel=1e-6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(num_steps=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)


class TestGeneration:
    def test_greedy_is_deterministic(self, tiny_model):
        prompt = np.array([1, 2, 3])
        out1 = generate(tiny_model, prompt, max_new_tokens=5, temperature=0.0)
        out2 = generate(tiny_model, prompt, max_new_tokens=5, temperature=0.0)
        np.testing.assert_array_equal(out1, out2)
        assert out1.size == 8

    def test_prompt_is_prefix(self, tiny_model):
        prompt = np.array([4, 5])
        out = generate(tiny_model, prompt, max_new_tokens=3, temperature=0.0)
        np.testing.assert_array_equal(out[:2], prompt)

    def test_sampling_with_top_k(self, tiny_model):
        out = generate(
            tiny_model,
            np.array([1]),
            max_new_tokens=4,
            temperature=1.0,
            top_k=5,
            rng=np.random.default_rng(0),
        )
        assert out.size == 5
        assert np.all((out >= 0) & (out < 64))

    def test_context_window_clipping(self, tiny_model):
        prompt = np.arange(40) % 64  # longer than max_position=32
        out = generate(tiny_model, prompt, max_new_tokens=1, temperature=0.0)
        assert out.size == 41

    def test_validation(self, tiny_model):
        with pytest.raises(ValueError):
            generate(tiny_model, np.array([]), max_new_tokens=1)
        with pytest.raises(ValueError):
            generate(tiny_model, np.array([1]), max_new_tokens=-1)
        with pytest.raises(ValueError):
            generate(tiny_model, np.array([1]), top_k=0)
