"""Generation satellites: stop-token early exit and per-row batch RNGs."""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.generation import generate, generate_batch
from repro.nn.model import OPTLanguageModel


@pytest.fixture
def model(rng):
    m = OPTLanguageModel(get_config("opt-test"), rng=rng)
    m.eval()
    return m


def greedy_token_at(model, prompt, index):
    """The index-th token greedy decoding generates after ``prompt``."""
    out = generate(model, prompt, max_new_tokens=index + 1, temperature=0.0)
    return int(out[prompt.size + index])


class TestGenerateStopTokens:
    def test_stops_at_stop_token_keeping_it(self, model):
        prompt = np.array([1, 2, 3])
        eos = greedy_token_at(model, prompt, 3)
        out = generate(model, prompt, max_new_tokens=20, temperature=0.0,
                       stop_tokens=(eos,))
        assert out[-1] == eos
        assert out.size < prompt.size + 20
        # Prefix equals unrestricted greedy decoding.
        full = generate(model, prompt, max_new_tokens=20, temperature=0.0)
        np.testing.assert_array_equal(out, full[: out.size])

    def test_scalar_stop_token_accepted(self, model):
        prompt = np.array([1, 2, 3])
        eos = greedy_token_at(model, prompt, 0)
        out = generate(model, prompt, max_new_tokens=10, temperature=0.0,
                       stop_tokens=eos)
        assert out.size == prompt.size + 1

    def test_no_stop_token_unchanged(self, model):
        prompt = np.array([4, 5])
        a = generate(model, prompt, max_new_tokens=8, temperature=0.0)
        b = generate(model, prompt, max_new_tokens=8, temperature=0.0,
                     stop_tokens=())
        np.testing.assert_array_equal(a, b)

    def test_stop_in_uncached_path(self, model):
        prompt = np.array([1, 2, 3])
        eos = greedy_token_at(model, prompt, 2)
        out = generate(model, prompt, max_new_tokens=20, temperature=0.0,
                       use_cache=False, stop_tokens=(eos,))
        assert out[-1] == eos
        assert out.size <= prompt.size + 20

    def test_stop_in_sliding_window_tail(self, model):
        """A stop token found after the window slid still exits early."""
        prompt = np.array([1, 2, 3])
        max_pos = model.config.max_position
        full = generate(model, prompt, max_new_tokens=max_pos + 10, temperature=0.0)
        tail_token = int(full[max_pos + 5])  # produced after the slide
        out = generate(model, prompt, max_new_tokens=max_pos + 10, temperature=0.0,
                       stop_tokens=(tail_token,))
        assert out[-1] == tail_token
        assert out.size < full.size


class TestGenerateBatchStopTokens:
    def test_rows_finish_independently_and_pad(self, model):
        prompts = np.array([[1, 2, 3], [9, 8, 7]])
        eos = greedy_token_at(model, prompts[0], 2)
        out = generate_batch(model, prompts, max_new_tokens=15, temperature=0.0,
                             stop_tokens=(eos,), pad_token_id=0)
        assert out.shape == (2, 18)
        for row in range(2):
            single = generate(model, prompts[row], max_new_tokens=15,
                              temperature=0.0, stop_tokens=(eos,))
            np.testing.assert_array_equal(out[row, : single.size], single)
            assert np.all(out[row, single.size :] == 0)

    def test_all_rows_stopping_ends_loop(self, model):
        prompts = np.array([[1, 2, 3], [1, 2, 3]])
        eos = greedy_token_at(model, prompts[0], 0)
        out = generate_batch(model, prompts, max_new_tokens=10, temperature=0.0,
                             stop_tokens=(eos,))
        assert np.all(out[:, 3] == eos)
        assert np.all(out[:, 4:] == 0)

    def test_stop_across_sliding_rebuild(self, model):
        """Stopped rows stay stopped and exact across the window rebuild."""
        prompts = np.tile(np.arange(4), (2, 1))
        max_new = model.config.max_position + 6
        full = generate_batch(model, prompts, max_new_tokens=max_new, temperature=0.0)
        eos = int(full[0, prompts.shape[1] + 2])
        out = generate_batch(model, prompts, max_new_tokens=max_new, temperature=0.0,
                             stop_tokens=(eos,))
        for row in range(2):
            single = generate_batch(
                model, prompts[row : row + 1], max_new_tokens=max_new,
                temperature=0.0, stop_tokens=(eos,),
            )
            np.testing.assert_array_equal(out[row], single[0])


class TestBatchRowRngIndependence:
    def test_row_draws_do_not_depend_on_batch_partners(self, model):
        """The fixed coupling bug: sampling one row no longer consumes the
        shared stream that other rows' draws depended on."""
        a = np.array([1, 2, 3])
        partner1 = np.array([9, 8, 7])
        partner2 = np.array([60, 61, 62])
        out1 = generate_batch(model, np.stack([a, partner1]), max_new_tokens=8,
                              temperature=1.0, top_k=8,
                              rng=np.random.default_rng(42))
        out2 = generate_batch(model, np.stack([a, partner2]), max_new_tokens=8,
                              temperature=1.0, top_k=8,
                              rng=np.random.default_rng(42))
        np.testing.assert_array_equal(out1[0], out2[0])

    def test_row_index_determines_stream(self, model):
        """Same seed, same row index, different batch width: same tokens."""
        a = np.array([1, 2, 3])
        wide = np.stack([a, a, a])
        out_wide = generate_batch(model, wide, max_new_tokens=6, temperature=1.0,
                                  rng=np.random.default_rng(0))
        out_narrow = generate_batch(model, a[None, :], max_new_tokens=6,
                                    temperature=1.0, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out_wide[0], out_narrow[0])

    def test_distinct_rows_get_distinct_streams(self, model):
        same = np.stack([np.array([1, 2, 3])] * 2)
        out = generate_batch(model, same, max_new_tokens=10, temperature=1.5,
                             rng=np.random.default_rng(3))
        # Identical prompts but spawned generators: rows should diverge.
        assert not np.array_equal(out[0], out[1])
