"""Masked ragged batched forward: per-row bit-exactness and mask semantics."""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.functional import det_softmax, ragged_attention_mask, softmax
from repro.nn.model import OPTLanguageModel


@pytest.fixture
def model(rng):
    m = OPTLanguageModel(get_config("opt-test"), rng=rng)
    m.eval()
    return m


class TestRaggedAttentionMask:
    def test_no_past_square_batch(self):
        mask = ragged_attention_mask(np.array([3]), np.array([0]))
        assert mask.shape == (1, 3, 3)
        np.testing.assert_array_equal(mask[0, 0], [0.0, -np.inf, -np.inf])
        np.testing.assert_array_equal(mask[0, 2], np.zeros(3))

    def test_ragged_rows_blank_pad_keys(self):
        # Row 0: 1 new / 2 past (total 3); row 1: 2 new / 0 past (total 2).
        mask = ragged_attention_mask(np.array([1, 2]), np.array([2, 0]))
        assert mask.shape == (2, 2, 3)
        # Row 0, real query: all 3 keys visible.
        np.testing.assert_array_equal(mask[0, 1], np.zeros(3))
        # Row 1, first real query: leading pad key blocked, own pos visible.
        np.testing.assert_array_equal(mask[1, 0], [-np.inf, 0.0, -np.inf])
        np.testing.assert_array_equal(mask[1, 1], [-np.inf, 0.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ragged_attention_mask(np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            ragged_attention_mask(np.array([1, 1]), np.array([0]))


class TestDetSoftmax:
    def test_matches_softmax_values(self, rng):
        x = rng.normal(size=(2, 3, 17))
        np.testing.assert_allclose(det_softmax(x), softmax(x), rtol=1e-15)

    def test_invariant_to_trailing_masking(self, rng):
        """The property plain softmax lacks: appending masked columns never
        changes the result for the unmasked prefix (any prefix length)."""
        for n in range(1, 20):
            x = rng.normal(size=(2, 2, 1, n)) * 3
            padded = np.concatenate(
                [x, np.full((2, 2, 1, 23 - n), -np.inf)], axis=-1
            )
            np.testing.assert_array_equal(
                det_softmax(x), det_softmax(padded)[..., :n]
            )


class TestForwardRaggedExactness:
    def test_rows_match_per_row_cached_forward(self, model, rng):
        """Mixed prefill/decode rows are bit-identical to running alone."""
        prompts = [rng.integers(0, 64, size=n) for n in (9, 4, 1, 14)]
        refs, caches = [], []
        for p in prompts:
            cache = model.new_kv_cache()
            refs.append(model.forward_with_cache(p[None, :], cache, last_only=True))
            caches.append(model.new_kv_cache())
        width = max(p.size for p in prompts)
        tokens = np.zeros((len(prompts), width), dtype=np.int64)
        for r, p in enumerate(prompts):
            tokens[r, width - p.size :] = p
        new_lens = np.asarray([p.size for p in prompts])
        out = model.forward_ragged(tokens, caches, new_lens)
        for r in range(len(prompts)):
            np.testing.assert_array_equal(out[r], refs[r][0])

    def test_decode_steps_stay_exact_after_ragged_prefill(self, model, rng):
        prompts = [rng.integers(0, 64, size=n) for n in (6, 2)]
        ref_caches = [model.new_kv_cache() for _ in prompts]
        refs = [
            model.forward_with_cache(p[None, :], c, last_only=True)
            for p, c in zip(prompts, ref_caches)
        ]
        caches = [model.new_kv_cache() for _ in prompts]
        width = max(p.size for p in prompts)
        tokens = np.zeros((2, width), dtype=np.int64)
        for r, p in enumerate(prompts):
            tokens[r, width - p.size :] = p
        out = model.forward_ragged(tokens, caches, np.asarray([6, 2]))
        for step in range(3):
            nxt = np.argmax(out[:, -1], axis=-1)
            out = model.forward_ragged(nxt[:, None], caches, np.ones(2, dtype=np.int64))
            for r in range(2):
                ref = model.forward_with_cache(
                    nxt[r][None, None], ref_caches[r], last_only=True
                )
                np.testing.assert_array_equal(out[r], ref[0])

    def test_full_logits_shape_without_last_only(self, model, rng):
        caches = [model.new_kv_cache(), model.new_kv_cache()]
        tokens = rng.integers(0, 64, size=(2, 5))
        out = model.forward_ragged(
            tokens, caches, np.asarray([5, 3]), last_only=False
        )
        assert out.shape == (2, 5, 64)

    def test_attention_kernel_matches_dense_masked_reference(self, rng):
        """Slicing pads off == applying the additive -inf mask (semantics)."""
        from repro.nn.attention import MultiHeadSelfAttention
        from repro.nn.functional import det_matmul
        from repro.nn.kv_cache import LayerKVCache

        attn = MultiHeadSelfAttention(16, 2, rng=rng)
        new_lens = np.asarray([5, 2, 1])
        x = rng.normal(size=(3, 5, 16))
        kvs = [LayerKVCache() for _ in range(3)]
        out = attn.forward_ragged(x, kvs, new_lens)

        # Dense reference: batched projections, additive ragged mask, plain
        # softmax, batched context — mathematically identical, ulp-different.
        q = attn._split_heads(attn.q_proj.forward_det(x))
        k = attn._split_heads(attn.k_proj.forward_det(x))
        v = attn._split_heads(attn.v_proj.forward_det(x))
        scale = 1.0 / np.sqrt(attn.head_dim)
        mask = ragged_attention_mask(new_lens, np.zeros(3, dtype=np.int64))
        scores = det_matmul(q, k.transpose(0, 1, 3, 2)) * scale + mask[:, None]
        weights = softmax(scores, axis=-1)
        dense = attn.out_proj.forward_det(
            attn._merge_heads(det_matmul(weights, v))
        )
        for r, n in enumerate(new_lens):
            pad = 5 - n
            np.testing.assert_allclose(
                out[r, pad:], dense[r, pad:], atol=1e-12, rtol=1e-12
            )

    def test_validation(self, model, rng):
        caches = [model.new_kv_cache()]
        good = np.zeros((1, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            model.forward_ragged(good, caches, np.asarray([0]))
        with pytest.raises(ValueError):
            model.forward_ragged(good, caches, np.asarray([4]))
        with pytest.raises(ValueError):
            model.forward_ragged(good, caches + caches, np.asarray([3]))
        with pytest.raises(RuntimeError):
            model.train()
            model.forward_ragged(good, caches, np.asarray([3]))

    def test_max_position_overflow_rejected(self, model):
        model.eval()
        cache = model.new_kv_cache()
        max_pos = model.config.max_position
        model.forward_with_cache(np.zeros((1, max_pos), dtype=np.int64), cache)
        with pytest.raises(ValueError):
            model.forward_ragged(
                np.zeros((1, 1), dtype=np.int64), [cache], np.asarray([1])
            )
