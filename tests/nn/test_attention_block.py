"""Tests for multi-head attention and the decoder block, including gradients."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.block import FeedForward, TransformerDecoderBlock


def numeric_input_gradient(module, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat_x, flat_g = x.reshape(-1), grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = float(np.sum(module.forward(x)))
        flat_x[i] = original - eps
        minus = float(np.sum(module.forward(x)))
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        out = attn(rng.normal(size=(2, 5, 16)))
        assert out.shape == (2, 5, 16)

    def test_causality(self, rng):
        """Changing a future token must not change earlier outputs."""
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = rng.normal(size=(1, 6, 8))
        out1 = attn(x)
        x_modified = x.copy()
        x_modified[0, 5] += 10.0
        out2 = attn(x_modified)
        np.testing.assert_allclose(out1[0, :5], out2[0, :5], atol=1e-12)
        assert not np.allclose(out1[0, 5], out2[0, 5])

    def test_input_gradient_matches_numeric(self, rng):
        attn = MultiHeadSelfAttention(6, 2, rng=rng)
        x = rng.normal(size=(1, 4, 6))
        out = attn(x)
        analytic = attn.backward(np.ones_like(out))
        numeric = numeric_input_gradient(attn, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_parameter_gradients_nonzero(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = rng.normal(size=(2, 3, 8))
        attn.backward(np.ones_like(attn(x)))
        for name, param in attn.named_parameters():
            assert np.any(param.grad != 0.0), f"zero gradient for {name}"

    def test_head_divisibility(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, rng=rng)

    def test_input_validation(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        with pytest.raises(ValueError):
            attn(rng.normal(size=(2, 5, 9)))
        with pytest.raises(RuntimeError):
            MultiHeadSelfAttention(8, 2, rng=rng).backward(np.ones((1, 2, 8)))

    def test_single_token_sequence(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        assert attn(rng.normal(size=(3, 1, 8))).shape == (3, 1, 8)


class TestFeedForward:
    def test_forward_shape(self, rng):
        ffn = FeedForward(8, 32, rng=rng)
        assert ffn(rng.normal(size=(2, 5, 8))).shape == (2, 5, 8)

    def test_input_gradient(self, rng):
        ffn = FeedForward(5, 11, rng=rng)
        x = rng.normal(size=(1, 3, 5))
        out = ffn(x)
        analytic = ffn.backward(np.ones_like(out))
        numeric = numeric_input_gradient(ffn, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            FeedForward(4, 8, rng=rng).backward(np.ones((1, 2, 4)))


class TestTransformerDecoderBlock:
    def test_forward_shape(self, rng):
        block = TransformerDecoderBlock(16, 4, 32, rng=rng)
        assert block(rng.normal(size=(2, 7, 16))).shape == (2, 7, 16)

    def test_residual_path_preserves_scale(self, rng):
        """Pre-LN residual blocks keep the input signal in the output."""
        block = TransformerDecoderBlock(16, 4, 32, rng=rng)
        x = rng.normal(size=(1, 5, 16)) * 100.0
        out = block(x)
        correlation = np.corrcoef(out.reshape(-1), x.reshape(-1))[0, 1]
        assert correlation > 0.99

    def test_input_gradient_matches_numeric(self, rng):
        block = TransformerDecoderBlock(6, 2, 12, rng=rng)
        x = rng.normal(size=(1, 3, 6))
        out = block(x)
        analytic = block.backward(np.ones_like(out))
        numeric = numeric_input_gradient(block, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_all_parameters_receive_gradients(self, rng):
        block = TransformerDecoderBlock(8, 2, 16, rng=rng)
        x = rng.normal(size=(2, 4, 8))
        block.backward(np.ones_like(block(x)))
        for name, param in block.named_parameters():
            assert np.any(param.grad != 0.0), f"zero gradient for {name}"

    def test_layer_norms_accessor(self, rng):
        block = TransformerDecoderBlock(8, 2, 16, rng=rng)
        norms = block.layer_norms()
        assert len(norms) == 2
        assert norms[0] is block.attn_norm
        assert norms[1] is block.ffn_norm

    def test_causality_through_block(self, rng):
        block = TransformerDecoderBlock(8, 2, 16, rng=rng)
        x = rng.normal(size=(1, 5, 8))
        out1 = block(x)
        x2 = x.copy()
        x2[0, 4] += 5.0
        out2 = block(x2)
        np.testing.assert_allclose(out1[0, :4], out2[0, :4], atol=1e-12)
