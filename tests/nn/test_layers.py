"""Tests for the trainable layers, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module, Parameter


def check_input_gradient(layer, x, atol=1e-5):
    """Finite-difference check of d(sum(output))/d(input)."""
    grad_analytic = None

    def forward_sum(inp):
        return float(np.sum(layer.forward(inp)))

    base = layer.forward(x)
    grad_analytic = layer.backward(np.ones_like(base))

    eps = 1e-6
    grad_numeric = np.zeros_like(x, dtype=np.float64)
    flat_x = x.reshape(-1)
    flat_g = grad_numeric.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = forward_sum(x)
        flat_x[i] = original - eps
        minus = forward_sum(x)
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2 * eps)
    np.testing.assert_allclose(grad_analytic, grad_numeric, atol=atol)


def check_param_gradient(layer, x, param, atol=1e-5):
    """Finite-difference check of d(sum(output))/d(param)."""
    layer.zero_grad()
    out = layer.forward(x)
    layer.backward(np.ones_like(out))
    analytic = param.grad.copy()

    eps = 1e-6
    numeric = np.zeros_like(param.data)
    flat_p = param.data.reshape(-1)
    flat_n = numeric.reshape(-1)
    for i in range(flat_p.size):
        original = flat_p[i]
        flat_p[i] = original + eps
        plus = float(np.sum(layer.forward(x)))
        flat_p[i] = original - eps
        minus = float(np.sum(layer.forward(x)))
        flat_p[i] = original
        flat_n[i] = (plus - minus) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(x)
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_input_gradient(self, rng):
        layer = Linear(6, 4, rng=rng)
        check_input_gradient(layer, rng.normal(size=(3, 6)))

    def test_weight_and_bias_gradients(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5))
        check_param_gradient(layer, x, layer.weight)
        check_param_gradient(layer, x, layer.bias)

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(rng.normal(size=(2, 3, 4)))
        assert out.shape == (2, 3, 2)
        layer.backward(np.ones((2, 3, 2)))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3)
        layer = Linear(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer(rng.normal(size=(2, 5)))
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng=rng).backward(np.ones((1, 2)))


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = np.array([[1, 2], [3, 1]])
        out = emb(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 0], emb.weight.data[1])

    def test_gradient_accumulates_repeated_ids(self, rng):
        emb = Embedding(5, 3, rng=rng)
        ids = np.array([[1, 1, 2]])
        emb(ids)
        emb.backward(np.ones((1, 3, 3)))
        np.testing.assert_allclose(emb.weight.grad[1], 2.0)
        np.testing.assert_allclose(emb.weight.grad[2], 1.0)
        np.testing.assert_allclose(emb.weight.grad[0], 0.0)

    def test_out_of_range(self, rng):
        emb = Embedding(4, 2, rng=rng)
        with pytest.raises(ValueError):
            emb(np.array([4]))
        with pytest.raises(ValueError):
            emb(np.array([-1]))


class TestLayerNorm:
    def test_output_statistics(self, rng):
        layer = LayerNorm(32)
        x = rng.normal(2.0, 3.0, size=(6, 32))
        z = layer(x)
        np.testing.assert_allclose(z.mean(-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(-1), 1.0, rtol=1e-4)

    def test_input_gradient(self, rng):
        layer = LayerNorm(8)
        check_input_gradient(layer, rng.normal(size=(3, 8)), atol=1e-5)

    def test_gamma_beta_gradients(self, rng):
        layer = LayerNorm(6)
        layer.gamma.data = rng.uniform(0.5, 1.5, 6)
        layer.beta.data = rng.normal(size=6)
        x = rng.normal(size=(4, 6))
        check_param_gradient(layer, x, layer.gamma)
        check_param_gradient(layer, x, layer.beta)

    def test_eval_normalizer_swap(self, rng):
        from repro.core.layernorm import IterL2Norm, IterL2NormConfig

        layer = LayerNorm(16)
        layer.gamma.data = rng.uniform(0.5, 1.5, 16)
        x = rng.normal(size=(4, 16))
        exact_out = layer(x)

        layer.eval_normalizer = IterL2Norm(
            16, IterL2NormConfig(num_steps=10, fmt="fp32"), gamma=layer.gamma.data
        )
        # Training mode still uses the exact path.
        layer.training = True
        np.testing.assert_array_equal(layer(x), exact_out)
        # Eval mode dispatches to the replacement.
        layer.training = False
        swapped = layer(x)
        assert not np.array_equal(swapped, exact_out)
        np.testing.assert_allclose(swapped, exact_out, atol=1e-3)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(0)
        with pytest.raises(ValueError):
            LayerNorm(8)(rng.normal(size=(2, 9)))
        with pytest.raises(RuntimeError):
            LayerNorm(4).backward(np.ones((1, 4)))


class TestDropout:
    def test_eval_mode_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.training = False
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(drop(x), x)

    def test_zero_probability_identity(self, rng):
        drop = Dropout(0.0, rng=rng)
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(drop(x), x)

    def test_training_mode_scales_survivors(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.training = True
        x = np.ones((100, 100))
        out = drop(x)
        kept = out != 0.0
        assert 0.4 < kept.mean() < 0.6
        np.testing.assert_allclose(out[kept], 2.0)

    def test_backward_uses_same_mask(self, rng):
        drop = Dropout(0.3, rng=np.random.default_rng(1))
        drop.training = True
        x = np.ones((10, 10))
        out = drop(x)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleBase:
    def test_named_parameters_traversal(self, rng):
        class Wrapper(Module):
            def __init__(self):
                self.linear = Linear(2, 2, rng=rng)
                self.norms = [LayerNorm(2), LayerNorm(2)]
                self.scale = Parameter(np.ones(1))

        names = dict(Wrapper().named_parameters())
        assert "linear.weight" in names
        assert "norms.0.gamma" in names
        assert "norms.1.beta" in names
        assert "scale" in names

    def test_num_parameters_and_zero_grad(self, rng):
        layer = Linear(3, 4, rng=rng)
        assert layer.num_parameters() == 3 * 4 + 4
        layer.weight.grad += 1.0
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0.0)

    def test_state_dict_roundtrip(self, rng):
        src = Linear(3, 3, rng=rng)
        dst = Linear(3, 3, rng=np.random.default_rng(99))
        dst.load_state_dict(src.state_dict())
        np.testing.assert_array_equal(dst.weight.data, src.weight.data)

    def test_state_dict_mismatch(self, rng):
        layer = Linear(3, 3, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((3, 3))})

    def test_train_eval_propagates(self, rng):
        class Wrapper(Module):
            def __init__(self):
                self.drop = Dropout(0.5, rng=rng)

        wrapper = Wrapper()
        wrapper.eval()
        assert wrapper.drop.training is False
        wrapper.train()
        assert wrapper.drop.training is True
