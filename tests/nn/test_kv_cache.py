"""KV-cache regression tests: incremental decoding must be bit-exact."""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.functional import causal_mask, causal_mask_offset, det_matmul
from repro.nn.generation import generate, generate_batch
from repro.nn.kv_cache import KVCache, LayerKVCache
from repro.nn.model import OPTLanguageModel


@pytest.fixture
def model(rng):
    return OPTLanguageModel(get_config("opt-test"), rng=rng)


class TestDeterministicMatmul:
    def test_row_slices_are_bit_identical(self, rng):
        """The property the KV cache relies on: rows don't see the batch."""
        x = rng.normal(size=(48, 96))
        w = rng.normal(size=(96, 384))
        full = det_matmul(x, w)
        for i in (0, 17, 47):
            np.testing.assert_array_equal(det_matmul(x[i : i + 1], w), full[i : i + 1])

    def test_matches_blas_closely(self, rng):
        x = rng.normal(size=(16, 32))
        w = rng.normal(size=(32, 8))
        np.testing.assert_allclose(det_matmul(x, w), x @ w, rtol=1e-13)

    def test_batched_dims(self, rng):
        a = rng.normal(size=(2, 3, 4, 5))
        b = rng.normal(size=(2, 3, 5, 6))
        out = det_matmul(a, b)
        assert out.shape == (2, 3, 4, 6)


class TestCausalMaskOffset:
    def test_no_past_equals_square_mask(self):
        np.testing.assert_array_equal(causal_mask_offset(6, 6), causal_mask(6))

    def test_with_past_allows_all_cached_positions(self):
        mask = causal_mask_offset(2, 5)
        # Row 0 is absolute position 3: sees keys 0..3, not 4.
        np.testing.assert_array_equal(mask[0], [0.0, 0.0, 0.0, 0.0, -np.inf])
        np.testing.assert_array_equal(mask[1], np.zeros(5))

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            causal_mask_offset(0, 4)
        with pytest.raises(ValueError):
            causal_mask_offset(5, 4)


class TestKVCacheContainers:
    def test_empty_cache_shape(self, model):
        cache = model.new_kv_cache()
        assert len(cache) == len(model.blocks)
        assert cache.seq_len == 0

    def test_append_grows_seq_axis(self):
        kv = LayerKVCache()
        k = np.zeros((2, 4, 3, 8))
        kv.append(k, k.copy())
        kv.append(k[:, :, :1], k[:, :, :1].copy())
        assert kv.seq_len == 4

    def test_append_validates_shapes(self):
        kv = LayerKVCache()
        with pytest.raises(ValueError):
            kv.append(np.zeros((2, 4, 3, 8)), np.zeros((2, 4, 2, 8)))
        kv.append(np.zeros((2, 4, 3, 8)), np.zeros((2, 4, 3, 8)))
        with pytest.raises(ValueError):
            kv.append(np.zeros((1, 4, 1, 8)), np.zeros((1, 4, 1, 8)))

    def test_layer_count_validated_by_model(self, model):
        model.eval()
        with pytest.raises(ValueError):
            model.forward_with_cache(np.zeros((1, 2), dtype=np.int64), KVCache(1))


class TestIncrementalExactness:
    """The acceptance criterion: cached decoding == full re-prefill, exactly."""

    def _incremental_logits(self, model, ids, prefill):
        cache = model.new_kv_cache()
        chunks = [model.forward_with_cache(ids[:, :prefill], cache)]
        for t in range(prefill, ids.shape[1]):
            chunks.append(model.forward_with_cache(ids[:, t : t + 1], cache))
        return np.concatenate(chunks, axis=1)

    def test_incremental_matches_full_prefill_exactly(self, model, rng):
        model.eval()
        ids = rng.integers(0, 64, size=(2, 20))
        incremental = self._incremental_logits(model, ids, prefill=5)
        full = model.forward_with_cache(ids, model.new_kv_cache())
        np.testing.assert_array_equal(incremental, full)

    def test_exact_with_normalizer_swap(self, model, rng, paper_format):
        """Bit-exactness holds with the IterL2Norm eval normalizer active."""
        model.eval()
        model.replace_layernorm("iterl2norm", fmt=paper_format, num_steps=5)
        try:
            ids = rng.integers(0, 64, size=(1, 12))
            incremental = self._incremental_logits(model, ids, prefill=4)
            full = model.forward_with_cache(ids, model.new_kv_cache())
            np.testing.assert_array_equal(incremental, full)
        finally:
            model.restore_layernorm()

    def test_cached_forward_close_to_standard_forward(self, model, rng):
        """The det-matmul path tracks the BLAS forward to float64 precision."""
        model.eval()
        ids = rng.integers(0, 64, size=(2, 10))
        cached = model.forward_with_cache(ids, model.new_kv_cache())
        standard = model(ids)
        np.testing.assert_allclose(cached, standard, atol=1e-9)

    def test_last_only_matches_full_logits_slice(self, model, rng):
        model.eval()
        ids = rng.integers(0, 64, size=(2, 9))
        full = model.forward_with_cache(ids, model.new_kv_cache())
        last = model.forward_with_cache(ids, model.new_kv_cache(), last_only=True)
        assert last.shape == (2, 1, 64)
        np.testing.assert_array_equal(last, full[:, -1:, :])

    def test_training_mode_rejected(self, model):
        model.train()
        with pytest.raises(RuntimeError):
            model.forward_with_cache(np.zeros((1, 2), dtype=np.int64), model.new_kv_cache())

    def test_cache_overflow_rejected(self, model):
        model.eval()
        cache = model.new_kv_cache()
        ids = np.zeros((1, 32), dtype=np.int64)
        model.forward_with_cache(ids, cache)
        with pytest.raises(ValueError):
            model.forward_with_cache(np.zeros((1, 1), dtype=np.int64), cache)


class TestTruncateRollback:
    """KV rollback: speculative decoding's discard-the-rejected-tail path."""

    def test_truncate_then_reappend_is_bit_identical(self, model, rng):
        """Rolling back draft positions and recomputing leaves no trace."""
        model.eval()
        ids = rng.integers(0, 64, size=(1, 14))
        straight = model.forward_with_cache(ids, model.new_kv_cache())

        cache = model.new_kv_cache()
        prefix = model.forward_with_cache(ids[:, :8], cache)
        # Append four wrong "draft" tokens, then reject them all.
        wrong = (ids[:, 8:12] + 7) % 64
        model.forward_with_cache(wrong, cache)
        cache.truncate(8)
        assert cache.seq_len == 8
        tail = model.forward_with_cache(ids[:, 8:], cache)
        np.testing.assert_array_equal(
            np.concatenate([prefix, tail], axis=1), straight
        )

    def test_truncate_validates_range(self):
        kv = LayerKVCache()
        kv.append(np.zeros((1, 2, 5, 4)), np.zeros((1, 2, 5, 4)))
        with pytest.raises(ValueError):
            kv.truncate(6)
        with pytest.raises(ValueError):
            kv.truncate(-1)
        kv.truncate(5)  # no-op
        assert kv.seq_len == 5
        kv.truncate(0)
        assert kv.seq_len == 0

    def test_stack_truncate_applies_to_every_layer(self, model):
        model.eval()
        cache = model.new_kv_cache()
        model.forward_with_cache(np.zeros((1, 6), dtype=np.int64), cache)
        cache.truncate(2)
        assert all(layer.seq_len == 2 for layer in cache.layers)


class TestVerifyForward:
    def test_verify_forward_matches_sequential_greedy(self, model):
        """One ragged verify call reproduces token-by-token greedy argmax."""
        model.eval()
        prompt = np.array([1, 2, 3])
        out = generate(model, prompt, max_new_tokens=6, temperature=0.0)
        continuation = out[prompt.size :]

        cache = model.new_kv_cache()
        model.forward_with_cache(prompt[None, :-1], cache)
        assert int(np.argmax(model.forward_with_cache(
            prompt[None, -1:], cache, last_only=True)[0, -1])) == continuation[0]
        # Feed [first generated, next 4 generated] as drafts in one call.
        chunk = out[None, prompt.size : prompt.size + 5]
        greedy = model.verify_forward(chunk, cache)
        np.testing.assert_array_equal(greedy[0], continuation[1:6])

    def test_rejected_drafts_roll_back_exactly(self, model):
        """verify + truncate + continue == plain greedy decoding."""
        model.eval()
        prompt = np.array([4, 5, 6, 7])
        out = generate(model, prompt, max_new_tokens=8, temperature=0.0)
        cache = model.new_kv_cache()
        model.forward_with_cache(prompt[None, :], cache)
        # Draft [correct, wrong, wrong]: one acceptance expected.
        first = int(out[prompt.size])
        draft = np.array([[first, (first + 9) % 64, (first + 11) % 64]])
        greedy = model.verify_forward(draft, cache)
        assert int(greedy[0, 0]) == int(out[prompt.size + 1])
        accepted = 0
        while (
            accepted < draft.shape[1] - 1
            and int(greedy[0, accepted]) == int(draft[0, accepted + 1])
        ):
            accepted += 1
        cache.truncate(prompt.size + 1 + accepted)
        # Continue one token at a time from the rolled-back cache.
        tokens = list(out[: prompt.size + 2 + accepted])
        while len(tokens) < out.size:
            logits = model.forward_with_cache(
                np.asarray([[tokens[-1]]]), cache, last_only=True
            )[0, -1]
            tokens.append(int(np.argmax(logits)))
        np.testing.assert_array_equal(tokens, out)


class TestRaggedLastK:
    def test_last_k_slices_match_full_logits(self, model, rng):
        """Widening last_k returns the same bytes per position as full output."""
        model.eval()
        caches = [model.new_kv_cache() for _ in range(2)]
        warm = rng.integers(0, 64, size=(2, 4))
        for row, cache in enumerate(caches):
            model.forward_with_cache(warm[row : row + 1], cache)
        ids = rng.integers(0, 64, size=(2, 3))
        new_lens = np.array([3, 1])
        ids[1, :2] = 0  # pad lanes of the short row

        full_caches = [model.new_kv_cache() for _ in range(2)]
        for row, cache in enumerate(full_caches):
            model.forward_with_cache(warm[row : row + 1], cache)
        full = model.forward_ragged(ids, full_caches, new_lens, last_only=False)
        sliced = model.forward_ragged(ids, caches, new_lens, last_k=3)
        assert sliced.shape == (2, 3, 64)
        np.testing.assert_array_equal(sliced, full)

    def test_last_k_validated(self, model, rng):
        model.eval()
        caches = [model.new_kv_cache()]
        ids = rng.integers(0, 64, size=(1, 2))
        with pytest.raises(ValueError):
            model.forward_ragged(ids, caches, np.array([2]), last_k=3)
        with pytest.raises(ValueError):
            model.forward_ragged(ids, caches, np.array([2]), last_k=0)


class TestCachedGeneration:
    def test_cached_greedy_is_argmax_of_uncached_reference(self, model):
        """Every cached-path token maximizes the reference (uncached) logits.

        Token-by-token replay against the plain forward, with a tolerance on
        the argmax margin, so the test cannot flake on a BLAS build where
        the two matmul kernels differ in the last ulp.
        """
        prompt = np.array([1, 2, 3])
        max_pos = model.config.max_position
        # 43 tokens > max_position=32: the sliding-window tail is covered.
        out = generate(model, prompt, max_new_tokens=40, temperature=0.0)
        assert out.size == 43
        for t in range(prompt.size, out.size):
            context = out[max(0, t - max_pos) : t][None, :]
            reference = model(context)[0, -1]
            chosen = out[t]
            assert reference[chosen] >= reference.max() - 1e-9

    def test_cached_greedy_is_deterministic(self, model):
        prompt = np.array([1, 2, 3])
        out1 = generate(model, prompt, max_new_tokens=40, temperature=0.0)
        out2 = generate(model, prompt, max_new_tokens=40, temperature=0.0)
        np.testing.assert_array_equal(out1, out2)

    def test_zero_new_tokens_returns_prompt(self, model):
        prompt = np.array([4, 5, 6])
        np.testing.assert_array_equal(
            generate(model, prompt, max_new_tokens=0), prompt
        )

    def test_sampling_reproducible_across_paths_shape(self, model):
        out = generate(
            model,
            np.array([1]),
            max_new_tokens=4,
            temperature=1.0,
            top_k=5,
            rng=np.random.default_rng(0),
        )
        assert out.size == 5
        assert np.all((out >= 0) & (out < 64))


class TestBatchedGeneration:
    def test_batch_rows_match_single_sequences(self, model):
        """Row independence: batched greedy decode equals per-prompt decode."""
        prompts = np.array([[1, 2, 3], [9, 8, 7], [4, 4, 4]])
        batch = generate_batch(model, prompts, max_new_tokens=12, temperature=0.0)
        for row in range(prompts.shape[0]):
            single = generate(model, prompts[row], max_new_tokens=12, temperature=0.0)
            np.testing.assert_array_equal(batch[row], single)

    def test_batch_slides_past_max_position(self, model):
        """Row independence holds across the sliding-window rebuild."""
        prompts = np.tile(np.arange(4), (2, 1))
        out = generate_batch(model, prompts, max_new_tokens=35, temperature=0.0)
        assert out.shape == (2, 39)
        # Same code path with a single row: must be bit-identical.
        alone = generate_batch(model, prompts[:1], max_new_tokens=35, temperature=0.0)
        np.testing.assert_array_equal(out[0], alone[0])

    def test_zero_new_tokens(self, model):
        prompts = np.array([[1, 2], [3, 4]])
        np.testing.assert_array_equal(
            generate_batch(model, prompts, max_new_tokens=0), prompts
        )

    def test_rejects_bad_shapes(self, model):
        with pytest.raises(ValueError):
            generate_batch(model, np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            generate_batch(model, np.zeros((2, 0), dtype=np.int64))
