"""Tests for the stateless NN functions and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    causal_mask,
    cross_entropy,
    gelu,
    gelu_backward,
    log_softmax,
    one_hot,
    perplexity_from_loss,
    relu,
    relu_backward,
    softmax,
    softmax_backward,
)


def numeric_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f(x)
        flat[i] = original - eps
        minus = f(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.normal(size=(4, 10))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0, rtol=1e-12)

    def test_stability_with_large_inputs(self):
        x = np.array([1e4, 1e4 + 1.0])
        s = softmax(x)
        assert np.all(np.isfinite(s))
        assert s[1] > s[0]

    def test_log_softmax_consistency(self, rng):
        x = rng.normal(size=(3, 7))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)), rtol=1e-10)

    def test_softmax_backward_matches_numeric(self, rng):
        x = rng.normal(size=(2, 5))
        upstream = rng.normal(size=(2, 5))

        def scalar_loss(inp):
            return float(np.sum(softmax(inp) * upstream))

        numeric = numeric_gradient(scalar_loss, x.copy())
        analytic = softmax_backward(upstream, softmax(x))
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_relu_backward(self, rng):
        x = rng.normal(size=20)
        grad = relu_backward(np.ones(20), x)
        np.testing.assert_array_equal(grad, (x > 0).astype(float))

    def test_gelu_values(self):
        assert gelu(0.0) == 0.0
        assert gelu(3.0) == pytest.approx(3.0, abs=0.01)
        assert gelu(-3.0) == pytest.approx(0.0, abs=0.01)

    def test_gelu_exact_vs_approximate(self, rng):
        x = rng.normal(size=100)
        np.testing.assert_allclose(gelu(x, True), gelu(x, False), atol=2e-3)

    def test_gelu_backward_matches_numeric(self, rng):
        x = rng.normal(size=10)
        numeric = numeric_gradient(lambda v: float(np.sum(gelu(v))), x.copy())
        np.testing.assert_allclose(gelu_backward(np.ones(10), x), numeric, atol=1e-6)


class TestOneHot:
    def test_encoding(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)


class TestCrossEntropy:
    def test_uniform_logits_loss(self):
        logits = np.zeros((2, 3, 8))
        targets = np.zeros((2, 3), dtype=np.int64)
        loss, grad = cross_entropy(logits, targets)
        assert loss == pytest.approx(np.log(8))
        assert grad.shape == logits.shape

    def test_perfect_prediction_low_loss(self):
        logits = np.full((1, 2, 4), -100.0)
        logits[0, 0, 1] = 100.0
        logits[0, 1, 2] = 100.0
        loss, _ = cross_entropy(logits, np.array([[1, 2]]))
        assert loss < 1e-6

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))

        def loss_fn(lg):
            return cross_entropy(lg, targets)[0]

        numeric = numeric_gradient(loss_fn, logits.copy())
        _, analytic = cross_entropy(logits, targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_ignore_index(self, rng):
        logits = rng.normal(size=(1, 4, 6))
        targets = np.array([[1, 2, 0, 0]])
        loss_all, _ = cross_entropy(logits, targets)
        loss_masked, grad = cross_entropy(logits, targets, ignore_index=0)
        assert loss_masked != loss_all
        assert np.all(grad[0, 2:] == 0.0)

    def test_all_ignored(self):
        loss, grad = cross_entropy(np.zeros((1, 2, 3)), np.zeros((1, 2), dtype=int), ignore_index=0)
        assert loss == 0.0
        assert np.all(grad == 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3, 4)), np.zeros((2, 4), dtype=int))

    def test_perplexity(self):
        assert perplexity_from_loss(0.0) == 1.0
        assert perplexity_from_loss(np.log(20.0)) == pytest.approx(20.0)


class TestCausalMask:
    def test_shape_and_structure(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert np.all(mask[np.tril_indices(4)] == 0.0)
        assert np.all(np.isinf(mask[np.triu_indices(4, k=1)]))

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            causal_mask(0)

    def test_masked_softmax_is_causal(self, rng):
        scores = rng.normal(size=(4, 4)) + causal_mask(4)
        weights = softmax(scores, axis=-1)
        assert np.all(weights[np.triu_indices(4, k=1)] == 0.0)
        np.testing.assert_allclose(weights.sum(-1), 1.0)


# -- property-based tests -----------------------------------------------------------


@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=2, max_size=30))
@settings(max_examples=100, deadline=None)
def test_softmax_invariant_to_shift(values):
    x = np.asarray(values)
    np.testing.assert_allclose(softmax(x), softmax(x + 7.3), atol=1e-10)


@given(
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_cross_entropy_nonnegative_and_bounded(vocab, seq, seed):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(1, seq, vocab))
    targets = rng.integers(0, vocab, size=(1, seq))
    loss, grad = cross_entropy(logits, targets)
    assert loss >= 0.0
    # Gradient rows sum to ~0 (softmax minus one-hot, averaged).
    np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-10)
