"""Tests for model checkpoint save/load."""

import numpy as np
import pytest

from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.config import get_config
from repro.nn.model import OPTLanguageModel


@pytest.fixture
def model(rng):
    return OPTLanguageModel(get_config("opt-test"), rng=rng)


class TestCheckpointRoundTrip:
    def test_parameters_identical_after_reload(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "model.npz")
        restored = load_checkpoint(path)
        original = model.state_dict()
        reloaded = restored.state_dict()
        assert set(original) == set(reloaded)
        for name in original:
            np.testing.assert_array_equal(original[name], reloaded[name])

    def test_logits_identical_after_reload(self, model, tmp_path, rng):
        ids = rng.integers(0, 64, size=(2, 8))
        model.eval()
        expected = model(ids)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m"))
        np.testing.assert_array_equal(restored(ids), expected)

    def test_config_preserved(self, model, tmp_path):
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        assert restored.config == model.config

    def test_suffix_enforced(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "weights.bin")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_nested_directory_created(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "a" / "b" / "model.npz")
        assert path.exists()

    def test_swap_after_reload(self, model, tmp_path, rng):
        """A reloaded model still supports the normalizer swap."""
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        ids = rng.integers(0, 64, size=(1, 8))
        baseline = restored(ids)
        restored.replace_layernorm("iterl2norm", fmt="fp32", num_steps=5)
        swapped = restored(ids)
        np.testing.assert_allclose(swapped, baseline, atol=0.05)
        assert not np.array_equal(swapped, baseline)


class TestCheckpointErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_non_checkpoint_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(KeyError):
            load_checkpoint(path)
