"""Tests for model checkpoint save/load."""

import numpy as np
import pytest

from repro.nn.checkpoint import load_checkpoint, save_checkpoint
from repro.nn.config import get_config
from repro.nn.model import OPTLanguageModel


@pytest.fixture
def model(rng):
    return OPTLanguageModel(get_config("opt-test"), rng=rng)


class TestCheckpointRoundTrip:
    def test_parameters_identical_after_reload(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "model.npz")
        restored = load_checkpoint(path)
        original = model.state_dict()
        reloaded = restored.state_dict()
        assert set(original) == set(reloaded)
        for name in original:
            np.testing.assert_array_equal(original[name], reloaded[name])

    def test_logits_identical_after_reload(self, model, tmp_path, rng):
        ids = rng.integers(0, 64, size=(2, 8))
        model.eval()
        expected = model(ids)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m"))
        np.testing.assert_array_equal(restored(ids), expected)

    def test_config_preserved(self, model, tmp_path):
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        assert restored.config == model.config

    def test_suffix_enforced(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "weights.bin")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_nested_directory_created(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "a" / "b" / "model.npz")
        assert path.exists()

    def test_swap_after_reload(self, model, tmp_path, rng):
        """A reloaded model still supports the normalizer swap."""
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        ids = rng.integers(0, 64, size=(1, 8))
        baseline = restored(ids)
        restored.replace_layernorm("iterl2norm", fmt="fp32", num_steps=5)
        swapped = restored(ids)
        np.testing.assert_allclose(swapped, baseline, atol=0.05)
        assert not np.array_equal(swapped, baseline)


class TestPolicyRoundTrip:
    """A model carrying a non-default precision policy survives save/load.

    The config (including its policy and any swapped normalizer) must
    survive ``asdict`` → JSON → rebuild, and the reloaded model's eval
    outputs must be bit-identical.
    """

    def test_policy_preserved(self, tmp_path, rng):
        model = OPTLanguageModel(get_config("opt-test"), rng=rng, policy="bf16")
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        assert restored.config == model.config
        assert restored.policy == model.policy
        assert restored.policy.name == "bf16"
        assert restored.policy.kv_cache_fmt == "bf16"

    def test_swapped_normalizer_preserved(self, tmp_path, rng):
        model = OPTLanguageModel(get_config("opt-test"), rng=rng, policy="fp16")
        model.replace_layernorm("iterl2norm", fmt="bf16", num_steps=3)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        assert restored.config == model.config
        assert restored.policy.name == "fp16@iterl2norm"
        assert restored.policy.normalizer == "iterl2norm"
        assert dict(restored.policy.normalizer_kwargs) == {"num_steps": 3}
        assert all(n.eval_normalizer is not None for n in restored.layer_norms())

    def test_logits_bit_identical_under_policy(self, tmp_path, rng):
        model = OPTLanguageModel(get_config("opt-test"), rng=rng, policy="fp16")
        model.replace_layernorm("iterl2norm", fmt="fp16", num_steps=5)
        model.eval()
        ids = rng.integers(0, 64, size=(2, 8))
        expected = model(ids)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        np.testing.assert_array_equal(restored(ids), expected)

    def test_reloaded_normalizer_binds_loaded_gamma(self, tmp_path, rng):
        """The reinstalled normalizer must hold the checkpoint's gamma/beta."""
        model = OPTLanguageModel(get_config("opt-test"), rng=rng)
        # Perturb gamma so it differs from initialization.
        for norm in model.layer_norms():
            norm.gamma.data = norm.gamma.data + 0.25
        model.replace_layernorm("exact", fmt=None)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        for norm in restored.layer_norms():
            np.testing.assert_array_equal(norm.eval_normalizer.gamma, norm.gamma.data)
            np.testing.assert_array_equal(norm.eval_normalizer.gamma[0], 1.25)

    def test_generation_bit_identical_under_policy(self, tmp_path, rng):
        from repro.nn.generation import generate

        model = OPTLanguageModel(get_config("opt-test"), rng=rng, policy="bf16-fp8kv")
        model.eval()
        prompt = np.array([3, 1, 4, 1, 5])
        expected = generate(model, prompt, max_new_tokens=8, temperature=0.0)
        restored = load_checkpoint(save_checkpoint(model, tmp_path / "m.npz"))
        np.testing.assert_array_equal(
            generate(restored, prompt, max_new_tokens=8, temperature=0.0), expected
        )


class TestCheckpointErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope.npz")

    def test_non_checkpoint_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(KeyError):
            load_checkpoint(path)
