"""The tentpole guarantee: continuously batched serving is bit-exact.

A request decoded inside a ragged continuous batch — whatever its
neighbours, admission timing, or slot — must produce exactly the tokens of
:func:`repro.nn.generation.generate` run on that prompt alone: bit-exact
under greedy decoding, and reproducible under seeded sampling.  This holds
across prefill/decode mixing, early EOS retirement, slot refill, and the
sliding-window spillover past ``max_position``.
"""

import numpy as np
import pytest

from repro.nn.generation import generate
from repro.serve import Request, ServeEngine


def reference(model, request):
    """What generate() produces for this request served alone."""
    return generate(
        model,
        request.prompt_ids,
        max_new_tokens=request.max_new_tokens,
        temperature=request.temperature,
        top_k=request.top_k,
        rng=np.random.default_rng(request.seed),
        stop_tokens=request.stop_tokens,
    )


def assert_served_equals_generate(model, requests, **engine_kwargs):
    engine = ServeEngine(model, **engine_kwargs)
    report = engine.serve(requests)
    assert len(report.completed) == len(requests)
    for request in requests:
        completed = report.by_id(request.request_id)
        np.testing.assert_array_equal(
            completed.tokens,
            reference(model, request),
            err_msg=f"request {request.request_id} diverged from generate()",
        )
    return report


class TestGreedyBitExactness:
    def test_mixed_length_batch(self, model):
        """Ragged prompts admitted together: every row equals generate()."""
        requests = [
            Request("r0", np.array([1, 2, 3]), max_new_tokens=10),
            Request("r1", np.array([7, 8, 9, 10, 11, 12, 13]), max_new_tokens=6),
            Request("r2", np.array([4]), max_new_tokens=12),
            Request("r3", np.arange(1, 15), max_new_tokens=3),
        ]
        assert_served_equals_generate(model, requests, max_batch_size=4)

    def test_staggered_arrivals_and_slot_reuse(self, model, fixed_timer):
        """Requests arriving mid-flight join existing decode batches."""
        requests = [
            Request("r0", np.array([1, 2, 3]), max_new_tokens=12, arrival_time=0.0),
            Request("r1", np.array([9, 8]), max_new_tokens=4, arrival_time=0.0),
            Request("r2", np.array([5, 5, 5, 5]), max_new_tokens=8, arrival_time=0.001),
            Request("r3", np.array([2, 4, 6]), max_new_tokens=6, arrival_time=0.002),
            Request("r4", np.array([30, 20, 10]), max_new_tokens=5, arrival_time=0.003),
        ]
        report = assert_served_equals_generate(
            model, requests, max_batch_size=2, timer=fixed_timer
        )
        # With 5 requests and 2 slots, retirement must have refilled slots.
        assert report.metrics["queue_depth"]["max"] >= 1

    def test_sliding_window_spillover(self, model):
        """Decode past max_position: the per-row BLAS tail stays exact."""
        max_pos = model.config.max_position
        requests = [
            # Slides far past the window while sharing steps with others.
            Request("long", np.array([4, 4]), max_new_tokens=max_pos + 8),
            Request("short", np.array([1, 2, 3]), max_new_tokens=6),
            # Prompt already at the window: slides immediately.
            Request("wide", np.arange(1, max_pos + 3) % 60, max_new_tokens=5),
        ]
        assert_served_equals_generate(model, requests, max_batch_size=3)

    def test_batch_composition_does_not_change_tokens(self, model):
        """The same request produces identical tokens in different company."""
        probe = Request("probe", np.array([11, 12, 13]), max_new_tokens=9)
        alone = ServeEngine(model).serve([probe]).by_id("probe").tokens
        crowd = [
            Request(f"other{i}", np.array([3 + i, 2, 1]), max_new_tokens=4 + i)
            for i in range(5)
        ]
        crowded = (
            ServeEngine(model, max_batch_size=3)
            .serve(crowd + [probe])
            .by_id("probe")
            .tokens
        )
        np.testing.assert_array_equal(alone, crowded)


class TestStopTokens:
    def _eos_for(self, model, prompt, horizon=32):
        """A token id greedy decoding actually produces (usable as EOS)."""
        out = generate(model, prompt, max_new_tokens=horizon, temperature=0.0)
        return int(out[prompt.size + 2])  # the third generated token

    def test_eos_finishes_early_and_matches_generate(self, model):
        prompt = np.array([1, 2, 3])
        eos = self._eos_for(model, prompt)
        request = Request("r", prompt, max_new_tokens=30, stop_tokens=(eos,))
        report = assert_served_equals_generate(model, [request])
        completed = report.by_id("r")
        assert completed.finish_reason == "stop"
        assert completed.generated < 30
        assert completed.tokens[-1] == eos

    def test_early_stop_frees_slot_for_queue(self, model):
        prompt = np.array([1, 2, 3])
        eos = self._eos_for(model, prompt)
        requests = [
            Request("stopper", prompt, max_new_tokens=30, stop_tokens=(eos,)),
            Request("steady", np.array([9, 9]), max_new_tokens=10),
            Request("queued", np.array([7, 6, 5]), max_new_tokens=4, arrival_time=0.0005),
        ]
        report = assert_served_equals_generate(model, requests, max_batch_size=2)
        assert report.by_id("stopper").finish_reason == "stop"
        assert report.by_id("queued").finish_reason == "length"


class TestSampledReproducibility:
    def test_seeded_sampling_matches_generate(self, model):
        """Per-request RNGs: sampled streams equal generate() with the seed."""
        requests = [
            Request("s0", np.array([1, 2]), max_new_tokens=8, temperature=0.9,
                    top_k=10, seed=101),
            Request("s1", np.array([3, 4, 5]), max_new_tokens=8, temperature=0.7,
                    top_k=5, seed=202),
            Request("s2", np.array([6]), max_new_tokens=8, temperature=1.1, seed=303),
        ]
        assert_served_equals_generate(model, requests, max_batch_size=3)

    def test_sampling_independent_of_neighbours(self, model):
        probe = Request("p", np.array([2, 3]), max_new_tokens=6, temperature=0.8,
                        top_k=8, seed=55)
        alone = ServeEngine(model).serve([probe]).by_id("p").tokens
        other = Request("o", np.array([60, 61]), max_new_tokens=12, temperature=1.3,
                        seed=77)
        together = ServeEngine(model).serve([probe, other]).by_id("p").tokens
        np.testing.assert_array_equal(alone, together)


class TestNormalizerSwap:
    def test_greedy_exactness_with_iterl2norm(self, model, paper_format):
        """The paper's normalizer swap preserves serve-vs-generate exactness."""
        model.replace_layernorm("iterl2norm", fmt=paper_format, num_steps=5)
        try:
            requests = [
                Request("r0", np.array([1, 2, 3]), max_new_tokens=8),
                Request("r1", np.array([4, 5]), max_new_tokens=5),
            ]
            assert_served_equals_generate(model, requests, max_batch_size=2)
        finally:
            model.restore_layernorm()


class TestPoolBehaviourUnderServing:
    def test_blocks_reused_across_requests(self, model):
        """Acceptance: retired requests' blocks are recycled, not leaked."""
        requests = [
            Request(f"r{i}", np.array([1 + i, 2, 3]), max_new_tokens=6,
                    arrival_time=i * 0.002)
            for i in range(8)
        ]
        engine = ServeEngine(model, max_batch_size=2, block_size=4, initial_blocks=8)
        report = engine.serve(requests)
        stats = report.pool_stats
        assert stats["blocks_reused"] > 0
        assert stats["blocks_in_use"] == 0  # everything returned
        # No per-token growth: allocations are bounded by blocks, not tokens.
        total_tokens = sum(c.prompt_len + c.generated for c in report.completed)
        assert stats["blocks_allocated"] < total_tokens

    def test_metrics_shape(self, model, fixed_timer):
        requests = [Request("r", np.array([1, 2]), max_new_tokens=4)]
        report = ServeEngine(model, timer=fixed_timer).serve(requests)
        metrics = report.metrics
        assert metrics["requests_completed"] == 1
        assert metrics["tokens_generated"] == 4
        assert metrics["tokens_per_second"] > 0
        for key in ("ttft_s", "inter_token_latency_s", "step_time_s"):
            assert {"mean", "p50", "p90", "p99"} <= set(metrics[key])
        completed = report.completed[0]
        assert completed.ttft >= 0
        assert completed.finish_time >= completed.first_token_time


class TestServeReportIndex:
    def test_by_id_builds_index_once_and_raises_key_error(self, model, fixed_timer):
        requests = [
            Request(f"r{i}", np.array([1 + i, 2]), max_new_tokens=3) for i in range(4)
        ]
        report = ServeEngine(model, timer=fixed_timer).serve(requests)
        assert report._index is None  # lazy: nothing built until first lookup
        first = report.by_id("r2")
        assert report._index is not None
        assert report.by_id("r2") is first  # served from the cached dict
        with pytest.raises(KeyError, match="nope"):
            report.by_id("nope")


class TestValidation:
    def test_bad_requests_rejected(self):
        with pytest.raises(ValueError):
            Request("x", np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            Request("x", np.array([1]), max_new_tokens=0)
        with pytest.raises(ValueError):
            Request("x", np.array([1]), temperature=-1.0)
        with pytest.raises(ValueError):
            Request("x", np.array([1]), arrival_time=-0.5)
