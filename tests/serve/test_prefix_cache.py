"""Shared-prefix paged KV cache: trie index, adoption, copy-on-write.

The acceptance properties of the prefix-caching tentpole:

* adopting another request's blocks produces **bit-identical** served
  tokens (exactness tests live in ``test_engine_scheduling.py``);
* the trie matches full blocks and partial tails, holds its own
  references, and evicts LRU entries only when nobody else uses them;
* writing into a shared block forks it first, so sharers never observe
  each other's writes.
"""

import numpy as np
import pytest

from repro.serve.kv_pool import BlockKVPool, PoolExhaustedError


def make_pool(**kwargs):
    defaults = dict(
        num_layers=2,
        num_heads=2,
        head_dim=4,
        block_size=4,
        initial_blocks=8,
        prefix_caching=True,
    )
    defaults.update(kwargs)
    return BlockKVPool(**defaults)


def fill(seq, layer, tokens_worth, value=1.0, heads=2, head_dim=4):
    """Append ``tokens_worth`` positions of a recognizable constant."""
    k = np.full((1, heads, tokens_worth, head_dim), value)
    seq.layers[layer].append(k, -k)
    return k


def fill_all_layers(seq, tokens_worth, value=1.0):
    for layer in range(seq.pool.num_layers):
        fill(seq, layer, tokens_worth, value=value)


class TestPrefixIndex:
    def test_register_then_match_full_blocks(self):
        pool = make_pool()
        writer = pool.sequence()
        tokens = list(range(10))  # 2 full blocks + partial tail of 2
        fill_all_layers(writer, 10)
        added = writer.register_prefix(tokens)
        assert added == 3  # two full entries + one partial tail
        full_ids, partial_id, partial_len = pool.prefix.match(tokens)
        assert full_ids == writer.block_ids[:2]
        assert partial_id == writer.block_ids[2]
        assert partial_len == 2

    def test_match_respects_token_content(self):
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 8)
        writer.register_prefix([1, 2, 3, 4, 5, 6, 7, 8])
        full_ids, partial_id, partial_len = pool.prefix.match([1, 2, 3, 9])
        assert full_ids == []
        assert partial_id == writer.block_ids[0]
        assert partial_len == 3  # first three tokens of the first block

    def test_registration_is_idempotent(self):
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 6)
        tokens = [5, 6, 7, 8, 9, 10]
        assert writer.register_prefix(tokens) == 2
        assert writer.register_prefix(tokens) == 0  # already covered
        assert len(pool.prefix) == 2

    def test_index_holds_blocks_after_writer_releases(self):
        """Cache retention across requests: the chat-multi-turn property."""
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 8)
        writer.register_prefix(list(range(8)))
        writer.release()
        assert pool.blocks_in_use == 2  # the index's references survive
        full_ids, _, _ = pool.prefix.match(list(range(8)))
        assert len(full_ids) == 2

    def test_register_more_tokens_than_committed_rejected(self):
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 3)
        with pytest.raises(ValueError):
            writer.register_prefix([1, 2, 3, 4])


class TestAdoption:
    def test_adopted_blocks_share_storage_and_bytes(self):
        rng = np.random.default_rng(0)
        pool = make_pool()
        writer = pool.sequence()
        k = rng.normal(size=(1, 2, 8, 4))
        v = rng.normal(size=(1, 2, 8, 4))
        for layer in range(2):
            writer.layers[layer].append(k, v)
        tokens = list(range(100, 108))
        writer.register_prefix(tokens)

        reader = pool.sequence()
        adopted = reader.adopt_prefix(tokens)
        assert adopted == 8
        assert reader.block_ids == writer.block_ids
        assert reader.adopted_tokens == 8
        for layer in range(2):
            k_all, v_all = reader.gather(layer)
            np.testing.assert_array_equal(k_all, k)
            np.testing.assert_array_equal(v_all, v)

    def test_adoption_caps_at_max_tokens(self):
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 8)
        tokens = list(range(8))
        writer.register_prefix(tokens)
        reader = pool.sequence()
        # The engine always leaves >= 1 position to compute.
        assert reader.adopt_prefix(tokens, max_tokens=7) == 7
        assert reader.seq_len == 7
        assert len(reader.block_ids) == 2  # second block adopted partially

    def test_adoption_bumps_refcounts_and_release_decrements(self):
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 4)
        writer.register_prefix(list(range(4)))
        block = writer.block_ids[0]
        assert pool.refcount(block) == 2  # writer + index
        reader = pool.sequence()
        reader.adopt_prefix(list(range(4)))
        assert pool.refcount(block) == 3
        assert pool.blocks_adopted == 1
        reader.release()
        writer.release()
        assert pool.refcount(block) == 1  # the index keeps it cached
        assert pool.blocks_in_use == 1

    def test_adopt_requires_empty_sequence(self):
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 4)
        writer.register_prefix(list(range(4)))
        seq = pool.sequence()
        fill_all_layers(seq, 1)
        with pytest.raises(RuntimeError):
            seq.adopt_prefix(list(range(4)))

    def test_pool_without_index_adopts_nothing(self):
        pool = make_pool(prefix_caching=False)
        seq = pool.sequence()
        assert seq.adopt_prefix([1, 2, 3]) == 0
        assert seq.register_prefix([]) == 0


class TestCopyOnWrite:
    def test_write_into_shared_tail_forks(self):
        """The adopter's writes never touch the shared block."""
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 6, value=1.0)  # 1 full block + tail of 2
        tokens = list(range(6))
        writer.register_prefix(tokens)
        tail = writer.block_ids[1]

        reader = pool.sequence()
        assert reader.adopt_prefix(tokens, max_tokens=5) == 5
        before_forks = pool.cow_forks
        fill_all_layers(reader, 3, value=9.0)  # writes positions 5..7
        assert pool.cow_forks == before_forks + 1
        assert reader.block_ids[1] != tail  # forked a private copy

        # The writer still reads its own bytes everywhere.
        for layer in range(2):
            k_writer, _ = writer.gather(layer)
            np.testing.assert_array_equal(k_writer, np.full((1, 2, 6, 4), 1.0))
        # The reader sees the adopted prefix plus its own writes.
        for layer in range(2):
            k_reader, _ = reader.gather(layer)
            np.testing.assert_array_equal(k_reader[0, :, :5], np.full((2, 5, 4), 1.0))
            np.testing.assert_array_equal(k_reader[0, :, 5:], np.full((2, 3, 4), 9.0))

    def test_fork_copies_all_layers_once(self):
        """Layer 0's write forks; layers 1.. write into the same fork."""
        rng = np.random.default_rng(3)
        pool = make_pool()
        writer = pool.sequence()
        per_layer = [rng.normal(size=(1, 2, 6, 4)) for _ in range(2)]
        for layer, k in enumerate(per_layer):
            writer.layers[layer].append(k, -k)
        tokens = list(range(6))
        writer.register_prefix(tokens)

        reader = pool.sequence()
        reader.adopt_prefix(tokens, max_tokens=5)
        new = rng.normal(size=(1, 2, 1, 4))
        for layer in range(2):
            reader.layers[layer].append(new, -new)
        assert pool.cow_forks == 1
        for layer in range(2):
            k_all, v_all = reader.gather(layer)
            np.testing.assert_array_equal(k_all[0, :, :5], per_layer[layer][0, :, :5])
            np.testing.assert_array_equal(k_all[0, :, 5:], new[0])
            np.testing.assert_array_equal(v_all[0, :, 5:], -new[0])

    def test_owner_decode_past_registered_tail_forks_too(self):
        """Registration freezes the tail: even the writer forks to extend it."""
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 6, value=1.0)
        writer.register_prefix(list(range(6)))
        tail = writer.block_ids[1]
        fill_all_layers(writer, 1, value=5.0)  # decode writes position 6
        assert writer.block_ids[1] != tail
        assert pool.cow_forks == 1
        # The cached entry still matches and still reads the original bytes.
        _, partial_id, partial_len = pool.prefix.match(list(range(6)))
        assert partial_id == tail
        assert partial_len == 2


class TestEvictionAndExhaustion:
    def test_lru_eviction_frees_unreferenced_entries(self):
        pool = make_pool(initial_blocks=4, max_blocks=4)
        writer = pool.sequence()
        fill_all_layers(writer, 8)  # 2 blocks
        writer.register_prefix(list(range(8)))
        writer.release()
        assert pool.blocks_in_use == 2
        # Exhaust the pool: two fresh blocks then one more forces eviction.
        seq = pool.sequence()
        fill_all_layers(seq, 8)
        assert pool.blocks_in_use == 4
        fill_all_layers(seq, 4)  # needs a 3rd block -> evict a cached entry
        assert pool.prefix_evictions >= 1
        assert len(pool.prefix) <= 1

    def test_adopted_entries_are_not_evictable(self):
        pool = make_pool(initial_blocks=4, max_blocks=4)
        writer = pool.sequence()
        fill_all_layers(writer, 8)
        tokens = list(range(8))
        writer.register_prefix(tokens)
        writer.release()
        reader = pool.sequence()
        reader.adopt_prefix(tokens, max_tokens=7)
        assert pool.prefix.evictable_count(pool) == 0
        hog = pool.sequence()
        fill_all_layers(hog, 8)  # takes the 2 free blocks
        with pytest.raises(PoolExhaustedError):
            fill_all_layers(hog, 4)

    def test_evictable_count_is_transitive_and_blocked_by_children(self):
        pool = make_pool()
        writer = pool.sequence()
        fill_all_layers(writer, 8)
        tokens = list(range(8))
        writer.register_prefix(tokens)
        writer.release()
        # Both chained entries are reclaimable once leaves go first.
        assert pool.prefix.evictable_count(pool) == 2
        reader = pool.sequence()
        reader.adopt_prefix(tokens)  # pins both blocks
        assert pool.prefix.evictable_count(pool) == 0
        reader.release()
        assert pool.prefix.evictable_count(pool) == 2

    def test_can_provide_accounts_for_growth_and_eviction(self):
        pool = make_pool(initial_blocks=4, max_blocks=6)
        assert pool.can_provide(6)
        assert not pool.can_provide(7)
        writer = pool.sequence()
        fill_all_layers(writer, 16)  # all 4 initial + grown to 6? no: 4 blocks
        assert pool.can_provide(2)
        assert not pool.can_provide(3)
        writer.register_prefix(list(range(16)))
        writer.release()
        # 4 cached blocks are evictable again on top of the headroom.
        assert pool.can_provide(6)
