"""Scheduler bookkeeping: FIFO admission, slot reuse, retirement."""

import numpy as np
import pytest

from repro.serve.kv_pool import BlockKVPool
from repro.serve.request import Request
from repro.serve.scheduler import ContinuousBatchScheduler


def make_request(rid, arrival=0.0):
    return Request(rid, np.array([1, 2, 3]), max_new_tokens=4, arrival_time=arrival)


@pytest.fixture
def scheduler():
    pool = BlockKVPool(num_layers=2, num_heads=2, head_dim=16, block_size=4, initial_blocks=8)
    return ContinuousBatchScheduler(pool, max_batch_size=2)


class TestAdmission:
    def test_fifo_order(self, scheduler):
        for rid in ("a", "b", "c"):
            scheduler.enqueue(make_request(rid))
        admitted = scheduler.admit(now=1.0)
        assert [s.request.request_id for s in admitted] == ["a", "b"]
        assert scheduler.queue_depth == 1
        assert all(s.admitted_time == 1.0 for s in admitted)

    def test_admit_into_freed_slot(self, scheduler):
        for rid in ("a", "b", "c"):
            scheduler.enqueue(make_request(rid))
        first = scheduler.admit(now=0.0)
        scheduler.retire(first[0])
        second = scheduler.admit(now=2.0)
        assert [s.request.request_id for s in second] == ["c"]
        assert scheduler.active_count == 2
        assert scheduler.queue_depth == 0

    def test_admit_no_queue_is_noop(self, scheduler):
        assert scheduler.admit(now=0.0) == []
        assert not scheduler.has_work

    def test_per_request_generators_are_seeded(self, scheduler):
        scheduler.enqueue(Request("a", np.array([1]), seed=7))
        state = scheduler.admit(now=0.0)[0]
        expected = np.random.default_rng(7).random()
        assert state.rng.random() == expected


class TestRetirement:
    def test_retire_releases_kv_blocks(self, scheduler):
        scheduler.enqueue(make_request("a"))
        state = scheduler.admit(now=0.0)[0]
        state.kv.layers[0].append(np.zeros((1, 2, 5, 16)), np.zeros((1, 2, 5, 16)))
        assert scheduler.pool.blocks_in_use > 0
        scheduler.retire(state)
        assert scheduler.pool.blocks_in_use == 0
        assert scheduler.active_count == 0

    def test_retire_unknown_state_rejected(self, scheduler):
        scheduler.enqueue(make_request("a"))
        state = scheduler.admit(now=0.0)[0]
        scheduler.retire(state)
        with pytest.raises(ValueError):
            scheduler.retire(state)

    def test_max_batch_size_validated(self, scheduler):
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(scheduler.pool, max_batch_size=0)
