"""Scheduler bookkeeping: admission, priorities, budget plans, preemption."""

import numpy as np
import pytest

from repro.serve.kv_pool import BlockKVPool, PoolExhaustedError
from repro.serve.request import Request
from repro.serve.scheduler import ContinuousBatchScheduler, Scheduler


def make_request(rid, arrival=0.0, priority=0, prompt_len=3):
    return Request(
        rid,
        np.arange(1, prompt_len + 1),
        max_new_tokens=4,
        arrival_time=arrival,
        priority=priority,
    )


def make_pool(**kwargs):
    defaults = dict(
        num_layers=2, num_heads=2, head_dim=16, block_size=4, initial_blocks=8
    )
    defaults.update(kwargs)
    return BlockKVPool(**defaults)


@pytest.fixture
def scheduler():
    return ContinuousBatchScheduler(make_pool(), max_batch_size=2)


class TestAdmission:
    def test_fifo_order(self, scheduler):
        for rid in ("a", "b", "c"):
            scheduler.enqueue(make_request(rid))
        admitted = scheduler.admit(now=1.0)
        assert [s.request.request_id for s in admitted] == ["a", "b"]
        assert scheduler.queue_depth == 1
        assert all(s.admitted_time == 1.0 for s in admitted)

    def test_admit_into_freed_slot(self, scheduler):
        for rid in ("a", "b", "c"):
            scheduler.enqueue(make_request(rid))
        first = scheduler.admit(now=0.0)
        scheduler.retire(first[0])
        second = scheduler.admit(now=2.0)
        assert [s.request.request_id for s in second] == ["c"]
        assert scheduler.active_count == 2
        assert scheduler.queue_depth == 0

    def test_admit_no_queue_is_noop(self, scheduler):
        assert scheduler.admit(now=0.0) == []
        assert not scheduler.has_work

    def test_per_request_generators_are_seeded(self, scheduler):
        scheduler.enqueue(Request("a", np.array([1]), seed=7))
        state = scheduler.admit(now=0.0)[0]
        expected = np.random.default_rng(7).random()
        assert state.rng.random() == expected


class TestRetirement:
    def test_retire_releases_kv_blocks(self, scheduler):
        scheduler.enqueue(make_request("a"))
        state = scheduler.admit(now=0.0)[0]
        state.kv.layers[0].append(np.zeros((1, 2, 5, 16)), np.zeros((1, 2, 5, 16)))
        assert scheduler.pool.blocks_in_use > 0
        scheduler.retire(state)
        assert scheduler.pool.blocks_in_use == 0
        assert scheduler.active_count == 0

    def test_retire_unknown_state_rejected(self, scheduler):
        scheduler.enqueue(make_request("a"))
        state = scheduler.admit(now=0.0)[0]
        scheduler.retire(state)
        with pytest.raises(ValueError):
            scheduler.retire(state)

    def test_max_batch_size_validated(self, scheduler):
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(scheduler.pool, max_batch_size=0)


class TestPriorityAdmission:
    def test_higher_class_overtakes_fifo(self):
        scheduler = Scheduler(make_pool(), max_batch_size=2)
        scheduler.enqueue(make_request("batch-a", priority=0))
        scheduler.enqueue(make_request("batch-b", priority=0))
        scheduler.enqueue(make_request("urgent", priority=2))
        admitted = scheduler.admit(now=0.0)
        assert [s.request.request_id for s in admitted] == ["urgent", "batch-a"]

    def test_fifo_within_a_class(self):
        scheduler = Scheduler(make_pool(), max_batch_size=3)
        for rid in ("a", "b", "c"):
            scheduler.enqueue(make_request(rid, priority=1))
        admitted = scheduler.admit(now=0.0)
        assert [s.request.request_id for s in admitted] == ["a", "b", "c"]

    def test_prompt_window_trimmed_to_max_position(self):
        scheduler = Scheduler(make_pool(), max_batch_size=1, max_position=4)
        scheduler.enqueue(make_request("long", prompt_len=10))
        state = scheduler.admit(now=0.0)[0]
        np.testing.assert_array_equal(state.prompt_window, [7, 8, 9, 10])
        assert state.tokens == list(range(1, 11))  # full prompt kept for output


class TestStepPlan:
    def test_budget_chunks_prefill_across_steps(self):
        scheduler = Scheduler(make_pool(), max_batch_size=2, prefill_budget=4)
        scheduler.enqueue(make_request("long", prompt_len=10))
        state = scheduler.admit(now=0.0)[0]
        takes = []
        while state.needs_prefill:
            plan = scheduler.plan()
            assert plan.prefill_tokens <= 4
            (planned, take), = plan.prefill
            assert planned is state
            takes.append(take)
            state.prefill_pos += take  # what the engine does after the forward
        assert takes == [4, 4, 2]

    def test_budget_shared_across_rows_decode_always_runs(self):
        scheduler = Scheduler(make_pool(), max_batch_size=3, prefill_budget=5)
        scheduler.enqueue(make_request("p1", prompt_len=4))
        scheduler.enqueue(make_request("p2", prompt_len=4))
        scheduler.enqueue(make_request("d", prompt_len=2))
        p1, p2, d = scheduler.admit(now=0.0)
        d.prefill_pos = 2  # d already finished prefill
        plan = scheduler.plan()
        assert [(s.request.request_id, n) for s, n in plan.prefill] == [
            ("p1", 4), ("p2", 1)
        ]
        assert [s.request.request_id for s in plan.decode] == ["d"]

    def test_no_budget_prefills_whole_prompt(self):
        scheduler = Scheduler(make_pool(), max_batch_size=1)
        scheduler.enqueue(make_request("r", prompt_len=9))
        scheduler.admit(now=0.0)
        plan = scheduler.plan()
        assert plan.prefill[0][1] == 9

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            Scheduler(make_pool(), prefill_budget=0)


class _StubStrategy:
    """Proposes a fixed draft for every greedy decode row."""

    name = "stub"

    def __init__(self, draft):
        self.draft = tuple(draft)
        self.limits = []

    def propose(self, state, limit):
        self.limits.append(limit)
        return self.draft


class TestSpeculativePlanning:
    def _decode_state(self, scheduler, rid, committed=2, **request_kwargs):
        scheduler.enqueue(make_request(rid, **request_kwargs))
        state = scheduler.admit(now=0.0)[-1]
        heads, dim = scheduler.pool.num_heads, scheduler.pool.head_dim
        chunk = np.zeros((1, heads, committed, dim))
        for layer in range(scheduler.pool.num_layers):
            state.kv.layers[layer].append(chunk, chunk.copy())
        state.prefill_pos = len(state.prompt_window)
        return state

    def test_drafts_recorded_per_decode_row(self):
        stub = _StubStrategy((7, 8))
        scheduler = Scheduler(make_pool(), max_batch_size=2, decode_strategy=stub)
        state = self._decode_state(scheduler, "a")
        plan = scheduler.plan()
        assert plan.decode == [state]
        assert plan.draft_for(state) == (7, 8)
        assert plan.draft_tokens == 2

    def test_draft_capped_by_remaining_budget(self):
        """max_new_tokens=4, 3 produced: at most 1+0 emitted, no drafts."""
        stub = _StubStrategy((7, 8, 9))
        scheduler = Scheduler(make_pool(), max_batch_size=1, decode_strategy=stub)
        state = self._decode_state(scheduler, "a")  # max_new_tokens=4
        state.produced = 3
        plan = scheduler.plan()
        assert plan.draft_for(state) == ()
        state.produced = 1  # 3 remaining: K <= 2
        plan = scheduler.plan()
        assert plan.draft_for(state) == (7, 8)

    def test_draft_capped_by_context_window(self):
        stub = _StubStrategy((7, 8, 9))
        scheduler = Scheduler(
            make_pool(), max_batch_size=1, max_position=6, decode_strategy=stub
        )
        scheduler.enqueue(
            Request("a", np.arange(1, 4), max_new_tokens=32)
        )
        state = scheduler.admit(now=0.0)[0]
        heads, dim = scheduler.pool.num_heads, scheduler.pool.head_dim
        chunk = np.zeros((1, heads, 4, dim))
        for layer in range(scheduler.pool.num_layers):
            state.kv.layers[layer].append(chunk, chunk.copy())
        state.prefill_pos = len(state.prompt_window)
        # seq_len 4, window 6: feeding 1 + K needs K <= 1.
        plan = scheduler.plan()
        assert plan.draft_for(state) == (7,)

    def test_prefilling_rows_get_no_drafts(self):
        stub = _StubStrategy((7,))
        scheduler = Scheduler(make_pool(), max_batch_size=1, decode_strategy=stub)
        scheduler.enqueue(make_request("a"))
        scheduler.admit(now=0.0)
        plan = scheduler.plan()
        assert plan.prefill and not plan.decode
        assert plan.draft_tokens == 0
        assert stub.limits == []  # never consulted for prefill rows

    def test_reserve_accounts_for_draft_positions(self):
        """A speculative row's worst case is 1 + K committed positions."""
        stub = _StubStrategy(tuple(range(7)))
        pool = make_pool(initial_blocks=8, max_blocks=8)
        scheduler = Scheduler(pool, max_batch_size=2, decode_strategy=stub)
        keeper = self._decode_state(
            scheduler, "keeper", committed=24, prompt_len=3
        )
        victim = self._decode_state(scheduler, "victim", committed=4, prompt_len=3)
        keeper.request = Request("keeper", np.arange(1, 4), max_new_tokens=32)
        victim.request = Request("victim", np.arange(1, 4), max_new_tokens=32)
        plan = scheduler.plan()
        # keeper: 24 committed (6 blocks), 8 planned tokens -> 2 fresh blocks;
        # victim: 4 committed (1 block), 8 planned -> 2 fresh.  8-block pool
        # holds 7: preemption must fire, and drop the victim's drafts.
        victims = scheduler.reserve(plan)
        assert victims == [victim]
        assert plan.draft_for(victim) == ()
        assert plan.draft_for(keeper) != ()

    def test_drop_clears_drafts(self):
        stub = _StubStrategy((7,))
        scheduler = Scheduler(make_pool(), max_batch_size=1, decode_strategy=stub)
        state = self._decode_state(scheduler, "a")
        plan = scheduler.plan()
        assert plan.draft_tokens == 1
        plan.drop(state)
        assert plan.draft_tokens == 0
        assert plan.decode == []

    def test_default_strategy_plans_classically(self, scheduler):
        state = self._decode_state(scheduler, "a")
        plan = scheduler.plan()
        assert plan.decode == [state]
        assert plan.drafts == {}


class TestPreemption:
    def _admit_with_blocks(self, scheduler, rid, blocks, priority=0):
        scheduler.enqueue(make_request(rid, priority=priority))
        state = scheduler.admit(now=0.0)[-1]
        bs = scheduler.pool.block_size
        heads, dim = scheduler.pool.num_heads, scheduler.pool.head_dim
        chunk = np.zeros((1, heads, blocks * bs, dim))
        for layer in range(scheduler.pool.num_layers):
            state.kv.layers[layer].append(chunk, chunk.copy())
        state.prefill_pos = len(state.prompt_window)
        return state

    def test_lowest_priority_newest_victim(self):
        pool = make_pool(initial_blocks=8, max_blocks=8)
        scheduler = Scheduler(pool, max_batch_size=3)
        keeper = self._admit_with_blocks(scheduler, "keeper", 3, priority=1)
        old_low = self._admit_with_blocks(scheduler, "old-low", 3, priority=0)
        new_low = self._admit_with_blocks(scheduler, "new-low", 2, priority=0)
        plan = scheduler.plan()
        victims = scheduler.reserve(plan)
        assert [v.request.request_id for v in victims] == ["new-low"]
        assert scheduler.preemption_count == 1
        assert scheduler.preemptions_of("new-low") == 1
        assert new_low.kv is None  # blocks released
        assert keeper in scheduler.active() and old_low in scheduler.active()
        # The victim re-enters the queue ahead of any later arrival.
        scheduler.enqueue(make_request("later", priority=0))
        scheduler.retire(keeper)
        readmitted = scheduler.admit(now=1.0)
        assert readmitted[0].request.request_id == "new-low"

    def test_preempted_plan_rows_are_dropped(self):
        pool = make_pool(initial_blocks=8, max_blocks=8)
        scheduler = Scheduler(pool, max_batch_size=2)
        keeper = self._admit_with_blocks(scheduler, "keeper", 4, priority=1)
        victim = self._admit_with_blocks(scheduler, "victim", 4, priority=0)
        plan = scheduler.plan()
        assert len(plan.decode) == 2
        scheduler.reserve(plan)
        assert [s.request.request_id for s in plan.decode] == ["keeper"]

    def test_exhaustion_with_single_candidate_raises(self):
        pool = make_pool(initial_blocks=8, max_blocks=8)
        scheduler = Scheduler(pool, max_batch_size=1)
        state = self._admit_with_blocks(scheduler, "lone", 8)
        plan = scheduler.plan()
        with pytest.raises(PoolExhaustedError):
            scheduler.reserve(plan)
        assert state in scheduler.active()  # the survivor is never preempted

    def test_preemption_disabled_raises_instead(self):
        pool = make_pool(initial_blocks=8, max_blocks=8)
        scheduler = Scheduler(pool, max_batch_size=2, preemption=False)
        self._admit_with_blocks(scheduler, "a", 4, priority=1)
        self._admit_with_blocks(scheduler, "b", 4, priority=0)
        with pytest.raises(PoolExhaustedError):
            scheduler.reserve(scheduler.plan())

    def test_unbounded_pool_reserves_without_preempting(self):
        scheduler = Scheduler(make_pool(initial_blocks=2), max_batch_size=2)
        self._admit_with_blocks(scheduler, "a", 1)
        self._admit_with_blocks(scheduler, "b", 1)
        assert scheduler.reserve(scheduler.plan()) == []
