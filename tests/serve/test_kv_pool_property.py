"""Randomized property test: BlockKVPool against a naive reference model.

Satellite coverage for the pool's bookkeeping under adversarial
interleavings.  A seeded fuzzer drives long random sequences of
``alloc`` / ``share`` / ``fork`` / ``free`` / ``register_prefix`` /
``adopt_prefix`` / ``rollback`` / eviction operations through a bounded
pool.  Where every operation's effect is directly observable (the
alloc/free churn test) a dead-simple reference model shadows the exact
refcounts; the full-interleaving fuzzer checks the structural invariants
after every operation:

* refcounts are never negative;
* the free list contains no duplicates and no live blocks;
* ``blocks_in_use`` equals the number of blocks with a positive refcount;
* bytes written through one sequence are never observed through another
  (copy-on-write), and registered prefix bytes never change.
"""

import numpy as np
import pytest

from repro.serve.kv_pool import BlockKVPool, PoolExhaustedError

LAYERS, HEADS, DIM, BS = 2, 2, 4, 4


def make_pool(**kwargs):
    defaults = dict(
        num_layers=LAYERS,
        num_heads=HEADS,
        head_dim=DIM,
        block_size=BS,
        initial_blocks=8,
        prefix_caching=True,
    )
    defaults.update(kwargs)
    return BlockKVPool(**defaults)


class ReferenceModel:
    """Naive shadow bookkeeping: a dict of refcounts, nothing clever."""

    def __init__(self):
        self.refcount: dict[int, int] = {}

    def alloc(self, block_id):
        assert self.refcount.get(block_id, 0) == 0, "allocated a live block"
        self.refcount[block_id] = 1

    def share(self, block_id):
        assert self.refcount.get(block_id, 0) >= 1
        self.refcount[block_id] += 1

    def free(self, block_id):
        assert self.refcount.get(block_id, 0) >= 1, "double free"
        self.refcount[block_id] -= 1

    @property
    def live(self):
        return {b for b, c in self.refcount.items() if c > 0}


def check_structural_invariants(pool):
    counts = pool._refcount
    assert (counts >= 0).all(), "negative refcount"
    free = pool._free
    assert len(free) == len(set(free)), "duplicate ids in the free list"
    for block_id in free:
        assert counts[block_id] == 0, "live block on the free list"
    assert pool.blocks_in_use == int((counts > 0).sum())
    # Every id is either free or live: nothing leaks out of both worlds.
    assert len(free) + pool.blocks_in_use == pool.capacity_blocks


def check_against_reference(pool, ref):
    check_structural_invariants(pool)
    counts = pool._refcount
    live = {int(b) for b in np.flatnonzero(counts > 0)}
    assert live == ref.live
    for block_id, expected in ref.refcount.items():
        assert counts[block_id] == expected, f"refcount drift on {block_id}"


def fill(seq, tokens_worth, value):
    chunk = np.full((1, HEADS, tokens_worth, DIM), float(value))
    for layer in range(LAYERS):
        seq.layers[layer].append(chunk, -chunk)


@pytest.mark.parametrize("seed", range(6))
def test_randomized_interleavings_hold_invariants(seed):
    rng = np.random.default_rng(seed)
    pool = make_pool(max_blocks=24)

    sequences = {}  # live SequenceKV -> private write value
    registered = {}  # prefix key -> (writer value, registered length)
    next_value = 1.0
    # Real K/V bytes are a pure function of the token ids, so the index may
    # legitimately cross-match keys sharing a token prefix.  The fuzzer's
    # fill values are per-writer instead, so keys get a unique first token
    # to keep every registered prefix disjoint in the trie.
    key_serial = 0

    for _ in range(250):
        op = rng.choice(
            ["open", "append", "rollback", "register", "adopt", "close", "evict"]
        )
        try:
            if op == "open" or not sequences:
                seq = pool.sequence()
                sequences[seq] = next_value
                next_value += 1.0
            elif op == "append":
                seq = list(sequences)[rng.integers(len(sequences))]
                fill(seq, int(rng.integers(1, 6)), sequences[seq])
            elif op == "rollback":
                seq = list(sequences)[rng.integers(len(sequences))]
                if seq.seq_len:
                    seq.rollback(int(rng.integers(1, seq.seq_len + 1)))
            elif op == "register":
                seq = list(sequences)[rng.integers(len(sequences))]
                if seq.seq_len:
                    key_serial += 1
                    key = (10_000 + key_serial,) + tuple(
                        int(t) for t in rng.integers(0, 50, seq.seq_len - 1)
                    )
                    seq.register_prefix(list(key))
                    registered[key] = (sequences[seq], seq.seq_len)
            elif op == "adopt":
                if registered:
                    key = list(registered)[rng.integers(len(registered))]
                    seq = pool.sequence()
                    # The adopter reads the writer's bytes until it writes;
                    # track it under the writer's value and never append to
                    # it, so the final byte check stays exact.
                    seq.adopt_prefix(list(key))
                    sequences[seq] = registered[key][0]
            elif op == "close":
                seq = list(sequences)[rng.integers(len(sequences))]
                seq.release()
                del sequences[seq]
            elif op == "evict":
                pool.prefix.evict(pool, int(rng.integers(1, 4)))
        except PoolExhaustedError:
            # Legal under a bounded pool: drop a victim and move on,
            # exactly as the scheduler would.
            if sequences:
                victim = list(sequences)[0]
                victim.release()
                del sequences[victim]

        check_structural_invariants(pool)

    # Cached prefix bytes were never mutated by any interleaving: whatever
    # the index still covers must hold the registering writer's value.
    for key, (value, _) in registered.items():
        probe = pool.sequence()
        adopted = probe.adopt_prefix(list(key))
        if adopted:
            expected = np.full((1, HEADS, adopted, DIM), value)
            np.testing.assert_array_equal(probe.gather(0)[0], expected)
        probe.release()

    for seq in list(sequences):
        seq.release()
    check_structural_invariants(pool)
    # Only index-held references may remain (entries hold one ref each).
    assert pool.blocks_in_use <= len(pool.prefix)


def test_cow_isolation_under_random_forks():
    """Two adopters of one prefix never observe each other's writes."""
    rng = np.random.default_rng(99)
    for _ in range(5):
        pool = make_pool()
        writer = pool.sequence()
        length = int(rng.integers(3, 10))
        fill(writer, length, 7.0)
        key = [int(t) for t in rng.integers(0, 50, length)]
        writer.register_prefix(key)

        a, b = pool.sequence(), pool.sequence()
        adopted_a = a.adopt_prefix(key, max_tokens=length - 1)
        adopted_b = b.adopt_prefix(key, max_tokens=length - 1)
        assert adopted_a == adopted_b > 0
        fill(a, int(rng.integers(1, 4)), 1.0)
        fill(b, int(rng.integers(1, 4)), 2.0)
        k_a, _ = a.gather(0)
        k_b, _ = b.gather(0)
        np.testing.assert_array_equal(k_a[0, :, :adopted_a], 7.0)
        np.testing.assert_array_equal(k_b[0, :, :adopted_b], 7.0)
        np.testing.assert_array_equal(k_a[0, :, adopted_a:], 1.0)
        np.testing.assert_array_equal(k_b[0, :, adopted_b:], 2.0)
        # The registered copy itself is untouched.
        np.testing.assert_array_equal(writer.gather(0)[0], 7.0)
        check_structural_invariants(pool)


@pytest.mark.parametrize("seed", range(4))
def test_tiered_churn_holds_invariants(seed):
    """Demote/promote/evict churn through a tiered pool never corrupts it.

    The fuzzer adds the cold tier to the interleaving space: explicit
    ``demote`` ops, tier-aware adoption (which *promotes* cold spans or,
    at tier capacity, drops them), and the allocation-pressure path that
    demotes in-flight.  :meth:`BlockKVPool.check_invariants` runs after
    every operation — refcount conservation, duplicate-free free list,
    one-to-one cold-entry/tier-record matching — and the final byte
    sweep proves promoted spans still carry their writer's bytes (a cold
    span was never aliased by a hot write).
    """
    rng = np.random.default_rng(seed)
    pool = make_pool(max_blocks=16, initial_blocks=8, tier_blocks=6)

    sequences = {}
    registered = {}
    next_value = 1.0
    key_serial = 0

    for _ in range(250):
        op = rng.choice(
            ["open", "append", "register", "adopt", "close", "evict", "demote"],
            p=[0.2, 0.25, 0.15, 0.15, 0.13, 0.05, 0.07],
        )
        try:
            if op == "open" or not sequences:
                seq = pool.sequence()
                sequences[seq] = next_value
                next_value += 1.0
            elif op == "append":
                seq = list(sequences)[rng.integers(len(sequences))]
                fill(seq, int(rng.integers(1, 6)), sequences[seq])
            elif op == "register":
                seq = list(sequences)[rng.integers(len(sequences))]
                if seq.seq_len:
                    key_serial += 1
                    key = (10_000 + key_serial,) + tuple(
                        int(t) for t in rng.integers(0, 50, seq.seq_len - 1)
                    )
                    seq.register_prefix(list(key))
                    registered[key] = sequences[seq]
            elif op == "adopt":
                if registered:
                    key = list(registered)[rng.integers(len(registered))]
                    seq = pool.sequence()
                    seq.adopt_prefix(list(key))
                    sequences[seq] = registered[key]
            elif op == "close":
                seq = list(sequences)[rng.integers(len(sequences))]
                seq.release()
                del sequences[seq]
            elif op == "evict":
                pool.prefix.evict(pool, int(rng.integers(1, 4)))
            elif op == "demote":
                pool.prefix.demote(pool, int(rng.integers(1, 4)))
        except PoolExhaustedError:
            if sequences:
                victim = list(sequences)[0]
                victim.release()
                del sequences[victim]

        pool.check_invariants()
        check_structural_invariants(pool)

    # Promotions restored byte-exact blocks: whatever the index still
    # covers — hot or cold — reads back the registering writer's value.
    for key, value in registered.items():
        probe = pool.sequence()
        adopted = probe.adopt_prefix(list(key))
        if adopted:
            expected = np.full((1, HEADS, adopted, DIM), value)
            np.testing.assert_array_equal(probe.gather(0)[0], expected)
        probe.release()
        pool.check_invariants()

    for seq in list(sequences):
        seq.release()
    pool.check_invariants()


def test_alloc_free_churn_matches_reference_exactly():
    """Where each effect is observable, the shadow model tracks refcounts."""
    rng = np.random.default_rng(5)
    pool = make_pool(initial_blocks=4, max_blocks=12, prefix_caching=False)
    ref = ReferenceModel()
    held = []
    for _ in range(300):
        roll = rng.random()
        if held and roll < 0.45:
            block = held.pop(int(rng.integers(len(held))))
            pool.free([block])
            ref.free(block)
        elif held and roll < 0.6:
            block = held[int(rng.integers(len(held)))]
            pool.share(block)
            ref.share(block)
            held.append(block)
        else:
            try:
                block = pool.allocate()
            except PoolExhaustedError:
                continue
            ref.alloc(block)
            held.append(block)
        check_against_reference(pool, ref)
    # Unknown and double frees are rejected without corrupting state.
    with pytest.raises(ValueError):
        pool.free([10**6])
    freed = held.pop()
    pool.free([freed])
    ref.free(freed)
    if freed not in held:
        with pytest.raises(ValueError):
            pool.free([freed])
    check_against_reference(pool, ref)
