"""Acceptance tests: shared-prefix, chunked-prefill, priority/preemption.

The headline property of the scheduling tentpole: none of the new
mechanisms — adopting another request's KV blocks, splitting a prompt into
budgeted prefill chunks, preempting and deterministically re-running a
request — changes a single served token.  Every scenario below pins served
output against :func:`repro.nn.generation.generate` on the same prompt,
under the reference policy *and* a quantized policy with an FP8 KV cache.
"""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.generation import generate
from repro.nn.model import OPTLanguageModel
from repro.serve import Request, ServeEngine, generate_workload


def make_model(policy=None, seed=7):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


def reference(model, request):
    return generate(
        model,
        request.prompt_ids,
        max_new_tokens=request.max_new_tokens,
        temperature=request.temperature,
        top_k=request.top_k,
        rng=np.random.default_rng(request.seed),
        stop_tokens=request.stop_tokens,
    )


def assert_served_equals_generate(model, requests, **engine_kwargs):
    engine = ServeEngine(model, **engine_kwargs)
    report = engine.serve(requests)
    assert len(report.completed) == len(requests)
    for request in requests:
        np.testing.assert_array_equal(
            report.by_id(request.request_id).tokens,
            reference(model, request),
            err_msg=f"request {request.request_id} diverged from generate()",
        )
    return report


def shared_prefix_requests():
    """Staggered requests sharing prompt prefixes at several granularities."""
    system = np.arange(1, 13)  # a 12-token "system prompt"
    return [
        Request("writer", system, max_new_tokens=6, arrival_time=0.0),
        # Same prompt entirely: adopts every full block.
        Request("twin", system.copy(), max_new_tokens=8, arrival_time=0.004),
        # Extends the shared prefix: adopts blocks, then writes its own.
        Request(
            "longer",
            np.concatenate([system, [40, 41, 42, 43, 44]]),
            max_new_tokens=5,
            arrival_time=0.008,
        ),
        # Diverges mid-block: partial adoption plus copy-on-write.
        Request(
            "diverge",
            np.concatenate([system[:10], [50, 51, 52]]),
            max_new_tokens=6,
            arrival_time=0.012,
        ),
        # No shared prefix at all.
        Request("fresh", np.array([60, 61, 62]), max_new_tokens=6, arrival_time=0.016),
    ]


class TestSharedPrefixExactness:
    """ISSUE acceptance: bit-identical under fp64-ref and bf16-fp8kv."""

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_adopted_prefixes_do_not_change_tokens(self, policy, fixed_timer):
        model = make_model(policy)
        report = assert_served_equals_generate(
            model,
            shared_prefix_requests(),
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
            timer=fixed_timer,
        )
        stats = report.pool_stats
        assert stats["blocks_adopted"] > 0  # sharing actually happened
        assert stats["cow_forks"] > 0  # ...including a mid-block divergence
        assert report.metrics["prefix_hit_rate"] > 0

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_prefix_caching_off_is_bitwise_equivalent(self, policy, fixed_timer):
        requests = shared_prefix_requests()
        on = ServeEngine(
            make_model(policy), block_size=4, prefix_caching=True, timer=fixed_timer
        ).serve(requests)
        off = ServeEngine(make_model(policy), block_size=4).serve(requests)
        for request in requests:
            np.testing.assert_array_equal(
                on.by_id(request.request_id).tokens,
                off.by_id(request.request_id).tokens,
            )
        assert on.pool_stats["blocks_adopted"] > 0
        assert off.pool_stats["blocks_adopted"] == 0

    def test_adoption_survives_writer_retirement(self, fixed_timer):
        """Blocks outlive the registering request: the multi-turn property."""
        model = make_model()
        prompt = np.arange(1, 10)
        first = Request("turn0", prompt, max_new_tokens=2, arrival_time=0.0)
        # Arrives long after turn0 retired; its blocks come from the index.
        second = Request(
            "turn1",
            np.concatenate([prompt, [20, 21, 22]]),
            max_new_tokens=4,
            arrival_time=0.05,
        )
        report = assert_served_equals_generate(
            model,
            [first, second],
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
            timer=fixed_timer,
        )
        assert report.by_id("turn1").prefix_tokens_reused > 0


class TestChunkedPrefill:
    def test_budgeted_prefill_is_bit_identical(self, fixed_timer):
        """A 3-token budget forces multi-step prefills; tokens are unchanged."""
        model = make_model()
        requests = [
            Request("long", np.arange(1, 21), max_new_tokens=6),
            Request("short", np.array([7, 8]), max_new_tokens=8, arrival_time=0.001),
            Request("mid", np.arange(30, 40), max_new_tokens=5, arrival_time=0.002),
        ]
        report = assert_served_equals_generate(
            model,
            requests,
            max_batch_size=3,
            prefill_budget=3,
            timer=fixed_timer,
        )
        # 20 prompt tokens at <=3/step: the run must take many more steps
        # than the unbudgeted version would, proving chunking engaged.
        assert report.metrics["steps"] > 8
        assert report.metrics["prefill_tokens_computed"] == 20 + 2 + 10

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_budget_composes_with_prefix_caching(self, policy, fixed_timer):
        model = make_model(policy)
        assert_served_equals_generate(
            model,
            shared_prefix_requests(),
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
            prefill_budget=4,
            timer=fixed_timer,
        )

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            ServeEngine(make_model(), prefill_budget=0)


class TestChatScenarioAcceptance:
    """ISSUE acceptance: nonzero hit rate, fewer prefill tokens computed."""

    def test_multiturn_chat_hits_the_prefix_cache(self, fixed_timer):
        model = make_model()
        workload = generate_workload(
            "chat-multiturn", num_requests=9, vocab_size=64, seed=0, rate_scale=0.05
        )

        class _Timer:
            def __init__(self):
                self.t = 0.0

            def __call__(self):
                self.t += 0.001
                return self.t

        shared = ServeEngine(
            model, block_size=4, prefix_caching=True, timer=_Timer()
        ).serve(workload)
        private = ServeEngine(model, block_size=4, timer=_Timer()).serve(workload)

        assert shared.metrics["prefix_hit_rate"] > 0
        assert (
            shared.metrics["prefill_tokens_computed"]
            < private.metrics["prefill_tokens_computed"]
        )
        for request in workload:
            np.testing.assert_array_equal(
                shared.by_id(request.request_id).tokens,
                private.by_id(request.request_id).tokens,
            )


class TestPriorityAndPreemption:
    def test_high_priority_admitted_first(self, fixed_timer):
        """With one slot, a later-arriving urgent request overtakes the queue."""
        model = make_model()
        requests = [
            Request("running", np.array([1, 2]), max_new_tokens=12, arrival_time=0.0),
            Request("batch", np.array([3, 4]), max_new_tokens=4, arrival_time=0.001,
                    priority=0),
            Request("urgent", np.array([5, 6]), max_new_tokens=4, arrival_time=0.002,
                    priority=2),
        ]
        report = assert_served_equals_generate(
            model, requests, max_batch_size=1, timer=fixed_timer
        )
        assert (
            report.by_id("urgent").admitted_time < report.by_id("batch").admitted_time
        )

    def test_preempted_request_output_is_byte_identical(self, fixed_timer):
        """ISSUE acceptance: preemption + deterministic re-run changes nothing."""
        model = make_model()
        victim = Request("victim", np.array([9, 10, 11, 12]), max_new_tokens=6,
                         priority=0)
        hogs = [
            Request(f"hog{i}", np.arange(1 + i, 5 + i), max_new_tokens=8, priority=1)
            for i in range(2)
        ]
        engine = ServeEngine(
            model,
            max_batch_size=3,
            block_size=2,
            initial_blocks=4,
            max_blocks=8,
            timer=fixed_timer,
        )
        report = engine.serve(hogs + [victim])
        assert report.metrics["preempted_count"] >= 1
        assert "victim" in report.metrics["preempted_ids"]
        assert report.by_id("victim").preemptions >= 1

        # Byte-identical to the unpreempted solo run *and* to generate().
        solo = ServeEngine(make_model(), max_batch_size=1).serve(
            [Request("victim", np.array([9, 10, 11, 12]), max_new_tokens=6)]
        )
        np.testing.assert_array_equal(
            report.by_id("victim").tokens, solo.by_id("victim").tokens
        )
        for request in hogs + [victim]:
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens, reference(model, request)
            )

    def test_no_livelock_under_budget_plus_bounded_pool(self, fixed_timer):
        """Regression: the protected state must be one the plan runs.

        With a prefill budget *and* a bounded pool, protecting a
        budget-stalled state while preempting every planned row spun
        forever (preemption_count grew without a single completion).
        The budget is now granted in protection-rank order, so the
        never-preempted state always advances and the run terminates.
        """
        model = make_model()
        workload = generate_workload(
            "priority-burst", num_requests=20, vocab_size=64, seed=0
        )
        engine = ServeEngine(
            model,
            max_batch_size=8,
            block_size=2,
            initial_blocks=10,
            max_blocks=10,
            prefix_caching=True,
            prefill_budget=3,
            timer=fixed_timer,
        )
        report = engine.serve(workload)  # must terminate
        assert report.metrics["requests_completed"] == 20
        for request in workload:
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens, reference(model, request)
            )

    def test_preemption_times_recorded(self, fixed_timer):
        model = make_model()
        victim = Request("v", np.array([9, 10, 11, 12]), max_new_tokens=6, priority=0)
        hog = Request("h", np.arange(1, 5), max_new_tokens=10, priority=1)
        report = ServeEngine(
            model, max_batch_size=2, block_size=2, initial_blocks=4, max_blocks=8,
            timer=fixed_timer,
        ).serve([hog, victim])
        metrics = report.metrics
        assert len(metrics["preemption_times_s"]) == metrics["preempted_count"]
        assert all(t >= 0 for t in metrics["preemption_times_s"])

    def test_unbounded_pool_never_preempts(self, fixed_timer):
        model = make_model()
        requests = [
            Request(f"r{i}", np.arange(1, 10), max_new_tokens=8, priority=i % 2)
            for i in range(6)
        ]
        report = assert_served_equals_generate(
            model, requests, max_batch_size=3, block_size=2, timer=fixed_timer
        )
        assert report.metrics["preempted_count"] == 0


class TestSchedulingMetrics:
    def test_new_metric_fields_present(self, fixed_timer):
        model = make_model()
        requests = [
            Request("a", np.array([1, 2, 3]), max_new_tokens=4, priority=1),
            Request("b", np.array([4, 5]), max_new_tokens=4, priority=0,
                    arrival_time=0.001),
        ]
        report = ServeEngine(model, timer=fixed_timer).serve(requests)
        metrics = report.metrics
        assert metrics["prefill_tokens_computed"] == 5
        assert metrics["prefix_tokens_reused"] == 0
        assert metrics["prefix_hit_rate"] == 0.0
        assert metrics["preempted_count"] == 0
        assert metrics["preempted_ids"] == []
        by_priority = metrics["latency_by_priority"]
        assert set(by_priority) == {"0", "1"}
        assert by_priority["1"]["requests"] == 1
        assert {"mean", "p50", "p90", "p99"} <= set(by_priority["0"]["ttft_s"])
        pool = report.pool_stats
        for key in (
            "blocks_adopted",
            "cow_forks",
            "prefix_blocks_cached",
            "prefix_evictions",
        ):
            assert pool[key] == 0  # prefix caching off, nothing preempted
