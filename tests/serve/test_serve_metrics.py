"""MetricsRecorder reductions: distribution edges, priority classes, spec.

Satellite coverage for :mod:`repro.serve.metrics`: ``_distribution`` on
empty and single-value samples, ``latency_by_priority`` when a priority
class completes nothing, and the speculative counters' zero/denominator
behaviour.
"""

import json
import math

import numpy as np

from repro.serve.metrics import PERCENTILES, MetricsRecorder, _distribution
from repro.serve.request import CompletedRequest


def completed(rid, priority=0, arrival=0.0, first=1.0, finish=2.0, generated=3):
    return CompletedRequest(
        request_id=rid,
        tokens=np.arange(generated + 2),
        prompt_len=2,
        generated=generated,
        finish_reason="length",
        arrival_time=arrival,
        admitted_time=arrival,
        first_token_time=first,
        finish_time=finish,
        priority=priority,
    )


class TestDistribution:
    def test_empty_sample_is_zeros_with_zero_count(self):
        """No data reports 0.0 (valid JSON), distinguished by count == 0."""
        out = _distribution([])
        assert set(out) == {"count", "mean", *(f"p{p}" for p in PERCENTILES)}
        assert out["count"] == 0
        assert out["mean"] == 0.0
        for p in PERCENTILES:
            assert out[f"p{p}"] == 0.0

    def test_no_nans_anywhere(self):
        for sample in ([], [0.5], [1.0, 2.0]):
            assert not any(math.isnan(v) for v in _distribution(sample).values())

    def test_single_value_collapses_every_percentile(self):
        out = _distribution([0.25])
        assert out["count"] == 1
        assert out["mean"] == 0.25
        for p in PERCENTILES:
            assert out[f"p{p}"] == 0.25

    def test_two_values_interpolate(self):
        out = _distribution([0.0, 1.0])
        assert out["mean"] == 0.5
        assert out["p50"] == 0.5
        assert out["p99"] > out["p50"]

    def test_accepts_generators(self):
        assert _distribution(x for x in (1.0, 3.0))["mean"] == 2.0


class TestLatencyByPriority:
    def test_class_with_zero_completions_is_absent(self):
        """Only classes that completed requests appear — no NaN-filled rows
        for classes that were enqueued but never finished."""
        recorder = MetricsRecorder()
        recorder.record_completion(completed("a", priority=2), [1.0, 1.5])
        # Priority 0 requests exist in the workload but none completed.
        by_priority = recorder.summary()["latency_by_priority"]
        assert set(by_priority) == {"2"}
        assert by_priority["2"]["requests"] == 1

    def test_empty_run_has_empty_mapping(self):
        assert MetricsRecorder().summary()["latency_by_priority"] == {}

    def test_classes_sorted_and_counted(self):
        recorder = MetricsRecorder()
        for rid, priority in (("a", 1), ("b", 0), ("c", 1)):
            recorder.record_completion(completed(rid, priority=priority), [1.0])
        by_priority = recorder.summary()["latency_by_priority"]
        assert list(by_priority) == ["0", "1"]
        assert by_priority["1"]["requests"] == 2

    def test_single_completion_distributions_are_finite(self):
        recorder = MetricsRecorder()
        recorder.record_completion(completed("a", priority=3), [1.0])
        row = recorder.summary()["latency_by_priority"]["3"]
        assert row["ttft_s"]["p50"] == row["ttft_s"]["p99"] == 1.0
        assert not math.isnan(row["queue_wait_s"]["mean"])


class TestSpeculationCounters:
    def test_zero_speculation_rates(self):
        recorder = MetricsRecorder()
        recorder.record_step(queue_depth=0, active=1, elapsed=0.01, tokens=1)
        summary = recorder.summary()
        assert summary["draft_proposed"] == 0
        assert summary["acceptance_rate"] == 0.0
        assert summary["decode_tokens_per_step"] == 0.0

    def test_rates_accumulate_across_steps(self):
        recorder = MetricsRecorder()
        recorder.record_step(
            queue_depth=0, active=2, elapsed=0.01, tokens=5,
            draft_proposed=4, draft_accepted=3, decode_rows=2, decode_tokens=5,
        )
        recorder.record_step(
            queue_depth=0, active=2, elapsed=0.01, tokens=2,
            draft_proposed=2, draft_accepted=0, decode_rows=2, decode_tokens=2,
        )
        summary = recorder.summary()
        assert summary["draft_proposed"] == 6
        assert summary["draft_accepted"] == 3
        assert summary["acceptance_rate"] == 0.5
        assert summary["decode_tokens_per_step"] == 7 / 4

    def test_empty_run_summary_is_strict_json(self):
        """A run that completed nothing serializes with allow_nan=False —
        the NaN-leak regression this satellite pins down."""
        summary = MetricsRecorder().summary()
        parsed = json.loads(json.dumps(summary, allow_nan=False))
        assert parsed["inter_token_latency_s"]["count"] == 0
        assert parsed["inter_token_latency_s"]["p99"] == 0.0
        assert parsed["acceptance_rate"] == 0.0
        assert parsed["decode_tokens_per_step"] == 0.0

    def test_summary_is_json_serializable(self):
        recorder = MetricsRecorder()
        recorder.record_completion(completed("a"), [1.0, 1.2])
        recorder.record_step(
            queue_depth=1, active=1, elapsed=0.01, tokens=2,
            draft_proposed=1, draft_accepted=1, decode_rows=1, decode_tokens=2,
        )
        parsed = json.loads(json.dumps(recorder.summary(max_batch_size=4)))
        assert parsed["tokens_generated"] == 3
