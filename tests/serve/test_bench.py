"""Benchmark harness: scenario cells, engine-job declaration, JSON output."""

import json

import numpy as np
import pytest

from repro.serve.bench import DEFAULT_NORMALIZERS, jobs, run_bench, run_scenario


class TestRunScenario:
    def test_rows_and_text(self):
        rows, text = run_scenario(
            scenario="steady", normalizer="baseline", quick=True, num_requests=4, seed=0
        )
        assert rows["scenario"] == "steady"
        assert rows["normalizer"] == "baseline"
        assert rows["metrics"]["requests_completed"] == 4
        assert rows["metrics"]["tokens_per_second"] > 0
        assert rows["pool"]["blocks_in_use"] == 0
        assert "steady" in text and "tok/s" in text
        json.dumps(rows)  # engine-cacheable: must be JSON-serializable

    def test_token_streams_identical_across_normalizer_timing(self):
        """Same seed => same workload: token counts match across runs."""
        rows_a, _ = run_scenario(scenario="chat", quick=True, num_requests=4, seed=5)
        rows_b, _ = run_scenario(scenario="chat", quick=True, num_requests=4, seed=5)
        assert (
            rows_a["metrics"]["tokens_generated"]
            == rows_b["metrics"]["tokens_generated"]
        )
        assert rows_a["metrics"]["finish_reasons"] == rows_b["metrics"]["finish_reasons"]

    def test_unknown_normalizer(self):
        with pytest.raises(KeyError):
            run_scenario(normalizer="nope")


class TestPolicyAxis:
    def test_rows_carry_policy(self):
        rows, _ = run_scenario(
            scenario="steady", normalizer="baseline", quick=True,
            num_requests=3, seed=0, policy="fp16",
        )
        assert rows["policy"] == "fp16"

    def test_default_policy_is_reference(self):
        rows, _ = run_scenario(
            scenario="steady", quick=True, num_requests=3, seed=1,
        )
        assert rows["policy"] == "fp64-ref"

    def test_normalizer_fmt_follows_quantized_policy(self, monkeypatch):
        """Under --policy the variants drop their hardcoded fp16 format."""
        import repro.serve.bench as bench_mod
        from repro.nn.model import OPTLanguageModel

        seen = {}
        original = OPTLanguageModel.replace_layernorm

        def spy(self, method, fmt=None, **kwargs):
            seen["fmt"] = fmt
            return original(self, method, fmt=fmt, **kwargs)

        monkeypatch.setattr(OPTLanguageModel, "replace_layernorm", spy)
        bench_mod.run_scenario(
            scenario="steady", normalizer="iterl2norm", quick=True,
            num_requests=2, seed=0, policy="bf16",
        )
        assert seen["fmt"] == "bf16"
        bench_mod.run_scenario(
            scenario="steady", normalizer="iterl2norm", quick=True,
            num_requests=2, seed=0,
        )
        assert seen["fmt"] == "fp16"  # fp64-ref keeps the historical format


class TestSchedulingKnobs:
    def test_prefix_caching_chat_cell_reports_hits(self):
        rows, text = run_scenario(
            scenario="chat-multiturn", normalizer="baseline", quick=True,
            num_requests=6, seed=0, prefix_caching=True,
        )
        assert rows["prefix_caching"] is True
        assert rows["metrics"]["prefix_hit_rate"] > 0
        assert rows["pool"]["blocks_adopted"] > 0
        assert "prefix hit" in text
        json.dumps(rows)

    def test_prefill_budget_threads_through(self):
        rows, _ = run_scenario(
            scenario="chat", normalizer="baseline", quick=True,
            num_requests=4, seed=0, prefill_budget=4,
        )
        assert rows["prefill_budget"] == 4
        assert rows["metrics"]["prefill_tokens_computed"] > 0

    def test_priority_mix_threads_through(self):
        rows, _ = run_scenario(
            scenario="steady", normalizer="baseline", quick=True,
            num_requests=8, seed=0, priority_mix="1:0.5,0:0.5",
        )
        assert rows["priority_mix"] == "1:0.5,0:0.5"
        assert set(rows["metrics"]["latency_by_priority"]) <= {"0", "1"}

    def test_max_blocks_arms_preemption(self):
        """A bounded pool is reachable from the bench (and the CLI flag)."""
        rows, _ = run_scenario(
            scenario="priority-burst", normalizer="baseline", quick=True,
            num_requests=10, seed=0, max_batch_size=6, max_blocks=8,
            block_size=4,
        )
        assert rows["max_blocks"] == 8
        assert rows["metrics"]["preempted_count"] > 0
        assert rows["metrics"]["requests_completed"] == 10

    def test_knob_jobs_carry_params(self):
        declared = jobs(
            quick=True, scenarios=("chat-multiturn",),
            normalizers=("baseline",), prefix_caching=True, prefill_budget=16,
        )
        assert len(declared) == 1
        assert declared[0].params["prefix_caching"] is True
        assert declared[0].params["prefill_budget"] == 16

    def test_unknown_scenario_rejected_at_declaration(self):
        with pytest.raises(KeyError):
            jobs(quick=True, scenarios=("nope",))


class TestJobs:
    def test_grid_declaration(self):
        declared = jobs(quick=True, seed=3)
        assert len(declared) == 4 * len(DEFAULT_NORMALIZERS)
        names = {job.name for job in declared}
        assert "serve[steady/baseline/one-token]" in names
        assert "serve[codegen/iterl2norm/one-token]" in names
        for job in declared:
            assert job.target == "repro.serve.bench:run_scenario"
            assert job.seed == 3

    def test_jobs_resolve_and_hash(self):
        job = jobs(quick=True)[0]
        assert callable(job.resolve())
        assert len(job.config_hash("v0")) == 64


class TestDecodeStrategyAxis:
    def test_speculative_cell_reports_acceptance(self):
        rows, text = run_scenario(
            scenario="summarize-copy", normalizer="baseline", quick=True,
            num_requests=6, seed=0, decode_strategy="prompt-lookup",
        )
        assert rows["decode_strategy"] == "prompt-lookup"
        assert rows["metrics"]["acceptance_rate"] > 0
        assert rows["metrics"]["decode_tokens_per_step"] > 1.0
        assert "accept" in text and "tok/step" in text
        json.dumps(rows)

    def test_token_digest_matches_across_strategies(self):
        """The artifact-level exactness proof: digests pair up."""
        base, _ = run_scenario(
            scenario="summarize-copy", normalizer="baseline", quick=True,
            num_requests=6, seed=0,
        )
        spec, _ = run_scenario(
            scenario="summarize-copy", normalizer="baseline", quick=True,
            num_requests=6, seed=0, decode_strategy="prompt-lookup",
        )
        assert base["token_digest"] == spec["token_digest"]
        assert base["metrics"]["steps"] > spec["metrics"]["steps"]

    def test_ngram_and_max_draft_thread_through(self):
        rows, _ = run_scenario(
            scenario="summarize-copy", normalizer="baseline", quick=True,
            num_requests=4, seed=0, decode_strategy="prompt-lookup",
            ngram=2, max_draft=6,
        )
        assert rows["ngram"] == 2
        assert rows["max_draft"] == 6

    def test_copy_rate_override(self):
        rows, _ = run_scenario(
            scenario="summarize-copy", normalizer="baseline", quick=True,
            num_requests=4, seed=0, copy_rate=0.0,
        )
        assert rows["copy_rate"] == 0.0

    def test_spec_jobs_pair_baselines(self):
        declared = jobs(
            quick=True, scenarios=("summarize-copy",), normalizers=("baseline",),
            decode_strategies=("one-token", "prompt-lookup"), ngram=3, max_draft=4,
        )
        assert len(declared) == 2
        by_strategy = {job.params["decode_strategy"]: job for job in declared}
        assert "ngram" not in by_strategy["one-token"].params
        assert by_strategy["prompt-lookup"].params["ngram"] == 3

    def test_spec_bench_comparison(self, tmp_path):
        out = tmp_path / "BENCH_serve_spec.json"
        payload, _ = run_bench(
            quick=True,
            seed=0,
            out_path=str(out),
            scenarios=("summarize-copy",),
            normalizers=("baseline",),
            decode_strategy="prompt-lookup",
            stream=open("/dev/null", "w"),
        )
        cell = payload["spec_comparison"]["summarize-copy/baseline"]["prompt-lookup"]
        assert cell["tokens_match"] is True
        assert cell["acceptance_rate"] > 0
        assert cell["decode_tokens_per_step"] > 1.0
        assert cell["steps_ratio"] < 1.0
        assert len(payload["results"]) == 2  # paired baseline ran too

    def test_spec_bench_defaults_to_copy_grid(self, tmp_path):
        from repro.serve.bench import SPEC_SCENARIOS

        out = tmp_path / "spec.json"
        payload, _ = run_bench(
            quick=True,
            seed=0,
            out_path=str(out),
            normalizers=("baseline",),
            decode_strategy="prompt-lookup",
            stream=open("/dev/null", "w"),
        )
        assert set(payload["config"]["scenarios"]) == set(SPEC_SCENARIOS)


class TestRepeats:
    def _stub_rows(self, tps, digest="d0"):
        return (
            {"token_digest": digest, "metrics": {"tokens_per_second": tps}},
            "text",
        )

    def test_best_of_n_keeps_fastest_repeat(self, monkeypatch):
        import repro.serve.bench as bench_mod

        speeds = iter([10.0, 30.0, 20.0])
        calls = []

        def stub(**params):
            calls.append(params)
            return self._stub_rows(next(speeds))

        monkeypatch.setattr(bench_mod, "run_scenario", stub)
        rows, _ = bench_mod.run_serve_cell(repeats=3, scenario="steady")
        assert len(calls) == 3
        assert rows["metrics"]["tokens_per_second"] == 30.0
        assert rows["repeats"] == 3

    def test_digest_drift_across_repeats_aborts(self, monkeypatch):
        import repro.serve.bench as bench_mod

        digests = iter(["d0", "d1"])
        monkeypatch.setattr(
            bench_mod,
            "run_scenario",
            lambda **params: self._stub_rows(1.0, digest=next(digests)),
        )
        with pytest.raises(RuntimeError, match="no longer deterministic"):
            bench_mod.run_serve_cell(repeats=2, scenario="steady")

    def test_repeats_must_be_positive(self):
        from repro.serve.bench import run_serve_cell

        with pytest.raises(ValueError, match="repeats"):
            run_serve_cell(repeats=0, scenario="steady")

    def test_jobs_route_through_repeat_wrapper(self):
        declared = jobs(
            quick=True, scenarios=("steady",), normalizers=("baseline",),
            repeats=3,
        )
        assert declared[0].target == "repro.serve.bench:run_serve_cell"
        assert declared[0].params["repeats"] == 3
        single = jobs(
            quick=True, scenarios=("steady",), normalizers=("baseline",),
        )
        assert single[0].target == "repro.serve.bench:run_scenario"

    def test_run_bench_records_repeats_and_stays_exact(self, tmp_path):
        out = tmp_path / "bench.json"
        payload, _ = run_bench(
            quick=True,
            seed=0,
            out_path=str(out),
            scenarios=("steady",),
            normalizers=("baseline",),
            repeats=2,
            stream=open("/dev/null", "w"),
        )
        assert payload["config"]["repeats"] == 2
        assert payload["results"][0]["repeats"] == 2

    def test_run_bench_rejects_bad_repeats(self, tmp_path):
        with pytest.raises(ValueError, match="--repeats"):
            run_bench(
                quick=True,
                seed=0,
                out_path=str(tmp_path / "x.json"),
                repeats=0,
                stream=open("/dev/null", "w"),
            )


class TestRunBench:
    def test_writes_json_with_all_scenarios(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        payload, text = run_bench(
            quick=True,
            jobs_n=1,
            seed=0,
            out_path=str(out),
            normalizers=("baseline",),
            stream=open("/dev/null", "w"),
        )
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk["config"]["scenarios"] == ["bursty", "chat", "codegen", "steady"]
        assert len(on_disk["results"]) == 4
        for row in on_disk["results"]:
            metrics = row["metrics"]
            assert metrics["tokens_per_second"] > 0
            assert "p99" in metrics["ttft_s"]
            assert "max" in metrics["queue_depth"]
            assert row["pool"]["blocks_allocated"] > 0
        assert "wrote" in text

    def test_comparison_section(self, tmp_path):
        out = tmp_path / "bench.json"
        payload, _ = run_bench(
            quick=True,
            seed=0,
            out_path=str(out),
            scenarios=("steady",),
            normalizers=("baseline", "exact"),
            stream=open("/dev/null", "w"),
        )
        comparison = payload["comparison"]["steady"]["exact"]
        assert comparison["tokens_per_second_ratio"] > 0
        assert np.isfinite(comparison["ttft_p50_delta_s"])
        assert isinstance(comparison["tokens_generated_delta"], int)


class TestBackendAxis:
    def test_compiled_cell_matches_reference_digest(self):
        """Same seed + scenario: the compiled executor serves identical
        tokens, so the content digests pair up across backends."""
        ref, _ = run_scenario(
            scenario="steady", normalizer="baseline", quick=True,
            num_requests=4, seed=0, policy="bf16-fp8kv",
        )
        comp, text = run_scenario(
            scenario="steady", normalizer="baseline", quick=True,
            num_requests=4, seed=0, policy="bf16-fp8kv", backend="compiled",
        )
        assert ref["backend"] == "reference"
        assert comp["backend"] == "compiled"
        assert comp["token_digest"] == ref["token_digest"]
        assert "compiled" in text
        json.dumps(comp)

    def test_backend_jobs_pair_reference_twins(self):
        declared = jobs(
            quick=True, scenarios=("steady",), normalizers=("baseline",),
            backends=("reference", "compiled"),
        )
        assert len(declared) == 2
        by_backend = {job.params["backend"]: job for job in declared}
        assert set(by_backend) == {"reference", "compiled"}
        assert by_backend["compiled"].name.endswith("[compiled]")

    def test_backend_bench_comparison(self, tmp_path):
        out = tmp_path / "BENCH_executor.json"
        payload, _ = run_bench(
            quick=True,
            seed=0,
            out_path=str(out),
            scenarios=("steady",),
            normalizers=("baseline",),
            backend="compiled",
            stream=open("/dev/null", "w"),
        )
        assert payload["config"]["backend"] == "compiled"
        assert len(payload["results"]) == 2  # paired reference twin ran too
        cell = payload["backend_comparison"]["steady/baseline/fp64-ref"]["compiled"]
        assert cell["tokens_match"] is True
        assert cell["tokens_per_second"] > 0
        assert cell["reference_tokens_per_second"] > 0
        assert cell["tokens_per_second_ratio"] > 0

    def test_policies_sweep_keys_comparison_per_preset(self, tmp_path):
        out = tmp_path / "BENCH_executor.json"
        payload, _ = run_bench(
            quick=True,
            seed=0,
            out_path=str(out),
            scenarios=("steady",),
            normalizers=("baseline",),
            backend="compiled",
            policies=("fp64-ref", "bf16-fp8kv"),
            stream=open("/dev/null", "w"),
        )
        comparison = payload["backend_comparison"]
        assert set(comparison) == {
            "steady/baseline/fp64-ref", "steady/baseline/bf16-fp8kv"
        }
        for cell in comparison.values():
            assert cell["compiled"]["tokens_match"] is True


class TestKnobGuards:
    def test_spec_knobs_without_strategy_rejected(self, tmp_path):
        from repro.serve.bench import run_bench as rb

        with pytest.raises(ValueError, match="decode-strategy"):
            rb(
                quick=True,
                seed=0,
                out_path=str(tmp_path / "x.json"),
                scenarios=("steady",),
                normalizers=("baseline",),
                max_draft=8,
                stream=open("/dev/null", "w"),
            )

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="--backend"):
            run_bench(
                quick=True, seed=0, out_path=str(tmp_path / "x.json"),
                scenarios=("steady",), normalizers=("baseline",),
                backend="vectorized", stream=open("/dev/null", "w"),
            )

    def test_bad_speculation_knobs_rejected_up_front(self, tmp_path):
        with pytest.raises(ValueError, match="--ngram"):
            run_bench(
                quick=True, seed=0, out_path=str(tmp_path / "x.json"),
                scenarios=("steady",), normalizers=("baseline",),
                decode_strategy="prompt-lookup", ngram=0,
                stream=open("/dev/null", "w"),
            )
        with pytest.raises(ValueError, match="--max-draft"):
            run_bench(
                quick=True, seed=0, out_path=str(tmp_path / "x.json"),
                scenarios=("steady",), normalizers=("baseline",),
                decode_strategy="prompt-lookup", max_draft=-1,
                stream=open("/dev/null", "w"),
            )

    def test_cli_turns_flag_mistakes_into_usage_errors(self, tmp_path, capsys):
        """A bad flag combination exits with a one-line message, not a
        traceback (the satellite hardening for serve-bench)."""
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--decode-strategy", "prompt-lookup",
                "--ngram", "0",
            ])
        assert "serve-bench:" in str(excinfo.value)
        assert "--ngram" in str(excinfo.value)


class TestTierFlagValidation:
    """The cold-tier flags fail fast, house-style, across every bench."""

    def test_validate_tier_rejections(self):
        from repro.serve.bench import validate_tier

        with pytest.raises(ValueError, match="not both"):
            validate_tier(tier_blocks=8, tier_ratio=0.5, prefix_caching=True)
        with pytest.raises(ValueError, match="--tier-blocks"):
            validate_tier(tier_blocks=-1, prefix_caching=True)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            validate_tier(tier_ratio=1.5, prefix_caching=True, max_blocks=8)
        with pytest.raises(ValueError, match="--prefix-caching"):
            validate_tier(tier_blocks=8, prefix_caching=False)
        with pytest.raises(ValueError, match="--max-blocks"):
            validate_tier(tier_ratio=0.5, prefix_caching=True)
        with pytest.raises(ValueError, match="--tier-fmt"):
            validate_tier(tier_fmt="fp8_e4m3", prefix_caching=True)
        with pytest.raises(ValueError, match="--tier-fmt"):
            validate_tier(
                tier_blocks=8, tier_fmt="int7", prefix_caching=True
            )
        # The all-clear combinations do not raise.
        validate_tier()
        validate_tier(tier_blocks=8, prefix_caching=True)
        validate_tier(tier_ratio=0.25, prefix_caching=True, max_blocks=16)

    def test_serve_bench_cli_one_line_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--tier-blocks", "8",
            ])
        assert "serve-bench:" in str(excinfo.value)
        assert "--prefix-caching" in str(excinfo.value)

    def test_cluster_bench_cli_one_line_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "cluster-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--tier-ratio", "0.5",
            ])
        assert "cluster-bench:" in str(excinfo.value)
        assert "--max-blocks" in str(excinfo.value)

    def test_shard_bench_cli_one_line_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "shard-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--prefix-caching", "--tier-blocks", "8",
                "--tier-fmt", "int7",
            ])
        assert "shard-bench:" in str(excinfo.value)
        assert "--tier-fmt" in str(excinfo.value)

    def test_unknown_dag_scenario_is_a_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--scenarios", "agent-forest",
            ])
        assert "serve-bench:" in str(excinfo.value)
        assert "agent-forest" in str(excinfo.value)


class TestTierPairing:
    """Arming the tier pairs every cell with an untiered twin."""

    def test_jobs_tier_axis_doubles_cells_and_marks_names(self):
        from repro.serve.bench import jobs

        tier = {"tier_blocks": 16, "slo_aware": False}
        declared = jobs(
            quick=True, seed=0, scenarios=("agent-tree",),
            normalizers=("baseline",), tiers=(None, tier),
        )
        names = [job.name for job in declared]
        assert len(names) == 2
        assert sum("[tiered]" in name for name in names) == 1
        tiered = next(j for j in declared if "[tiered]" in j.name)
        assert tiered.params["tier_blocks"] == 16

    def test_run_bench_tiered_writes_tier_comparison(self, tmp_path):
        payload, _ = run_bench(
            quick=True, seed=0, out_path=str(tmp_path / "tier.json"),
            scenarios=("agent-tree",), normalizers=("baseline",),
            policy="fp64-ref", prefix_caching=True, block_size=8,
            max_blocks=12, tier_blocks=48,
            stream=open("/dev/null", "w"),
        )
        comparison = payload["tier_comparison"]
        assert comparison, "tiered run must emit tier_comparison"
        for cell in comparison.values():
            assert cell["tokens_match"] is True
            assert cell["blocks_demoted"] > 0
        # The classic comparisons only ever see untiered rows.
        for row_key in payload["comparison"]:
            assert "[tiered]" not in row_key
