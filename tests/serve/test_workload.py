"""Workload generator: scenario shapes, determinism, arrival models."""

import numpy as np
import pytest

from repro.serve.workload import SCENARIOS, generate_workload, get_scenario


class TestScenarios:
    def test_mixes_registered(self):
        assert set(SCENARIOS) == {
            "steady",
            "bursty",
            "chat",
            "codegen",
            "chat-multiturn",
            "agent-fanout",
            "priority-burst",
            "summarize-copy",
            "agent-tree",
            "map-reduce",
        }

    def test_default_bench_grid_is_the_classic_four(self):
        from repro.serve.bench import DEFAULT_SCENARIOS

        assert DEFAULT_SCENARIOS == ("steady", "bursty", "chat", "codegen")

    def test_chat_is_prefill_heavy_codegen_is_decode_heavy(self):
        chat = get_scenario("chat")
        codegen = get_scenario("codegen")
        assert chat.prompt_len[0] > chat.max_new[1]
        assert codegen.max_new[0] > codegen.prompt_len[1]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("nope")


class TestGeneration:
    def test_same_seed_same_workload(self):
        a = generate_workload("bursty", num_requests=10, vocab_size=64, seed=3)
        b = generate_workload("bursty", num_requests=10, vocab_size=64, seed=3)
        for left, right in zip(a, b):
            assert left.request_id == right.request_id
            assert left.seed == right.seed
            assert left.arrival_time == right.arrival_time
            np.testing.assert_array_equal(left.prompt_ids, right.prompt_ids)

    def test_different_seed_different_workload(self):
        a = generate_workload("steady", num_requests=10, vocab_size=64, seed=0)
        b = generate_workload("steady", num_requests=10, vocab_size=64, seed=1)
        assert any(
            left.prompt_ids.size != right.prompt_ids.size
            or not np.array_equal(left.prompt_ids, right.prompt_ids)
            for left, right in zip(a, b)
        )

    def test_request_shapes_respect_scenario(self):
        scenario = get_scenario("chat")
        requests = generate_workload(scenario, num_requests=20, vocab_size=64, seed=0)
        assert len(requests) == 20
        for request in requests:
            assert scenario.prompt_len[0] <= request.prompt_ids.size <= scenario.prompt_len[1]
            assert scenario.max_new[0] <= request.max_new_tokens <= scenario.max_new[1]
            assert request.temperature == scenario.temperature
            assert request.stop_tokens == (63,)
            assert not np.any(request.prompt_ids == 63)  # EOS kept out of prompts
            assert np.all(request.prompt_ids >= 1)

    def test_arrivals_sorted_and_rate_scale_compresses(self):
        slow = generate_workload("steady", num_requests=20, vocab_size=64, seed=0)
        fast = generate_workload(
            "steady", num_requests=20, vocab_size=64, seed=0, rate_scale=4.0
        )
        slow_times = [r.arrival_time for r in slow]
        fast_times = [r.arrival_time for r in fast]
        assert slow_times == sorted(slow_times)
        assert fast_times[-1] == pytest.approx(slow_times[-1] / 4.0)

    def test_per_request_seeds_differ(self):
        requests = generate_workload("codegen", num_requests=16, vocab_size=64, seed=0)
        assert len({r.seed for r in requests}) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload("steady", num_requests=0, vocab_size=64)
        with pytest.raises(ValueError):
            generate_workload("steady", num_requests=1, vocab_size=2)
        with pytest.raises(ValueError):
            generate_workload("steady", num_requests=1, vocab_size=64, rate_scale=0)


class TestStructuredScenarios:
    def test_multiturn_prompts_extend_previous_turn(self):
        """Turn t's prompt is a strict extension of turn t-1's prompt."""
        scenario = get_scenario("chat-multiturn")
        requests = generate_workload(
            "chat-multiturn", num_requests=9, vocab_size=64, seed=0
        )
        for c in range(3):
            turns = requests[c * scenario.num_turns : (c + 1) * scenario.num_turns]
            for prev, cur in zip(turns, turns[1:]):
                assert cur.prompt_ids.size > prev.prompt_ids.size
                np.testing.assert_array_equal(
                    cur.prompt_ids[: prev.prompt_ids.size], prev.prompt_ids
                )
            # Turn arrivals are ordered within the conversation.
            times = [t.arrival_time for t in turns]
            assert times == sorted(times)

    def test_multiturn_prompts_fit_the_test_model_window(self):
        """Prompts must stay inside opt-test's max_position for sharing."""
        requests = generate_workload(
            "chat-multiturn", num_requests=30, vocab_size=64, seed=1
        )
        assert max(r.prompt_ids.size for r in requests) <= 32

    def test_fanout_groups_share_their_context(self):
        scenario = get_scenario("agent-fanout")
        requests = generate_workload(
            "agent-fanout", num_requests=12, vocab_size=64, seed=0
        )
        for g in range(2):
            group = requests[g * scenario.fanout : (g + 1) * scenario.fanout]
            shortest = min(r.prompt_ids.size for r in group)
            context_len = shortest - scenario.prompt_len[1]
            assert context_len >= scenario.shared_prefix_len[0]
            first = group[0].prompt_ids[: scenario.shared_prefix_len[0]]
            for member in group[1:]:
                np.testing.assert_array_equal(
                    member.prompt_ids[: scenario.shared_prefix_len[0]], first
                )

    def test_priority_burst_draws_multiple_classes(self):
        requests = generate_workload(
            "priority-burst", num_requests=40, vocab_size=64, seed=0
        )
        classes = {r.priority for r in requests}
        assert classes == {0, 1, 2}

    def test_classic_scenarios_default_to_priority_zero(self):
        requests = generate_workload("steady", num_requests=8, vocab_size=64, seed=0)
        assert all(r.priority == 0 for r in requests)

    def test_priority_mix_override_string(self):
        requests = generate_workload(
            "steady", num_requests=30, vocab_size=64, seed=0,
            priority_mix="3:0.5,1:0.5",
        )
        assert {r.priority for r in requests} <= {3, 1}
        assert len({r.priority for r in requests}) == 2

    def test_structured_workloads_are_seed_deterministic(self):
        for name in (
            "chat-multiturn", "agent-fanout", "priority-burst",
            "agent-tree", "map-reduce",
        ):
            a = generate_workload(name, num_requests=12, vocab_size=64, seed=7)
            b = generate_workload(name, num_requests=12, vocab_size=64, seed=7)
            for left, right in zip(a, b):
                assert left.request_id == right.request_id
                assert left.priority == right.priority
                assert left.arrival_time == right.arrival_time
                np.testing.assert_array_equal(left.prompt_ids, right.prompt_ids)


class TestDAGScenarios:
    """The application-DAG workloads that stress the tiered KV pool."""

    def test_group_size(self):
        from repro.serve.workload import group_size

        assert group_size(get_scenario("chat-multiturn")) == 3
        assert group_size(get_scenario("agent-fanout")) == 6
        # Depth-3 binary tree: 1 + 2 + 4 nodes.
        assert group_size(get_scenario("agent-tree")) == 7
        # fanout mappers plus the reducer.
        assert group_size(get_scenario("map-reduce")) == 5
        assert group_size(get_scenario("steady")) == 1

    def test_agent_tree_children_extend_parents(self):
        """Node k's prompt is its parent's full prompt plus a suffix."""
        scenario = get_scenario("agent-tree")
        size = 7
        requests = generate_workload(
            "agent-tree", num_requests=2 * size, vocab_size=64, seed=0
        )
        by_id = {r.request_id: r for r in requests}
        for tree in range(2):
            for node in range(1, size):
                child = by_id[f"agent-tree-t{tree:03d}n{node:02d}"]
                parent = by_id[
                    f"agent-tree-t{tree:03d}n{(node - 1) // scenario.fanout:02d}"
                ]
                assert child.prompt_ids.size > parent.prompt_ids.size
                np.testing.assert_array_equal(
                    child.prompt_ids[: parent.prompt_ids.size], parent.prompt_ids
                )

    def test_agent_tree_system_prompt_is_workload_global(self):
        """Every tree's root starts with the same system prompt."""
        scenario = get_scenario("agent-tree")
        requests = generate_workload(
            "agent-tree", num_requests=21, vocab_size=64, seed=1
        )
        roots = [r for r in requests if r.request_id.endswith("n00")]
        assert len(roots) == 3
        head = roots[0].prompt_ids[: scenario.shared_prefix_len[0]]
        for root in roots[1:]:
            np.testing.assert_array_equal(
                root.prompt_ids[: scenario.shared_prefix_len[0]], head
            )

    def test_agent_tree_emission_is_stage_major(self):
        """All trees' level-s nodes precede any tree's level-(s+1) node."""
        requests = generate_workload(
            "agent-tree", num_requests=14, vocab_size=64, seed=0
        )
        # Node index -> tree level for a depth-3 binary tree.
        level = {0: 0, 1: 1, 2: 1, 3: 2, 4: 2, 5: 2, 6: 2}
        levels = [level[int(r.request_id[-2:])] for r in requests]
        assert levels == sorted(levels)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)

    def test_map_reduce_reducer_joins_every_mapper_digest(self):
        """The reducer shares the group context and each shard's digest."""
        scenario = get_scenario("map-reduce")
        requests = generate_workload(
            "map-reduce", num_requests=10, vocab_size=64, seed=0
        )
        by_id = {r.request_id: r for r in requests}
        for group in range(2):
            session = f"map-reduce-g{group:03d}"
            mappers = [by_id[f"{session}m{m}"] for m in range(scenario.fanout)]
            reducer = by_id[f"{session}reduce"]
            # Group context: the longest common head of the mappers.
            context_len = min(m.prompt_ids.size for m in mappers) - scenario.prompt_len[1]
            assert context_len >= scenario.shared_prefix_len[0]
            for mapper in mappers:
                np.testing.assert_array_equal(
                    mapper.prompt_ids[:context_len], reducer.prompt_ids[:context_len]
                )
            # Past the context the reducer carries one digest per mapper.
            assert reducer.prompt_ids.size > context_len + scenario.fanout - 1

    def test_map_reduce_emission_is_stage_major(self):
        """Every mapper arrives before any reducer — the map barrier."""
        requests = generate_workload(
            "map-reduce", num_requests=10, vocab_size=64, seed=0
        )
        kinds = [r.request_id.endswith("reduce") for r in requests]
        assert kinds == sorted(kinds)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)

    def test_dag_prompts_fit_the_test_model_window(self):
        """Worst-case prompt + max_new must stay inside opt-test's window."""
        for name in ("agent-tree", "map-reduce"):
            scenario = get_scenario(name)
            requests = generate_workload(name, sessions=4, vocab_size=64, seed=2)
            assert (
                max(r.prompt_ids.size for r in requests) + scenario.max_new[1] <= 32
            )

    def test_sessions_sizing_counts_whole_groups(self):
        assert len(
            generate_workload("agent-tree", sessions=2, vocab_size=64, seed=0)
        ) == 14
        assert len(
            generate_workload("map-reduce", sessions=3, vocab_size=64, seed=0)
        ) == 15
