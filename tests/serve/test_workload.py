"""Workload generator: scenario shapes, determinism, arrival models."""

import numpy as np
import pytest

from repro.serve.workload import SCENARIOS, generate_workload, get_scenario


class TestScenarios:
    def test_four_mixes_registered(self):
        assert set(SCENARIOS) == {"steady", "bursty", "chat", "codegen"}

    def test_chat_is_prefill_heavy_codegen_is_decode_heavy(self):
        chat = get_scenario("chat")
        codegen = get_scenario("codegen")
        assert chat.prompt_len[0] > chat.max_new[1]
        assert codegen.max_new[0] > codegen.prompt_len[1]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("nope")


class TestGeneration:
    def test_same_seed_same_workload(self):
        a = generate_workload("bursty", num_requests=10, vocab_size=64, seed=3)
        b = generate_workload("bursty", num_requests=10, vocab_size=64, seed=3)
        for left, right in zip(a, b):
            assert left.request_id == right.request_id
            assert left.seed == right.seed
            assert left.arrival_time == right.arrival_time
            np.testing.assert_array_equal(left.prompt_ids, right.prompt_ids)

    def test_different_seed_different_workload(self):
        a = generate_workload("steady", num_requests=10, vocab_size=64, seed=0)
        b = generate_workload("steady", num_requests=10, vocab_size=64, seed=1)
        assert any(
            left.prompt_ids.size != right.prompt_ids.size
            or not np.array_equal(left.prompt_ids, right.prompt_ids)
            for left, right in zip(a, b)
        )

    def test_request_shapes_respect_scenario(self):
        scenario = get_scenario("chat")
        requests = generate_workload(scenario, num_requests=20, vocab_size=64, seed=0)
        assert len(requests) == 20
        for request in requests:
            assert scenario.prompt_len[0] <= request.prompt_ids.size <= scenario.prompt_len[1]
            assert scenario.max_new[0] <= request.max_new_tokens <= scenario.max_new[1]
            assert request.temperature == scenario.temperature
            assert request.stop_tokens == (63,)
            assert not np.any(request.prompt_ids == 63)  # EOS kept out of prompts
            assert np.all(request.prompt_ids >= 1)

    def test_arrivals_sorted_and_rate_scale_compresses(self):
        slow = generate_workload("steady", num_requests=20, vocab_size=64, seed=0)
        fast = generate_workload(
            "steady", num_requests=20, vocab_size=64, seed=0, rate_scale=4.0
        )
        slow_times = [r.arrival_time for r in slow]
        fast_times = [r.arrival_time for r in fast]
        assert slow_times == sorted(slow_times)
        assert fast_times[-1] == pytest.approx(slow_times[-1] / 4.0)

    def test_per_request_seeds_differ(self):
        requests = generate_workload("codegen", num_requests=16, vocab_size=64, seed=0)
        assert len({r.seed for r in requests}) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload("steady", num_requests=0, vocab_size=64)
        with pytest.raises(ValueError):
            generate_workload("steady", num_requests=1, vocab_size=2)
        with pytest.raises(ValueError):
            generate_workload("steady", num_requests=1, vocab_size=64, rate_scale=0)
