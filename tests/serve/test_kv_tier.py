"""Tiered KV pool: demotion, demand promotion, and failure atomicity.

The cold tier parks LRU prefix-cache blocks (re-quantized to
``tier_fmt``) instead of evicting them; a later prefix hit either
*promotes* the span back into a fresh hot block (lossless tier: the
restored bytes are bit-identical to a fresh write by quantize
idempotence) or refuses the hit so the tokens re-prefill (lossy tier /
failed promotion) — served tokens stay exact either way.  These tests
pin the state machine: demote picks only index-owned spans with all-cold
subtrees, a promotion that dies on ``PoolExhaustedError`` leaves no
half-moved block, and every interleaving keeps
:meth:`BlockKVPool.check_invariants` green.
"""

import numpy as np
import pytest

from repro.nn.generation import generate
from repro.serve import Request, ServeEngine
from repro.serve.kv_pool import BlockKVPool

LAYERS, HEADS, DIM, BS = 2, 2, 4, 4


def make_pool(**kwargs):
    defaults = dict(
        num_layers=LAYERS,
        num_heads=HEADS,
        head_dim=DIM,
        block_size=BS,
        initial_blocks=4,
        max_blocks=4,
        prefix_caching=True,
        tier_blocks=4,
    )
    defaults.update(kwargs)
    return BlockKVPool(**defaults)


def fill(seq, tokens_worth, value):
    chunk = np.full((1, HEADS, tokens_worth, DIM), float(value))
    for layer in range(LAYERS):
        seq.layers[layer].append(chunk, -chunk)


def write_prefix(pool, tokens, value):
    """Write ``tokens`` worth of K/V, register it, release the writer."""
    seq = pool.sequence()
    fill(seq, len(tokens), value)
    seq.register_prefix(list(tokens))
    seq.release()


class TestDemote:
    def test_demote_parks_lru_blocks_deepest_first(self):
        pool = make_pool()
        key = list(range(100, 108))  # two full blocks
        write_prefix(pool, key, 3.0)
        assert pool.blocks_in_use == 2

        # A parent is only demotable once its subtree is cold, so the
        # chain drains leaf-up across walks.
        assert pool.prefix.demote(pool, 8) == 1
        pool.check_invariants()
        assert pool.prefix.demote(pool, 8) == 1
        pool.check_invariants()
        stats = pool.stats()
        assert stats.blocks_demoted == 2
        assert stats.cold_blocks_cached == 2
        assert pool.blocks_in_use == 0
        assert stats.prefix_blocks_cached == 2  # entries survive, cold

    def test_shared_blocks_are_never_demoted(self):
        pool = make_pool()
        writer = pool.sequence()
        fill(writer, BS, 5.0)
        writer.register_prefix(list(range(4)))
        # The writer still references its block (refcount 2 with the
        # index), so the entry is pinned hot.
        assert pool.prefix.demote(pool, 8) == 0
        assert pool.stats().blocks_demoted == 0
        writer.release()
        assert pool.prefix.demote(pool, 8) == 1
        pool.check_invariants()

    def test_shared_partial_tail_blocks_demotion_of_ancestors(self):
        """A COW tail someone references pins the chain; a loose one is
        evicted with the candidate instead of pinning it hot."""
        pool = make_pool()
        key = list(range(50, 56))  # one full block + a 2-token tail
        write_prefix(pool, key, 7.0)
        adopter = pool.sequence()
        assert adopter.adopt_prefix(key) == 6
        assert pool.prefix.demote(pool, 8) == 0  # tail refcount is 2
        pool.check_invariants()

        adopter.release()
        # Now the tail is index-only: it is dropped (cheapest recompute
        # in the chain) and the full block demotes.
        assert pool.prefix.demote(pool, 8) == 2
        pool.check_invariants()
        stats = pool.stats()
        assert stats.blocks_demoted == 1
        assert stats.prefix_evictions == 1
        assert stats.cold_blocks_cached == 1

    def test_tier_capacity_drops_lru_cold_spans(self):
        pool = make_pool(tier_blocks=1)
        write_prefix(pool, list(range(10, 14)), 1.0)
        write_prefix(pool, list(range(20, 24)), 2.0)
        assert pool.prefix.demote(pool, 1) == 1
        # The tier is full: demoting the second span drops the first.
        assert pool.prefix.demote(pool, 1) == 1
        pool.check_invariants()
        stats = pool.stats()
        assert stats.blocks_demoted == 2
        assert stats.cold_blocks_cached == 1
        assert stats.tier_evictions == 1

    def test_allocation_pressure_demotes_before_evicting(self):
        pool = make_pool()
        key = list(range(30, 38))
        write_prefix(pool, key, 4.0)
        hog = pool.sequence()
        fill(hog, 16, 9.0)  # 4 blocks: forces both cached blocks out
        pool.check_invariants()
        stats = pool.stats()
        assert stats.blocks_demoted == 2
        assert stats.prefix_evictions == 0
        assert stats.cold_blocks_cached == 2
        hog.release()


class TestPromote:
    def test_promotion_restores_bytes_exactly(self):
        pool = make_pool()
        key = list(range(100, 108))
        write_prefix(pool, key, 3.0)
        pool.prefix.demote(pool, 8)
        pool.prefix.demote(pool, 8)
        assert pool.stats().cold_blocks_cached == 2

        probe = pool.sequence()
        assert probe.adopt_prefix(key) == 8
        assert probe.cold_tokens_restored == 8
        assert probe.cold_tokens_refused == 0
        k, v = probe.gather(0)
        np.testing.assert_array_equal(k, np.full_like(k, 3.0))
        np.testing.assert_array_equal(v, np.full_like(v, -3.0))
        stats = pool.stats()
        assert stats.blocks_promoted == 2
        assert stats.cold_blocks_cached == 0
        pool.check_invariants()
        probe.release()

    def test_mixed_hot_cold_chain_promotes_only_the_cold_span(self):
        pool = make_pool(max_blocks=6, initial_blocks=6)
        key = list(range(100, 108))
        write_prefix(pool, key, 3.0)
        pool.prefix.demote(pool, 8)  # leaf only: parent stays hot
        probe = pool.sequence()
        assert probe.adopt_prefix(key) == 8
        assert probe.cold_tokens_restored == BS
        assert pool.stats().blocks_promoted == 1
        pool.check_invariants()
        probe.release()

    def test_failed_promotion_leaves_no_half_moved_block(self):
        pool = make_pool()
        key = list(range(40, 44))
        write_prefix(pool, key, 6.0)
        assert pool.prefix.demote(pool, 8) == 1
        hog = pool.sequence()
        fill(hog, 16, 9.0)  # every hot block is now hog-owned

        probe = pool.sequence()
        assert probe.adopt_prefix(key) == 0
        # The tier record was popped before the failed allocation and
        # the dead entry dropped whole: nothing survives half-moved.
        assert probe.cold_tokens_refused == BS
        stats = pool.stats()
        assert stats.blocks_promoted == 0
        assert stats.cold_blocks_cached == 0
        assert stats.prefix_blocks_cached == 0
        pool.check_invariants()
        # The hog's bytes were never touched by the failed restore.
        k, _ = hog.gather(0)
        np.testing.assert_array_equal(k, np.full_like(k, 9.0))
        probe.release()
        hog.release()

    def test_demote_then_preempt_keeps_the_cold_span_adoptable(self):
        pool = make_pool()
        key = list(range(60, 68))
        write_prefix(pool, key, 2.0)
        victim = pool.sequence()
        fill(victim, 8, 8.0)
        # This allocation runs dry and demotes the cached leaf in-flight.
        late = pool.sequence()
        fill(late, 4, 1.0)
        assert pool.stats().blocks_demoted >= 1
        pool.check_invariants()

        # Preemption mid-churn: the scheduler frees the victim's blocks.
        victim.release()
        pool.check_invariants()

        probe = pool.sequence()
        assert probe.adopt_prefix(key) == 8
        assert probe.cold_tokens_restored >= BS
        k, _ = probe.gather(0)
        np.testing.assert_array_equal(k[0, :, :8], 2.0)
        pool.check_invariants()
        probe.release()
        late.release()


class TestLossyTier:
    def test_lossy_tier_refuses_cold_hits(self):
        pool = make_pool(tier_fmt="fp8_e4m3")  # narrower than fp64 storage
        assert not pool.tier_lossless
        key = list(range(70, 78))
        write_prefix(pool, key, 3.5)
        pool.prefix.demote(pool, 8)
        pool.prefix.demote(pool, 8)

        probe = pool.sequence()
        assert probe.adopt_prefix(key) == 0
        assert probe.cold_tokens_refused == 8
        assert probe.cold_tokens_restored == 0
        assert pool.stats().blocks_promoted == 0
        # Refusal keeps the cold records: a re-prefill will refresh them.
        assert pool.stats().cold_blocks_cached == 2
        pool.check_invariants()
        probe.release()

    def test_reprefill_refreshes_over_cold(self):
        """Re-registering a cold span points it at the fresh bytes and
        discards the tier copy — cold bytes are never aliased."""
        pool = make_pool(tier_fmt="fp8_e4m3")
        key = list(range(70, 78))
        write_prefix(pool, key, 3.5)
        pool.prefix.demote(pool, 8)
        pool.prefix.demote(pool, 8)

        rewriter = pool.sequence()
        fill(rewriter, 8, 3.5)
        rewriter.register_prefix(key)
        stats = pool.stats()
        assert stats.cold_blocks_cached == 0
        assert stats.prefix_blocks_cached == 2
        pool.check_invariants()
        rewriter.release()
        adopter = pool.sequence()
        assert adopter.adopt_prefix(key) == 8
        assert adopter.cold_tokens_restored == 0
        adopter.release()

    def test_cost_model_can_refuse_promotion(self):
        class NeverPays:
            def promotion_pays(self, block_size):
                return False

        pool = make_pool(tier_cost_model=NeverPays())
        key = list(range(80, 84))
        write_prefix(pool, key, 1.0)
        pool.prefix.demote(pool, 8)
        probe = pool.sequence()
        assert probe.adopt_prefix(key) == 0
        assert probe.cold_tokens_refused == BS
        pool.check_invariants()
        probe.release()


class TestConstruction:
    def test_tier_requires_prefix_caching(self):
        with pytest.raises(ValueError):
            BlockKVPool(
                num_layers=1, num_heads=1, head_dim=2, block_size=2,
                initial_blocks=2, tier_blocks=2,
            )

    def test_negative_tier_rejected(self):
        with pytest.raises(ValueError):
            make_pool(tier_blocks=-1)

    def test_tier_bytes_accounting_reflects_compression(self):
        pool = make_pool(kv_fmt="bf16", tier_fmt="fp8_e4m3", max_blocks=None)
        write_prefix(pool, list(range(4)), 1.0)
        hot = pool.stats().hot_kv_bytes
        pool.prefix.demote(pool, 8)
        stats = pool.stats()
        assert stats.hot_kv_bytes == 0
        assert stats.cold_kv_bytes == hot // 2  # fp8 is half of bf16


class TestServedTokensStayExact:
    """The repo invariant, under the tier: serve(tiered) == generate()."""

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_tight_pool_tiered_serving_matches_generate(self, policy):
        from repro.nn.config import get_config
        from repro.nn.model import OPTLanguageModel
        from repro.serve.workload import generate_workload

        model = OPTLanguageModel(
            get_config("opt-test"), rng=np.random.default_rng(7), policy=policy
        )
        model.eval()
        requests = generate_workload(
            "agent-tree", sessions=4, vocab_size=model.config.vocab_size, seed=3
        )
        engine = ServeEngine(
            model, max_batch_size=4, block_size=8, prefix_caching=True,
            max_blocks=24, tier_blocks=48,
        )
        report = engine.serve(requests)
        assert len(report.completed) == len(requests)
        for request in requests:
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens,
                generate(
                    model,
                    request.prompt_ids,
                    max_new_tokens=request.max_new_tokens,
                    temperature=request.temperature,
                    top_k=request.top_k,
                    rng=np.random.default_rng(request.seed),
                    stop_tokens=request.stop_tokens,
                ),
                err_msg=f"{request.request_id} diverged under tiering ({policy})",
            )
        engine.pool.check_invariants()
        # The tight pool actually exercised the tier.
        assert report.pool_stats["blocks_demoted"] > 0

    def test_lossy_tier_serving_matches_generate_via_reprefill(self):
        from repro.nn.config import get_config
        from repro.nn.model import OPTLanguageModel
        from repro.serve.workload import generate_workload

        model = OPTLanguageModel(
            get_config("opt-test"), rng=np.random.default_rng(7), policy="fp64-ref"
        )
        model.eval()
        requests = generate_workload(
            "map-reduce", sessions=4, vocab_size=model.config.vocab_size, seed=0
        )
        engine = ServeEngine(
            model, max_batch_size=4, block_size=8, prefix_caching=True,
            max_blocks=24, tier_blocks=48, tier_fmt="fp8_e4m3",
        )
        report = engine.serve(requests)
        for request in requests:
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens,
                generate(
                    model,
                    request.prompt_ids,
                    max_new_tokens=request.max_new_tokens,
                    temperature=request.temperature,
                    top_k=request.top_k,
                    rng=np.random.default_rng(request.seed),
                    stop_tokens=request.stop_tokens,
                ),
                err_msg=f"{request.request_id} diverged under a lossy tier",
            )
        engine.pool.check_invariants()
        # The lossy tier refused cold hits — the tokens re-prefilled.
        assert report.metrics["cold_tokens_refused"] > 0
        assert report.metrics["cold_tokens_restored"] == 0


class TestEngineWiring:
    def test_tier_ratio_sizes_the_tier_from_max_blocks(self, model):
        engine = ServeEngine(
            model, prefix_caching=True, max_blocks=32, tier_ratio=0.5
        )
        assert engine.pool.tier_blocks == 16

    def test_tier_flags_validated(self, model):
        with pytest.raises(ValueError):
            ServeEngine(model, prefix_caching=True, tier_ratio=0.5)
        with pytest.raises(ValueError):
            ServeEngine(model, tier_blocks=8)


def test_report_carries_tier_gauges(model):
    """Satellite: ServeReport exposes the tier counters, merged across
    engines like every other additive gauge."""
    from repro.serve.workload import generate_workload

    requests = generate_workload(
        "agent-tree", sessions=4, vocab_size=model.config.vocab_size, seed=3
    )
    engine = ServeEngine(
        model, max_batch_size=4, block_size=8, prefix_caching=True,
        max_blocks=24, tier_blocks=48,
    )
    report = engine.serve(requests)
    for gauge in (
        "cold_hit_rate", "cold_tokens_restored", "cold_tokens_refused",
        "recompute_tokens_avoided",
    ):
        assert gauge in report.metrics, gauge
    for gauge in (
        "blocks_demoted", "blocks_promoted", "tier_evictions",
        "cold_blocks_cached", "cold_kv_bytes", "hot_kv_bytes",
    ):
        assert gauge in report.pool_stats, gauge
    assert report.pool_stats["blocks_demoted"] > 0
    assert 0.0 <= report.metrics["cold_hit_rate"] <= 1.0
    # merge() sums the pool gauges like every other additive counter.
    merged = type(report).merge([report, report], max_batch_size=8)
    assert (
        merged.pool_stats["blocks_demoted"]
        == 2 * report.pool_stats["blocks_demoted"]
    )
