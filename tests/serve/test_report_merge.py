"""ServeReport.merge: cluster aggregation from raw samples, not averages.

The satellite contract: a merged report's latency distributions equal the
percentiles of the *pooled* per-replica samples — never the average of
the per-replica summaries, which weights a replica that served 3 requests
the same as one that served 300 (and percentiles do not average at all).
"""

import numpy as np
import pytest

from repro.serve import Request, ServeEngine
from repro.serve.engine import ServeReport
from repro.serve.metrics import MetricsRecorder, jain_fairness, load_imbalance
from repro.serve.request import CompletedRequest


def completed(rid, arrival=0.0, first=1.0, finish=2.0, generated=3, priority=0):
    return CompletedRequest(
        request_id=rid,
        tokens=np.arange(generated + 2),
        prompt_len=2,
        generated=generated,
        finish_reason="length",
        arrival_time=arrival,
        admitted_time=arrival,
        first_token_time=first,
        finish_time=finish,
        priority=priority,
    )


def recorder_with(ttfts, finish_gap=1.0):
    """A recorder whose completions produce the given TTFT samples."""
    recorder = MetricsRecorder()
    for i, ttft in enumerate(ttfts):
        c = completed(
            f"r{ttft}-{i}", arrival=0.0, first=ttft, finish=ttft + finish_gap
        )
        recorder.record_completion(c, [c.first_token_time, c.finish_time])
        recorder.record_step(queue_depth=i, active=1, elapsed=0.01, tokens=3)
    return recorder


def report_of(recorder):
    return ServeReport(
        completed=recorder.completed,
        metrics=recorder.summary(),
        pool_stats={"blocks_allocated": len(recorder.completed)},
        recorder=recorder,
    )


class TestMergedPercentilesArePooled:
    def test_merged_percentiles_equal_pooled_sample_percentiles(self):
        """The unit test the satellite mandates: merged == np.percentile of
        the pooled raw samples, for every reported percentile."""
        # Deliberately lopsided: replica A served 3 requests, replica B 30,
        # with disjoint latency ranges — averaging the two summaries would
        # land far from the pooled percentiles.
        ttfts_a = [0.1, 0.2, 0.3]
        ttfts_b = [float(t) for t in np.linspace(1.0, 4.0, 30)]
        merged = ServeReport.merge(
            [report_of(recorder_with(ttfts_a)), report_of(recorder_with(ttfts_b))]
        )
        pooled = np.asarray(ttfts_a + ttfts_b)
        for p in (50, 90, 99):
            assert merged.metrics["ttft_s"][f"p{p}"] == pytest.approx(
                float(np.percentile(pooled, p))
            ), f"p{p} is not the pooled-sample percentile"
        assert merged.metrics["ttft_s"]["count"] == pooled.size
        assert merged.metrics["ttft_s"]["mean"] == pytest.approx(float(pooled.mean()))

    def test_merged_differs_from_averaged_summaries(self):
        """Averaging per-replica p50s is exactly the bug merge avoids."""
        rep_a = report_of(recorder_with([0.1, 0.2, 0.3]))
        rep_b = report_of(recorder_with([float(t) for t in np.linspace(1, 4, 30)]))
        merged = ServeReport.merge([rep_a, rep_b])
        averaged_p50 = (
            rep_a.metrics["ttft_s"]["p50"] + rep_b.metrics["ttft_s"]["p50"]
        ) / 2
        assert merged.metrics["ttft_s"]["p50"] != pytest.approx(averaged_p50)

    def test_inter_token_gaps_pool_too(self):
        rep_a = report_of(recorder_with([0.5], finish_gap=0.2))
        rep_b = report_of(recorder_with([0.5, 0.7], finish_gap=0.8))
        merged = ServeReport.merge([rep_a, rep_b])
        pooled_gaps = np.asarray([0.2, 0.8, 0.8])
        assert merged.metrics["inter_token_latency_s"]["p50"] == pytest.approx(
            float(np.percentile(pooled_gaps, 50))
        )

    def test_counters_sum_and_makespan_maxes(self):
        rec_a = recorder_with([0.1, 0.2])
        rec_a.record_adoption(10)
        rec_b = recorder_with([5.0])
        rec_b.record_adoption(4)
        rec_b.record_preemption("r5.0-0", 1.0)
        merged = ServeReport.merge([report_of(rec_a), report_of(rec_b)])
        metrics = merged.metrics
        assert metrics["requests_completed"] == 3
        assert metrics["prefix_tokens_reused"] == 14
        assert metrics["preempted_count"] == 1
        assert metrics["makespan_s"] == pytest.approx(6.0)  # max, not sum
        assert merged.pool_stats["blocks_allocated"] == 3  # summed

    def test_merge_requires_recorders(self):
        bare = ServeReport(completed=[], metrics={}, pool_stats={})
        with pytest.raises(ValueError, match="recorder"):
            ServeReport.merge([bare])
        with pytest.raises(ValueError, match="zero"):
            ServeReport.merge([])


class TestMergeFromLiveEngines:
    def test_two_engines_merge_like_one_pool(self, model, fixed_timer):
        """End to end: split a workload over two engines, merge, and check
        the pooled TTFT distribution against the raw completions."""
        requests = [
            Request(f"r{i}", np.array([1 + i, 2, 3]), max_new_tokens=4)
            for i in range(8)
        ]
        eng_a = ServeEngine(model, max_batch_size=2, timer=fixed_timer)
        eng_b = ServeEngine(model, max_batch_size=2, timer=fixed_timer)
        rep_a = eng_a.serve(requests[:5])
        rep_b = eng_b.serve(requests[5:])
        merged = ServeReport.merge([rep_a, rep_b], max_batch_size=4)
        assert merged.metrics["requests_completed"] == 8
        pooled_ttfts = np.asarray(
            [c.ttft for c in rep_a.completed + rep_b.completed]
        )
        assert merged.metrics["ttft_s"]["p90"] == pytest.approx(
            float(np.percentile(pooled_ttfts, 90))
        )
        assert merged.metrics["batch_occupancy"]["utilization"] <= 1.0
        assert merged.by_id("r6").generated == 4


class TestFairnessHelpers:
    def test_load_imbalance_edges(self):
        assert load_imbalance([]) == 0.0
        assert load_imbalance([0, 0]) == 0.0
        assert load_imbalance([5, 5, 5]) == 0.0
        assert load_imbalance([10, 0]) == pytest.approx(1.0)

    def test_jain_fairness_edges(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([3, 3, 3]) == pytest.approx(1.0)
        # One replica carrying everything: 1/n.
        assert jain_fairness([12, 0, 0]) == pytest.approx(1 / 3)
