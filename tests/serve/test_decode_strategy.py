"""Decode-strategy acceptance: speculation changes steps, never tokens.

The tentpole guarantee of the decode-strategy layer: under
``prompt-lookup`` speculation every request's served token stream is
**bit-identical** to :func:`repro.nn.generation.generate` — across
precision policies, chunked prefill, preemption-and-rerun, prefix
sharing, stop tokens, and the sliding-window spillover — while the
copy-heavy scenario shows acceptance above zero and more than one token
per decode step.  ``GreedyOneToken`` must reproduce the classic loop
exactly.
"""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.generation import generate
from repro.nn.model import OPTLanguageModel
from repro.serve import (
    GreedyOneToken,
    PromptLookupSpeculator,
    Request,
    ServeEngine,
    generate_workload,
    resolve_strategy,
)
from repro.serve.request import RequestState


def make_model(policy=None, seed=7):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


def reference(model, request):
    return generate(
        model,
        request.prompt_ids,
        max_new_tokens=request.max_new_tokens,
        temperature=request.temperature,
        top_k=request.top_k,
        rng=np.random.default_rng(request.seed),
        stop_tokens=request.stop_tokens,
    )


def assert_served_equals_generate(model, requests, **engine_kwargs):
    engine = ServeEngine(model, **engine_kwargs)
    report = engine.serve(requests)
    assert len(report.completed) == len(requests)
    for request in requests:
        np.testing.assert_array_equal(
            report.by_id(request.request_id).tokens,
            reference(model, request),
            err_msg=f"request {request.request_id} diverged from generate()",
        )
    return report


def state_for(tokens, temperature=0.0, max_new=64):
    """A minimal RequestState for proposal unit tests (no KV needed)."""
    request = Request(
        "probe",
        np.asarray(tokens[:1], dtype=np.int64),
        max_new_tokens=max_new,
        temperature=temperature,
    )
    return RequestState(
        request=request,
        rng=np.random.default_rng(0),
        kv=None,
        prompt_window=request.prompt_ids,
        tokens=list(tokens),
    )


class TestPromptLookupProposals:
    def test_matches_most_recent_ngram_continuation(self):
        spec = PromptLookupSpeculator(ngram=2, max_draft=3)
        # ... 5 6 [7 8] 9 1 [7 8] -> continuation after the recent [7 8] is 9 1.
        draft = spec.propose(state_for([5, 6, 7, 8, 9, 1, 7, 8]), limit=8)
        assert draft == (9, 1, 7)

    def test_backoff_to_shorter_ngrams(self):
        spec = PromptLookupSpeculator(ngram=3, max_draft=2)
        # No trigram repeats; the 1-gram 4 recurs with continuation 9.
        draft = spec.propose(state_for([4, 9, 2, 3, 4]), limit=4)
        assert draft == (9, 2)

    def test_no_match_proposes_nothing(self):
        spec = PromptLookupSpeculator()
        assert spec.propose(state_for([1, 2, 3, 4]), limit=4) == ()

    def test_limit_and_max_draft_cap(self):
        spec = PromptLookupSpeculator(ngram=1, max_draft=8)
        tokens = [3, 1, 2, 4, 5, 6, 7, 3]
        assert len(spec.propose(state_for(tokens), limit=2)) <= 2
        assert spec.propose(state_for(tokens), limit=0) == ()

    def test_sampled_rows_never_speculate(self):
        """Verification is greedy-only; sampled rows must keep their RNG walk."""
        spec = PromptLookupSpeculator()
        assert spec.propose(state_for([1, 2, 1, 2], temperature=0.8), limit=4) == ()

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            PromptLookupSpeculator(ngram=0)
        with pytest.raises(ValueError):
            PromptLookupSpeculator(max_draft=-1)

    def test_max_draft_zero_proposes_nothing(self):
        """``max_draft=0`` is legal and degrades to one-token decoding."""
        spec = PromptLookupSpeculator(ngram=2, max_draft=0)
        assert spec.propose(state_for([5, 6, 7, 8, 9, 1, 7, 8]), limit=8) == ()

    def test_ngram_longer_than_history_backs_off(self):
        """An oversized --ngram never crashes: the matcher backs off to the
        longest n-gram the history can support."""
        spec = PromptLookupSpeculator(ngram=50, max_draft=3)
        draft = spec.propose(state_for([5, 6, 7, 8, 9, 1, 7, 8]), limit=8)
        assert draft == (9, 1, 7)  # found via the bigram [7, 8]

    def test_resolve_strategy(self):
        assert isinstance(resolve_strategy(None), GreedyOneToken)
        assert isinstance(resolve_strategy("one-token"), GreedyOneToken)
        spec = resolve_strategy("prompt-lookup", ngram=5, max_draft=7)
        assert (spec.ngram, spec.max_draft) == (5, 7)
        inst = PromptLookupSpeculator()
        assert resolve_strategy(inst) is inst
        with pytest.raises(KeyError):
            resolve_strategy("nonsense")
        with pytest.raises(ValueError):
            resolve_strategy("one-token", ngram=3)


def copy_requests(seed=0, count=8):
    return generate_workload(
        "summarize-copy", num_requests=count, vocab_size=64, seed=seed
    )


class TestSpeculativeExactness:
    """ISSUE acceptance: bit-identical under fp64-ref and bf16-fp8kv."""

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_speculative_serving_equals_generate(self, policy, fixed_timer):
        model = make_model(policy)
        report = assert_served_equals_generate(
            model,
            copy_requests(),
            max_batch_size=4,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )
        metrics = report.metrics
        assert metrics["draft_proposed"] > 0
        assert metrics["acceptance_rate"] > 0
        assert metrics["decode_tokens_per_step"] > 1.0

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_speculation_composes_with_chunked_prefill(self, policy, fixed_timer):
        model = make_model(policy)
        assert_served_equals_generate(
            model,
            copy_requests(),
            max_batch_size=4,
            prefill_budget=3,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_preempted_speculative_rerun_is_byte_identical(self, policy, fixed_timer):
        """ISSUE acceptance: preempt-then-rerun under speculation."""
        model = make_model(policy)
        victim = Request(
            "victim", np.array([9, 10, 11, 9, 10, 11]), max_new_tokens=8, priority=0
        )
        hogs = [
            Request(f"hog{i}", np.arange(1 + i, 6 + i), max_new_tokens=10, priority=1)
            for i in range(2)
        ]
        engine = ServeEngine(
            model,
            max_batch_size=3,
            block_size=2,
            initial_blocks=4,
            max_blocks=8,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )
        report = engine.serve(hogs + [victim])
        assert report.metrics["preempted_count"] >= 1
        for request in hogs + [victim]:
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens, reference(model, request)
            )

    def test_speculation_composes_with_prefix_caching(self, fixed_timer):
        model = make_model()
        prompt = np.array([1, 2, 3, 1, 2, 3, 1, 2])
        requests = [
            Request("writer", prompt, max_new_tokens=8, arrival_time=0.0),
            Request("twin", prompt.copy(), max_new_tokens=8, arrival_time=0.05),
        ]
        report = assert_served_equals_generate(
            model,
            requests,
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )
        assert report.pool_stats["blocks_adopted"] > 0

    def test_sliding_window_spillover_with_speculation(self, fixed_timer):
        """Speculation stops at the window edge; the slid tail stays exact."""
        model = make_model()
        max_pos = model.config.max_position
        requests = [
            Request("long", np.array([4, 4, 5, 4, 4, 5]), max_new_tokens=max_pos + 6),
            Request("short", np.array([1, 2, 1, 2]), max_new_tokens=6),
        ]
        assert_served_equals_generate(
            model,
            requests,
            max_batch_size=2,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )

    def test_stop_token_mid_draft_truncates_run(self, fixed_timer):
        """A stop token emitted inside an accepted run ends the request there."""
        model = make_model()
        base = copy_requests(count=4)
        # Use a token each reference stream actually produces as its EOS.
        requests = []
        for request in base:
            ref = reference(model, request)
            generated = ref[request.prompt_ids.size :]
            if generated.size < 3:
                continue
            stop = int(generated[generated.size // 2])
            requests.append(
                Request(
                    request.request_id,
                    request.prompt_ids,
                    max_new_tokens=request.max_new_tokens,
                    temperature=0.0,
                    stop_tokens=(stop,),
                    seed=request.seed,
                    arrival_time=request.arrival_time,
                )
            )
        assert requests, "workload produced no usable stop tokens"
        report = assert_served_equals_generate(
            model,
            requests,
            max_batch_size=4,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )
        assert any(c.finish_reason == "stop" for c in report.completed)

    def test_mixed_greedy_and_sampled_batch(self, fixed_timer):
        """Sampled rows ride along un-speculated, reproducibly."""
        model = make_model()
        requests = copy_requests(count=4) + [
            Request(
                "sampled",
                np.array([6, 7, 8]),
                max_new_tokens=8,
                temperature=0.9,
                top_k=10,
                seed=42,
            )
        ]
        assert_served_equals_generate(
            model,
            requests,
            max_batch_size=3,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )


class TestOneTokenDefault:
    def test_default_engine_uses_one_token(self):
        engine = ServeEngine(make_model())
        assert isinstance(engine.decode_strategy, GreedyOneToken)

    def test_one_token_reproduces_classic_metrics_exactly(self, fixed_timer):
        """Explicit GreedyOneToken == default engine, step for step."""
        requests = copy_requests(count=6)

        class _Timer:
            def __init__(self):
                self.t = 0.0

            def __call__(self):
                self.t += 0.001
                return self.t

        explicit = ServeEngine(
            make_model(), max_batch_size=3, decode_strategy=GreedyOneToken(),
            timer=_Timer(),
        ).serve(requests)
        default = ServeEngine(
            make_model(), max_batch_size=3, timer=_Timer()
        ).serve(requests)
        assert explicit.metrics == default.metrics
        assert explicit.metrics["draft_proposed"] == 0
        assert explicit.metrics["acceptance_rate"] == 0.0
        assert explicit.metrics["decode_tokens_per_step"] == 1.0
        for request in requests:
            np.testing.assert_array_equal(
                explicit.by_id(request.request_id).tokens,
                default.by_id(request.request_id).tokens,
            )

    def test_speculative_report_matches_one_token_report_tokens(self, fixed_timer):
        requests = copy_requests(count=8)
        spec = ServeEngine(
            make_model(), decode_strategy="prompt-lookup", timer=fixed_timer
        ).serve(requests)
        base = ServeEngine(make_model()).serve(requests)
        for request in requests:
            np.testing.assert_array_equal(
                spec.by_id(request.request_id).tokens,
                base.by_id(request.request_id).tokens,
            )
        # Fewer model steps for the same tokens: the point of speculation.
        assert spec.metrics["steps"] < base.metrics["steps"]
        assert spec.metrics["tokens_generated"] == base.metrics["tokens_generated"]


class TestSpeculationBudgets:
    def test_max_draft_zero_serves_exactly_like_one_token(self, fixed_timer):
        """The satellite degradation path: a zero draft budget never
        speculates, emits exactly one token per decode step, and keeps the
        served==generate contract with NaN-free metrics."""
        model = make_model()
        report = assert_served_equals_generate(
            model,
            copy_requests(count=4),
            max_batch_size=2,
            decode_strategy=PromptLookupSpeculator(max_draft=0),
            timer=fixed_timer,
        )
        metrics = report.metrics
        assert metrics["draft_proposed"] == 0
        assert metrics["acceptance_rate"] == 0.0
        assert metrics["decode_tokens_per_step"] == 1.0

    def test_draft_never_overshoots_max_new_tokens(self, fixed_timer):
        """A request one token from its budget gets no draft lanes."""
        model = make_model()
        requests = [
            Request("tiny", np.array([1, 2, 1, 2, 1, 2]), max_new_tokens=1),
            Request("small", np.array([3, 4, 3, 4, 3, 4]), max_new_tokens=2),
        ]
        report = assert_served_equals_generate(
            model,
            requests,
            max_batch_size=2,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )
        assert report.by_id("tiny").generated == 1
        assert report.by_id("small").generated == 2
