"""The externally-driven engine interface a cluster router steps.

``begin`` / ``submit`` / ``step_at`` / ``report`` decompose the serve
loop so a router can drive R engines on one shared clock; this file pins
that the decomposition is faithful (stepping by hand reproduces
``serve()`` exactly) and that ``load_snapshot`` reports what routing
policies need.
"""

import numpy as np
import pytest

from repro.serve import Request, ServeEngine


class _Timer:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.001
        return self.t


def requests(n=5):
    return [
        Request(f"r{i}", np.array([1 + i, 2, 3]), max_new_tokens=4,
                arrival_time=0.001 * i)
        for i in range(n)
    ]


class TestStepwiseFaithfulness:
    def test_manual_stepping_reproduces_serve(self, model):
        """Driving the engine by hand is the serve() loop, verbatim."""
        served = ServeEngine(model, max_batch_size=2, timer=_Timer()).serve(requests())

        engine = ServeEngine(model, max_batch_size=2, timer=_Timer())
        pending = sorted(requests(), key=lambda r: r.arrival_time)
        engine.begin()
        now, cursor = 0.0, 0
        while cursor < len(pending) or engine.has_work:
            while cursor < len(pending) and pending[cursor].arrival_time <= now:
                engine.submit(pending[cursor])
                cursor += 1
            if not engine.has_work:
                now = pending[cursor].arrival_time
                continue
            now += engine.step_at(now)
        manual = engine.report()

        assert len(manual.completed) == len(served.completed)
        for c_served in served.completed:
            np.testing.assert_array_equal(
                manual.by_id(c_served.request_id).tokens, c_served.tokens
            )
        assert manual.metrics["makespan_s"] == pytest.approx(
            served.metrics["makespan_s"]
        )
        assert manual.metrics["steps"] == served.metrics["steps"]

    def test_step_before_begin_raises(self, model):
        engine = ServeEngine(model)
        with pytest.raises(RuntimeError, match="begin"):
            engine.step_at(0.0)
        with pytest.raises(RuntimeError, match="begin"):
            engine.report()

    def test_begin_resets_metrics(self, model):
        engine = ServeEngine(model, timer=_Timer())
        engine.serve(requests(2))
        assert engine.report().metrics["requests_completed"] == 2
        engine.begin()
        assert engine.report().metrics["requests_completed"] == 0

    def test_report_carries_raw_recorder(self, model):
        engine = ServeEngine(model, timer=_Timer())
        report = engine.serve(requests(2))
        assert report.recorder is not None
        assert len(report.recorder.completed) == 2


class TestLoadSnapshot:
    KEYS = {
        "queue_depth", "active", "max_batch_size", "free_slots",
        "blocks_in_use", "prefill_backlog_tokens", "load",
    }

    def test_idle_engine(self, model):
        engine = ServeEngine(model, max_batch_size=4)
        snapshot = engine.load_snapshot()
        assert set(snapshot) == self.KEYS
        assert snapshot["load"] == 0
        assert snapshot["free_slots"] == 4
        assert snapshot["blocks_in_use"] == 0

    def test_queued_work_counts_into_load(self, model):
        engine = ServeEngine(model, max_batch_size=2, timer=_Timer())
        engine.begin()
        for request in requests(5):
            engine.submit(request)
        snapshot = engine.load_snapshot()
        assert snapshot["queue_depth"] == 5
        assert snapshot["active"] == 0
        assert snapshot["load"] == 5

    def test_active_and_backlog_after_admission(self, model):
        engine = ServeEngine(
            model, max_batch_size=2, prefill_budget=2, timer=_Timer()
        )
        engine.begin()
        long_prompt = Request("long", np.arange(1, 13), max_new_tokens=2)
        engine.submit(long_prompt)
        engine.step_at(0.0)  # admits and prefills the first 2-token chunk
        snapshot = engine.load_snapshot()
        assert snapshot["active"] == 1
        assert snapshot["free_slots"] == 1
        assert snapshot["blocks_in_use"] > 0
        # 12-token prompt, 2 prefilled: 10 positions still to compute.
        assert snapshot["prefill_backlog_tokens"] == 10
        assert snapshot["load"] == 1
