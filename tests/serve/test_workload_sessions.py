"""Workload sizing in sessions: the ``sessions=`` scale parameter.

Satellite coverage for the cluster-scale traffic interface: structured
scenarios expand ``sessions`` into whole conversations / fan-out groups,
every related request carries the shared ``session_id`` handle the router
keys stickiness on, and the parameter is mutually exclusive with
``num_requests``.
"""

import numpy as np
import pytest

from repro.serve.workload import generate_workload

VOCAB = 64


class TestSessionsParameter:
    def test_multiturn_expands_sessions_times_turns(self):
        workload = generate_workload(
            "chat-multiturn", sessions=5, vocab_size=VOCAB, seed=0
        )
        assert len(workload) == 5 * 3  # num_turns = 3
        assert len({r.session_id for r in workload}) == 5

    def test_fanout_expands_sessions_times_fanout(self):
        workload = generate_workload(
            "agent-fanout", sessions=2, vocab_size=VOCAB, seed=0
        )
        assert len(workload) == 2 * 6  # fanout = 6
        assert len({r.session_id for r in workload}) == 2

    def test_independent_scenario_gets_one_request_per_session(self):
        workload = generate_workload("steady", sessions=7, vocab_size=VOCAB, seed=0)
        assert len(workload) == 7
        assert all(r.session_id is None for r in workload)

    def test_sessions_and_num_requests_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            generate_workload(
                "steady", num_requests=4, sessions=2, vocab_size=VOCAB, seed=0
            )

    def test_one_of_them_is_required(self):
        with pytest.raises(ValueError, match="num_requests or sessions"):
            generate_workload("steady", vocab_size=VOCAB, seed=0)

    def test_sessions_validated(self):
        with pytest.raises(ValueError, match="sessions"):
            generate_workload("steady", sessions=0, vocab_size=VOCAB, seed=0)


class TestSessionIdentity:
    def test_turns_of_one_conversation_share_id_and_grow_prefix(self):
        workload = generate_workload(
            "chat-multiturn", sessions=2, vocab_size=VOCAB, seed=3
        )
        by_session: dict[str, list] = {}
        for request in workload:
            by_session.setdefault(request.session_id, []).append(request)
        for session, turns in by_session.items():
            assert len(turns) == 3
            for earlier, later in zip(turns, turns[1:]):
                np.testing.assert_array_equal(
                    later.prompt_ids[: earlier.prompt_ids.size], earlier.prompt_ids
                )

    def test_fanout_group_shares_context_and_id(self):
        workload = generate_workload(
            "agent-fanout", sessions=1, vocab_size=VOCAB, seed=4
        )
        assert len({r.session_id for r in workload}) == 1
        first = workload[0].prompt_ids
        # All members share the group context (first tokens of the leader).
        shared = min(r.prompt_ids.size for r in workload)
        for member in workload[1:]:
            common = 0
            limit = min(shared, member.prompt_ids.size, first.size)
            while common < limit and member.prompt_ids[common] == first[common]:
                common += 1
            assert common >= 16  # at least the minimum shared context

    def test_equal_sizing_paths_agree(self):
        """sessions=N and num_requests=N*per_session build the same list."""
        by_sessions = generate_workload(
            "chat-multiturn", sessions=4, vocab_size=VOCAB, seed=11
        )
        by_requests = generate_workload(
            "chat-multiturn", num_requests=12, vocab_size=VOCAB, seed=11
        )
        assert len(by_sessions) == len(by_requests)
        for a, b in zip(by_sessions, by_requests):
            assert a.request_id == b.request_id
            assert a.arrival_time == b.arrival_time
            np.testing.assert_array_equal(a.prompt_ids, b.prompt_ids)


class TestClusterScale:
    def test_ten_thousand_sessions_generate_quickly(self):
        """The tens-of-thousands scale the cluster harness is sized for."""
        workload = generate_workload(
            "chat-multiturn", sessions=10_000, vocab_size=VOCAB, seed=0
        )
        assert len(workload) == 30_000
        assert len({r.session_id for r in workload}) == 10_000
        assert len({r.request_id for r in workload}) == 30_000
        arrivals = np.asarray([r.arrival_time for r in workload])
        assert np.all(np.diff(arrivals) >= 0)

    def test_small_prefix_of_arrivals_stable_under_scale(self):
        """Session arrivals: growing the workload does not move the early
        sessions' arrival times (per-session spawned RNGs)."""
        small = generate_workload(
            "chat-multiturn", sessions=5, vocab_size=VOCAB, seed=8
        )
        large = generate_workload(
            "chat-multiturn", sessions=500, vocab_size=VOCAB, seed=8
        )
        for a, b in zip(small, large[: len(small)]):
            assert a.arrival_time == b.arrival_time
