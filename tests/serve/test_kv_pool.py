"""Block pool: allocation, reuse, amortized growth, gather correctness."""

import numpy as np
import pytest

from repro.nn.kv_cache import LayerKVCache
from repro.serve.kv_pool import BlockKVPool


def make_pool(**kwargs):
    defaults = dict(num_layers=2, num_heads=2, head_dim=4, block_size=4, initial_blocks=4)
    defaults.update(kwargs)
    return BlockKVPool(**defaults)


class TestAllocation:
    def test_allocate_free_roundtrip(self):
        pool = make_pool()
        ids = [pool.allocate() for _ in range(3)]
        assert len(set(ids)) == 3
        assert pool.blocks_in_use == 3
        pool.free(ids)
        assert pool.blocks_in_use == 0

    def test_freed_blocks_are_reused(self):
        """The acceptance property: retired requests' blocks serve new ones."""
        pool = make_pool()
        first = [pool.allocate() for _ in range(4)]
        pool.free(first)
        second = [pool.allocate() for _ in range(4)]
        assert set(second) == set(first)  # no growth: same physical blocks
        assert pool.blocks_reused == 4
        assert pool.grow_events == 0

    def test_growth_is_amortized_not_per_token(self):
        """Allocating far beyond the initial capacity grows O(log n) times."""
        pool = make_pool(initial_blocks=2)
        for _ in range(128):
            pool.allocate()
        # 2 -> 4 -> 8 -> 16 -> 32 -> 64 -> 128: geometric, not per-allocation.
        assert pool.grow_events <= 7
        assert pool.capacity_blocks >= 128

    def test_growth_preserves_stored_values(self):
        pool = make_pool(initial_blocks=1)
        seq = pool.sequence()
        k = np.arange(2 * 6 * 4, dtype=np.float64).reshape(1, 2, 6, 4)
        seq.append_many(0, k, -k)
        for _ in range(pool.capacity_blocks * 2):  # force at least one grow
            pool.allocate()
        k_all, v_all = seq.gather(0)
        np.testing.assert_array_equal(k_all, k)
        np.testing.assert_array_equal(v_all, -k)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_pool(block_size=0)
        with pytest.raises(ValueError):
            make_pool(grow_factor=1.0)


class TestSequenceKV:
    def test_append_gather_matches_layer_kv_cache_exactly(self):
        """The pooled cache is a drop-in for LayerKVCache, bit-for-bit."""
        rng = np.random.default_rng(0)
        pool = make_pool()
        seq = pool.sequence()
        ref = LayerKVCache()
        for chunk_len in (5, 1, 1, 3, 1):
            k = rng.normal(size=(1, 2, chunk_len, 4))
            v = rng.normal(size=(1, 2, chunk_len, 4))
            k_pool, v_pool = seq.layers[0].append(k, v)
            k_ref, v_ref = ref.append(k, v)
            np.testing.assert_array_equal(k_pool, k_ref)
            np.testing.assert_array_equal(v_pool, v_ref)
        assert seq.layers[0].seq_len == ref.seq_len == 11

    def test_gather_returns_strided_views_like_layer_kv_cache(self):
        """Same memory-layout class as LayerKVCache views (einsum parity)."""
        pool = make_pool()
        seq = pool.sequence()
        k = np.zeros((1, 2, 5, 4))
        k_all, v_all = seq.layers[0].append(k, k.copy())
        ref = LayerKVCache()
        k_ref, _ = ref.append(k, k.copy())
        assert k_all.flags.c_contiguous == k_ref.flags.c_contiguous == False  # noqa: E712

    def test_layers_are_independent(self):
        pool = make_pool()
        seq = pool.sequence()
        k0 = np.full((1, 2, 3, 4), 1.0)
        k1 = np.full((1, 2, 2, 4), 2.0)
        seq.layers[0].append(k0, k0)
        seq.layers[1].append(k1, k1)
        np.testing.assert_array_equal(seq.gather(0)[0], k0)
        np.testing.assert_array_equal(seq.gather(1)[0], k1)

    def test_blocks_shared_across_layers_not_duplicated(self):
        """One block covers all layers: appending to both layers of the same
        positions must not consume extra blocks."""
        pool = make_pool()
        seq = pool.sequence()
        k = np.zeros((1, 2, 6, 4))
        seq.layers[0].append(k, k)
        blocks_after_layer0 = len(seq.block_ids)
        seq.layers[1].append(k, k)
        assert len(seq.block_ids) == blocks_after_layer0 == 2  # ceil(6/4)

    def test_no_per_token_reallocation(self):
        """Decode-style growth: one token per step allocates only on block
        boundaries and never copies existing history."""
        pool = make_pool(initial_blocks=16)
        seq = pool.sequence()
        token = np.zeros((1, 2, 1, 4))
        for _ in range(32):
            seq.layers[0].append(token, token)
        # 32 tokens / block_size 4 = 8 allocations, not 32.
        assert pool.blocks_allocated == 8
        assert pool.grow_events == 0

    def test_release_is_idempotent_and_frees_blocks(self):
        pool = make_pool()
        seq = pool.sequence()
        k = np.zeros((1, 2, 9, 4))
        seq.layers[0].append(k, k)
        held = pool.blocks_in_use
        assert held == 3
        seq.release()
        seq.release()
        assert pool.blocks_in_use == 0

    def test_use_after_release_rejected(self):
        pool = make_pool()
        seq = pool.sequence()
        seq.release()
        with pytest.raises(RuntimeError):
            seq.layers[0].append(np.zeros((1, 2, 1, 4)), np.zeros((1, 2, 1, 4)))

    def test_shape_validation(self):
        pool = make_pool()
        seq = pool.sequence()
        with pytest.raises(ValueError):
            seq.layers[0].append(np.zeros((2, 2, 1, 4)), np.zeros((2, 2, 1, 4)))
        with pytest.raises(ValueError):
            seq.layers[0].append(np.zeros((1, 2, 1, 4)), np.zeros((1, 2, 2, 4)))


class TestRollback:
    """Speculative rollback on the pooled cache: blocks, refcounts, COW."""

    def _fill_all(self, seq, tokens, value=1.0):
        k = np.full((1, 2, tokens, 4), value)
        for layer in range(seq.pool.num_layers):
            seq.layers[layer].append(k, -k)

    def test_rollback_then_reappend_is_bit_identical(self):
        rng = np.random.default_rng(3)
        pool = make_pool()
        seq, ref = pool.sequence(), pool.sequence()
        base_k = rng.normal(size=(1, 2, 6, 4))
        base_v = rng.normal(size=(1, 2, 6, 4))
        tail_k = rng.normal(size=(1, 2, 3, 4))
        tail_v = rng.normal(size=(1, 2, 3, 4))
        junk = rng.normal(size=(1, 2, 4, 4))
        for layer in range(pool.num_layers):
            seq.layers[layer].append(base_k, base_v)
            ref.layers[layer].append(base_k, base_v)
        for layer in range(pool.num_layers):
            seq.layers[layer].append(junk, -junk)  # rejected drafts
        seq.rollback(4)
        assert seq.seq_len == 6
        for layer in range(pool.num_layers):
            k_roll, v_roll = seq.layers[layer].append(tail_k, tail_v)
            k_ref, v_ref = ref.layers[layer].append(tail_k, tail_v)
            np.testing.assert_array_equal(k_roll, k_ref)
            np.testing.assert_array_equal(v_roll, v_ref)

    def test_rollback_frees_whole_blocks_across_boundaries(self):
        pool = make_pool()
        seq = pool.sequence()
        self._fill_all(seq, 10)  # 3 blocks (4+4+2)
        assert pool.blocks_in_use == 3
        seq.rollback(7)  # back to 3 tokens: one partial block
        assert seq.seq_len == 3
        assert len(seq.block_ids) == 1
        assert pool.blocks_in_use == 1
        seq.rollback(3)  # down to empty
        assert seq.seq_len == 0
        assert seq.block_ids == []
        assert pool.blocks_in_use == 0

    def test_rollback_shared_block_drops_reference_not_content(self):
        """A freed shared block survives for its other holder, bytes intact."""
        pool = make_pool(prefix_caching=True)
        writer = pool.sequence()
        self._fill_all(writer, 8, value=5.0)
        writer.register_prefix(list(range(8)))
        reader = pool.sequence()
        assert reader.adopt_prefix(list(range(8))) == 8
        reader.rollback(8)  # drop everything it adopted
        assert reader.seq_len == 0
        # The index still holds the blocks; a fresh adopter reads 5.0s.
        fresh = pool.sequence()
        assert fresh.adopt_prefix(list(range(8))) == 8
        np.testing.assert_array_equal(
            fresh.gather(0)[0], np.full((1, 2, 8, 4), 5.0)
        )

    def test_rollback_mid_shared_block_forks_before_truncate(self):
        """A partial shared tail is forked so the cached prefix stays immutable."""
        pool = make_pool(prefix_caching=True)
        writer = pool.sequence()
        self._fill_all(writer, 4, value=7.0)
        writer.register_prefix(list(range(4)))
        reader = pool.sequence()
        reader.adopt_prefix(list(range(4)), max_tokens=3)  # partial tail
        shared_block = reader.block_ids[0]
        assert pool.refcount(shared_block) >= 2
        forks_before = pool.cow_forks
        reader.rollback(1)  # 3 -> 2 committed, mid-block, still shared
        assert pool.cow_forks == forks_before + 1
        assert reader.block_ids[0] != shared_block
        # Writing through the fork must not touch the registered bytes.
        two = np.full((1, 2, 2, 4), -9.0)
        for layer in range(pool.num_layers):
            reader.layers[layer].append(two, two)
        np.testing.assert_array_equal(
            writer.gather(0)[0], np.full((1, 2, 4, 4), 7.0)
        )

    def test_private_partial_tail_not_forked(self):
        pool = make_pool()
        seq = pool.sequence()
        self._fill_all(seq, 6)
        forks = pool.cow_forks
        seq.rollback(1)  # 5 committed: partial tail, refcount 1
        assert pool.cow_forks == forks
        assert seq.seq_len == 5

    def test_rollback_to_exact_block_boundary_keeps_boundary_block(self):
        """Rolling back to a length that exactly fills its last block must
        keep that block (ceil division, not floor) and free only the rest."""
        pool = make_pool()
        seq = pool.sequence()
        self._fill_all(seq, 8)  # exactly 2 full blocks
        assert pool.blocks_in_use == 2
        seq.rollback(4)  # back to 4 tokens: the boundary block stays
        assert seq.seq_len == 4
        assert len(seq.block_ids) == 1
        assert pool.blocks_in_use == 1
        np.testing.assert_array_equal(
            seq.gather(0)[0], np.full((1, 2, 4, 4), 1.0)
        )

    def test_rollback_onto_shared_boundary_block_neither_frees_nor_forks(self):
        """Rollback landing exactly on a shared block boundary: the still-
        referenced boundary block survives untouched (no free, no COW fork —
        future appends open a fresh block, so the cached bytes can't be hit)."""
        pool = make_pool(prefix_caching=True)
        writer = pool.sequence()
        self._fill_all(writer, 8, value=5.0)  # 2 full blocks
        writer.register_prefix(list(range(8)))
        reader = pool.sequence()
        assert reader.adopt_prefix(list(range(8))) == 8
        boundary = reader.block_ids[0]
        refs_before = pool.refcount(boundary)
        forks_before = pool.cow_forks
        reader.rollback(4)  # new length 4 == block_size: exact boundary
        assert reader.seq_len == 4
        assert reader.block_ids == [boundary]  # same physical block, no fork
        assert pool.refcount(boundary) == refs_before
        assert pool.cow_forks == forks_before
        # Appending after the boundary rollback writes a *new* block and
        # reproduces a fresh sequence bit-for-bit; the registered prefix
        # bytes stay intact for the writer.
        tail = np.full((1, 2, 3, 4), -2.0)
        fresh = pool.sequence()
        self._fill_all(fresh, 4, value=5.0)
        for layer in range(pool.num_layers):
            k_roll, v_roll = reader.layers[layer].append(tail, -tail)
            k_ref, v_ref = fresh.layers[layer].append(tail, -tail)
            np.testing.assert_array_equal(k_roll, k_ref)
            np.testing.assert_array_equal(v_roll, v_ref)
        np.testing.assert_array_equal(
            writer.gather(0)[0], np.full((1, 2, 8, 4), 5.0)
        )

    def test_rollback_zero_is_noop_even_when_shared(self):
        """rollback(0) must not free, fork, or touch refcounts — even on a
        fully shared sequence."""
        pool = make_pool(prefix_caching=True)
        writer = pool.sequence()
        self._fill_all(writer, 8, value=3.0)
        writer.register_prefix(list(range(8)))
        reader = pool.sequence()
        reader.adopt_prefix(list(range(8)))
        blocks = list(reader.block_ids)
        refs = [pool.refcount(b) for b in blocks]
        forks = pool.cow_forks
        reader.rollback(0)
        assert reader.seq_len == 8
        assert reader.block_ids == blocks
        assert [pool.refcount(b) for b in blocks] == refs
        assert pool.cow_forks == forks

    def test_rollback_validation(self):
        pool = make_pool()
        seq = pool.sequence()
        self._fill_all(seq, 3)
        with pytest.raises(ValueError):
            seq.rollback(4)
        with pytest.raises(ValueError):
            seq.rollback(-1)
        seq.rollback(0)  # no-op
        assert seq.seq_len == 3
        seq.release()
        with pytest.raises(RuntimeError):
            seq.rollback(1)

    def test_rollback_mid_forward_rejected(self):
        pool = make_pool()
        seq = pool.sequence()
        k = np.zeros((1, 2, 3, 4))
        seq.layers[0].append(k, k)  # layer 1 not yet appended
        with pytest.raises(RuntimeError):
            seq.rollback(1)


class TestAppendRaw:
    """The compiled executor's batched-quantize KV path: pre-quantized
    bytes written through ``append_raw`` must equal quantize-on-write."""

    def test_pooled_append_raw_matches_append(self):
        from repro.fpformats.quantize import quantize

        rng = np.random.default_rng(5)
        pool = make_pool(kv_fmt="fp8_e4m3")
        via_raw, via_append = pool.sequence(), pool.sequence()
        for chunk in (5, 1, 3):
            k = rng.normal(size=(1, 2, chunk, 4))
            v = rng.normal(size=(1, 2, chunk, 4))
            k_raw, v_raw = via_raw.append_raw(
                0, quantize(k, pool.kv_fmt), quantize(v, pool.kv_fmt)
            )
            k_ref, v_ref = via_append.append_many(0, k, v)
            np.testing.assert_array_equal(k_raw, k_ref)
            np.testing.assert_array_equal(v_raw, v_ref)

    def test_layer_view_exposes_fmt_and_raw_path(self):
        pool = make_pool(kv_fmt="fp8_e4m3")
        view = pool.sequence().layers[0]
        assert view.kv_fmt is pool.kv_fmt
        assert callable(view.append_raw)

    def test_private_cache_append_raw_matches_append(self):
        from repro.fpformats.quantize import quantize

        rng = np.random.default_rng(6)
        via_raw, via_append = LayerKVCache(fmt="fp8_e4m3"), LayerKVCache(fmt="fp8_e4m3")
        for chunk in (4, 1, 1):
            k = rng.normal(size=(1, 2, chunk, 4))
            v = rng.normal(size=(1, 2, chunk, 4))
            k_raw, v_raw = via_raw.append_raw(
                quantize(k, via_raw.kv_fmt), quantize(v, via_raw.kv_fmt)
            )
            k_ref, v_ref = via_append.append(k, v)
            np.testing.assert_array_equal(k_raw, k_ref)
            np.testing.assert_array_equal(v_raw, v_ref)

    def test_append_raw_rejects_released_sequence(self):
        pool = make_pool()
        seq = pool.sequence()
        seq.release()
        with pytest.raises(RuntimeError):
            seq.append_raw(0, np.zeros((1, 2, 1, 4)), np.zeros((1, 2, 1, 4)))


class TestFreeHardening:
    """free() rejects bad ids instead of corrupting the free list."""

    def test_free_unknown_id_raises(self):
        pool = make_pool()
        with pytest.raises(ValueError, match="unknown block id"):
            pool.free([99])
        with pytest.raises(ValueError, match="unknown block id"):
            pool.free([-1])

    def test_double_free_raises(self):
        pool = make_pool()
        block = pool.allocate()
        pool.free([block])
        with pytest.raises(ValueError, match="double free"):
            pool.free([block])

    def test_free_of_never_allocated_id_raises(self):
        pool = make_pool()
        with pytest.raises(ValueError, match="double free"):
            pool.free([0])  # valid id, but never handed out

    def test_failed_free_does_not_corrupt_counters(self):
        """The regression the old code had: a bad free() silently
        double-appended the id and drove blocks_in_use negative."""
        pool = make_pool()
        block = pool.allocate()
        pool.free([block])
        before = (len(pool._free), pool.blocks_in_use)
        with pytest.raises(ValueError):
            pool.free([block])
        assert (len(pool._free), pool.blocks_in_use) == before
        # The recycled block is handed out exactly once.
        assert pool.allocate() == block
        assert pool.blocks_in_use == 1

    def test_failed_batch_free_is_atomic(self):
        """A rejected batch mutates nothing: no leaked or half-freed ids."""
        pool = make_pool()
        good = pool.allocate()
        other = pool.allocate()
        with pytest.raises(ValueError):
            pool.free([good, 99, other])
        assert pool.blocks_in_use == 2  # neither reference was dropped
        pool.free([good, other])  # the corrected retry succeeds
        assert pool.blocks_in_use == 0

    def test_batch_free_counts_duplicate_ids_against_refcount(self):
        pool = make_pool()
        block = pool.allocate()
        pool.share(block)  # refcount 2
        with pytest.raises(ValueError, match="double free"):
            pool.free([block, block, block])  # 3 drops > 2 references
        assert pool.blocks_in_use == 1
        pool.free([block, block])
        assert pool.blocks_in_use == 0

    def test_refcounted_free_releases_on_last_reference(self):
        pool = make_pool()
        block = pool.allocate()
        pool.share(block)
        pool.free([block])  # drops to 1: still in use
        assert pool.blocks_in_use == 1
        pool.free([block])  # drops to 0: returned
        assert pool.blocks_in_use == 0
        with pytest.raises(ValueError):
            pool.free([block])


class TestFreeListRecycling:
    """The invariant documented in _grow: recycled ids pop before grown ids."""

    def test_recycled_ids_pop_before_freshly_grown_ids(self):
        pool = make_pool(initial_blocks=2)
        first = [pool.allocate(), pool.allocate()]
        pool.free(first)  # both recycled, sitting on top of the free list
        pool._grow()  # grown ids are pushed *below* the recycled ones
        assert {pool.allocate(), pool.allocate()} == set(first)
        # Only after the recycled ids drain do fresh ids appear, lowest first.
        assert pool.allocate() == 2
        assert pool.blocks_reused == 2

    def test_grown_ids_pop_lowest_first(self):
        pool = make_pool(initial_blocks=1)
        assert pool.allocate() == 0
        got = [pool.allocate() for _ in range(3)]
        assert got == sorted(got)

    def test_peak_blocks_in_use_across_grow_free_cycles(self):
        pool = make_pool(initial_blocks=2)
        ids = [pool.allocate() for _ in range(5)]  # forces growth past 2
        assert pool.peak_blocks_in_use == 5
        pool.free(ids)
        assert pool.blocks_in_use == 0
        assert pool.peak_blocks_in_use == 5  # the high-water mark sticks
        for _ in range(3):
            pool.allocate()
        assert pool.peak_blocks_in_use == 5  # not exceeded: unchanged
        for _ in range(4):
            pool.allocate()
        assert pool.blocks_in_use == 7
        assert pool.peak_blocks_in_use == 7  # new high-water mark


class TestGatherWorkspaceReuse:
    """Satellite perf task: gather reuses per-layer workspaces across steps."""

    def test_decode_steps_reuse_the_workspace_buffer(self):
        pool = make_pool(initial_blocks=16)
        seq = pool.sequence()
        token = np.zeros((1, 2, 1, 4))
        seq.layers[0].append(token, token)
        ws = seq._ws_k[0]
        reallocs = 0
        for _ in range(30):
            seq.layers[0].append(token, token)
            if seq._ws_k[0] is not ws:
                reallocs += 1
                ws = seq._ws_k[0]
        # 31 appends with doubling growth: a handful of reallocations,
        # not one per decode step.
        assert reallocs <= 5

    def test_workspace_growth_is_amortized_doubling(self):
        pool = make_pool(initial_blocks=64)
        seq = pool.sequence()
        token = np.zeros((1, 2, 1, 4))
        capacities = set()
        for _ in range(100):
            seq.layers[0].append(token, token)
            capacities.add(seq._ws_k[0].shape[2])
        assert len(capacities) <= 8  # O(log n) distinct capacities

    def test_workspace_views_stay_strided_and_exact(self):
        """Layout class and bytes both match the per-call allocation."""
        rng = np.random.default_rng(1)
        pool = make_pool()
        seq = pool.sequence()
        ref = LayerKVCache()
        for chunk in (3, 1, 1, 6, 1):
            k = rng.normal(size=(1, 2, chunk, 4))
            v = rng.normal(size=(1, 2, chunk, 4))
            k_pool, v_pool = seq.layers[0].append(k, v)
            k_ref, v_ref = ref.append(k, v)
            assert not k_pool.flags.c_contiguous
            np.testing.assert_array_equal(k_pool, k_ref)
            np.testing.assert_array_equal(v_pool, v_ref)

    def test_release_drops_workspaces(self):
        pool = make_pool()
        seq = pool.sequence()
        token = np.zeros((1, 2, 1, 4))
        seq.layers[0].append(token, token)
        assert seq._ws_k[0] is not None
        seq.release()
        assert seq._ws_k[0] is None


class TestLayerKVCacheGrowth:
    """The private (generate-path) cache also grows amortized now."""

    def test_append_one_token_at_a_time_reallocates_logarithmically(self):
        kv = LayerKVCache()
        token = np.zeros((1, 2, 1, 8))
        for _ in range(200):
            kv.append(token, token.copy())
        assert kv.seq_len == 200
        # 16 -> 32 -> 64 -> 128 -> 256: five allocations, not 200.
        assert kv.realloc_count <= 5

    def test_views_track_appends(self):
        kv = LayerKVCache()
        k1 = np.full((1, 1, 2, 2), 3.0)
        kv.append(k1, k1.copy())
        k_all, _ = kv.append(k1 * 2, k1.copy() * 2)
        assert k_all.shape == (1, 1, 4, 2)
        np.testing.assert_array_equal(k_all[0, 0, :2], k1[0, 0])
        np.testing.assert_array_equal(k_all[0, 0, 2:], 2 * k1[0, 0])
