"""Golden-token parity: the compiled executor is byte-identical to reference.

The tentpole guarantee of the execution-backend layer: under every
precision preset (fp64-ref through bf16-fp8kv) and on every serving path
— the classic four scenarios, prefix caching, chunked prefill,
preempt-then-rerun, and prompt-lookup speculation — an engine on the
``compiled`` backend serves **exactly** the token streams the
``reference`` backend serves.  The compiled plan pre-resolves each
layer's op sequence, batches the quantize-on-write KV path, and reuses
mask/context/logit buffers; none of that may move a single bit.
"""

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.executor import (
    EXECUTORS,
    CompiledExecutor,
    ReferenceExecutor,
    resolve_executor,
)
from repro.nn.generation import generate, generate_batch
from repro.nn.model import OPTLanguageModel
from repro.serve import Request, ServeEngine, generate_workload

#: Every registered precision preset, weakest to strongest quantization.
POLICIES = ("fp64-ref", "fp32", "fp16", "bf16", "bf16-fp8kv")
CLASSIC_FOUR = ("steady", "bursty", "chat", "codegen")


def make_model(policy=None, seed=11):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


def workload(scenario, count=4, seed=0):
    return generate_workload(scenario, num_requests=count, vocab_size=64, seed=seed)


def served_tokens(model, requests, backend, **engine_kwargs):
    engine = ServeEngine(model, backend=backend, **engine_kwargs)
    report = engine.serve(requests)
    assert len(report.completed) == len(requests)
    return report, {
        r.request_id: report.by_id(r.request_id).tokens for r in requests
    }


def assert_backend_parity(model, requests, **engine_kwargs):
    """Serve twice — reference then compiled — and demand identical bytes."""
    ref_report, ref = served_tokens(model, requests, "reference", **engine_kwargs)
    comp_report, comp = served_tokens(model, requests, "compiled", **engine_kwargs)
    for rid, tokens in ref.items():
        np.testing.assert_array_equal(
            comp[rid], tokens, err_msg=f"request {rid} diverged across backends"
        )
    return ref_report, comp_report


class TestClassicScenarios:
    """ISSUE acceptance: parity on the classic four, every preset."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scenario", CLASSIC_FOUR)
    def test_compiled_matches_reference(self, scenario, policy, fixed_timer):
        model = make_model(policy)
        assert_backend_parity(
            model, workload(scenario), max_batch_size=4, timer=fixed_timer
        )


class TestSpeculationParity:
    """summarize-copy with prompt-lookup speculation, every preset."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_speculative_parity_and_generate_agreement(self, policy, fixed_timer):
        model = make_model(policy)
        requests = workload("summarize-copy", count=6)
        _, comp_report = assert_backend_parity(
            model,
            requests,
            max_batch_size=4,
            decode_strategy="prompt-lookup",
            timer=fixed_timer,
        )
        # Speculation actually engaged on the compiled backend, and the
        # served stream still equals the offline generate() reference.
        assert comp_report.metrics["draft_accepted"] > 0
        for request in requests:
            expected = generate(
                model,
                request.prompt_ids,
                max_new_tokens=request.max_new_tokens,
                temperature=request.temperature,
                top_k=request.top_k,
                rng=np.random.default_rng(request.seed),
                stop_tokens=request.stop_tokens,
            )
            np.testing.assert_array_equal(
                comp_report.by_id(request.request_id).tokens, expected
            )


class TestSchedulingPaths:
    """Prefix caching, chunked prefill, preemption — the KV-heavy paths."""

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_prefix_caching_parity(self, policy, fixed_timer):
        model = make_model(policy)
        prompt = np.array([1, 2, 3, 1, 2, 3, 1, 2])
        requests = [
            Request("writer", prompt, max_new_tokens=8, arrival_time=0.0),
            Request("twin", prompt.copy(), max_new_tokens=8, arrival_time=0.05),
        ]
        _, comp_report = assert_backend_parity(
            model,
            requests,
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
            timer=fixed_timer,
        )
        assert comp_report.pool_stats["blocks_adopted"] > 0

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_chunked_prefill_parity(self, policy, fixed_timer):
        model = make_model(policy)
        assert_backend_parity(
            model,
            workload("chat"),
            max_batch_size=4,
            prefill_budget=3,
            timer=fixed_timer,
        )

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_preempt_then_rerun_parity(self, policy, fixed_timer):
        model = make_model(policy)
        victim = Request(
            "victim", np.array([9, 10, 11, 9, 10, 11]), max_new_tokens=8, priority=0
        )
        hogs = [
            Request(f"hog{i}", np.arange(1 + i, 6 + i), max_new_tokens=10, priority=1)
            for i in range(2)
        ]
        _, comp_report = assert_backend_parity(
            model,
            hogs + [victim],
            max_batch_size=3,
            block_size=2,
            initial_blocks=4,
            max_blocks=8,
            timer=fixed_timer,
        )
        assert comp_report.metrics["preempted_count"] >= 1


class TestGeneratePath:
    """The offline generate()/generate_batch() entry points honor backend=."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_generate_backend_parity(self, policy):
        model = make_model(policy)
        prompt = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        ref = generate(model, prompt, max_new_tokens=10, temperature=0.0)
        comp = generate(
            model, prompt, max_new_tokens=10, temperature=0.0, backend="compiled"
        )
        np.testing.assert_array_equal(comp, ref)

    def test_generate_sampled_backend_parity(self):
        """Sampled decoding: identical RNG seeds walk identical streams."""
        model = make_model("bf16")
        prompt = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        ref = generate(
            model, prompt, max_new_tokens=10, temperature=0.8,
            rng=np.random.default_rng(99),
        )
        comp = generate(
            model, prompt, max_new_tokens=10, temperature=0.8,
            rng=np.random.default_rng(99), backend="compiled",
        )
        np.testing.assert_array_equal(comp, ref)

    @pytest.mark.parametrize("policy", ["fp64-ref", "bf16-fp8kv"])
    def test_generate_batch_backend_parity(self, policy):
        model = make_model(policy)
        prompts = [np.array([1, 2, 3, 1, 2, 3]), np.array([4, 5, 6, 7, 4, 5])]
        ref = generate_batch(model, prompts, max_new_tokens=8, temperature=0.0)
        comp = generate_batch(
            model, prompts, max_new_tokens=8, temperature=0.0, backend="compiled"
        )
        for got, expected in zip(comp, ref):
            np.testing.assert_array_equal(got, expected)


class TestExecutorContract:
    def test_registry_and_resolution(self):
        model = make_model()
        assert set(EXECUTORS) == {"reference", "compiled"}
        assert isinstance(resolve_executor(None, model), ReferenceExecutor)
        assert isinstance(resolve_executor("compiled", model), CompiledExecutor)
        inst = CompiledExecutor(model)
        assert resolve_executor(inst, model) is inst
        with pytest.raises(KeyError, match="unknown execution backend"):
            resolve_executor("nonsense", model)

    def test_engine_reports_backend_name(self):
        assert ServeEngine(make_model()).backend == "reference"
        assert ServeEngine(make_model(), backend="compiled").backend == "compiled"

    def test_compiled_rejects_training_mode(self):
        model = make_model()
        model.train()
        executor = CompiledExecutor(model)
        with pytest.raises(RuntimeError, match="eval"):
            executor.forward_with_cache(np.array([[1, 2, 3]]), model.new_kv_cache())

    def test_plan_invalidated_on_policy_change(self):
        """set_policy after a compiled forward must rebuild the plan: the
        next forward matches a fresh reference under the *new* policy."""
        model = make_model("fp64-ref")
        executor = CompiledExecutor(model)
        prompt = np.array([[1, 2, 3, 4]])
        np.testing.assert_array_equal(executor.forward(prompt), model(prompt))
        model.set_policy("bf16-fp8kv")
        np.testing.assert_array_equal(executor.forward(prompt), model(prompt))
