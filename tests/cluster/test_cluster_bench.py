"""Cluster benchmark harness: cells, job declaration, JSON, flag guards."""

import json

import pytest

from repro.cluster.bench import jobs, run_cluster_bench, run_cluster_cell

#: Tiny-cell settings every test uses: the unit suite measures harness
#: behavior, not throughput, so it runs the test model at small scale.
TINY = dict(quick=True, sessions=3, model_name="opt-test", seed=0)


class TestRunClusterCell:
    def test_rows_and_text(self):
        rows, text = run_cluster_cell(
            scenario="chat-multiturn", routing="prefix-affinity", replicas=2, **TINY
        )
        assert rows["scenario"] == "chat-multiturn"
        assert rows["routing"] == "prefix-affinity"
        assert rows["replicas"] == 2
        assert rows["num_requests"] == 9  # 3 sessions x 3 turns
        cluster = rows["cluster"]
        assert cluster["aggregate_tokens_per_second"] > 0
        assert len(cluster["per_replica"]) == 2
        assert sum(cluster["routing"]["routed"]) == 9
        assert "prefix-affinity" in text and "tok/s" in text
        json.dumps(rows)  # engine-cacheable: must be JSON-serializable

    def test_digest_identical_across_routings(self):
        digests = {
            routing: run_cluster_cell(
                scenario="agent-fanout", routing=routing, replicas=2, **TINY
            )[0]["token_digest"]
            for routing in ("round-robin", "least-loaded", "prefix-affinity")
        }
        assert len(set(digests.values())) == 1

    def test_digest_identical_across_replica_counts(self):
        digests = {
            r: run_cluster_cell(
                scenario="chat-multiturn", routing="round-robin", replicas=r, **TINY
            )[0]["token_digest"]
            for r in (1, 2, 4)
        }
        assert len(set(digests.values())) == 1

    def test_unknown_routing_rejected(self):
        with pytest.raises(KeyError, match="prefix-affinity"):
            run_cluster_cell(routing="sticky-hash", **TINY)


class TestJobs:
    def test_grid_declaration(self):
        declared = jobs(quick=True, seed=3, replicas=(2, 4))
        # 2 scenarios x 2 replica counts x 3 routings
        assert len(declared) == 12
        names = {job.name for job in declared}
        assert "cluster[chat-multiturn/R2/round-robin]" in names
        assert "cluster[agent-fanout/R4/prefix-affinity]" in names
        for job in declared:
            assert job.target == "repro.cluster.bench:run_cluster_cell"
            assert job.seed == 3

    def test_jobs_resolve_and_hash(self):
        job = jobs(quick=True)[0]
        assert callable(job.resolve())
        assert len(job.config_hash("v0")) == 64

    def test_unknown_scenario_and_routing_rejected(self):
        with pytest.raises(KeyError, match="scenario"):
            jobs(quick=True, scenarios=("nope",))
        with pytest.raises(KeyError, match="routing"):
            jobs(quick=True, routings=("nope",))
        with pytest.raises(ValueError, match="replica"):
            jobs(quick=True, replicas=(0,))


class TestRunClusterBench:
    def test_writes_json_with_comparison(self, tmp_path):
        out = tmp_path / "BENCH_cluster.json"
        payload, text = run_cluster_bench(
            quick=True,
            seed=0,
            out_path=str(out),
            scenarios=("chat-multiturn",),
            routings=("round-robin", "prefix-affinity"),
            replicas=(2,),
            sessions=3,
            stream=open("/dev/null", "w"),
        )
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk["config"]["routings"] == ["round-robin", "prefix-affinity"]
        assert len(on_disk["results"]) == 2
        cell = on_disk["comparison"]["chat-multiturn/R2"]["prefix-affinity"]
        assert cell["tokens_match"] is True
        assert cell["prefix_hit_rate"] >= cell["baseline_prefix_hit_rate"]
        assert cell["tokens_per_second_ratio"] > 0
        assert "wrote" in text

    def test_unknown_routing_rejected_up_front(self, tmp_path):
        with pytest.raises(ValueError, match="--routing"):
            run_cluster_bench(
                quick=True, seed=0, out_path=str(tmp_path / "x.json"),
                routings=("consistent-hash",), stream=open("/dev/null", "w"),
            )

    def test_bad_replicas_rejected_up_front(self, tmp_path):
        with pytest.raises(ValueError, match="--replicas"):
            run_cluster_bench(
                quick=True, seed=0, out_path=str(tmp_path / "x.json"),
                replicas=(2, 0), stream=open("/dev/null", "w"),
            )

    def test_unknown_policy_rejected_up_front(self, tmp_path):
        with pytest.raises(ValueError, match="precision policy"):
            run_cluster_bench(
                quick=True, seed=0, out_path=str(tmp_path / "x.json"),
                policy="fp7-magic", stream=open("/dev/null", "w"),
            )


class TestCLIGuards:
    """Flag mistakes exit with a one-line preset-listing message."""

    def test_cluster_bench_unknown_routing(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "cluster-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--routing", "round-robin,consistent-hash",
            ])
        message = str(excinfo.value)
        assert message.startswith("cluster-bench:")
        assert "prefix-affinity" in message  # lists the valid presets

    def test_cluster_bench_bad_replicas(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "cluster-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--replicas", "two",
            ])
        assert str(excinfo.value).startswith("cluster-bench: --replicas")

    def test_cluster_bench_unknown_precision_policy(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "cluster-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--policy", "fp7-magic",
            ])
        message = str(excinfo.value)
        assert message.startswith("cluster-bench:")
        assert "fp64-ref" in message  # lists the valid presets

    def test_serve_bench_unknown_policies_preset(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "--out", str(tmp_path / "x.json"),
                "--scenarios", "steady",
                "--policies", "fp64-ref,fp12-mystery",
            ])
        message = str(excinfo.value)
        assert message.startswith("serve-bench:")
        assert "fp12-mystery" in message
        assert "bf16-fp8kv" in message  # lists the valid presets
