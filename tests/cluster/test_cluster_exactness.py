"""The cluster guarantee: routing never changes a served token.

For any routing policy and any replica count, the multiset of per-request
output token streams must equal the single-engine run and
:func:`repro.nn.generation.generate` — routing moves *where* and *when*
work happens, never what comes out.  Pinned under the exact ``fp64-ref``
policy and the quantized ``bf16-fp8kv`` policy, on hand-built workloads
and on randomized scenario draws (the routing-equivalence property test).
"""

import numpy as np
import pytest

from repro.cluster import ROUTING_POLICIES, ClusterRouter
from repro.nn.config import get_config
from repro.nn.generation import generate
from repro.nn.model import OPTLanguageModel
from repro.serve import Request, ServeEngine
from repro.serve.workload import generate_workload

POLICIES = ("fp64-ref", "bf16-fp8kv")


def make_model(policy):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(12345), policy=policy
    )
    model.eval()
    return model


def token_multiset(completed):
    """The order-independent multiset of (request_id, tokens) outputs."""
    return sorted(
        (c.request_id, tuple(int(t) for t in c.tokens)) for c in completed
    )


def reference(model, request):
    return generate(
        model,
        request.prompt_ids,
        max_new_tokens=request.max_new_tokens,
        temperature=request.temperature,
        top_k=request.top_k,
        rng=np.random.default_rng(request.seed),
        stop_tokens=request.stop_tokens,
    )


class TestRoutingEquivalenceProperty:
    """Randomized scenarios × R ∈ {1, 2, 4} × every routing policy."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_matches_single_engine(self, policy):
        model = make_model(policy)
        vocab = model.config.vocab_size
        meta_rng = np.random.default_rng(2024)
        scenario_pool = ("chat-multiturn", "agent-fanout", "bursty", "chat")
        for trial in range(3):
            scenario = scenario_pool[int(meta_rng.integers(len(scenario_pool)))]
            seed = int(meta_rng.integers(1_000_000))
            workload = generate_workload(
                scenario, sessions=4, vocab_size=vocab, seed=seed
            )
            engine_kwargs = dict(
                max_batch_size=3, block_size=8, prefix_caching=True
            )
            single = ServeEngine(model, **engine_kwargs).serve(workload)
            expected = token_multiset(single.completed)
            assert len(expected) == len(workload)
            for replicas in (1, 2, 4):
                for routing in ROUTING_POLICIES:
                    router = ClusterRouter(
                        model, replicas=replicas, routing=routing, **engine_kwargs
                    )
                    report = router.serve(workload)
                    assert token_multiset(report.completed) == expected, (
                        f"{scenario} seed={seed} R={replicas} {routing} diverged "
                        f"from the single-engine run under {policy}"
                    )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cluster_matches_generate(self, policy):
        """Every request served by the cluster equals generate() alone."""
        model = make_model(policy)
        workload = generate_workload(
            "chat-multiturn", sessions=4, vocab_size=model.config.vocab_size, seed=7
        )
        router = ClusterRouter(
            model,
            replicas=2,
            routing="prefix-affinity",
            max_batch_size=3,
            block_size=8,
            prefix_caching=True,
        )
        report = router.serve(workload)
        assert len(report.completed) == len(workload)
        for request in workload:
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens,
                reference(model, request),
                err_msg=f"request {request.request_id} diverged from generate()",
            )


class TestClusterBehaviour:
    def test_single_replica_equals_single_engine_metrics(self, model, fixed_timer):
        """R=1 is literally the engine loop: same tokens, same makespan."""
        requests = [
            Request(f"r{i}", np.array([1 + i, 2, 3]), max_new_tokens=5,
                    arrival_time=0.001 * i)
            for i in range(6)
        ]

        class _Timer:
            def __init__(self):
                self.t = 0.0

            def __call__(self):
                self.t += 0.001
                return self.t

        single = ServeEngine(model, max_batch_size=2, timer=_Timer()).serve(requests)
        router = ClusterRouter(model, replicas=1, max_batch_size=2, timer=_Timer())
        clustered = router.serve(requests)
        assert token_multiset(clustered.completed) == token_multiset(single.completed)
        assert clustered.merged.metrics["makespan_s"] == pytest.approx(
            single.metrics["makespan_s"]
        )

    def test_all_requests_complete_across_replicas(self, model, fixed_timer):
        workload = generate_workload(
            "agent-fanout", sessions=3, vocab_size=model.config.vocab_size, seed=3
        )
        router = ClusterRouter(
            model, replicas=4, routing="least-loaded",
            max_batch_size=2, timer=fixed_timer,
        )
        report = router.serve(workload)
        assert len(report.completed) == len(workload)
        assert sum(report.routing["routed"]) == len(workload)
        # least-loaded under a fan-out burst uses more than one replica.
        assert sum(1 for n in report.routing["routed"] if n > 0) > 1

    def test_report_summary_shape(self, model, fixed_timer):
        workload = generate_workload(
            "chat-multiturn", sessions=3, vocab_size=model.config.vocab_size, seed=5
        )
        router = ClusterRouter(
            model, replicas=2, routing="prefix-affinity",
            max_batch_size=3, prefix_caching=True, block_size=8, timer=fixed_timer,
        )
        summary = router.serve(workload).summary()
        assert summary["replicas"] == 2
        assert summary["routing_policy"] == "prefix-affinity"
        assert len(summary["per_replica"]) == 2
        assert 0.0 <= summary["prefix_hit_rate"] <= 1.0
        assert summary["jain_fairness"] <= 1.0
        assert summary["routing"]["sticky_hits"] > 0
        routed = [row["requests_routed"] for row in summary["per_replica"]]
        assert routed == summary["routing"]["routed"]

    def test_sticky_sessions_stay_on_one_replica(self, model, fixed_timer):
        workload = generate_workload(
            "chat-multiturn", sessions=4, vocab_size=model.config.vocab_size, seed=9
        )
        router = ClusterRouter(
            model, replicas=2, routing="prefix-affinity",
            max_batch_size=4, prefix_caching=True, block_size=8, timer=fixed_timer,
        )
        for engine in router.engines:
            engine.begin()
        homes: dict[str, set[int]] = {}
        for request in sorted(workload, key=lambda r: r.arrival_time):
            decision = router.dispatch(request)
            homes.setdefault(request.session_id, set()).add(decision.replica)
        # No spill pressure at this load: every conversation stays home.
        assert all(len(replicas) == 1 for replicas in homes.values())
