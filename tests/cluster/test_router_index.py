"""Router prefix-index boundedness and capacity-weighted routing."""

import numpy as np
import pytest

from repro.cluster.router import (
    ClusterRouter,
    LeastLoadedPolicy,
    ReplicaSnapshot,
    RouterPrefixIndex,
)
from repro.nn.config import get_config
from repro.nn.model import OPTLanguageModel
from repro.serve.kv_pool import PrefixIndex
from repro.serve.request import Request
from repro.serve.workload import generate_workload


def make_model(policy=None, seed=11):
    model = OPTLanguageModel(
        get_config("opt-test"), rng=np.random.default_rng(seed), policy=policy
    )
    model.eval()
    return model


def snapshot(replica, load, weight=1.0, free_slots=4, queue_depth=0):
    return ReplicaSnapshot(
        replica=replica,
        queue_depth=queue_depth,
        active=load - queue_depth,
        max_batch_size=4,
        free_slots=free_slots,
        blocks_in_use=0,
        prefill_backlog_tokens=0,
        load=load,
        weight=weight,
    )


class _StubPool:
    """The slice of BlockKVPool the prefix index touches during evict."""

    def __init__(self) -> None:
        self.prefix_evictions = 0
        self.freed: list[int] = []

    def refcount(self, block_id) -> int:
        return 1

    def free(self, block_ids) -> None:
        self.freed.extend(block_ids)

    def share(self, block_id, adopted=False) -> None:
        pass


class TestEngineEvictionLog:
    def test_evicted_full_paths_are_drained_once(self):
        index = PrefixIndex(block_size=2)
        pool = _StubPool()
        index.register([1, 2, 3, 4], [10, 11], pool)
        assert index.entries == 2
        # Eviction is leaf-first, so draining the chain takes two passes:
        # the deeper span first, then its newly-leafed parent.
        assert index.evict(pool, needed=1) == 1
        assert index.drain_evicted_paths() == [((1, 2), (3, 4))]
        assert index.evict(pool, needed=1) == 1
        assert index.drain_evicted_paths() == [((1, 2),)]
        assert index.drain_evicted_paths() == []

    def test_partial_evictions_are_not_reported(self):
        index = PrefixIndex(block_size=4)
        pool = _StubPool()
        # 6 tokens on block_size 4: one full block + one partial tail.
        index.register([1, 2, 3, 4, 5, 6], [10, 11], pool)
        index.evict(pool, needed=1)  # the partial tail goes first
        assert index.drain_evicted_paths() == []
        index.evict(pool, needed=1)
        assert index.drain_evicted_paths() == [((1, 2, 3, 4),)]


class TestRouterIndexBounds:
    def test_lru_cap_holds_under_churn(self):
        index = RouterPrefixIndex(replicas=2, block_size=2, max_spans=40)
        rng = np.random.default_rng(0)
        for i in range(300):
            tokens = rng.integers(0, 50, size=8)
            index.observe(i % 2, tokens)
            assert index.spans <= 40
        assert index.evicted > 0

    def test_match_refreshes_recency(self):
        index = RouterPrefixIndex(replicas=1, block_size=2, max_spans=10)
        hot = [1, 2, 3, 4]
        index.observe(0, hot)
        # Churn enough cold prompts to overflow the cap repeatedly while
        # touching the hot path before each wave.
        for i in range(30):
            assert index.match_blocks(hot)[0] == 2
            index.observe(0, [100 + i, 200 + i, 300 + i, 400 + i])
        assert index.match_blocks(hot)[0] == 2

    def test_evict_path_removes_subtree(self):
        index = RouterPrefixIndex(replicas=2, block_size=2, max_spans=None)
        index.observe(0, [1, 2, 3, 4, 5, 6])
        index.observe(0, [1, 2, 9, 9])
        assert index.spans == 4
        removed = index.evict_path(0, (((1, 2)),))
        assert removed == 4
        assert index.spans == 0
        assert index.match_blocks([1, 2, 3, 4])[0] == 0

    def test_evict_unknown_path_is_harmless(self):
        index = RouterPrefixIndex(replicas=1, block_size=2)
        assert index.evict_path(0, ((7, 7),)) == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_spans"):
            RouterPrefixIndex(replicas=1, block_size=2, max_spans=0)


class TestClusterEvictionMirroring:
    def test_engine_evictions_shrink_router_index(self):
        """A pool small enough to force prefix evictions must shrink the
        router-side index too, and routing must still serve every token
        stream identically to an unconstrained cluster."""
        model = make_model()
        workload = generate_workload(
            "chat-multiturn", sessions=6, vocab_size=64, seed=0, rate_scale=4.0
        )
        tight = ClusterRouter(
            model,
            replicas=2,
            routing="prefix-affinity",
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
            max_blocks=12,
            initial_blocks=12,
        )
        report = tight.serve(workload)
        evictions = sum(e.pool.prefix_evictions for e in tight.engines)
        assert evictions > 0
        assert report.routing["index_evictions"] > 0

        roomy = ClusterRouter(
            model,
            replicas=2,
            routing="prefix-affinity",
            max_batch_size=2,
            block_size=4,
            prefix_caching=True,
        )
        roomy_report = roomy.serve(workload)
        for request in workload:
            np.testing.assert_array_equal(
                report.by_id(request.request_id).tokens,
                roomy_report.by_id(request.request_id).tokens,
            )


class TestWeightedRouting:
    def test_least_loaded_divides_by_weight(self):
        policy = LeastLoadedPolicy()
        snaps = [snapshot(0, load=3, weight=2.0), snapshot(1, load=2, weight=1.0)]
        # 3/2 = 1.5 beats 2/1 = 2.0: the bigger box takes the request.
        assert policy.choose(None, snaps, None).replica == 0

    def test_unweighted_ties_break_to_lower_id(self):
        policy = LeastLoadedPolicy()
        snaps = [snapshot(0, load=1), snapshot(1, load=1)]
        assert policy.choose(None, snaps, None).replica == 0

    def test_dispatch_fills_proportionally(self):
        router = ClusterRouter(
            make_model(),
            replicas=2,
            routing="least-loaded",
            capacity_weights=(2.0, 1.0),
            max_batch_size=4,
        )
        # Replica 0 gets 8 decode slots, replica 1 gets 4.
        assert router.engines[0].scheduler.max_batch_size == 8
        assert router.engines[1].scheduler.max_batch_size == 4
        for engine in router.engines:
            engine.begin()
        for i in range(6):
            router.dispatch(Request(f"r{i}", np.arange(1, 5), max_new_tokens=2))
        routed = [0, 0]
        for decision in router._decisions:
            routed[decision.replica] += 1
        assert routed == [4, 2]

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="one entry per replica"):
            ClusterRouter(make_model(), replicas=2, capacity_weights=(1.0,))
        with pytest.raises(ValueError, match="> 0"):
            ClusterRouter(make_model(), replicas=2, capacity_weights=(1.0, 0.0))

    def test_weighted_cluster_report(self):
        model = make_model()
        workload = generate_workload(
            "chat-multiturn", sessions=4, vocab_size=64, seed=0, rate_scale=4.0
        )
        router = ClusterRouter(
            model,
            replicas=2,
            routing="least-loaded",
            capacity_weights=(2.0, 1.0),
            max_batch_size=2,
        )
        summary = router.serve(workload).summary()
        assert summary["capacity_weights"] == [2.0, 1.0]
        assert summary["weighted_load_imbalance"] >= 0.0
