"""Unit tests for the routing policies and the router-side prefix index.

Policies are exercised against hand-built :class:`ReplicaSnapshot` lists,
so every branch — round-robin cycling, least-loaded ties, affinity
ranking, session stickiness, load-aware spill — is pinned without
spinning up engines.
"""

import numpy as np
import pytest

from repro.cluster import (
    ROUTING_POLICIES,
    ClusterRouter,
    LeastLoadedPolicy,
    PrefixAffinityPolicy,
    ReplicaSnapshot,
    RouterPrefixIndex,
    RoundRobinPolicy,
    resolve_routing,
)
from repro.serve.request import Request


def snap(replica, load=0, free_slots=4, queue_depth=0, active=0):
    return ReplicaSnapshot(
        replica=replica,
        queue_depth=queue_depth,
        active=active,
        max_batch_size=4,
        free_slots=free_slots,
        blocks_in_use=0,
        prefill_backlog_tokens=0,
        load=load,
    )


def request(prompt, session_id=None, rid="r"):
    return Request(rid, np.asarray(prompt), session_id=session_id)


class TestRouterPrefixIndex:
    def test_match_counts_full_blocks_only(self):
        index = RouterPrefixIndex(replicas=2, block_size=4)
        index.observe(0, [1, 2, 3, 4, 5, 6, 7, 8])
        # 8 tokens = 2 full blocks on replica 0; nothing on replica 1.
        assert index.match_blocks([1, 2, 3, 4, 5, 6, 7, 8]) == [2, 0]
        # A 6-token prefix still matches its one complete block.
        assert index.match_blocks([1, 2, 3, 4, 5, 6]) == [1, 0]
        # Diverging inside the first block: no match anywhere.
        assert index.match_blocks([9, 2, 3, 4]) == [0, 0]

    def test_partial_trailing_block_not_indexed(self):
        index = RouterPrefixIndex(replicas=1, block_size=4)
        index.observe(0, [1, 2, 3, 4, 5, 6])  # 1 full block + 2 spare
        assert index.match_blocks([1, 2, 3, 4, 5, 6, 7, 8]) == [1]

    def test_longest_match_wins_across_replicas(self):
        index = RouterPrefixIndex(replicas=2, block_size=2)
        index.observe(0, [1, 2])
        index.observe(1, [1, 2, 3, 4])
        assert index.match_blocks([1, 2, 3, 4, 5, 6]) == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            RouterPrefixIndex(replicas=0, block_size=4)
        with pytest.raises(ValueError):
            RouterPrefixIndex(replicas=2, block_size=0)


class TestRoundRobin:
    def test_cycles_in_arrival_order(self):
        policy = RoundRobinPolicy()
        index = RouterPrefixIndex(replicas=3, block_size=4)
        snaps = [snap(0), snap(1), snap(2)]
        chosen = [policy.choose(request([1]), snaps, index).replica for _ in range(7)]
        assert chosen == [0, 1, 2, 0, 1, 2, 0]

    def test_ignores_load(self):
        policy = RoundRobinPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=4)
        snaps = [snap(0, load=99, free_slots=0, queue_depth=50), snap(1, load=0)]
        assert policy.choose(request([1]), snaps, index).replica == 0


class TestLeastLoaded:
    def test_picks_minimum_load(self):
        policy = LeastLoadedPolicy()
        index = RouterPrefixIndex(replicas=3, block_size=4)
        snaps = [snap(0, load=5), snap(1, load=2), snap(2, load=7)]
        assert policy.choose(request([1]), snaps, index).replica == 1

    def test_tie_breaks_to_lower_id(self):
        policy = LeastLoadedPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=4)
        snaps = [snap(0, load=3), snap(1, load=3)]
        assert policy.choose(request([1]), snaps, index).replica == 0


class TestPrefixAffinity:
    def test_routes_to_longest_prefix_holder(self):
        policy = PrefixAffinityPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=2)
        index.observe(1, [1, 2, 3, 4])
        snaps = [snap(0), snap(1)]
        decision = policy.choose(request([1, 2, 3, 4, 9]), snaps, index)
        assert decision.replica == 1
        assert decision.reason == "affinity"
        assert decision.match_blocks == 2

    def test_fresh_request_prefers_least_loaded(self):
        policy = PrefixAffinityPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=2)
        snaps = [snap(0, load=4), snap(1, load=1)]
        decision = policy.choose(request([7, 7]), snaps, index)
        assert decision.replica == 1
        assert decision.reason == "fresh"

    def test_session_stickiness_overrides_ranking(self):
        policy = PrefixAffinityPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=2)
        snaps = [snap(0), snap(1)]
        first = policy.choose(request([1, 2], session_id="s0"), snaps, index)
        index.observe(first.replica, [1, 2])
        # Replica 1 now looks better by every ranking criterion...
        index.observe(1, [1, 2, 3, 4])
        loaded = [snap(0, load=3), snap(1, load=0)]
        second = policy.choose(request([1, 2, 3, 4], session_id="s0"), loaded, index)
        # ...but the session stays where its KV lives.
        assert second.replica == first.replica == 0
        assert second.reason == "sticky"

    def test_sticky_disabled_follows_prefix(self):
        policy = PrefixAffinityPolicy(sticky=False)
        index = RouterPrefixIndex(replicas=2, block_size=2)
        index.observe(0, [1, 2])
        index.observe(1, [1, 2, 3, 4])
        snaps = [snap(0), snap(1)]
        decision = policy.choose(request([1, 2, 3, 4], session_id="s0"), snaps, index)
        assert decision.replica == 1

    def test_spill_when_owner_saturated(self):
        policy = PrefixAffinityPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=2)
        index.observe(0, [1, 2, 3, 4])
        # Owner (replica 0) has no free slot and a queue; replica 1 idle.
        snaps = [snap(0, load=6, free_slots=0, queue_depth=2, active=4), snap(1, load=1)]
        decision = policy.choose(request([1, 2, 3, 4]), snaps, index)
        assert decision.replica == 1
        assert decision.reason == "spill"

    def test_no_spill_when_everyone_is_busy(self):
        """Spill needs a strictly less-loaded target; equal load stays put."""
        policy = PrefixAffinityPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=2)
        index.observe(0, [1, 2, 3, 4])
        snaps = [
            snap(0, load=6, free_slots=0, queue_depth=2, active=4),
            snap(1, load=6, free_slots=0, queue_depth=2, active=4),
        ]
        decision = policy.choose(request([1, 2, 3, 4]), snaps, index)
        assert decision.replica == 0
        assert decision.reason == "affinity"

    def test_spilled_session_re_homes(self):
        """After a spill, the session's later turns follow the new replica."""
        policy = PrefixAffinityPolicy()
        index = RouterPrefixIndex(replicas=2, block_size=2)
        index.observe(0, [1, 2])
        saturated = [
            snap(0, load=6, free_slots=0, queue_depth=2, active=4),
            snap(1, load=0),
        ]
        first = policy.choose(request([1, 2], session_id="s"), saturated, index)
        assert first.reason in ("fresh", "affinity", "spill")
        assert first.replica == 1
        relaxed = [snap(0, load=0), snap(1, load=0)]
        second = policy.choose(request([1, 2, 3], session_id="s"), relaxed, index)
        assert second.replica == 1
        assert second.reason == "sticky"


class TestResolveRouting:
    def test_registry_names(self):
        assert set(ROUTING_POLICIES) == {
            "round-robin",
            "least-loaded",
            "prefix-affinity",
        }

    def test_resolves_names_and_instances(self):
        assert isinstance(resolve_routing("least-loaded"), LeastLoadedPolicy)
        assert isinstance(resolve_routing(None), RoundRobinPolicy)
        policy = PrefixAffinityPolicy(sticky=False)
        assert resolve_routing(policy) is policy

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="prefix-affinity"):
            resolve_routing("best-effort")


class TestSnapshotSaturation:
    def test_saturated_needs_no_slots_and_a_queue(self):
        assert snap(0, free_slots=0, queue_depth=1).saturated
        assert not snap(0, free_slots=0, queue_depth=0).saturated
        assert not snap(0, free_slots=1, queue_depth=5).saturated


class TestClusterRouterConstruction:
    def test_replica_validation(self, model):
        with pytest.raises(ValueError):
            ClusterRouter(model, replicas=0)

    def test_replicas_share_the_model_but_not_pools(self, model):
        router = ClusterRouter(model, replicas=3)
        assert router.replicas == 3
        assert all(engine.model is model for engine in router.engines)
        pools = {id(engine.pool) for engine in router.engines}
        assert len(pools) == 3

    def test_dispatch_updates_index_and_counters(self, model, fixed_timer):
        router = ClusterRouter(
            model, replicas=2, routing="prefix-affinity", timer=fixed_timer
        )
        for engine in router.engines:
            engine.begin()
        prompt = np.arange(1, 33)  # two full 16-token blocks
        first = router.dispatch(Request("a", prompt))
        second = router.dispatch(Request("b", prompt))
        assert second.replica == first.replica
        assert second.reason == "affinity"
        assert second.match_blocks == 2
