"""Shared fixtures for the multi-replica cluster serving tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.config import get_config
from repro.nn.model import OPTLanguageModel


@pytest.fixture
def model() -> OPTLanguageModel:
    """Small eval-mode model with deterministic weights."""
    model = OPTLanguageModel(get_config("opt-test"), rng=np.random.default_rng(12345))
    model.eval()
    return model


@pytest.fixture
def fixed_timer():
    """Deterministic monotonic clock advancing 1 ms per reading."""

    class _Timer:
        def __init__(self) -> None:
            self.t = 0.0

        def __call__(self) -> float:
            self.t += 0.001
            return self.t

    return _Timer()
