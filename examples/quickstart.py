"""Quickstart: IterL2Norm as a drop-in layer-normalization replacement.

Run with::

    python examples/quickstart.py

The script normalizes a batch of activation vectors three ways — exact layer
norm, IterL2Norm (the paper's method), and the FISR baseline — in FP32 and
BFloat16, and prints the error of each approximate method against the exact
result, plus the convergence trace of the underlying scalar iteration.
Finally it builds a tiny OPT-style model under a whole-model *precision
policy* (``repro.precision``) — bfloat16 datapath, IterL2Norm normalizer —
the per-model version of what ``python -m repro precision-sweep`` measures
across the full (policy x normalizer) grid.
"""

import numpy as np

from repro import (
    ExactLayerNorm,
    FISRLayerNorm,
    IterL2Norm,
    IterL2NormConfig,
    exact_layernorm,
)
from repro.core.convergence import convergence_report
from repro.eval.reporting import format_table


def main() -> None:
    rng = np.random.default_rng(0)
    d = 768  # the OPT-125M embedding length
    batch = rng.uniform(-1.0, 1.0, size=(64, d))
    reference = exact_layernorm(batch)

    rows = []
    for fmt in ("fp32", "bf16"):
        normalizers = {
            "exact (output cast)": ExactLayerNorm(d, fmt=fmt),
            "IterL2Norm (5 steps)": IterL2Norm(d, IterL2NormConfig(num_steps=5, fmt=fmt)),
            "FISR (1 Newton step)": FISRLayerNorm(d, fmt=fmt),
        }
        for name, normalizer in normalizers.items():
            err = np.abs(normalizer(batch) - reference)
            rows.append(
                {
                    "format": fmt,
                    "method": name,
                    "mean_abs_err": err.mean(),
                    "max_abs_err": err.max(),
                }
            )
    print(format_table(rows, title=f"Layer normalization of {batch.shape[0]} vectors, d={d}"))

    # Peek inside the scalar iteration for one vector (Algorithm 1's core).
    y = batch[0] - batch[0].mean()
    m = float(y @ y)
    report = convergence_report(m, num_steps=8, fmt="fp32")
    print("\nScalar iteration toward a_inf = 1/||y|| for the first vector:")
    print(f"  m = ||y||^2 = {m:.4f}, lambda = {report.lam:.6f}")
    for step, err in enumerate(report.error_trace):
        print(f"  step {step}: |a - a_inf| = {err:.3e}")
    print(
        f"  relative error after {len(report.error_trace) - 1} steps: "
        f"{report.relative_final_error:.3e}"
    )

    # End-to-end precision policy: a bf16 datapath with IterL2Norm swapped
    # in.  (`python -m repro precision-sweep` sweeps the whole grid.)
    from repro.nn.config import get_config
    from repro.nn.generation import generate
    from repro.nn.model import OPTLanguageModel

    model = OPTLanguageModel(get_config("opt-test"), rng=rng, policy="bf16")
    model.replace_layernorm("iterl2norm", fmt="bf16", num_steps=5)
    tokens = generate(model, np.array([1, 2, 3]), max_new_tokens=8, temperature=0.0)
    print(
        f"\nGreedy decode under policy {model.policy.name!r} "
        f"(activations {model.policy.activation_fmt}, "
        f"KV cache {model.policy.kv_cache_fmt}): {tokens.tolist()}"
    )


if __name__ == "__main__":
    main()
