"""Accelerator integration study: how much IterL2Norm hardware does a model need?

Run with::

    python examples/accelerator_integration.py

This example answers the question an accelerator integrator would ask after
reading the paper: if layer normalization moves on-chip, what does it cost
per generated token, and how many macro instances keep up with a target
decoding rate?  It uses:

* :func:`repro.integration.normalization_cost_report` for the per-token cycle
  budget of the OPT-125M and OPT-350M shapes;
* :class:`repro.integration.MacroBackedLayerNorm` to run actual activations
  through the cycle-accurate macro model and confirm the counted cycles;
* :class:`repro.macro.traffic.TrafficModel` for the DRAM traffic and energy
  the on-chip placement removes (the paper's Sec. I motivation).
"""

import numpy as np

from repro.eval.reporting import format_table
from repro.integration import MacroBackedLayerNorm, normalization_cost_report
from repro.macro.traffic import DDR4_CHANNEL, TrafficModel
from repro.nn.config import get_config


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Per-token normalization cost for the paper's two model shapes.
    rows = [
        normalization_cost_report(
            get_config(name), num_steps=5, clock_mhz=100.0, target_tokens_per_second=1e4
        ).as_row()
        for name in ("opt-125m", "opt-350m")
    ]
    print(
        format_table(
            rows,
            title=(
                "IterL2Norm macro cost per generated token "
                "(5 iteration steps, 100 MHz, target 10k tokens/s)"
            ),
        )
    )

    # 2. Run real activations through the macro-backed normalizer and check
    #    the counted cycles against the closed-form model.
    d = 768
    layer = MacroBackedLayerNorm(d, fmt="fp16", num_steps=5)
    tokens = rng.normal(size=(16, d))
    _ = layer(tokens)
    print(
        f"\nMacro-backed LayerNorm: {layer.vectors_normalized} rows of d={d} "
        f"consumed {layer.cycles_consumed} cycles "
        f"({layer.cycles_consumed / layer.vectors_normalized:.1f} cycles/row)"
    )

    # 3. The data-movement argument: what host-side normalization would cost.
    traffic = TrafficModel(interface=DDR4_CHANNEL, macros=4)
    traffic_rows = [traffic.report(d, n, fmt="fp16").as_row() for n in (128, 1024, 8192)]
    print()
    print(
        format_table(
            traffic_rows,
            title="DRAM traffic and energy avoided by normalizing on-chip (d=768, fp16)",
        )
    )


if __name__ == "__main__":
    main()
