"""Hardware macro walkthrough: latency, memory, area, and power reports.

Run with::

    python examples/macro_latency_report.py

The script drives the cycle-approximate IterL2Norm macro simulator on a real
input vector (showing the per-phase cycle breakdown of Sec. IV's sequence),
sweeps the latency over the supported input lengths (Fig. 5), and prints the
synthesis-style memory/area/power reports for the three data formats
(Table II and Fig. 6).
"""

import numpy as np

from repro.eval.latency import FIG5_LENGTHS, latency_sweep
from repro.eval.reporting import format_breakdown, format_table
from repro.eval.synthesis import area_power_breakdowns, synthesis_rows
from repro.macro.simulator import IterL2NormMacro, MacroConfig


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. One normalization on the macro, with the phase-by-phase cycle costs.
    d = 384
    x = rng.uniform(-1.0, 1.0, size=d)
    gamma = rng.uniform(0.8, 1.2, size=d)
    beta = rng.normal(scale=0.1, size=d)
    macro = IterL2NormMacro(MacroConfig(fmt="fp32", num_steps=5))
    result = macro.normalize(x, gamma, beta)
    print(f"Normalizing one d={d} vector on the FP32 macro:")
    for phase, cycles in result.phase_cycles.items():
        print(f"  {phase:<13s} {cycles:4d} cycles")
    print(f"  {'total':<13s} {result.total_cycles:4d} cycles "
          f"({result.total_cycles / 100.0:.2f} us at 100 MHz)")
    print(f"  mean = {result.mean:+.5f}, ||y||^2 = {result.norm_squared:.3f}, "
          f"scale a*sqrt(d) = {result.scale:.5f}\n")

    # 2. Fig. 5: latency vs input length.
    sweep = latency_sweep(lengths=FIG5_LENGTHS, num_steps=5)
    print(format_table(sweep.as_rows(), title="Latency vs input length (5 iteration steps)"))
    print(f"range: {sweep.min_cycles}-{sweep.max_cycles} cycles (paper: 116-227)\n")

    # 3. Table II: synthesis-style report per format.
    print(format_table(synthesis_rows(), title="Synthesis model (Table II)"))
    print()

    # 4. Fig. 6: area/power breakdowns.
    for fmt, parts in area_power_breakdowns().items():
        print(format_breakdown(parts["area"], title=f"{fmt} area breakdown"))
        print(format_breakdown(parts["power"], title=f"{fmt} power breakdown"))
        print()


if __name__ == "__main__":
    main()
