"""LLM-level evaluation: swap layer norm for IterL2Norm in an OPT-style model.

Run with::

    python examples/llm_perplexity_sweep.py [--train-steps N] [--full]

The script reproduces the Table IV workflow on the NumPy substrate:

1. generate the synthetic WikiText-2-like corpus and train a scaled-down
   OPT-style decoder on it;
2. measure the baseline perplexity with exact layer normalization;
3. replace every layer-norm block with IterL2Norm at 3/4/5/10 iteration
   steps (in FP32 and BFloat16) and measure the perplexity again;
4. print the per-configuration perplexity deltas and a short sample of
   generated text to show the swapped model still behaves.
"""

import argparse

import numpy as np

from repro.eval.perplexity import LLMEvalConfig, perplexity_experiment
from repro.eval.reporting import format_table
from repro.nn.generation import generate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-steps", type=int, default=120)
    parser.add_argument(
        "--full", action="store_true", help="run both tasks and both model sizes"
    )
    args = parser.parse_args()

    if args.full:
        config = LLMEvalConfig(train_steps=args.train_steps)
    else:
        config = LLMEvalConfig(
            tasks=("wikitext2-sim",),
            models=("opt-125m-sim",),
            formats=("fp32", "bf16"),
            step_counts=(3, 4, 5, 10),
            train_steps=args.train_steps,
        )

    results = perplexity_experiment(config)
    rows = [row for result in results for row in result.as_rows()]
    print(
        format_table(
            rows,
            columns=["task", "model", "format", "baseline_ppl", "steps", "ppl", "delta"],
            float_format=".4f",
            title="IterL2Norm inside an OPT-style model (Table IV protocol)",
        )
    )

    # Generate a few tokens with the swapped normalizer to show the model is
    # functional end to end (not just a perplexity number).
    from repro.eval.perplexity import prepare_model

    model, dataset, _ = prepare_model("wikitext2-sim", "opt-125m-sim", config)
    model.replace_layernorm("iterl2norm", fmt="fp32", num_steps=5)
    model.eval()
    prompt_text = "the river"
    prompt = dataset.tokenizer.encode(prompt_text)
    tokens = generate(
        model, prompt, max_new_tokens=16, temperature=0.8, top_k=20,
        rng=np.random.default_rng(0),
    )
    print("\nSample generation with IterL2Norm normalization (5 steps, fp32):")
    print(f"  prompt: {prompt_text!r}")
    print(f"  output: {dataset.tokenizer.decode(tokens)!r}")


if __name__ == "__main__":
    main()
