"""Precision study at the OPT embedding lengths (the Table I scenario).

Run with::

    python examples/opt_embedding_precision.py [--trials N]

For each embedding length used by the OPT model family (768 for OPT-125M up
to 12,288 for OPT-175B) this script normalizes random activation vectors with
IterL2Norm and with the fast-inverse-square-root baseline, reports the
mean/max absolute error of each, and prints which method wins each length —
the experiment behind the paper's claim that IterL2Norm outperforms FISR in
most FP32 configurations.
"""

import argparse

from repro.eval.precision import OPT_LENGTHS, method_comparison
from repro.eval.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials", type=int, default=300, help="random vectors per length (paper: 1000)"
    )
    parser.add_argument(
        "--formats", nargs="+", default=["fp32", "bf16"], help="formats to evaluate"
    )
    args = parser.parse_args()

    rows = method_comparison(
        lengths=OPT_LENGTHS, formats=tuple(args.formats), trials=args.trials
    )
    print(
        format_table(
            rows,
            columns=[
                "format",
                "d",
                "iterl2norm_mean",
                "iterl2norm_max",
                "fisr_mean",
                "fisr_max",
                "winner",
            ],
            title=(
                "IterL2Norm vs FISR on OPT embedding lengths "
                f"({args.trials} uniform vectors per point)"
            ),
        )
    )
    for fmt in args.formats:
        fmt_rows = [r for r in rows if r["format"] == fmt]
        wins = sum(1 for r in fmt_rows if r["winner"] == "iterl2norm")
        print(
            f"{fmt}: IterL2Norm has lower average error in {wins} of {len(fmt_rows)} "
            "embedding lengths"
        )


if __name__ == "__main__":
    main()
