"""Software emulation of IEEE-754-style floating-point formats.

The paper evaluates IterL2Norm in FP32, FP16, and BFloat16.  NumPy provides
native ``float32`` and ``float16`` but no bfloat16, and the hardware macro
operates on arbitrary (exponent, mantissa) splits.  This package provides:

* :class:`~repro.fpformats.spec.FloatFormat` — a declarative description of a
  binary floating-point format (exponent bits, mantissa bits, bias).
* :mod:`~repro.fpformats.bitops` — bit-level encode/decode between Python
  floats and the integer bit patterns of a format, plus exponent/significand
  extraction (the macro's initializer reads the exponent field directly).
* :mod:`~repro.fpformats.quantize` — round-to-nearest-even quantization of
  NumPy arrays to a target format, the workhorse used to emulate
  format-limited arithmetic.
* :mod:`~repro.fpformats.arithmetic` — format-aware arithmetic helpers that
  quantize after every operation, mimicking a datapath whose registers hold
  values in the target format.
"""

from repro.fpformats.spec import (
    BFLOAT16,
    FLOAT16,
    FLOAT32,
    FLOAT64,
    FORMATS,
    FloatFormat,
    get_format,
)
from repro.fpformats.bitops import (
    decode_bits,
    encode_bits,
    exponent_field,
    significand_value,
    unbiased_exponent,
)
from repro.fpformats.quantize import quantize, quantization_step, representable
from repro.fpformats.arithmetic import FormatArithmetic

__all__ = [
    "BFLOAT16",
    "FLOAT16",
    "FLOAT32",
    "FLOAT64",
    "FORMATS",
    "FloatFormat",
    "FormatArithmetic",
    "decode_bits",
    "encode_bits",
    "exponent_field",
    "get_format",
    "quantization_step",
    "quantize",
    "representable",
    "significand_value",
    "unbiased_exponent",
]
