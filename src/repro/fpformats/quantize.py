"""Round-to-nearest-even quantization of arrays to an emulated format.

Quantization is the single primitive that turns float64 NumPy math into a
faithful emulation of FP16/BFloat16/FP32 datapaths: every intermediate value
is rounded to the target format before it is used again, exactly as a
hardware register of that width would store it.
"""

from __future__ import annotations

import numpy as np

from repro.fpformats.spec import BFLOAT16, FLOAT32, FLOAT16, FLOAT64, FloatFormat, get_format


def _quantize_via_numpy(x: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Round-trip through a native NumPy dtype (fast path for fp32/fp16)."""
    with np.errstate(over="ignore"):
        return x.astype(dtype).astype(np.float64)


def _quantize_bfloat16(x: np.ndarray) -> np.ndarray:
    """Vectorized bit-twiddling bfloat16 quantization (round-to-nearest-even).

    bfloat16 is the upper half of an IEEE float32, so rounding a float32 to
    bfloat16 is integer arithmetic on its ``uint32`` view: add
    ``0x7FFF + (bit 16)`` and clear the low 16 bits — round-to-nearest with
    ties-to-even, including subnormal boundaries and overflow to infinity
    (IEEE bit patterns order like integers within a sign, and a mantissa
    carry rolls into the exponent exactly as rounding requires).

    Naively going float64 → float32 → bfloat16 would *double round*: a value
    a hair above a bfloat16 tie midpoint can collapse onto the midpoint in
    float32 and then break the tie the wrong way.  The float64 → float32
    step therefore uses **round-to-odd** (truncate toward zero, then set the
    low mantissa bit if anything was dropped), which preserves enough
    information — float32 carries 16 bits beyond bfloat16's mantissa — that
    the final round-to-nearest-even matches direct float64 → bfloat16
    rounding bit-for-bit.  The golden tests pin this against the generic
    ulp-scaling path.
    """
    shape = x.shape
    x = np.atleast_1d(x)
    with np.errstate(over="ignore"):
        f32 = x.astype(np.float32)
    bits = f32.view(np.uint32).copy()
    back = f32.astype(np.float64)

    # Round-to-odd repair of the float64 -> float32 step.  astype rounds to
    # nearest; recover the truncated-toward-zero pattern (one ulp below the
    # nearest result when it overshot the magnitude) and set the sticky bit.
    inexact = np.isfinite(x) & np.isfinite(back) & (back != x)
    overshot = inexact & (np.abs(back) > np.abs(x))
    bits = np.where(overshot, bits - np.uint32(1), bits)
    bits = np.where(inexact, bits | np.uint32(1), bits)

    # RNE to a multiple of 2^16 ulps: bias by half, tie broken by bit 16.
    rounded = bits + np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    out = (rounded & np.uint32(0xFFFF0000)).view(np.float32).astype(np.float64)
    # The carry trick would mangle NaN payloads living in the low bits.
    out = np.where(np.isnan(x), np.nan, out)
    return out.reshape(shape)


def _quantize_generic(x: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Round-to-nearest-even quantization for an arbitrary format.

    Works by scaling each value so its ulp becomes 1.0, rounding with
    :func:`numpy.rint` (which implements ties-to-even), and scaling back.
    Overflow saturates to infinity, matching IEEE round-to-nearest behaviour
    where values at or beyond ``(max_finite + 0.5 ulp)`` become inf.
    """
    out = np.array(x, dtype=np.float64, copy=True)
    finite = np.isfinite(out) & (out != 0.0)
    if not np.any(finite):
        return out

    vals = out[finite]
    mag = np.abs(vals)

    # Unbiased exponent of each magnitude (float64 frexp is exact here).
    _, exp = np.frexp(mag)
    unbiased = exp - 1

    # Clamp to the subnormal range: exponents below min_normal use the fixed
    # subnormal ulp so that gradual underflow rounds correctly.
    if fmt.supports_subnormals:
        effective_exp = np.maximum(unbiased, fmt.min_normal_exponent)
    else:
        effective_exp = unbiased

    ulp = np.exp2(effective_exp.astype(np.float64) - fmt.mantissa_bits)
    quantized = np.rint(vals / ulp) * ulp

    if not fmt.supports_subnormals:
        too_small = np.abs(quantized) < fmt.min_positive_normal
        quantized = np.where(too_small, 0.0, quantized)

    # Rounding may bump a value into the next binade; recompute overflow after.
    max_finite = fmt.max_finite
    overflow_threshold = max_finite + 0.5 * np.exp2(
        float(fmt.max_normal_exponent - fmt.mantissa_bits)
    )
    overflowed = np.abs(quantized) >= overflow_threshold
    quantized = np.where(overflowed, np.sign(vals) * np.inf, quantized)
    # Values between max_finite and the threshold round down to max_finite.
    saturate = (~overflowed) & (np.abs(quantized) > max_finite)
    quantized = np.where(saturate, np.sign(vals) * max_finite, quantized)

    out[finite] = quantized
    return out


def quantize(
    values: np.ndarray | float, fmt: FloatFormat | str
) -> np.ndarray | float:
    """Quantize values to ``fmt`` using round-to-nearest-even.

    Scalars in, scalar (Python float) out; arrays in, float64 arrays out.
    ``fp64`` quantization is the identity.  ``fp32`` and ``fp16`` use native
    NumPy dtypes (bit-exact and fast); every other format goes through the
    generic ulp-scaling path.
    """
    fmt = get_format(fmt)
    scalar = np.isscalar(values) or np.ndim(values) == 0
    x = np.asarray(values, dtype=np.float64)

    if fmt == FLOAT64:
        result = np.array(x, copy=True)
    elif fmt == FLOAT32:
        result = _quantize_via_numpy(x, np.dtype(np.float32))
    elif fmt == FLOAT16:
        result = _quantize_via_numpy(x, np.dtype(np.float16))
    elif fmt == BFLOAT16:
        result = _quantize_bfloat16(x)
    else:
        result = _quantize_generic(x, fmt)

    if scalar:
        return float(result.reshape(()))
    return result


def quantization_step(values: np.ndarray | float, fmt: FloatFormat | str) -> np.ndarray:
    """Return the ulp (unit in the last place) of each value in ``fmt``.

    Useful for precision analyses: the worst-case rounding error of a single
    quantization is half an ulp.  Zero reports the format's minimum positive
    step — the distance to the nearest non-zero representable value (the
    subnormal spacing, or the smallest normal itself when the format
    flushes subnormals) — not the ulp of 1.0.
    """
    fmt = get_format(fmt)
    x = np.atleast_1d(np.asarray(values, dtype=np.float64))
    mag = np.abs(x)
    _, exp = np.frexp(np.where(mag > 0, mag, 1.0))
    unbiased = np.maximum(exp - 1, fmt.min_normal_exponent)
    ulp = np.exp2(unbiased.astype(np.float64) - fmt.mantissa_bits)
    ulp = np.where(mag > 0, ulp, fmt.min_positive_subnormal)
    if np.ndim(values) == 0:
        return ulp.reshape(())
    return ulp.reshape(np.shape(values))


def representable(values: np.ndarray | float, fmt: FloatFormat | str) -> np.ndarray:
    """Return a boolean mask of values exactly representable in ``fmt``."""
    fmt = get_format(fmt)
    x = np.asarray(values, dtype=np.float64)
    q = np.asarray(quantize(x, fmt))
    same = (q == x) | (np.isnan(q) & np.isnan(x))
    if np.ndim(values) == 0:
        return same.reshape(())
    return same
