"""Bit-level operations on emulated floating-point formats.

The IterL2Norm initializer (Eq. 6 of the paper) and update-rate rule (Eq. 10)
read the raw exponent field of ``m = ||y||^2`` and manipulate it with integer
adds and shifts.  The FISR baseline manipulates the whole bit pattern.  This
module provides the encode/decode primitives both of them need, for any
:class:`~repro.fpformats.spec.FloatFormat`.

All functions accept scalars or NumPy arrays and are fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.fpformats.spec import FloatFormat, get_format
from repro.fpformats.quantize import quantize


def encode_bits(values: np.ndarray | float, fmt: FloatFormat | str) -> np.ndarray:
    """Encode values into the integer bit pattern of ``fmt``.

    Values are first quantized (round-to-nearest-even) into the format, then
    packed as ``sign | exponent | mantissa`` into an unsigned 64-bit integer
    array.  Infinities and NaNs map to the format's reserved exponent field.
    """
    fmt = get_format(fmt)
    x = quantize(np.asarray(values, dtype=np.float64), fmt)
    x = np.atleast_1d(x)

    sign = (np.signbit(x)).astype(np.uint64)
    out = np.zeros(x.shape, dtype=np.uint64)

    finite = np.isfinite(x)
    nan = np.isnan(x)
    inf = np.isinf(x)

    mag = np.abs(x)
    # Decompose |x| = frac * 2**exp with frac in [0.5, 1).
    with np.errstate(divide="ignore", invalid="ignore"):
        frac, exp = np.frexp(np.where(finite & (mag > 0), mag, 1.0))
    # Convert to significand in [1, 2): significand = 2*frac, exponent = exp-1.
    significand = 2.0 * frac
    unbiased = exp - 1

    exp_field = unbiased + fmt.bias
    normal = finite & (mag > 0) & (exp_field >= 1)
    subnormal = finite & (mag > 0) & (exp_field < 1)

    mant_scale = float(1 << fmt.mantissa_bits)
    mant_normal = np.rint((significand - 1.0) * mant_scale).astype(np.uint64)
    # Rounding (significand - 1) can produce a carry into the exponent.
    carry = mant_normal >= (1 << fmt.mantissa_bits)
    mant_normal = np.where(carry, 0, mant_normal)
    exp_field = np.where(carry, exp_field + 1, exp_field)

    # Subnormals store mantissa = |x| / 2**(min_normal_exponent - mantissa_bits).
    sub_unit = fmt.min_positive_subnormal
    sub_ratio = np.divide(
        mag, sub_unit, out=np.zeros_like(mag), where=subnormal
    )
    mant_sub = np.rint(sub_ratio).astype(np.uint64)
    sub_carry = mant_sub >= (1 << fmt.mantissa_bits)

    exp_bits = np.zeros(x.shape, dtype=np.uint64)
    mant_bits = np.zeros(x.shape, dtype=np.uint64)

    exp_bits = np.where(normal, exp_field.astype(np.int64), exp_bits.astype(np.int64))
    mant_bits = np.where(normal, mant_normal, mant_bits)

    exp_bits = np.where(subnormal & sub_carry, 1, exp_bits)
    mant_bits = np.where(subnormal & sub_carry, 0, mant_bits)
    exp_bits = np.where(subnormal & ~sub_carry, 0, exp_bits)
    mant_bits = np.where(subnormal & ~sub_carry, mant_sub, mant_bits)

    exp_bits = np.where(inf, fmt.max_exponent_field, exp_bits)
    mant_bits = np.where(inf, 0, mant_bits)
    exp_bits = np.where(nan, fmt.max_exponent_field, exp_bits)
    mant_bits = np.where(nan, 1 << (fmt.mantissa_bits - 1), mant_bits)

    exp_bits = exp_bits.astype(np.uint64)
    mant_bits = mant_bits.astype(np.uint64)

    out = (
        (sign << np.uint64(fmt.exponent_bits + fmt.mantissa_bits))
        | (exp_bits << np.uint64(fmt.mantissa_bits))
        | mant_bits
    )
    if np.isscalar(values) or np.ndim(values) == 0:
        return out.reshape(())
    return out.reshape(np.shape(values))


def decode_bits(bits: np.ndarray | int, fmt: FloatFormat | str) -> np.ndarray:
    """Decode integer bit patterns of ``fmt`` back into float64 values."""
    fmt = get_format(fmt)
    b = np.atleast_1d(np.asarray(bits, dtype=np.uint64))

    mant_mask = np.uint64((1 << fmt.mantissa_bits) - 1)
    exp_mask = np.uint64(fmt.max_exponent_field)

    mant = (b & mant_mask).astype(np.float64)
    exp_field = ((b >> np.uint64(fmt.mantissa_bits)) & exp_mask).astype(np.int64)
    sign = ((b >> np.uint64(fmt.exponent_bits + fmt.mantissa_bits)) & np.uint64(1)).astype(
        np.float64
    )
    sign_mul = 1.0 - 2.0 * sign

    mant_scale = float(1 << fmt.mantissa_bits)

    normal = (exp_field >= 1) & (exp_field < fmt.max_exponent_field)
    subnormal = exp_field == 0
    special = exp_field == fmt.max_exponent_field

    value = np.zeros(b.shape, dtype=np.float64)
    value = np.where(
        normal,
        sign_mul * (1.0 + mant / mant_scale) * np.exp2(exp_field - fmt.bias),
        value,
    )
    value = np.where(
        subnormal,
        sign_mul * (mant / mant_scale) * np.exp2(fmt.min_normal_exponent),
        value,
    )
    value = np.where(special & (mant == 0), sign_mul * np.inf, value)
    value = np.where(special & (mant != 0), np.nan, value)

    if np.ndim(bits) == 0:
        return value.reshape(())
    return value.reshape(np.shape(bits))


def exponent_field(values: np.ndarray | float, fmt: FloatFormat | str) -> np.ndarray:
    """Return the raw (biased) exponent field ``E(x)`` of each value.

    This is the quantity the paper's initializer reads from ``m``: for a
    normal value, ``E(x) = floor(log2 |x|) + bias``.  Zeros and subnormals
    return a field of 0, matching the hardware register contents.
    """
    fmt = get_format(fmt)
    bits = np.atleast_1d(encode_bits(values, fmt))
    field = ((bits >> np.uint64(fmt.mantissa_bits)) & np.uint64(fmt.max_exponent_field)).astype(
        np.int64
    )
    if np.ndim(values) == 0:
        return field.reshape(())
    return field.reshape(np.shape(values))


def unbiased_exponent(values: np.ndarray | float, fmt: FloatFormat | str) -> np.ndarray:
    """Return the unbiased exponent ``E(x) - bias`` of each value."""
    fmt = get_format(fmt)
    return exponent_field(values, fmt) - fmt.bias


def significand_value(values: np.ndarray | float, fmt: FloatFormat | str) -> np.ndarray:
    """Return the significand of each value, in ``[1, 2)`` for normals.

    Subnormals return their fractional significand in ``(0, 1)``; zero
    returns 0.
    """
    fmt = get_format(fmt)
    x = np.atleast_1d(quantize(np.asarray(values, dtype=np.float64), fmt))
    exp = unbiased_exponent(x, fmt)
    with np.errstate(divide="ignore", invalid="ignore"):
        sig = np.abs(x) / np.exp2(exp.astype(np.float64))
    sig = np.where(x == 0, 0.0, sig)
    if np.ndim(values) == 0:
        return sig.reshape(())
    return sig.reshape(np.shape(values))
