"""Declarative floating-point format specifications.

A :class:`FloatFormat` captures everything the rest of the library needs to
emulate a binary floating-point format: the exponent width, the mantissa
(fraction) width, and the exponent bias.  The paper uses three formats —
FP32, FP16, and BFloat16 — but the IterL2Norm algorithm itself only relies on
the bias and the ability to read an exponent field (Eq. 6 and Eq. 10), so the
spec is kept fully generic and custom formats can be declared freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FloatFormat:
    """A binary floating-point format ``(sign, exponent, mantissa)``.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"fp32"``.
    exponent_bits:
        Width of the exponent field in bits.
    mantissa_bits:
        Width of the stored fraction field in bits (excluding the implicit
        leading one of normal numbers).
    supports_subnormals:
        Whether gradual underflow is emulated.  All paper formats support
        subnormals; turning this off clamps tiny values to zero.
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    supports_subnormals: bool = True
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError(f"exponent_bits must be >= 2, got {self.exponent_bits}")
        if self.mantissa_bits < 1:
            raise ValueError(f"mantissa_bits must be >= 1, got {self.mantissa_bits}")
        if self.exponent_bits + self.mantissa_bits + 1 > 64:
            raise ValueError("formats wider than 64 bits are not supported")

    @property
    def bias(self) -> int:
        """IEEE exponent bias, ``2**(exponent_bits-1) - 1``."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def total_bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def max_exponent_field(self) -> int:
        """Largest raw exponent field value (reserved for inf/NaN)."""
        return (1 << self.exponent_bits) - 1

    @property
    def max_normal_exponent(self) -> int:
        """Largest unbiased exponent of a finite normal number."""
        return self.max_exponent_field - 1 - self.bias

    @property
    def min_normal_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def max_finite(self) -> float:
        """Largest representable finite magnitude."""
        significand = 2.0 - 2.0 ** (-self.mantissa_bits)
        return significand * 2.0**self.max_normal_exponent

    @property
    def min_positive_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0**self.min_normal_exponent

    @property
    def min_positive_subnormal(self) -> float:
        """Smallest positive subnormal magnitude (or normal, if disabled)."""
        if not self.supports_subnormals:
            return self.min_positive_normal
        return 2.0 ** (self.min_normal_exponent - self.mantissa_bits)

    @property
    def machine_epsilon(self) -> float:
        """Spacing between 1.0 and the next larger representable value."""
        return 2.0**-self.mantissa_bits

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}(e{self.exponent_bits}m{self.mantissa_bits}, "
            f"bias={self.bias})"
        )


FLOAT64 = FloatFormat(
    "fp64", exponent_bits=11, mantissa_bits=52, description="IEEE 754 binary64"
)
FLOAT32 = FloatFormat(
    "fp32", exponent_bits=8, mantissa_bits=23, description="IEEE 754 binary32"
)
FLOAT16 = FloatFormat(
    "fp16", exponent_bits=5, mantissa_bits=10, description="IEEE 754 binary16"
)
BFLOAT16 = FloatFormat(
    "bf16", exponent_bits=8, mantissa_bits=7, description="Google brain float16"
)
# 8-bit formats (OCP FP8): not evaluated by the paper, exposed for the
# extension experiment that pushes IterL2Norm below 16 bits.
FLOAT8_E4M3 = FloatFormat(
    "fp8_e4m3", exponent_bits=4, mantissa_bits=3, description="OCP FP8 E4M3 (no saturation mode)"
)
FLOAT8_E5M2 = FloatFormat(
    "fp8_e5m2", exponent_bits=5, mantissa_bits=2, description="OCP FP8 E5M2"
)

#: Registry of the named formats used throughout the library.
FORMATS: dict[str, FloatFormat] = {
    "fp64": FLOAT64,
    "fp32": FLOAT32,
    "fp16": FLOAT16,
    "bf16": BFLOAT16,
    "bfloat16": BFLOAT16,
    "float64": FLOAT64,
    "float32": FLOAT32,
    "float16": FLOAT16,
    "fp8_e4m3": FLOAT8_E4M3,
    "fp8_e5m2": FLOAT8_E5M2,
    "e4m3": FLOAT8_E4M3,
    "e5m2": FLOAT8_E5M2,
}


def get_format(fmt: str | FloatFormat) -> FloatFormat:
    """Resolve a format name or pass a :class:`FloatFormat` through.

    Raises
    ------
    KeyError
        If ``fmt`` is a string that does not name a registered format.
    """
    if isinstance(fmt, FloatFormat):
        return fmt
    key = fmt.lower()
    if key not in FORMATS:
        known = ", ".join(sorted(set(FORMATS)))
        raise KeyError(f"unknown float format {fmt!r}; known formats: {known}")
    return FORMATS[key]
