"""Format-aware arithmetic: every operation rounds to the target format.

The IterL2Norm macro's Mul and Add blocks are "tailored to each data format"
(Sec. IV of the paper): their outputs are registers of the format's width, so
each arithmetic result is rounded before being consumed by the next stage.
:class:`FormatArithmetic` emulates this by quantizing the result of every
elementary operation.  Reductions mirror the macro's adder-tree structure so
the accumulation order — and hence the rounding error — matches the hardware
rather than NumPy's pairwise ``sum``.
"""

from __future__ import annotations

import numpy as np

from repro.fpformats.quantize import quantize
from repro.fpformats.spec import FloatFormat, get_format


class FormatArithmetic:
    """Arithmetic wrapper that quantizes after every operation.

    Parameters
    ----------
    fmt:
        Target format (name or :class:`FloatFormat`).
    tree_fan_in:
        Fan-in of the emulated adder trees used by :meth:`tree_sum`.  The
        macro uses 8-input adder trees; the default matches that.
    """

    def __init__(self, fmt: FloatFormat | str, tree_fan_in: int = 8) -> None:
        if tree_fan_in < 2:
            raise ValueError(f"tree_fan_in must be >= 2, got {tree_fan_in}")
        self.fmt = get_format(fmt)
        self.tree_fan_in = int(tree_fan_in)

    # -- elementary operations -------------------------------------------------
    def cast(self, x: np.ndarray | float) -> np.ndarray | float:
        """Quantize a value into the working format."""
        return quantize(x, self.fmt)

    def add(self, a, b):
        """Format-rounded addition."""
        return quantize(np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64), self.fmt)

    def sub(self, a, b):
        """Format-rounded subtraction."""
        return quantize(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64), self.fmt)

    def mul(self, a, b):
        """Format-rounded multiplication."""
        return quantize(np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64), self.fmt)

    def fma(self, a, b, c):
        """Multiply-add with rounding after each of the two operations.

        The macro has separate Mul and Add blocks (no fused MAC), so the
        product is rounded before the addition.
        """
        return self.add(self.mul(a, b), c)

    # -- reductions -------------------------------------------------------------
    def tree_sum(self, values: np.ndarray, axis: int | None = None) -> np.ndarray | float:
        """Sum using balanced k-ary adder trees with per-level rounding.

        This mirrors the Add block of the macro: values are grouped into
        ``tree_fan_in``-wide chunks whose sums are rounded, then those partial
        sums are reduced the same way until a single value remains.  The
        reduction is vectorized across the non-reduced axes, so batched rows
        (e.g. every token of a transformer activation) reduce in one pass.
        """
        x = np.asarray(values, dtype=np.float64)
        if axis is None:
            reduced = self._tree_reduce_last_axis(
                np.atleast_2d(np.asarray(quantize(x.reshape(-1), self.fmt)))
            )
            return float(reduced.reshape(()))
        x = np.moveaxis(x, axis, -1)
        out_shape = x.shape[:-1]
        flat = np.asarray(quantize(x.reshape(-1, x.shape[-1]), self.fmt), dtype=np.float64)
        result = self._tree_reduce_last_axis(flat)
        if out_shape == ():
            return float(result.reshape(()))
        return result.reshape(out_shape)

    def _tree_reduce_last_axis(self, rows: np.ndarray) -> np.ndarray:
        """Reduce the last axis of a 2-D array level by level (vectorized)."""
        if rows.shape[-1] == 0:
            return np.zeros(rows.shape[0], dtype=np.float64)
        current = rows
        k = self.tree_fan_in
        while current.shape[-1] > 1:
            pad = (-current.shape[-1]) % k
            if pad:
                current = np.concatenate(
                    [current, np.zeros((current.shape[0], pad))], axis=-1
                )
            grouped = current.reshape(current.shape[0], -1, k)
            current = np.asarray(
                quantize(grouped.sum(axis=-1), self.fmt), dtype=np.float64
            )
            current = current.reshape(current.shape[0], -1)
        return current[:, 0]

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Inner product: element-wise rounded products, then a tree sum."""
        products = self.mul(a, b)
        return float(self.tree_sum(np.asarray(products)))

    def sum_of_squares(self, a: np.ndarray) -> float:
        """``||a||^2`` computed through the format-rounded datapath."""
        return self.dot(a, a)

    def mean(self, a: np.ndarray) -> float:
        """Mean computed as tree-sum followed by a rounded multiply by 1/d.

        The macro multiplies by a pre-stored ``1/d`` constant (itself stored
        in the working format) rather than dividing.
        """
        a = np.asarray(a, dtype=np.float64)
        total = self.tree_sum(a)
        inv_d = self.cast(1.0 / a.size)
        return float(self.mul(total, inv_d))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FormatArithmetic({self.fmt.name}, fan_in={self.tree_fan_in})"
