"""Minimal training loop for the NumPy transformer substrate.

Table IV of the paper evaluates IterL2Norm inside *pre-trained* OPT models.
Since no pre-trained weights are available offline, the reproduction trains
small OPT-style models on the synthetic corpora with this trainer first, and
only then performs the normalizer swap.  The trainer is deliberately small:
seeded batching over fixed-length token windows, Adam updates, optional
gradient clipping, and a loss history for the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.model import OPTLanguageModel
from repro.nn.optimizer import Adam


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run.

    Attributes
    ----------
    num_steps:
        Number of optimizer updates.
    batch_size:
        Sequences per batch.
    seq_len:
        Window length of each training sequence.
    learning_rate:
        Adam learning rate.
    grad_clip:
        Global-norm gradient clipping threshold (``None`` disables it).
    seed:
        Seed of the batching generator.
    log_every:
        Record the loss every this many steps.
    """

    num_steps: int = 200
    batch_size: int = 8
    seq_len: int = 64
    learning_rate: float = 3e-3
    grad_clip: float | None = 1.0
    seed: int = 0
    log_every: int = 10

    def __post_init__(self) -> None:
        if self.num_steps < 1 or self.batch_size < 1 or self.seq_len < 2:
            raise ValueError("num_steps, batch_size must be >= 1 and seq_len >= 2")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")


@dataclass
class TrainingResult:
    """Outcome of a training run: loss curve and final loss."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("training produced no recorded losses")
        return self.losses[-1]

    @property
    def initial_loss(self) -> float:
        if not self.losses:
            raise ValueError("training produced no recorded losses")
        return self.losses[0]


class Trainer:
    """Train an :class:`~repro.nn.model.OPTLanguageModel` on a token stream."""

    def __init__(self, model: OPTLanguageModel, config: TrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)

    def sample_batch(self, tokens: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Draw a batch of (input, target) windows from a 1-D token stream."""
        tokens = np.asarray(tokens, dtype=np.int64)
        seq_len = self.config.seq_len
        if tokens.size < seq_len + 1:
            raise ValueError(
                f"token stream of length {tokens.size} is shorter than seq_len+1 "
                f"({seq_len + 1})"
            )
        max_start = tokens.size - seq_len - 1
        starts = self._rng.integers(0, max_start + 1, size=self.config.batch_size)
        inputs = np.stack([tokens[s : s + seq_len] for s in starts])
        targets = np.stack([tokens[s + 1 : s + seq_len + 1] for s in starts])
        return inputs, targets

    def _clip_gradients(self) -> None:
        clip = self.config.grad_clip
        if clip is None:
            return
        total = 0.0
        params = self.model.parameters()
        for p in params:
            total += float(np.sum(p.grad * p.grad))
        norm = np.sqrt(total)
        if norm > clip:
            scale = clip / (norm + 1e-12)
            for p in params:
                p.grad *= scale

    def train(self, tokens: np.ndarray) -> TrainingResult:
        """Run the configured number of steps over the token stream."""
        self.model.train()
        result = TrainingResult()
        for step in range(self.config.num_steps):
            inputs, targets = self.sample_batch(tokens)
            self.optimizer.zero_grad()
            loss, _ = self.model.loss(inputs, targets)
            self.model.backward()
            self._clip_gradients()
            self.optimizer.step()
            if step % self.config.log_every == 0 or step == self.config.num_steps - 1:
                result.losses.append(float(loss))
        self.model.eval()
        return result
