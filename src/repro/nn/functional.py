"""Stateless neural-network functions and their gradients.

Everything here operates on float64 NumPy arrays.  Gradients are implemented
explicitly (matching the module-level backward passes) and are verified by
finite differences in the test suite.
"""

from __future__ import annotations

import numpy as np

#: sqrt(2/pi), used by the tanh approximation of GELU (the variant OPT uses
#: is the exact erf GELU; we implement both).
_GELU_CONST = np.sqrt(2.0 / np.pi)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def det_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax whose result does not depend on masked-out padding.

    :func:`softmax` computes its denominator with :func:`numpy.sum`, whose
    pairwise accumulation *groups addends by row length*: a row of ``n``
    real weights followed by trailing ``exp(-inf) = 0`` entries (a causally
    masked prefill row) can sum to a different last ulp than the same ``n``
    weights alone (an incremental decode row).  The KV-cached and ragged
    decode paths need those two to be bit-identical, so this variant
    accumulates the denominator strictly left-to-right (via ``cumsum``):
    appending zeros then never changes the sum, making the result a pure
    function of the unmasked prefix — whatever chunking produced it.  The
    test suite asserts this invariance.

    Training and the plain forward keep using :func:`softmax`; only the
    deterministic inference paths route through this function.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    denom = np.cumsum(exp, axis=axis).take(indices=[-1], axis=axis)
    return exp / denom


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def softmax_backward(grad_output: np.ndarray, softmax_output: np.ndarray, axis: int = -1) -> np.ndarray:
    """Gradient of softmax given the upstream gradient and its own output."""
    s = softmax_output
    inner = np.sum(grad_output * s, axis=axis, keepdims=True)
    return s * (grad_output - inner)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit (the activation OPT's FFN uses)."""
    return np.maximum(x, 0.0)


def relu_backward(grad_output: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Gradient of ReLU with respect to its input."""
    return grad_output * (x > 0.0)


def gelu(x: np.ndarray, approximate: bool = True) -> np.ndarray:
    """Gaussian error linear unit.

    ``approximate=True`` uses the tanh approximation (cheap and the common
    hardware-friendly choice); ``False`` uses the exact erf formulation.
    """
    x = np.asarray(x, dtype=np.float64)
    if approximate:
        return 0.5 * x * (1.0 + np.tanh(_GELU_CONST * (x + 0.044715 * x**3)))
    from scipy.special import erf  # local import: scipy optional elsewhere

    return 0.5 * x * (1.0 + erf(x / np.sqrt(2.0)))


def gelu_backward(grad_output: np.ndarray, x: np.ndarray, approximate: bool = True) -> np.ndarray:
    """Gradient of GELU with respect to its input."""
    x = np.asarray(x, dtype=np.float64)
    if approximate:
        inner = _GELU_CONST * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        sech2 = 1.0 - tanh_inner**2
        d_inner = _GELU_CONST * (1.0 + 3 * 0.044715 * x**2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
        return grad_output * grad
    from scipy.special import erf

    phi = np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi)
    grad = 0.5 * (1.0 + erf(x / np.sqrt(2.0))) + x * phi
    return grad_output * grad


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer indices into ``num_classes`` columns."""
    indices = np.asarray(indices, dtype=np.int64)
    if np.any(indices < 0) or np.any(indices >= num_classes):
        raise ValueError("indices out of range for one_hot encoding")
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray, ignore_index: int | None = None
) -> tuple[float, np.ndarray]:
    """Token-level cross-entropy loss and its gradient with respect to logits.

    Parameters
    ----------
    logits:
        Array of shape ``(..., vocab)``.
    targets:
        Integer array of shape ``(...,)`` with the target class per position.
    ignore_index:
        Optional target value to exclude from the loss (padding).

    Returns
    -------
    (loss, grad):
        ``loss`` is the mean negative log-likelihood over non-ignored
        positions; ``grad`` has the same shape as ``logits`` and is already
        divided by the number of counted positions.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.shape[:-1] != targets.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match logits shape "
            f"{logits.shape[:-1]}"
        )
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones(flat_targets.shape, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        return 0.0, np.zeros_like(logits)

    logp = log_softmax(flat_logits, axis=-1)
    safe_targets = np.where(mask, flat_targets, 0)
    picked = logp[np.arange(flat_targets.size), safe_targets]
    loss = float(-np.sum(picked[mask]) / count)

    probs = np.exp(logp)
    grad = probs.copy()
    grad[np.arange(flat_targets.size), safe_targets] -= 1.0
    grad[~mask] = 0.0
    grad /= count
    return loss, grad.reshape(logits.shape)


def perplexity_from_loss(mean_nll: float) -> float:
    """Perplexity ``exp(mean negative log-likelihood)``."""
    return float(np.exp(mean_nll))


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive causal attention mask: 0 on/below the diagonal, -inf above."""
    if seq_len < 1:
        raise ValueError(f"seq_len must be >= 1, got {seq_len}")
    mask = np.triu(np.full((seq_len, seq_len), -np.inf), k=1)
    return mask


def causal_mask_offset(new_len: int, total_len: int) -> np.ndarray:
    """Additive causal mask for incremental decoding with a KV cache.

    Row ``i`` corresponds to the token at absolute position
    ``total_len - new_len + i`` and may attend to every key at positions
    ``0 .. total_len - new_len + i`` (all cached keys plus itself and the
    earlier tokens of the current chunk).

    ``causal_mask_offset(s, s)`` equals :func:`causal_mask` of size ``s``.
    """
    if new_len < 1 or total_len < new_len:
        raise ValueError(
            f"need 1 <= new_len <= total_len, got new_len={new_len}, "
            f"total_len={total_len}"
        )
    past = total_len - new_len
    rows = np.arange(new_len)[:, None] + past
    cols = np.arange(total_len)[None, :]
    return np.where(cols <= rows, 0.0, -np.inf)


def ragged_attention_mask(
    new_lens: np.ndarray, past_lens: np.ndarray
) -> np.ndarray:
    """Additive attention mask for a left-padded ragged batch.

    Row ``r`` of the batch holds ``new_lens[r]`` real new tokens, right-
    aligned into a chunk of ``max(new_lens)`` positions, attending over
    ``past_lens[r]`` cached positions plus the new chunk — keys right-
    aligned into ``max(past_lens + new_lens)`` columns.  The returned array
    has shape ``(batch, max_new, max_total)``: ``0.0`` where the query may
    attend (its own row's cached keys and the causal prefix of the new
    chunk), ``-inf`` on pad keys and future positions.  Pad *query* rows
    are left fully unmasked — their outputs are garbage by construction and
    every consumer discards them; leaving them unmasked keeps the softmax
    finite.

    This dense mask defines the semantics of the ragged batched forward.
    The production kernel (:meth:`MultiHeadSelfAttention.forward_ragged
    <repro.nn.attention.MultiHeadSelfAttention.forward_ragged>`) applies
    the *same* masking by slicing pad keys off before the contraction
    instead of adding ``-inf``: mathematically identical, but bit-exact
    with the unpadded computation, which an additive mask is not (padding
    the softmax axis regroups NumPy's pairwise summation and can move the
    result by an ulp).
    """
    new_lens = np.asarray(new_lens, dtype=np.int64)
    past_lens = np.asarray(past_lens, dtype=np.int64)
    if new_lens.shape != past_lens.shape or new_lens.ndim != 1:
        raise ValueError(
            f"new_lens/past_lens must be matching 1-D arrays, got "
            f"{new_lens.shape} and {past_lens.shape}"
        )
    if np.any(new_lens < 1) or np.any(past_lens < 0):
        raise ValueError("need new_lens >= 1 and past_lens >= 0 per row")
    batch = new_lens.size
    max_new = int(new_lens.max())
    totals = past_lens + new_lens
    max_total = int(totals.max())

    qi = np.arange(max_new)[None, :, None]  # (1, max_new, 1)
    kj = np.arange(max_total)[None, None, :]  # (1, 1, max_total)
    q_pad = (max_new - new_lens)[:, None, None]  # leading pad queries per row
    k_pad = (max_total - totals)[:, None, None]  # leading pad keys per row
    # Absolute position of query qi within its own sequence: past + (qi - q_pad);
    # key kj sits at absolute position kj - k_pad.  Causal: key pos <= query pos.
    query_abs = past_lens[:, None, None] + qi - q_pad
    key_abs = kj - k_pad
    allowed = (kj >= k_pad) & (key_abs <= query_abs)
    allowed = allowed | (qi < q_pad)  # pad queries: unmasked (outputs discarded)
    return np.where(allowed, 0.0, -np.inf)


#: Number of fixed contraction blocks ("atoms") of the blocked ``det_matmul``
#: contract — the LCM of every supported shard count (1, 2, 3, 4, 6, 12), so
#: any such row-parallel split lands exactly on atom boundaries.
DET_ATOMS = 12


def det_block_bounds(k_total: int, blocks: int = DET_ATOMS) -> tuple[int, ...]:
    """The fixed atom boundaries of a length-``k_total`` contraction.

    Atom ``t`` covers the contiguous K-range ``[bounds[t], bounds[t + 1])``
    (possibly empty when ``k_total < blocks``).  Bounds are ``floor(t * K /
    blocks)``, which makes every shard split at ``floor(i * K / N)`` with
    ``N`` dividing ``blocks`` land exactly on an atom boundary:
    ``i * K / N == (i * blocks / N) * K / blocks`` as exact rationals, so
    their floors agree.
    """
    if k_total < 0:
        raise ValueError(f"k_total must be >= 0, got {k_total}")
    return tuple((t * k_total) // blocks for t in range(blocks + 1))


def det_matmul(a: np.ndarray, b: np.ndarray, block: bool = False) -> np.ndarray:
    """Matrix product with a shape-independent accumulation order.

    BLAS matmuls pick different accumulation orders for different operand
    shapes, so ``(X @ W)[i]`` and ``X[i:i+1] @ W`` can differ in the last
    ulp.  The KV-cached decoding path needs single-token results to be
    bit-identical to the full-sequence forward, so it routes every matrix
    product through :func:`numpy.einsum` with ``optimize=False``: each
    output element is then an independent dot product whose summation
    order depends only on the contraction length.  Slower than BLAS, but
    the cached path does O(1) work per token instead of O(seq).

    ``block=True`` engages the **fixed-block accumulation contract**: the
    contraction axis is cut into :data:`DET_ATOMS` contiguous atoms at
    :func:`det_block_bounds`, each atom's partial product is computed by
    the plain einsum kernel, and the partials are summed strictly
    left-to-right starting *from the first non-empty partial* (never from
    a zeros buffer — ``0.0 + (-0.0)`` is ``+0.0``, so seeding with zeros
    could flip a sign bit).  The result is a fixed float summation tree
    that a row-parallel shard split reproduces exactly: shard ``i`` of
    ``N`` (``N`` dividing :data:`DET_ATOMS`) computes the partials of its
    own atoms (:func:`det_matmul_partials`) and
    :func:`det_all_reduce` replays the identical tree, byte for byte, for
    every ``N``.  The row-shardable linears (attention out-projection,
    FFN fc2) use this mode; everything else keeps the plain kernel.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if not block:
        return np.einsum("...ij,...jk->...ik", a, b, optimize=False)
    out = None
    for part in det_matmul_partials(a, b):
        out = part if out is None else np.add(out, part, out=out)
    if out is None:  # K == 0: fall back to the plain (empty-sum) kernel
        return np.einsum("...ij,...jk->...ik", a, b, optimize=False)
    return out


def det_matmul_partials(
    a: np.ndarray, b: np.ndarray, k_start: int = 0, k_total: int | None = None
) -> list[np.ndarray]:
    """Per-atom partial products of the blocked ``det_matmul`` contract.

    ``a``/``b`` hold the contraction slice ``[k_start, k_start + local_k)``
    of a global length-``k_total`` contraction (the unsharded call passes
    the whole operands and the defaults).  Returns one freshly allocated
    partial per non-empty atom inside the slice, in global atom order;
    summing every shard's partials left-to-right (:func:`det_all_reduce`)
    is bit-identical to ``det_matmul(a_full, b_full, block=True)``.

    The slice must cover whole atoms — guaranteed for shard boundaries
    ``floor(i * K / N)`` with ``N`` dividing :data:`DET_ATOMS`, and
    enforced here so a misaligned split fails loudly instead of silently
    changing the summation tree.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    local_k = a.shape[-1]
    if b.shape[-2] != local_k:
        raise ValueError(
            f"contraction mismatch: a has K={local_k}, b has K={b.shape[-2]}"
        )
    if k_total is None:
        k_total = k_start + local_k
    k_end = k_start + local_k
    bounds = det_block_bounds(k_total)
    if k_start not in bounds or k_end not in bounds:
        raise ValueError(
            f"slice [{k_start}, {k_end}) of K={k_total} is not atom-aligned "
            f"(atom bounds: {bounds})"
        )
    parts: list[np.ndarray] = []
    for t in range(DET_ATOMS):
        lo, hi = bounds[t], bounds[t + 1]
        if hi <= lo or hi <= k_start or lo >= k_end:
            continue
        parts.append(
            np.einsum(
                "...ij,...jk->...ik",
                a[..., lo - k_start : hi - k_start],
                b[..., lo - k_start : hi - k_start, :],
                optimize=False,
            )
        )
    return parts


def det_all_reduce(shard_partials) -> np.ndarray:
    """Sum per-shard atom partials in fixed global atom order.

    ``shard_partials`` is a sequence over shards (in shard order) of the
    per-atom partial lists :func:`det_matmul_partials` produced; shard
    order concatenation *is* global atom order because each shard owns a
    contiguous atom range.  The sum runs strictly left-to-right starting
    from a copy of the first partial — the exact summation tree of
    ``det_matmul(..., block=True)``, so the reduced result is byte-equal
    to the unsharded blocked kernel for every shard count.
    """
    out = None
    for parts in shard_partials:
        for part in parts:
            if out is None:
                out = np.array(part, dtype=np.float64, copy=True)
            else:
                out = np.add(out, part, out=out)
    if out is None:
        raise ValueError("det_all_reduce needs at least one partial")
    return out
