"""Model checkpointing: save/load OPT-style models as ``.npz`` archives.

The Table IV reproduction trains its substrate models in-process, but a
downstream user will want to train once and re-evaluate the normalizer swap
many times.  A checkpoint stores the model configuration (so the architecture
can be rebuilt) together with every parameter array from
:meth:`repro.nn.module.Module.state_dict`.

The configuration JSON includes the model's active
:class:`~repro.precision.policy.PrecisionPolicy` (``dataclasses.asdict``
recurses into it), so a model carrying a non-default policy — including a
swapped normalizer — round-trips: loading rebuilds the datapath and
reinstalls the normalizer against the *loaded* gamma/beta.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.nn.config import OPTConfig
from repro.nn.model import OPTLanguageModel

#: Reserved key holding the JSON-encoded configuration inside the archive.
_CONFIG_KEY = "__config_json__"


def save_checkpoint(model: OPTLanguageModel, path: str | Path) -> Path:
    """Save a model's configuration and parameters to ``path`` (``.npz``).

    Returns the path actually written (a ``.npz`` suffix is enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    state = model.state_dict()
    if _CONFIG_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_CONFIG_KEY!r}")
    config_blob = np.frombuffer(
        json.dumps(asdict(model.config)).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **state, **{_CONFIG_KEY: config_blob})
    return path


def load_checkpoint(path: str | Path) -> OPTLanguageModel:
    """Rebuild a model from a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        if _CONFIG_KEY not in archive:
            raise KeyError(f"{path} is not a repro checkpoint (missing config entry)")
        config_dict = json.loads(bytes(archive[_CONFIG_KEY].tobytes()).decode("utf-8"))
        config = OPTConfig(**config_dict)
        state = {
            name: archive[name] for name in archive.files if name != _CONFIG_KEY
        }
    model = OPTLanguageModel(config, rng=np.random.default_rng(0))
    model.load_state_dict(state)
    # load_state_dict marks the weights dirty, so eval() re-quantizes the
    # datapath memo and rebinds the policy's normalizer to the *loaded*
    # gamma/beta rather than the placeholder initialization weights.
    model.eval()
    return model
