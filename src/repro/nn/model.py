"""The OPT-style decoder-only language model and its precision policy.

:class:`OPTLanguageModel` stacks token + positional embeddings, a series of
pre-LN decoder blocks, a final LayerNorm, and a tied output projection.  It
supports full backpropagation (for the small training runs that produce the
Table IV models) and — central to the reproduction —
:meth:`OPTLanguageModel.set_policy`, which applies a
:class:`~repro.precision.policy.PrecisionPolicy`: the evaluation-time
datapath formats (weights / activations / accumulators / KV cache, executed
by the op layer of :mod:`repro.precision.ops`) *and* the normalizer swap
that substitutes every LayerNorm's evaluation path with an approximate
normalizer (IterL2Norm, FISR, LUT, or exact-in-format) while reusing the
trained gamma/beta, exactly as the paper does when it replaces the
normalization blocks of the pre-trained OPT models.
:meth:`OPTLanguageModel.replace_layernorm` remains as sugar deriving a
policy with the normalizer overridden — the policy is the single
attachment mechanism.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.registry import get_normalizer
from repro.nn.block import TransformerDecoderBlock
from repro.nn.config import OPTConfig
from repro.nn.functional import cross_entropy
from repro.nn.kv_cache import KVCache
from repro.nn.layers import Dropout, Embedding, LayerNorm
from repro.nn.module import Module
from repro.precision.ops import PASSTHROUGH_OPS, make_ops
from repro.precision.policy import PrecisionPolicy, get_policy


class OPTLanguageModel(Module):
    """Decoder-only language model with a swappable precision policy.

    Parameters
    ----------
    config:
        An :class:`~repro.nn.config.OPTConfig` describing the architecture
        (including its default precision policy).
    rng:
        Random generator for weight initialization (pass a seeded generator
        for reproducible models).
    policy:
        Optional :class:`~repro.precision.policy.PrecisionPolicy` (or
        registered name) overriding ``config.policy``.
    """

    #: Policy-aware op layer shared by the whole module tree.
    ops = PASSTHROUGH_OPS

    def __init__(
        self,
        config: OPTConfig,
        rng: np.random.Generator | None = None,
        policy: PrecisionPolicy | str | None = None,
    ) -> None:
        rng = rng or np.random.default_rng()
        self.config = config

        self.token_embedding = Embedding(config.vocab_size, config.embed_dim, rng=rng)
        self.position_embedding = Embedding(config.max_position, config.embed_dim, rng=rng)
        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.blocks = [
            TransformerDecoderBlock(
                config.embed_dim, config.num_heads, config.ffn_dim, dropout=config.dropout, rng=rng
            )
            for _ in range(config.num_layers)
        ]
        self.final_norm = LayerNorm(config.embed_dim)
        self._cache_hidden: np.ndarray | None = None
        self._cache_token_ids: np.ndarray | None = None
        #: True when weights may have changed since the last eval() refresh
        #: (set by construction, train(), and load_state_dict()).
        self._weights_dirty = True
        #: Monotonic counter bumped whenever a compiled execution plan built
        #: against this model could go stale (policy swap, weight reload,
        #: train/eval transitions).  Executors compare it to their plan.
        self._plan_version = 0
        self.set_policy(config.policy if policy is None else policy)

    # -- forward -------------------------------------------------------------------
    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Compute next-token logits of shape ``(batch, seq, vocab)``.

        The output projection is tied to the token-embedding matrix, as in
        OPT, so logits are ``hidden @ E^T``.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq), got shape {token_ids.shape}")
        batch, seq = token_ids.shape
        if seq > self.config.max_position:
            raise ValueError(
                f"sequence length {seq} exceeds max_position {self.config.max_position}"
            )

        ops = PASSTHROUGH_OPS if self.training else self.ops
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        if self.training or ops.passthrough:
            # The module path caches the looked-up ids for backward.
            hidden = self.token_embedding(token_ids) + self.position_embedding(positions)
        else:
            if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
                raise ValueError("token id out of range for the embedding table")
            hidden = ops.embed(
                self.token_embedding.weight.data,
                self.position_embedding.weight.data,
                token_ids,
                positions,
            )
        hidden = self.embed_dropout(hidden)
        for block in self.blocks:
            hidden = block(hidden)
        hidden = self.final_norm(hidden)

        self._cache_hidden = hidden
        self._cache_token_ids = token_ids
        return ops.linear(hidden, self.token_embedding.weight.data.T, None)

    def new_kv_cache(self) -> KVCache:
        """An empty KV cache sized for this model's decoder stack."""
        return KVCache.for_model(self)

    def forward_with_cache(
        self, token_ids: np.ndarray, cache: KVCache, last_only: bool = False
    ) -> np.ndarray:
        """Inference-only forward over the *new* tokens using a KV cache.

        ``token_ids`` holds only the positions not yet in ``cache``; their
        absolute positions continue from ``cache.seq_len``.  Returns logits
        of shape ``(batch, new_seq, vocab)`` for the new positions only —
        or ``(batch, 1, vocab)`` with ``last_only``, which skips the output
        projection for all but the final position (the decode loops only
        consume that row, and the vocabulary projection is the most
        expensive matmul in the model).

        The computation is bit-identical to running :meth:`forward` (in eval
        mode, through the deterministic matmul path) on the full prefix and
        slicing out the same positions — the KV-cache regression tests
        assert this exactly.  Gradients are not tracked; the model must be
        in eval mode (dropout and the normalizer swap are eval-time
        behaviours, so a training-mode call would silently diverge).
        """
        if self.training:
            raise RuntimeError(
                "forward_with_cache requires eval mode; call model.eval() first"
            )
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq), got shape {token_ids.shape}")
        if len(cache) != len(self.blocks):
            raise ValueError(
                f"cache has {len(cache)} layers, model has {len(self.blocks)}"
            )
        batch, seq = token_ids.shape
        past = cache.seq_len
        if past + seq > self.config.max_position:
            raise ValueError(
                f"cache length {past} + new tokens {seq} exceeds max_position "
                f"{self.config.max_position}"
            )

        if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
            raise ValueError("token id out of range for the embedding table")

        positions = np.broadcast_to(np.arange(past, past + seq), (batch, seq))
        hidden = self.ops.embed(
            self.token_embedding.weight.data,
            self.position_embedding.weight.data,
            token_ids,
            positions,
        )
        for block, layer_kv in zip(self.blocks, cache.layers):
            hidden = block.forward_cached(hidden, layer_kv)
        hidden = self.final_norm(hidden)
        if last_only:
            hidden = hidden[:, -1:, :]
        return self.ops.linear_det(hidden, self.token_embedding.weight.data.T, None)

    def verify_forward(self, token_ids: np.ndarray, cache: KVCache) -> np.ndarray:
        """Greedy argmax at every new position — speculative verification.

        Runs ``token_ids`` (the last committed token followed by K draft
        tokens) through the cached forward in **one** call and returns the
        per-position greedy token ids, shape ``(batch, seq)``.  Position
        ``j``'s argmax is computed with the cache holding exactly the
        tokens preceding ``token_ids[:, j]``, so it equals what a
        token-by-token greedy decode would have produced there — the
        chunked==incremental bit-exactness the KV-cache tests pin.  The
        caller accepts the longest draft prefix matching these ids and
        rolls the cache back past the rejected tail
        (:meth:`KVCache.truncate`).
        """
        logits = self.forward_with_cache(token_ids, cache, last_only=False)
        return np.argmax(logits, axis=-1)

    def forward_ragged(
        self,
        token_ids: np.ndarray,
        caches,
        new_lens: np.ndarray,
        last_only: bool = True,
        last_k: int = 1,
    ) -> np.ndarray:
        """Inference forward over a left-padded ragged batch of sequences.

        The continuous-batching server mixes requests at different stages —
        a freshly admitted request prefilling a long prompt next to requests
        decoding one token each.  ``token_ids`` is ``(batch, max_new)`` with
        each row's ``new_lens[r]`` real new tokens right-aligned (leading
        positions are pad lanes; their token ids must merely be valid for
        the embedding table).  ``caches`` holds one *single-sequence* cache
        per row — anything exposing ``seq_len`` and per-layer ``layers[i]``
        with the :class:`~repro.nn.kv_cache.LayerKVCache` append protocol
        (a :class:`~repro.nn.kv_cache.KVCache` created for a batch-of-one,
        or a pooled :class:`~repro.serve.kv_pool.SequenceKV`).

        Position embeddings are computed per row (a row's first real token
        continues from its own cache length), per-token ops run batched
        over the padded matrix, and attention applies the pad mask by
        slicing (see :func:`~repro.nn.functional.ragged_attention_mask` for
        the mask semantics).  Each real lane is therefore **bit-identical**
        to running :meth:`forward_with_cache` on that row alone — the
        property that makes tokens served from a ragged continuous batch
        equal to :func:`~repro.nn.generation.generate` on the same prompt.

        Returns logits for each row's trailing ``last_k`` positions,
        ``(batch, last_k, vocab)``, when ``last_only`` (the decode loops'
        shape; ``last_k=1`` by default).  Speculative verification passes
        ``last_k = 1 + max drafts``: a row that fed ``m <= last_k`` real
        tokens reads its logits from the trailing ``m`` slots (rows are
        right-aligned, so the trailing slots are always real lanes; any
        leading slots of the slice are pad output).  Because the output
        projection is per-position through the deterministic matmul,
        widening ``last_k`` never changes the bytes of the positions a
        narrower call returns.  With ``last_only=False``, logits for the
        whole padded chunk, ``(batch, max_new, vocab)``, where the leading
        ``max_new - new_lens[r]`` positions of row ``r`` are meaningless
        pad output.
        """
        if self.training:
            raise RuntimeError(
                "forward_ragged requires eval mode; call model.eval() first"
            )
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq), got shape {token_ids.shape}")
        batch, max_new = token_ids.shape
        new_lens = np.asarray(new_lens, dtype=np.int64)
        if new_lens.shape != (batch,) or len(caches) != batch:
            raise ValueError(
                f"need one cache and one new_len per row, got batch={batch}, "
                f"len(caches)={len(caches)}, new_lens shape {new_lens.shape}"
            )
        if np.any(new_lens < 1) or np.any(new_lens > max_new):
            raise ValueError(f"new_lens must be in [1, {max_new}], got {new_lens}")
        if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
            raise ValueError("token id out of range for the embedding table")
        pasts = np.asarray([c.seq_len for c in caches], dtype=np.int64)
        if np.any(pasts + new_lens > self.config.max_position):
            raise ValueError(
                f"cache length + new tokens exceeds max_position "
                f"{self.config.max_position} for at least one row"
            )
        for cache in caches:
            if len(cache.layers) != len(self.blocks):
                raise ValueError(
                    f"cache has {len(cache.layers)} layers, model has {len(self.blocks)}"
                )

        # Per-row absolute positions: pads get 0 (their lanes are discarded).
        offsets = np.arange(max_new)[None, :] - (max_new - new_lens)[:, None]
        positions = np.maximum(pasts[:, None] + offsets, 0)
        hidden = self.ops.embed(
            self.token_embedding.weight.data,
            self.position_embedding.weight.data,
            token_ids,
            positions,
        )
        if last_k < 1 or last_k > max_new:
            raise ValueError(f"last_k must be in [1, {max_new}], got {last_k}")

        for i, block in enumerate(self.blocks):
            layer_kvs = [cache.layers[i] for cache in caches]
            hidden = block.forward_ragged(hidden, layer_kvs, new_lens)
        hidden = self.final_norm(hidden)
        if last_only:
            hidden = hidden[:, -last_k:, :]
        return self.ops.linear_det(hidden, self.token_embedding.weight.data.T, None)

    def loss(self, token_ids: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        """Cross-entropy loss of next-token prediction; returns (loss, logits)."""
        logits = self.forward(token_ids)
        loss, self._cache_logit_grad = cross_entropy(logits, targets)
        return loss, logits

    # -- backward ------------------------------------------------------------------
    def backward(self, grad_logits: np.ndarray | None = None) -> None:
        """Backpropagate from the logits gradient through the whole model.

        When called with no argument, uses the gradient cached by
        :meth:`loss`.
        """
        if grad_logits is None:
            grad_logits = getattr(self, "_cache_logit_grad", None)
            if grad_logits is None:
                raise RuntimeError("no cached loss gradient; call loss() first")
        if self._cache_hidden is None or self._cache_token_ids is None:
            raise RuntimeError("backward called before forward")

        hidden = self._cache_hidden
        grad_logits = np.asarray(grad_logits, dtype=np.float64)

        # Tied projection: logits = hidden @ E^T.
        embed = self.token_embedding.weight
        grad_hidden = grad_logits @ embed.data
        flat_grad_logits = grad_logits.reshape(-1, self.config.vocab_size)
        flat_hidden = hidden.reshape(-1, self.config.embed_dim)
        embed.grad += flat_grad_logits.T @ flat_hidden

        grad_hidden = self.final_norm.backward(grad_hidden)
        for block in reversed(self.blocks):
            grad_hidden = block.backward(grad_hidden)
        grad_hidden = self.embed_dropout.backward(grad_hidden)

        # Embedding lookups: token and positional tables.
        self.token_embedding.backward(grad_hidden)
        self.position_embedding.backward(grad_hidden)

    def train(self) -> "OPTLanguageModel":
        self._weights_dirty = True
        self._plan_version += 1
        return super().train()

    def eval(self) -> "OPTLanguageModel":
        # If weights may have changed since the last refresh (training, a
        # state-dict load), drop memoized quantized copies and rebind the
        # policy's normalizer to the current gamma/beta (it captures copies
        # at install time).  Kept warm otherwise, so repeated generate()
        # calls — each of which enters eval mode — don't re-quantize.
        if self._weights_dirty:
            self.ops.clear_weight_cache()
            if self.policy.normalizer is not None:
                self._install_normalizers(self.policy)
            self._weights_dirty = False
            self._plan_version += 1
        return super().eval()

    def load_state_dict(self, state) -> None:
        super().load_state_dict(state)
        self._weights_dirty = True
        self._plan_version += 1

    # -- precision policy ------------------------------------------------------------
    @property
    def policy(self) -> PrecisionPolicy:
        """The model's active precision policy (stored on ``config``)."""
        return self.config.policy

    def set_policy(self, policy: PrecisionPolicy | str | dict) -> None:
        """Apply a precision policy to the whole module tree.

        Resolves ``policy`` (instance, registered name, or ``to_dict``
        output), installs the matching op layer on every module, and wires
        the policy's normalizer — resolved through
        :mod:`repro.baselines.registry` with each LayerNorm's trained
        gamma/beta — as the evaluation-time normalizer.  ``fp64-ref``
        installs the shared zero-overhead passthrough, reproducing the
        plain float64 kernels verbatim.

        The policy is recorded on ``self.config`` so checkpoints carry it
        (``asdict`` → JSON → rebuild restores both datapath and swapped
        normalizer).  Training mode is unaffected: it always runs the
        exact, differentiable float64 path.
        """
        policy = get_policy(policy)
        self.config = dataclasses.replace(self.config, policy=policy)
        # Reuse the current op layer (and its warm quantized-weight memo)
        # when only the normalizer changed, not the datapath formats.
        ops = make_ops(policy, reuse=self.ops)
        for module in self.modules():
            module.ops = ops
        self._install_normalizers(policy)
        self._plan_version += 1

    def _install_normalizers(self, policy: PrecisionPolicy) -> None:
        """(Re)bind the policy's normalizer to each LayerNorm's gamma/beta.

        Called by :meth:`set_policy` and again by :meth:`eval`, because the
        normalizer captures *copies* of gamma/beta — training between
        evaluations would otherwise leave it computing with stale values.
        """
        if policy.normalizer is None:
            for norm in self.layer_norms():
                norm.eval_normalizer = None
        else:
            for norm in self.layer_norms():
                norm.eval_normalizer = get_normalizer(
                    policy.normalizer,
                    norm.normalized_dim,
                    fmt=policy.normalizer_fmt,
                    gamma=norm.gamma.data.copy(),
                    beta=norm.beta.data.copy(),
                    **dict(policy.normalizer_kwargs),
                )

    # -- layer-norm swap (policy sugar) ---------------------------------------------
    def layer_norms(self) -> list[LayerNorm]:
        """Every LayerNorm in the model (two per block plus the final one)."""
        norms: list[LayerNorm] = []
        for block in self.blocks:
            norms.extend(block.layer_norms())
        norms.append(self.final_norm)
        return norms

    def replace_layernorm(self, method: str, fmt: str | None = None, **kwargs) -> None:
        """Swap the evaluation-time normalizer of every LayerNorm.

        Sugar for deriving the current policy with
        :meth:`~repro.precision.policy.PrecisionPolicy.with_normalizer` and
        applying it via :meth:`set_policy` — the datapath formats are kept,
        only the normalizer changes.

        Parameters
        ----------
        method:
            A name registered in :mod:`repro.baselines.registry`
            ("exact", "iterl2norm", "fisr", "lut").
        fmt:
            Working floating-point format for the replacement normalizer.
        kwargs:
            Extra arguments for the normalizer factory (``num_steps`` for
            IterL2Norm, ``newton_steps`` for FISR, ...).

        The replacement reuses each LayerNorm's trained gamma/beta and only
        affects evaluation mode; training mode still uses the exact,
        differentiable LayerNorm.
        """
        self.set_policy(self.policy.with_normalizer(method, fmt=fmt, **kwargs))

    def restore_layernorm(self) -> None:
        """Remove any evaluation-time normalizer replacement."""
        self.set_policy(self.policy.with_normalizer(None))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OPTLanguageModel({self.config.name}, layers={self.config.num_layers}, "
            f"d={self.config.embed_dim}, params={self.num_parameters()})"
        )
