"""Pluggable model executors: the reference path and a compiled fast path.

The serving engine and the generation helpers never care *how* a forward is
computed — only that the bytes coming back are identical to the reference
implementation in :class:`~repro.nn.model.OPTLanguageModel` under every
precision policy.  This module makes that seam explicit:

``ModelExecutor``
    The protocol: ``forward`` (dense BLAS path), ``forward_with_cache``,
    ``verify_forward`` and ``forward_ragged``, mirroring the model methods
    one-to-one.

``ReferenceExecutor``
    Delegates every call verbatim to the model.  This *is* the historical
    behaviour; engines constructed without a backend use it.

``CompiledExecutor``
    Pre-resolves the whole per-token op sequence into a flat plan of bound
    closures at plan-build time (re-validated against the model's
    ``_plan_version`` counter, which ``set_policy`` / ``load_state_dict`` /
    ``train`` bump).  The plan:

    * pre-resolves every quantized weight once (``ops.weight`` memo hits at
      build time, not per token) and binds ``accum``/``act`` casters into
      per-layer closures — no per-token attribute chains or memo lookups;
    * caches causal ragged masks keyed ``(new_len, total_len)`` and skips
      the mask entirely for single-token rows (see note below);
    * batches the quantize-on-write KV path — one vectorized quantize per
      layer per step instead of one per row — and hands pre-quantized
      slices to the caches through their ``append_raw`` fast path;
    * reuses a preallocated context workspace across layers and a logits
      output buffer across steps on the ragged path.

Bit-exactness notes
-------------------
Everything the compiled plan does is a *re-staging* of the reference
arithmetic, never a re-association:

* Weight operands are the same array objects the reference path feeds to
  ``det_matmul`` (quantized weights come from the same ``ops.weight`` memo),
  so einsum sees identical memory-layout classes and picks identical
  accumulation loops.
* KV quantization is elementwise, so quantizing the whole ``(batch, heads,
  max_new, head_dim)`` tensor once and appending per-row slices writes the
  same bytes as quantizing each row separately.  The ``append_raw`` gate
  falls back to plain ``append`` (which re-quantizes) when a cache does not
  expose the fast path; quantize is idempotent, so the fallback is bit-safe.
* Single-token rows skip the mask add: ``causal_mask_offset(1, total)`` is
  all zeros, and adding ``+0.0`` can only flip ``-0.0`` to ``+0.0``.  The
  only consumer is ``det_softmax``, where ``exp(±0.0) == 1.0`` bitwise, so
  the skip cannot change a downstream byte.
* The context workspace is allocated per ``(batch, max_new)`` shape, exactly
  mirroring the reference ``np.zeros_like(q)`` layout (a transposed view of
  a C-contiguous buffer); stale pad lanes are never read because pad lanes
  never enter attention and every other op is per-position.

Because the logits buffer is reused, the array returned by the compiled
``forward_ragged`` is only valid until the next ``forward_ragged`` call on
the same executor — both the engine and the generation loops consume logits
before the next forward.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.nn.functional import causal_mask_offset, det_matmul, det_softmax
from repro.nn.kv_cache import resolve_kv_format
from repro.fpformats.quantize import quantize

__all__ = [
    "EXECUTORS",
    "CompiledExecutor",
    "ModelExecutor",
    "ReferenceExecutor",
    "resolve_executor",
    "validate_backend",
]

_NO_FMT = object()  # sentinel so ``kv_fmt`` absence never equals a real format


@runtime_checkable
class ModelExecutor(Protocol):
    """What the engine and generation loops require of a backend."""

    name: str

    def forward(self, token_ids: np.ndarray) -> np.ndarray: ...

    def forward_with_cache(
        self, token_ids: np.ndarray, cache, last_only: bool = False
    ) -> np.ndarray: ...

    def verify_forward(self, token_ids: np.ndarray, cache) -> np.ndarray: ...

    def forward_ragged(
        self,
        token_ids: np.ndarray,
        caches,
        new_lens,
        last_only: bool = True,
        last_k: int = 1,
    ) -> np.ndarray: ...


class ReferenceExecutor:
    """The historical path: delegate every forward verbatim to the model."""

    name = "reference"

    def __init__(self, model) -> None:
        self.model = model

    def forward(self, token_ids):
        return self.model(token_ids)

    def forward_with_cache(self, token_ids, cache, last_only=False):
        return self.model.forward_with_cache(token_ids, cache, last_only=last_only)

    def verify_forward(self, token_ids, cache):
        return self.model.verify_forward(token_ids, cache)

    def forward_ragged(self, token_ids, caches, new_lens, last_only=True, last_k=1):
        return self.model.forward_ragged(
            token_ids, caches, new_lens, last_only=last_only, last_k=last_k
        )


# ---------------------------------------------------------------------------
# Compiled plan construction
# ---------------------------------------------------------------------------


def _linear_closure(ops, weight, bias, block=False):
    """Bind one Linear's ``forward_det`` into a closure with pre-resolved
    operands, replicating ``PrecisionOps.linear_det`` byte-for-byte.
    ``block`` engages the fixed-block contraction of the row-shardable
    linears (out-projection, fc2) — see ``det_matmul(..., block=True)``."""
    w = weight.data
    b = None if bias is None else bias.data
    if ops.passthrough:
        if b is None:
            return lambda x: det_matmul(x, w, block=block)
        return lambda x: det_matmul(x, w, block=block) + b
    wq = ops.weight(w)
    bq = None if b is None else ops.weight(b)
    accum, act = ops.accum, ops.act
    if bq is None:
        return lambda x: act(accum(det_matmul(x, wq, block=block)))
    return lambda x: act(accum(det_matmul(x, wq, block=block)) + bq)


def _norm_closure(norm, ops):
    """Replicate ``LayerNorm.forward`` in eval mode (backward cache elided).

    The normalizer module and its parameters are read per call so an
    ``iterl2norm`` swap or an in-place gamma/beta update is picked up even
    between plan rebuilds.
    """
    act = ops.act
    eps = norm.eps

    def run(x):
        ev = norm.eval_normalizer
        if ev is not None:
            return act(ev(x))
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        return act(norm.gamma.data * ((x - mean) * inv_std) + norm.beta.data)

    return run


class _LayerPlan:
    """Flat, attribute-lookup-free op sequence for one transformer block."""

    __slots__ = ("attn_norm", "q", "k", "v", "out", "ffn_norm", "fc1", "fc2")

    def __init__(self, block, ops) -> None:
        attn = block.attention
        ffn = block.ffn
        self.attn_norm = _norm_closure(block.attn_norm, ops)
        self.ffn_norm = _norm_closure(block.ffn_norm, ops)
        self.q = _linear_closure(ops, attn.q_proj.weight, attn.q_proj.bias)
        self.k = _linear_closure(ops, attn.k_proj.weight, attn.k_proj.bias)
        self.v = _linear_closure(ops, attn.v_proj.weight, attn.v_proj.bias)
        self.out = _linear_closure(
            ops, attn.out_proj.weight, attn.out_proj.bias, block=True
        )
        self.fc1 = _linear_closure(ops, ffn.fc1.weight, ffn.fc1.bias)
        self.fc2 = _linear_closure(ops, ffn.fc2.weight, ffn.fc2.bias, block=True)


class _Plan:
    """Whole-model fused plan: embed → blocks → final norm → tied logits."""

    __slots__ = (
        "version",
        "layers",
        "embed",
        "final_norm",
        "out_proj",
        "out_proj_into",
        "attn_scores",
        "softmax",
        "ctx_matmul",
        "residual",
        "scale",
        "num_heads",
        "head_dim",
        "vocab_size",
        "max_position",
        "kv_fmt",
        "kv_quant",
    )

    def __init__(self, model) -> None:
        ops = model.ops
        config = model.config
        self.version = model._plan_version
        self.num_heads = config.num_heads
        self.head_dim = config.embed_dim // config.num_heads
        self.vocab_size = config.vocab_size
        self.max_position = config.max_position
        self.scale = 1.0 / np.sqrt(self.head_dim)

        tok_table = model.token_embedding.weight.data
        pos_table = model.position_embedding.weight.data
        w_t = tok_table.T  # tied output projection, same view reference uses
        if ops.passthrough:
            self.embed = lambda ids, pos: tok_table[ids] + pos_table[pos]
            self.out_proj = lambda h: det_matmul(h, w_t)
            self.out_proj_into = lambda h, out: np.einsum(
                "...ij,...jk->...ik", h, w_t, out=out, optimize=False
            )
            self.attn_scores = lambda q, k_t, scale: det_matmul(q, k_t) * scale
            self.softmax = det_softmax
            self.ctx_matmul = det_matmul
            self.residual = lambda a, b: a + b
        else:
            accum, act = ops.accum, ops.act
            tok_q = ops.weight(tok_table)
            pos_q = ops.weight(pos_table)
            wq_t = ops.weight(w_t)
            self.embed = lambda ids, pos: act(tok_q[ids] + pos_q[pos])
            self.out_proj = lambda h: act(accum(det_matmul(h, wq_t)))
            self.out_proj_into = None  # quantized path allocates via casters
            self.attn_scores = lambda q, k_t, scale: act(
                accum(det_matmul(q, k_t)) * scale
            )
            self.softmax = lambda s: act(det_softmax(s, axis=-1))
            self.ctx_matmul = lambda w, v: act(accum(det_matmul(w, v)))
            self.residual = lambda a, b: act(a + b)

        self.final_norm = _norm_closure(model.final_norm, ops)
        self.layers = [_LayerPlan(block, ops) for block in model.blocks]

        self.kv_fmt = resolve_kv_format(model.policy.kv_cache_fmt)
        if self.kv_fmt is None:
            self.kv_quant = None
        else:
            fmt = self.kv_fmt
            self.kv_quant = lambda x: quantize(x, fmt)


class CompiledExecutor:
    """Fast backend: flat pre-fused plan, batched KV quantize, reused buffers.

    Byte-identical to :class:`ReferenceExecutor` under every precision
    policy (see the module docstring for why each shortcut is bit-safe).
    """

    name = "compiled"

    _MASK_CACHE_LIMIT = 512
    _BUFFER_CACHE_LIMIT = 64

    def __init__(self, model) -> None:
        self.model = model
        self._plan: _Plan | None = None
        self._masks: dict[tuple[int, int], np.ndarray] = {}
        self._ctx_bufs: dict[tuple[int, int], np.ndarray] = {}
        self._logit_bufs: dict[tuple[int, ...], np.ndarray] = {}

    # -- plan lifecycle ----------------------------------------------------
    def _ensure_plan(self) -> _Plan:
        model = self.model
        if model.training:
            raise RuntimeError(
                "cached decoding requires eval mode; call model.eval() first"
            )
        if model._weights_dirty:
            model.eval()  # refresh quantized copies / normalizers, bumps version
        plan = self._plan
        if plan is None or plan.version != model._plan_version:
            plan = self._plan = _Plan(model)
            self._masks.clear()
            self._ctx_bufs.clear()
            self._logit_bufs.clear()
        return plan

    def _mask(self, new_len: int, total_len: int) -> np.ndarray:
        key = (new_len, total_len)
        mask = self._masks.get(key)
        if mask is None:
            if len(self._masks) >= self._MASK_CACHE_LIMIT:
                self._masks.clear()
            mask = causal_mask_offset(new_len, total_len)
            self._masks[key] = mask
        return mask

    def _context(self, plan: _Plan, batch: int, max_new: int) -> np.ndarray:
        """A ``(batch, heads, max_new, head_dim)`` workspace laid out exactly
        like the reference ``np.zeros_like(q)`` (transposed C-contiguous)."""
        key = (batch, max_new)
        buf = self._ctx_bufs.get(key)
        if buf is None:
            if len(self._ctx_bufs) >= self._BUFFER_CACHE_LIMIT:
                self._ctx_bufs.clear()
            buf = np.empty(
                (batch, max_new, plan.num_heads, plan.head_dim), dtype=np.float64
            )
            self._ctx_bufs[key] = buf
        return buf.transpose(0, 2, 1, 3)

    def _logits_out(self, shape: tuple[int, ...]) -> np.ndarray:
        buf = self._logit_bufs.get(shape)
        if buf is None:
            if len(self._logit_bufs) >= self._BUFFER_CACHE_LIMIT:
                self._logit_bufs.clear()
            buf = np.empty(shape, dtype=np.float64)
            self._logit_bufs[shape] = buf
        return buf

    @staticmethod
    def _accepts_raw(views, fmt) -> bool:
        """True when every cache exposes the pre-quantized append fast path
        for exactly the plan's KV format."""
        for view in views:
            if getattr(view, "kv_fmt", _NO_FMT) != fmt or not hasattr(
                view, "append_raw"
            ):
                return False
        return True

    # -- forwards ----------------------------------------------------------
    def forward(self, token_ids):
        # The dense BLAS training/slide path is already vectorized; it is
        # shared verbatim so both backends stay bit-identical on it.
        return self.model(token_ids)

    def forward_with_cache(self, token_ids, cache, last_only=False):
        plan = self._ensure_plan()
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be 2-D, got shape {token_ids.shape}")
        batch, seq = token_ids.shape
        if seq == 0:
            raise ValueError("token_ids must contain at least one new token")
        if token_ids.min() < 0 or token_ids.max() >= plan.vocab_size:
            raise ValueError("token ids out of range for vocabulary")
        past = cache.seq_len
        if past + seq > plan.max_position:
            raise ValueError(
                f"sequence length {past + seq} exceeds max_position "
                f"{plan.max_position}"
            )
        positions = np.broadcast_to(np.arange(past, past + seq), (batch, seq))
        hidden = plan.embed(token_ids, positions)
        views = cache.layers
        raw_ok = self._accepts_raw(views[:1], plan.kv_fmt)
        for lp, kv in zip(plan.layers, views):
            hidden = self._block_cached(plan, lp, hidden, kv, raw_ok)
        hidden = plan.final_norm(hidden)
        if last_only:
            hidden = hidden[:, -1:, :]
        return plan.out_proj(hidden)

    def verify_forward(self, token_ids, cache):
        logits = self.forward_with_cache(token_ids, cache, last_only=False)
        return np.argmax(logits, axis=-1)

    def forward_ragged(self, token_ids, caches, new_lens, last_only=True, last_k=1):
        plan = self._ensure_plan()
        token_ids = np.asarray(token_ids, dtype=np.int64)
        batch, max_new = token_ids.shape
        if token_ids.min() < 0 or token_ids.max() >= plan.vocab_size:
            raise ValueError("token ids out of range for vocabulary")
        lens = [int(n) for n in new_lens]
        if len(lens) != batch or len(caches) != batch:
            raise ValueError("token_ids, caches and new_lens must agree on batch")
        if last_k < 1 or last_k > max_new:
            raise ValueError(f"last_k must be in [1, {max_new}], got {last_k}")
        pasts = np.empty(batch, dtype=np.int64)
        for r, cache in enumerate(caches):
            n = lens[r]
            if not 1 <= n <= max_new:
                raise ValueError(f"new_lens[{r}]={n} outside [1, {max_new}]")
            past = cache.seq_len
            if past + n > plan.max_position:
                raise ValueError(
                    f"row {r}: length {past + n} exceeds max_position "
                    f"{plan.max_position}"
                )
            pasts[r] = past

        offsets = np.arange(max_new)[None, :] - (
            max_new - np.asarray(lens, dtype=np.int64)
        )[:, None]
        positions = np.maximum(pasts[:, None] + offsets, 0)
        hidden = plan.embed(token_ids, positions)

        raw_ok = self._accepts_raw(
            [cache.layers[0] for cache in caches], plan.kv_fmt
        )
        ctx = self._context(plan, batch, max_new)
        for i, lp in enumerate(plan.layers):
            views = [cache.layers[i] for cache in caches]
            hidden = self._block_ragged(
                plan, lp, hidden, views, lens, batch, max_new, ctx, raw_ok
            )
        hidden = plan.final_norm(hidden)
        if last_only:
            hidden = hidden[:, -last_k:, :]
        if plan.out_proj_into is not None:
            out = self._logits_out(hidden.shape[:-1] + (plan.vocab_size,))
            return plan.out_proj_into(hidden, out)
        return plan.out_proj(hidden)

    # -- block bodies ------------------------------------------------------
    def _block_cached(self, plan, lp, x, kv, raw_ok):
        batch, seq, _ = x.shape
        heads, head_dim = plan.num_heads, plan.head_dim
        h = lp.attn_norm(x)
        q = lp.q(h).reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        k_new = lp.k(h).reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        v_new = lp.v(h).reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        if raw_ok:
            if plan.kv_quant is not None:
                k_new = plan.kv_quant(k_new)
                v_new = plan.kv_quant(v_new)
            k_all, v_all = kv.append_raw(k_new, v_new)
        else:
            k_all, v_all = kv.append(k_new, v_new)
        scores = plan.attn_scores(q, k_all.transpose(0, 1, 3, 2), plan.scale)
        if seq > 1:
            scores = scores + self._mask(seq, k_all.shape[2])
        context = plan.ctx_matmul(plan.softmax(scores), v_all)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)
        x = plan.residual(x, lp.out(merged))
        h2 = lp.ffn_norm(x)
        return plan.residual(x, lp.fc2(np.maximum(lp.fc1(h2), 0.0)))

    def _block_ragged(self, plan, lp, x, views, lens, batch, max_new, ctx, raw_ok):
        heads, head_dim = plan.num_heads, plan.head_dim
        h = lp.attn_norm(x)
        q = lp.q(h).reshape(batch, max_new, heads, head_dim).transpose(0, 2, 1, 3)
        k_new = lp.k(h).reshape(batch, max_new, heads, head_dim).transpose(0, 2, 1, 3)
        v_new = lp.v(h).reshape(batch, max_new, heads, head_dim).transpose(0, 2, 1, 3)
        if raw_ok and plan.kv_quant is not None:
            # One vectorized quantize per layer per step; per-row slices of
            # an elementwise quantize are bit-identical to per-row quantizes.
            k_w = plan.kv_quant(k_new)
            v_w = plan.kv_quant(v_new)
        else:
            k_w, v_w = k_new, v_new
        attn_scores, softmax, ctx_matmul = (
            plan.attn_scores,
            plan.softmax,
            plan.ctx_matmul,
        )
        scale = plan.scale
        for r, view in enumerate(views):
            n = lens[r]
            pad = max_new - n
            if raw_ok:
                k_all, v_all = view.append_raw(
                    k_w[r : r + 1, :, pad:], v_w[r : r + 1, :, pad:]
                )
            else:
                k_all, v_all = view.append(
                    k_w[r : r + 1, :, pad:], v_w[r : r + 1, :, pad:]
                )
            scores = attn_scores(q[r : r + 1, :, pad:], k_all.transpose(0, 1, 3, 2), scale)
            if n > 1:
                scores = scores + self._mask(n, k_all.shape[2])
            ctx[r : r + 1, :, pad:] = ctx_matmul(softmax(scores), v_all)
        merged = ctx.transpose(0, 2, 1, 3).reshape(batch, max_new, heads * head_dim)
        x = plan.residual(x, lp.out(merged))
        h2 = lp.ffn_norm(x)
        return plan.residual(x, lp.fc2(np.maximum(lp.fc1(h2), 0.0)))


EXECUTORS = {
    ReferenceExecutor.name: ReferenceExecutor,
    CompiledExecutor.name: CompiledExecutor,
}


#: Spec-string shorthands appended to "known backends" error messages.
_SHARDED_SPEC = "sharded:N[:sim|process][:pin]"
_PIPELINE_SPEC = "pipeline:P[+sharded:N][:sim|process][:pin]"


def _known_backends() -> str:
    return ", ".join(sorted(EXECUTORS)) + f", {_SHARDED_SPEC}, {_PIPELINE_SPEC}"


def resolve_executor(spec, model):
    """Turn a backend spec into a bound executor.

    ``None`` means the reference backend; ``"sharded:N[:driver][:pin]"``
    builds a tensor-sharded executor and
    ``"pipeline:P[+sharded:N][:driver][:pin]"`` a pipeline-parallel one
    (see :mod:`repro.shard`); any other string is looked up in
    :data:`EXECUTORS`; anything else is assumed to already be an executor
    instance and returned as-is.
    """
    if spec is None:
        spec = ReferenceExecutor.name
    if isinstance(spec, str):
        if spec.startswith("sharded"):
            # Imported lazily: repro.shard imports this module's compiled
            # executor, so a top-level import would cycle.
            from repro.shard import ShardedExecutor, parse_shard_spec

            num_shards, driver, pin = parse_shard_spec(spec)
            return ShardedExecutor(model, num_shards, driver=driver, pin=pin)
        if spec.startswith("pipeline"):
            from repro.shard import PipelinedExecutor, parse_pipeline_spec

            num_stages, num_shards, driver, pin = parse_pipeline_spec(spec)
            return PipelinedExecutor(
                model, num_stages, num_shards=num_shards, driver=driver,
                pin=pin,
            )
        try:
            cls = EXECUTORS[spec]
        except KeyError:
            raise KeyError(
                f"unknown execution backend {spec!r} "
                f"(known: {_known_backends()})"
            )
        return cls(model)
    return spec


def validate_backend(spec, num_layers=None) -> None:
    """Raise ``ValueError`` when a backend spec string is not resolvable.

    Benches call this before declaring their job grids so a typo surfaces
    as one usage error instead of a failure deep inside a cell.  When the
    bench knows its model's depth it passes ``num_layers`` so an oversized
    pipeline stage count fails here too.
    """
    if spec is None or not isinstance(spec, str):
        return
    if spec in EXECUTORS:
        return
    if spec.startswith("sharded"):
        from repro.shard import parse_shard_spec

        parse_shard_spec(spec)  # raises ValueError with specifics
        return
    if spec.startswith("pipeline"):
        from repro.shard import parse_pipeline_spec

        num_stages, _, _, _ = parse_pipeline_spec(spec)
        if num_layers is not None and num_stages > num_layers:
            raise ValueError(
                f"pipeline stage count {num_stages} exceeds the model's "
                f"{num_layers} decoder layers"
            )
        return
    raise ValueError(
        f"unknown --backend {spec!r} (known: {_known_backends()})"
    )
