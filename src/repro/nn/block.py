"""Pre-LN transformer decoder block (the OPT layout the paper evaluates).

Each decoder of OPT consists of a masked multi-head attention sub-block and a
feed-forward sub-block, each preceded by layer normalization and wrapped in a
residual connection — the "layer normalization follows each of multi-head
attention and feed-forward network blocks" structure the paper targets for
on-chip normalization.
"""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.functional import relu, relu_backward
from repro.nn.kv_cache import LayerKVCache
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.precision.ops import PASSTHROUGH_OPS


class FeedForward(Module):
    """Position-wise feed-forward network with ReLU (OPT's activation)."""

    def __init__(
        self,
        embed_dim: int,
        ffn_dim: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng()
        self.fc1 = Linear(embed_dim, ffn_dim, rng=rng)
        self.fc2 = Linear(ffn_dim, embed_dim, rng=rng)
        # Row-shardable reduction boundary (see MultiHeadSelfAttention's
        # out_proj): fc2's contraction uses the fixed-block summation tree.
        self.fc2.block_k = True
        self.dropout = Dropout(dropout, rng=rng)
        self._cache_pre_act: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        pre_act = self.fc1(x)
        self._cache_pre_act = pre_act
        hidden = self.dropout(relu(pre_act))
        return self.fc2(hidden)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_pre_act is None:
            raise RuntimeError("backward called before forward")
        grad_hidden = self.fc2.backward(np.asarray(grad_output, dtype=np.float64))
        grad_hidden = self.dropout.backward(grad_hidden)
        grad_pre_act = relu_backward(grad_hidden, self._cache_pre_act)
        return self.fc1.backward(grad_pre_act)

    def forward_det(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward with shape-independent accumulation."""
        return self.fc2.forward_det(relu(self.fc1.forward_det(x)))


class TransformerDecoderBlock(Module):
    """One pre-LN decoder block: LN -> attention -> residual, LN -> FFN -> residual."""

    #: Policy-aware op layer; replaced by the owning model's ``set_policy``.
    ops = PASSTHROUGH_OPS

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        ffn_dim: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng()
        self.attn_norm = LayerNorm(embed_dim)
        self.attention = MultiHeadSelfAttention(embed_dim, num_heads, dropout=dropout, rng=rng)
        self.ffn_norm = LayerNorm(embed_dim)
        self.ffn = FeedForward(embed_dim, ffn_dim, dropout=dropout, rng=rng)
        self.residual_dropout = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # Residual adds round to the activation format under a quantized
        # policy (evaluation only); training stays exact float64.
        ops = PASSTHROUGH_OPS if self.training else self.ops
        attn_out = self.attention(self.attn_norm(x))
        x = ops.residual(x, self.residual_dropout(attn_out))
        ffn_out = self.ffn(self.ffn_norm(x))
        return ops.residual(x, ffn_out)

    def forward_cached(self, x: np.ndarray, kv: LayerKVCache) -> np.ndarray:
        """Inference-only forward over the new positions in ``x`` using ``kv``.

        The layer norms see only the new rows (normalization is per token),
        attention appends to / reads from the cache, and the FFN runs through
        the deterministic matmul path so results match a full re-prefill
        bit-for-bit.
        """
        x = np.asarray(x, dtype=np.float64)
        attn_out = self.attention.forward_cached(self.attn_norm(x), kv)
        x = self.ops.residual(x, attn_out)
        ffn_out = self.ffn.forward_det(self.ffn_norm(x))
        return self.ops.residual(x, ffn_out)

    def forward_ragged(self, x: np.ndarray, kvs, new_lens) -> np.ndarray:
        """Ragged-batch counterpart of :meth:`forward_cached`.

        ``x`` is a left-padded ``(batch, max_new, d)`` matrix, ``kvs`` one
        per-row single-sequence layer cache, ``new_lens`` the per-row count
        of real (right-aligned) tokens.  Norms, FFN, and residuals are
        per-token, so they run batched over the padded matrix; only the
        attention kernel consults the pad structure.  Real lanes are
        bit-identical to :meth:`forward_cached` on the row alone.
        """
        x = np.asarray(x, dtype=np.float64)
        attn_out = self.attention.forward_ragged(self.attn_norm(x), kvs, new_lens)
        x = self.ops.residual(x, attn_out)
        ffn_out = self.ffn.forward_det(self.ffn_norm(x))
        return self.ops.residual(x, ffn_out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        # Second residual: x2 = x1 + ffn(ffn_norm(x1))
        grad_ffn = self.ffn.backward(grad_output)
        grad_x1 = grad_output + self.ffn_norm.backward(grad_ffn)
        # First residual: x1 = x + dropout(attn(attn_norm(x)))
        grad_attn = self.residual_dropout.backward(grad_x1)
        grad_attn = self.attention.backward(grad_attn)
        grad_x = grad_x1 + self.attn_norm.backward(grad_attn)
        return grad_x

    def layer_norms(self) -> list[LayerNorm]:
        """The two LayerNorm modules of this block (for the normalizer swap)."""
        return [self.attn_norm, self.ffn_norm]
