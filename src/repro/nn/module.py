"""Parameter and module base classes for the NumPy transformer substrate.

The substrate uses explicit forward/backward methods (no autograd): each
module caches what its backward pass needs during ``forward`` and exposes
``backward(grad_output) -> grad_input``, accumulating parameter gradients in
``Parameter.grad``.  This keeps the implementation transparent, dependency
free, and easy to unit test with finite differences.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes
    ----------
    data:
        The parameter values (float64).
    grad:
        Accumulated gradient of the loss with respect to ``data``; zeroed by
        :meth:`zero_grad`.
    name:
        Dotted path assigned when the owning module tree is constructed;
        used by optimizers and checkpointing.
    """

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad = np.zeros_like(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all substrate modules.

    Subclasses register parameters as attributes of type :class:`Parameter`
    and sub-modules as attributes of type :class:`Module`;
    :meth:`parameters` and :meth:`named_parameters` walk the resulting tree.
    """

    training: bool = True

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output):  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a backward pass"
        )

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter traversal -----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs for the whole subtree."""
        for attr, value in vars(self).items():
            full = f"{prefix}.{attr}" if prefix else attr
            if isinstance(value, Parameter):
                value.name = full
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        item.name = f"{full}.{i}"
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        """All parameters of the subtree, in traversal order."""
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        """Zero every parameter gradient in the subtree."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the subtree."""
        return sum(p.data.size for p in self.parameters())

    # -- train / eval mode --------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and every sub-module."""
        yield self
        for value in vars(self).items().__iter__():
            pass
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self) -> "Module":
        """Put the subtree in training mode (enables dropout)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the subtree in evaluation mode (disables dropout)."""
        for module in self.modules():
            module.training = False
        return self

    # -- state dict ----------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays saved by :meth:`state_dict` (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()
