"""OPT-style model configurations.

The paper evaluates OPT-125M (12 blocks, 12 heads, d=768) and OPT-350M
(24 blocks, 16 heads, d=1024).  Training models of that size in pure NumPy is
not feasible here, so each paper model gets a scaled-down "sim" preset that
preserves the properties Table IV actually depends on: the pre-LN decoder
structure, the per-token layer normalization over the embedding axis, and the
relative depth/width ordering between the two models.  The full-size configs
are also registered so users with more compute (or a NumPy-compatible
accelerator backend) can instantiate the paper-exact shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.precision.policy import PrecisionPolicy, get_policy


@dataclass(frozen=True)
class OPTConfig:
    """Architecture hyper-parameters of an OPT-style decoder-only model.

    Attributes
    ----------
    name:
        Preset name (e.g. ``"opt-125m-sim"``).
    vocab_size:
        Token vocabulary size (including padding/unk specials).
    max_position:
        Maximum sequence length supported by the learned positional table.
    embed_dim:
        Model dimension ``d_model`` — the axis layer norm operates over.
    num_layers:
        Number of decoder blocks.
    num_heads:
        Attention heads per block.
    ffn_dim:
        Hidden width of the feed-forward sub-block.
    dropout:
        Dropout probability used during training.
    policy:
        The model's :class:`~repro.precision.policy.PrecisionPolicy`
        (evaluation-time datapath formats + normalizer).  Accepts a
        registered name, a policy instance, or the dict a JSON round trip
        of ``dataclasses.asdict`` produces; always stored resolved, so a
        checkpointed config survives ``asdict`` → JSON → rebuild with its
        policy (including a swapped normalizer) intact.
    """

    name: str
    vocab_size: int
    max_position: int
    embed_dim: int
    num_layers: int
    num_heads: int
    ffn_dim: int
    dropout: float = 0.0
    policy: PrecisionPolicy | str = field(default="fp64-ref")

    def __post_init__(self) -> None:
        if self.embed_dim % self.num_heads != 0:
            raise ValueError(
                f"embed_dim {self.embed_dim} must be divisible by num_heads {self.num_heads}"
            )
        for field_name in ("vocab_size", "max_position", "embed_dim", "num_layers", "num_heads", "ffn_dim"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        object.__setattr__(self, "policy", get_policy(self.policy))

    @property
    def num_layernorms(self) -> int:
        """Total LayerNorm instances (two per block plus the final one)."""
        return 2 * self.num_layers + 1


#: Paper-exact and scaled-down ("sim") presets.
OPT_CONFIGS: dict[str, OPTConfig] = {
    # Paper-exact shapes (for reference / users with more compute).
    "opt-125m": OPTConfig(
        name="opt-125m",
        vocab_size=50272,
        max_position=2048,
        embed_dim=768,
        num_layers=12,
        num_heads=12,
        ffn_dim=3072,
    ),
    "opt-350m": OPTConfig(
        name="opt-350m",
        vocab_size=50272,
        max_position=2048,
        embed_dim=1024,
        num_layers=24,
        num_heads=16,
        ffn_dim=4096,
    ),
    # Scaled-down models used by the Table IV reproduction: same structure,
    # NumPy-trainable sizes, and the 350M-sim is deeper and wider than the
    # 125M-sim just as OPT-350M is relative to OPT-125M.
    "opt-125m-sim": OPTConfig(
        name="opt-125m-sim",
        vocab_size=512,
        max_position=128,
        embed_dim=96,
        num_layers=2,
        num_heads=4,
        ffn_dim=384,
    ),
    "opt-350m-sim": OPTConfig(
        name="opt-350m-sim",
        vocab_size=512,
        max_position=128,
        embed_dim=128,
        num_layers=3,
        num_heads=4,
        ffn_dim=512,
    ),
    # Tiny preset used by the unit tests.
    "opt-test": OPTConfig(
        name="opt-test",
        vocab_size=64,
        max_position=32,
        embed_dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
    ),
}


def get_config(name: str) -> OPTConfig:
    """Look up a registered configuration by name."""
    if name not in OPT_CONFIGS:
        known = ", ".join(sorted(OPT_CONFIGS))
        raise KeyError(f"unknown OPT config {name!r}; known: {known}")
    return OPT_CONFIGS[name]
