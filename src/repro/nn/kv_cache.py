"""Per-layer key/value caches for incremental (autoregressive) decoding.

Without a cache, generating token ``n`` re-runs the attention projections of
all ``n - 1`` prefix tokens on every step — O(n^2) projection work per
generated sequence.  :class:`KVCache` stores each layer's key/value tensors
so a decode step only projects the new token(s) and attends over the cached
keys: O(n) projection work overall.

The cached path is *bit-exact* with respect to a full re-prefill: both run
through :func:`repro.nn.functional.det_matmul`, whose accumulation order
does not depend on how many rows are computed at once (a property the test
suite asserts).
"""

from __future__ import annotations

import numpy as np


class LayerKVCache:
    """Key/value tensors of one attention layer.

    Arrays have shape ``(batch, num_heads, seq, head_dim)`` and grow along
    the ``seq`` axis as tokens are appended.
    """

    def __init__(self) -> None:
        self.k: np.ndarray | None = None
        self.v: np.ndarray | None = None

    @property
    def seq_len(self) -> int:
        """Number of cached token positions (0 when empty)."""
        return 0 if self.k is None else self.k.shape[2]

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new key/value tensors; returns the full (k, v) so far."""
        if k.shape != v.shape:
            raise ValueError(f"k/v shape mismatch: {k.shape} vs {v.shape}")
        if k.ndim != 4:
            raise ValueError(f"expected (batch, heads, seq, head_dim), got {k.shape}")
        if self.k is None:
            self.k, self.v = k, v
        else:
            if k.shape[0] != self.k.shape[0] or k.shape[1] != self.k.shape[1]:
                raise ValueError(
                    f"cache holds {self.k.shape}, cannot append {k.shape}"
                )
            self.k = np.concatenate([self.k, k], axis=2)
            self.v = np.concatenate([self.v, v], axis=2)
        return self.k, self.v


class KVCache:
    """A stack of :class:`LayerKVCache` entries, one per decoder block.

    Create one per generation run via :meth:`for_model` (or directly with
    the layer count) and pass it to
    :meth:`repro.nn.model.OPTLanguageModel.forward_with_cache`.
    """

    def __init__(self, num_layers: int) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.layers = [LayerKVCache() for _ in range(num_layers)]

    @classmethod
    def for_model(cls, model) -> "KVCache":
        """An empty cache sized for ``model``'s decoder stack."""
        return cls(len(model.blocks))

    @property
    def seq_len(self) -> int:
        """Number of token positions already processed through the cache."""
        return self.layers[0].seq_len

    def __len__(self) -> int:
        return len(self.layers)
