"""Per-layer key/value caches for incremental (autoregressive) decoding.

Without a cache, generating token ``n`` re-runs the attention projections of
all ``n - 1`` prefix tokens on every step — O(n^2) projection work per
generated sequence.  :class:`KVCache` stores each layer's key/value tensors
so a decode step only projects the new token(s) and attends over the cached
keys: O(n) projection work overall.

Storage grows by **amortized doubling** into preallocated buffers: appending
one token writes into spare capacity instead of reallocating and copying the
whole history (the original ``np.concatenate``-per-token scheme was O(n^2)
bytes copied per generated sequence).  ``realloc_count`` exposes how many
buffer (re)allocations actually happened, which the tests pin to O(log n).

The cached path is *bit-exact* with respect to a full re-prefill: both run
through :func:`repro.nn.functional.det_matmul`, whose accumulation order
does not depend on how many rows are computed at once (a property the test
suite asserts).  Preallocation does not disturb this: appended values are
copied bytes, never recomputed.

For serving many concurrent requests, :mod:`repro.serve.kv_pool` builds on
the same append/gather protocol but allocates block-granular storage from a
shared pool so that retired requests return their blocks for reuse.
"""

from __future__ import annotations

import numpy as np

from repro.fpformats.quantize import quantize
from repro.fpformats.spec import FLOAT64, FloatFormat, get_format

#: Initial per-layer buffer capacity (token positions) when the first append
#: is smaller than this; larger first appends size the buffer exactly and
#: leave headroom for the first doubling.
_MIN_CAPACITY = 16


def resolve_kv_format(fmt: str | FloatFormat | None) -> FloatFormat | None:
    """Normalize a KV-cache storage format; ``None``/``fp64`` mean unquantized."""
    if fmt is None:
        return None
    fmt = get_format(fmt)
    return None if fmt == FLOAT64 else fmt


class LayerKVCache:
    """Key/value tensors of one attention layer.

    Logical arrays have shape ``(batch, num_heads, seq, head_dim)`` and grow
    along the ``seq`` axis as tokens are appended.  Backing buffers are
    preallocated with geometric (doubling) growth, so ``append`` is
    amortized O(new) instead of O(seq).

    ``fmt`` (from the model's precision policy ``kv_cache_fmt``) quantizes
    K/V round-to-nearest-even **on write**, emulating a cache held in a
    narrower format than the activations.  Quantization is elementwise and
    happens before storage, so the incremental-equals-prefill bit-exactness
    guarantee is preserved under every policy: both paths write, and later
    read back, identical quantized bytes.
    """

    def __init__(self, fmt: str | FloatFormat | None = None) -> None:
        self._fmt = resolve_kv_format(fmt)
        self._k_buf: np.ndarray | None = None
        self._v_buf: np.ndarray | None = None
        self._len = 0
        #: Number of buffer (re)allocations performed so far.  Appending n
        #: tokens one at a time causes O(log n) reallocations, a property
        #: the regression tests assert.
        self.realloc_count = 0

    @property
    def seq_len(self) -> int:
        """Number of cached token positions (0 when empty)."""
        return self._len

    @property
    def kv_fmt(self) -> FloatFormat | None:
        """Storage format K/V are quantized to on write (``None`` = fp64)."""
        return self._fmt

    @property
    def capacity(self) -> int:
        """Allocated token positions (>= :attr:`seq_len`)."""
        return 0 if self._k_buf is None else self._k_buf.shape[2]

    @property
    def k(self) -> np.ndarray | None:
        """View of the cached keys, ``None`` when empty."""
        return None if self._k_buf is None else self._k_buf[:, :, : self._len]

    @property
    def v(self) -> np.ndarray | None:
        """View of the cached values, ``None`` when empty."""
        return None if self._v_buf is None else self._v_buf[:, :, : self._len]

    def _grow(self, batch: int, heads: int, head_dim: int, needed: int) -> None:
        # Strictly more capacity than needed: the returned k/v views must
        # never cover the whole buffer, so their memory-layout class (strided
        # view) is the same for every append pattern.  NumPy's einsum and
        # reduction kernels pick accumulation loops by layout class; keeping
        # the class fixed keeps incremental-vs-prefill results bit-identical
        # (see the KV-cache exactness tests).
        new_capacity = max(needed + 1, 2 * self.capacity, _MIN_CAPACITY)
        k_buf = np.empty((batch, heads, new_capacity, head_dim), dtype=np.float64)
        v_buf = np.empty_like(k_buf)
        if self._k_buf is not None:
            k_buf[:, :, : self._len] = self._k_buf[:, :, : self._len]
            v_buf[:, :, : self._len] = self._v_buf[:, :, : self._len]
        self._k_buf, self._v_buf = k_buf, v_buf
        self.realloc_count += 1

    def append(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new key/value tensors; returns views of the full (k, v) so far."""
        if k.shape != v.shape:
            raise ValueError(f"k/v shape mismatch: {k.shape} vs {v.shape}")
        if k.ndim != 4:
            raise ValueError(f"expected (batch, heads, seq, head_dim), got {k.shape}")
        batch, heads, new, head_dim = k.shape
        if self._k_buf is not None:
            if batch != self._k_buf.shape[0] or heads != self._k_buf.shape[1]:
                raise ValueError(
                    f"cache holds {self.k.shape}, cannot append {k.shape}"
                )
        if self._fmt is not None:
            k = quantize(k, self._fmt)
            v = quantize(v, self._fmt)
        return self._write(k, v)

    def append_raw(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append K/V that are **already** in :attr:`kv_fmt` storage bytes.

        Fast path for executors that quantize a whole step's K/V in one
        vectorized call and append per-row slices: validation and the
        per-call quantize are skipped.  Because :func:`quantize` is
        elementwise and idempotent, the bytes written here are identical to
        routing the raw values through :meth:`append`.
        """
        return self._write(k, v)

    def _write(self, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        batch, heads, new, head_dim = k.shape
        if self._len + new > self.capacity:
            self._grow(batch, heads, head_dim, self._len + new)
        self._k_buf[:, :, self._len : self._len + new] = k
        self._v_buf[:, :, self._len : self._len + new] = v
        self._len += new
        return self.k, self.v

    def select_rows(self, rows: np.ndarray) -> None:
        """Keep only the given batch rows (used when sequences retire early).

        ``rows`` is any NumPy fancy index over the batch axis; the cached
        values of the surviving rows are preserved bit-for-bit.
        """
        if self._k_buf is not None:
            self._k_buf = self._k_buf[rows]
            self._v_buf = self._v_buf[rows]

    def truncate(self, length: int) -> None:
        """Roll back to the first ``length`` cached positions.

        Speculative decoding appends draft-token K/V optimistically and
        discards the rejected tail; truncation only moves the logical
        length, so the surviving positions keep their exact bytes and a
        subsequent append overwrites the dead region — rollback followed
        by re-append is bit-identical to never having appended at all
        (the KV rollback tests pin this).
        """
        length = int(length)
        if not 0 <= length <= self._len:
            raise ValueError(
                f"cannot truncate to {length}: cache holds {self._len} positions"
            )
        self._len = length


class KVCache:
    """A stack of :class:`LayerKVCache` entries, one per decoder block.

    Create one per generation run via :meth:`for_model` (or directly with
    the layer count) and pass it to
    :meth:`repro.nn.model.OPTLanguageModel.forward_with_cache`.
    ``kv_fmt`` quantizes K/V on write; :meth:`for_model` reads it from the
    model's precision policy.
    """

    def __init__(self, num_layers: int, kv_fmt: str | FloatFormat | None = None) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.layers = [LayerKVCache(fmt=kv_fmt) for _ in range(num_layers)]

    @classmethod
    def for_model(cls, model) -> "KVCache":
        """An empty cache sized for ``model``'s decoder stack and policy."""
        policy = getattr(model.config, "policy", None)
        kv_fmt = None if policy is None else policy.kv_cache_fmt
        return cls(len(model.blocks), kv_fmt=kv_fmt)

    @property
    def seq_len(self) -> int:
        """Number of token positions already processed through the cache."""
        return self.layers[0].seq_len

    def select_rows(self, rows: np.ndarray) -> None:
        """Keep only the given batch rows in every layer."""
        for layer in self.layers:
            layer.select_rows(rows)

    def truncate(self, length: int) -> None:
        """Roll every layer back to ``length`` positions (draft rejection)."""
        for layer in self.layers:
            layer.truncate(length)

    def __len__(self) -> int:
        return len(self.layers)
