"""Optimizers for the NumPy transformer substrate (Adam and SGD)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer: holds the parameter list and the zero-grad helper."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Zero the gradient of every managed parameter."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: list[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update to every parameter."""
        for p, v in zip(self.parameters, self._velocity):
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update to every parameter."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
