"""Basic trainable layers: Linear, Embedding, LayerNorm, Dropout.

Each layer implements ``forward`` (caching what the gradient needs) and
``backward`` (returning the gradient with respect to its input and
accumulating parameter gradients).  The LayerNorm here is the *trainable,
exact* one used during training and as the Table IV baseline; the
IterL2Norm / FISR swap happens at evaluation time through the model's
precision policy (:meth:`repro.nn.model.OPTLanguageModel.set_policy`, of
which ``replace_layernorm`` is a thin wrapper), which hands the trained
``gamma`` / ``beta`` to the replacement normalizer.

Evaluation-time arithmetic routes through the layer's ``ops`` attribute — a
policy-aware op layer (:mod:`repro.precision.ops`) installed by
``set_policy``.  The default is the shared float64 passthrough, which calls
the exact same kernels as before; under a quantized policy each op rounds
its result to the policy's formats.  Training always runs the exact float64
path regardless of policy.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.precision.ops import PASSTHROUGH_OPS


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with optional bias."""

    #: Policy-aware op layer; replaced by the owning model's ``set_policy``.
    ops = PASSTHROUGH_OPS

    #: When True, the deterministic forward contracts K through the
    #: fixed-block summation tree (``det_matmul(..., block=True)``).  Set on
    #: the row-shardable linears (attention out-projection, FFN fc2) so a
    #: row-parallel shard split reproduces the unsharded bytes exactly.
    block_k = False

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min(in_features, out_features) < 1:
            raise ValueError("in_features and out_features must be >= 1")
        rng = rng or np.random.default_rng()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._cache_input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        if not self.training and not self.ops.passthrough:
            # Quantized evaluation: weights held in the weight format, the
            # product rounded through the accumulation/activation formats.
            return self.ops.linear(
                x, self.weight.data, None if self.bias is None else self.bias.data
            )
        self._cache_input = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_input
        grad_output = np.asarray(grad_output, dtype=np.float64)
        flat_x = x.reshape(-1, self.in_features)
        flat_grad = grad_output.reshape(-1, self.out_features)
        self.weight.grad += flat_x.T @ flat_grad
        if self.bias is not None:
            self.bias.grad += flat_grad.sum(axis=0)
        grad_input = grad_output @ self.weight.data.T
        return grad_input

    def forward_det(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward with shape-independent accumulation.

        Used by the KV-cached decoding path: the result for any row is
        bit-identical whether the row is computed alone or as part of a
        batch (see :func:`repro.nn.functional.det_matmul`).  Quantization
        (when the policy requires it) is elementwise, so the property holds
        under every policy.  Does not cache anything for backward.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        return self.ops.linear_det(
            x,
            self.weight.data,
            None if self.bias is None else self.bias.data,
            block=self.block_k,
        )


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min(num_embeddings, embedding_dim) < 1:
            raise ValueError("num_embeddings and embedding_dim must be >= 1")
        rng = rng or np.random.default_rng()
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self._cache_ids: np.ndarray | None = None

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if np.any(token_ids < 0) or np.any(token_ids >= self.num_embeddings):
            raise ValueError("token id out of range for the embedding table")
        self._cache_ids = token_ids
        return self.weight.data[token_ids]

    def backward(self, grad_output: np.ndarray) -> None:
        if self._cache_ids is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        flat_ids = self._cache_ids.reshape(-1)
        flat_grad = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, flat_ids, flat_grad)
        return None  # token ids have no gradient


class LayerNorm(Module):
    """Trainable exact layer normalization over the last axis.

    ``z = gamma * (x - mean) / sqrt(var + eps) + beta``.  This is the module
    trained with the model; at evaluation time the model's precision policy
    (:meth:`~repro.nn.model.OPTLanguageModel.set_policy`) can substitute an
    approximate normalizer that reuses the trained ``gamma`` / ``beta``, and
    rounds the normalizer output to the policy's activation format.
    """

    #: Policy-aware op layer; replaced by the owning model's ``set_policy``.
    ops = PASSTHROUGH_OPS

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        if normalized_dim < 1:
            raise ValueError(f"normalized_dim must be >= 1, got {normalized_dim}")
        self.normalized_dim = int(normalized_dim)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(normalized_dim))
        self.beta = Parameter(np.zeros(normalized_dim))
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        #: Optional evaluation-time replacement (callable on the same shape);
        #: installed by the model's precision policy.
        self.eval_normalizer = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"expected last dim {self.normalized_dim}, got {x.shape[-1]}"
            )
        if self.eval_normalizer is not None and not self.training:
            return self.ops.act(self.eval_normalizer(x))
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, x - mean)
        out = self.gamma.data * x_hat + self.beta.data
        if not self.training:
            out = self.ops.act(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, _ = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float64)
        d = self.normalized_dim

        flat_grad = grad_output.reshape(-1, d)
        flat_xhat = x_hat.reshape(-1, d)
        self.gamma.grad += (flat_grad * flat_xhat).sum(axis=0)
        self.beta.grad += flat_grad.sum(axis=0)

        dxhat = grad_output * self.gamma.data
        # Standard layer-norm input gradient.
        mean_dxhat = dxhat.mean(axis=-1, keepdims=True)
        mean_dxhat_xhat = (dxhat * x_hat).mean(axis=-1, keepdims=True)
        grad_input = inv_std * (dxhat - mean_dxhat - x_hat * mean_dxhat_xhat)
        return grad_input


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.0, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_output, dtype=np.float64)
        return np.asarray(grad_output, dtype=np.float64) * self._mask
