"""Pure-NumPy decoder-only transformer substrate (OPT-style).

The paper's LLM-level evaluation (Table IV) swaps the layer-normalization
modules of pre-trained OPT-125M / OPT-350M models for IterL2Norm and measures
the perplexity change.  Pre-trained OPT checkpoints and PyTorch are not
available offline, so this package provides the substrate needed to run the
same experiment end to end in NumPy:

* :mod:`~repro.nn.module` — parameter / module base classes with explicit
  forward + backward (no autograd dependency).
* :mod:`~repro.nn.functional` — softmax, GELU, cross-entropy, and their
  gradients.
* :mod:`~repro.nn.layers` — Linear, Embedding, trainable LayerNorm, Dropout.
* :mod:`~repro.nn.attention` — masked multi-head self-attention.
* :mod:`~repro.nn.block` — the pre-LN decoder block used by OPT.
* :mod:`~repro.nn.config` / :mod:`~repro.nn.model` — OPT-style model
  configurations and the language model itself.  Every config carries a
  :class:`~repro.precision.policy.PrecisionPolicy`; ``model.set_policy``
  applies the emulated datapath formats and the paper's normalizer swap in
  one move (``replace_layernorm`` remains as policy-deriving sugar).
* :mod:`~repro.nn.optimizer` / :mod:`~repro.nn.trainer` — Adam/SGD and a
  small training loop so the evaluation runs on a *trained* model rather
  than random weights.
* :mod:`~repro.nn.generation` — greedy / top-k sampling for the examples.
* :mod:`~repro.nn.executor` — pluggable execution backends (``reference``
  and the pre-fused ``compiled`` plan); byte-identical tokens, faster
  dispatch.
"""

from repro.nn.config import OPT_CONFIGS, OPTConfig
from repro.nn.executor import (
    EXECUTORS,
    CompiledExecutor,
    ModelExecutor,
    ReferenceExecutor,
    resolve_executor,
)
from repro.nn.model import OPTLanguageModel
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.block import TransformerDecoderBlock
from repro.nn.optimizer import Adam, SGD
from repro.nn.trainer import Trainer, TrainingConfig
from repro.nn.generation import generate, generate_batch
from repro.nn.kv_cache import KVCache, LayerKVCache

__all__ = [
    "EXECUTORS",
    "CompiledExecutor",
    "KVCache",
    "LayerKVCache",
    "ModelExecutor",
    "ReferenceExecutor",
    "generate_batch",
    "resolve_executor",
    "Adam",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "MultiHeadSelfAttention",
    "OPTConfig",
    "OPT_CONFIGS",
    "OPTLanguageModel",
    "SGD",
    "Trainer",
    "TrainingConfig",
    "TransformerDecoderBlock",
    "generate",
]
