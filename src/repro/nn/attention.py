"""Masked multi-head self-attention (the paper's decoder sub-block)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import (
    causal_mask,
    causal_mask_offset,
    softmax_backward,
)
from repro.nn.kv_cache import LayerKVCache
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.precision.ops import PASSTHROUGH_OPS


class MultiHeadSelfAttention(Module):
    """Causal multi-head self-attention with separate Q/K/V/O projections.

    Parameters
    ----------
    embed_dim:
        Model (embedding) dimension ``d_model``.
    num_heads:
        Number of attention heads; must divide ``embed_dim``.
    dropout:
        Dropout probability applied to the attention weights while training.
    rng:
        Random generator used for weight initialization and dropout.
    """

    #: Policy-aware op layer; replaced by the owning model's ``set_policy``.
    ops = PASSTHROUGH_OPS

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if embed_dim % num_heads != 0:
            raise ValueError(
                f"embed_dim {embed_dim} must be divisible by num_heads {num_heads}"
            )
        rng = rng or np.random.default_rng()
        self.embed_dim = int(embed_dim)
        self.num_heads = int(num_heads)
        self.head_dim = embed_dim // num_heads

        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)
        # Row-shardable reduction boundary: the out-projection's contraction
        # runs through the fixed-block summation tree so a tensor-parallel
        # row split of its weight reproduces the same bytes.
        self.out_proj.block_k = True
        self.attn_dropout = Dropout(dropout, rng=rng)
        self._cache: dict[str, np.ndarray] | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, seq, d_model) -> (batch, heads, seq, head_dim)."""
        b, s, _ = x.shape
        return x.reshape(b, s, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, heads, seq, head_dim) -> (batch, seq, d_model)."""
        b, h, s, hd = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * hd)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[-1] != self.embed_dim:
            raise ValueError(
                f"expected input of shape (batch, seq, {self.embed_dim}), got {x.shape}"
            )
        b, s, _ = x.shape
        # Training always runs the exact float64 path; evaluation routes
        # through the policy's op layer (a passthrough under fp64-ref).
        ops = PASSTHROUGH_OPS if self.training else self.ops
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = ops.attn_scores(q, k.transpose(0, 1, 3, 2), scale) + causal_mask(s)
        weights = ops.softmax(scores, axis=-1)
        weights_dropped = self.attn_dropout(weights)
        context = ops.matmul(weights_dropped, v)
        out = self.out_proj(self._merge_heads(context))

        self._cache = {
            "q": q,
            "k": k,
            "v": v,
            "weights": weights,
            "weights_dropped": weights_dropped,
            "scale": np.asarray(scale),
        }
        return out

    def forward_cached(self, x: np.ndarray, kv: LayerKVCache) -> np.ndarray:
        """Inference-only forward that appends to and attends over ``kv``.

        ``x`` holds only the *new* token positions ``(batch, new_seq, d)``;
        keys/values of earlier positions come from the cache.  Runs entirely
        through :func:`~repro.nn.functional.det_matmul`, so the output for a
        token is bit-identical whether it is decoded incrementally or as
        part of a full-prefix prefill.  Dropout is skipped (eval-time path)
        and nothing is cached for backward.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[-1] != self.embed_dim:
            raise ValueError(
                f"expected input of shape (batch, seq, {self.embed_dim}), got {x.shape}"
            )
        _, s, _ = x.shape
        ops = self.ops
        q = self._split_heads(self.q_proj.forward_det(x))
        k_new = self._split_heads(self.k_proj.forward_det(x))
        v_new = self._split_heads(self.v_proj.forward_det(x))
        k_all, v_all = kv.append(k_new, v_new)
        total = k_all.shape[2]

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = ops.attn_scores_det(q, k_all.transpose(0, 1, 3, 2), scale)
        scores = scores + causal_mask_offset(s, total)
        weights = ops.det_softmax(scores, axis=-1)
        context = ops.matmul_det(weights, v_all)
        return self.out_proj.forward_det(self._merge_heads(context))

    def forward_ragged(
        self, x: np.ndarray, kvs, new_lens: np.ndarray
    ) -> np.ndarray:
        """Masked ragged-batch forward over left-padded new tokens.

        ``x`` is ``(batch, max_new, d)`` with each row's ``new_lens[r]``
        real tokens right-aligned (leading positions are pad lanes).
        ``kvs`` is a sequence of per-row single-sequence caches — anything
        with the :meth:`~repro.nn.kv_cache.LayerKVCache.append` protocol
        returning ``(k_all, v_all)`` of shape ``(1, heads, total, head_dim)``
        (a :class:`~repro.nn.kv_cache.LayerKVCache` or a pooled layer view
        from :mod:`repro.serve.kv_pool`).

        The Q/K/V/O projections run batched over the padded matrix — safe,
        because :func:`~repro.nn.functional.det_matmul` makes every output
        element an independent dot product.  The attention contraction is
        the one place the pad mask matters: instead of adding ``-inf`` to a
        dense padded score matrix (see
        :func:`~repro.nn.functional.ragged_attention_mask`, which defines
        the semantics), each row's scores/softmax/context are computed over
        exactly that row's keys.  Slicing the pads off keeps the softmax
        denominator and context accumulation orders identical to the
        unpadded computation, so a row's output is bit-identical to
        :meth:`forward_cached` on that row alone — the guarantee the
        continuous-batching server's exactness tests pin down.

        Pad lanes of the output carry garbage (never NaN) and must be
        ignored by the caller; every downstream op is per-token, so they
        cannot contaminate real lanes.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[-1] != self.embed_dim:
            raise ValueError(
                f"expected input of shape (batch, seq, {self.embed_dim}), got {x.shape}"
            )
        new_lens = np.asarray(new_lens, dtype=np.int64)
        batch, max_new, _ = x.shape
        if new_lens.shape != (batch,) or len(kvs) != batch:
            raise ValueError(
                f"need one kv cache and one new_len per row, got batch={batch}, "
                f"len(kvs)={len(kvs)}, new_lens shape {new_lens.shape}"
            )
        if np.any(new_lens < 1) or np.any(new_lens > max_new):
            raise ValueError(f"new_lens must be in [1, {max_new}], got {new_lens}")

        ops = self.ops
        q = self._split_heads(self.q_proj.forward_det(x))
        k_new = self._split_heads(self.k_proj.forward_det(x))
        v_new = self._split_heads(self.v_proj.forward_det(x))

        scale = 1.0 / np.sqrt(self.head_dim)
        context = np.zeros_like(q)
        for r, kv in enumerate(kvs):
            n = int(new_lens[r])
            pad = max_new - n
            k_all, v_all = kv.append(
                k_new[r : r + 1, :, pad:], v_new[r : r + 1, :, pad:]
            )
            total = k_all.shape[2]
            scores = ops.attn_scores_det(
                q[r : r + 1, :, pad:], k_all.transpose(0, 1, 3, 2), scale
            )
            scores = scores + causal_mask_offset(n, total)
            weights = ops.det_softmax(scores, axis=-1)
            context[r : r + 1, :, pad:] = ops.matmul_det(weights, v_all)
        return self.out_proj.forward_det(self._merge_heads(context))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        q, k, v = cache["q"], cache["k"], cache["v"]
        weights = cache["weights"]
        weights_dropped = cache["weights_dropped"]
        scale = float(cache["scale"])

        grad_context_merged = self.out_proj.backward(np.asarray(grad_output, dtype=np.float64))
        b, s, _ = grad_context_merged.shape
        grad_context = self._split_heads(grad_context_merged)

        grad_weights_dropped = grad_context @ v.transpose(0, 1, 3, 2)
        grad_v = weights_dropped.transpose(0, 1, 3, 2) @ grad_context

        grad_weights = self.attn_dropout.backward(grad_weights_dropped)
        grad_scores = softmax_backward(grad_weights, weights, axis=-1)

        grad_q = (grad_scores @ k) * scale
        grad_k = (grad_scores.transpose(0, 1, 3, 2) @ q) * scale

        grad_x = self.q_proj.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.k_proj.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.v_proj.backward(self._merge_heads(grad_v))
        return grad_x
