"""Autoregressive text generation helpers (greedy and top-k sampling).

Two decoding paths are provided:

* the **KV-cached path** (default): prompt tokens are prefilled once and
  every subsequent step projects only the newly generated token, reusing
  the per-layer key/value activations stored in a
  :class:`~repro.nn.kv_cache.KVCache` — O(1) projection work per token;
* the **uncached path** (``use_cache=False``): the full prefix is re-run
  through the model on every step, as the original implementation did.

:func:`generate_batch` decodes several equal-length prompts together,
sharing one batched forward pass (and one KV cache) per step.  Both
functions accept ``stop_tokens``: a sequence that produces one stops
immediately (the stop token is kept in the output) and — in the batched
case — stops consuming forward passes while the other rows continue.

For serving *ragged* prompts arriving over time, see :mod:`repro.serve`,
which schedules requests into a continuously batched decode loop while
preserving these functions' greedy token streams bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.nn.executor import resolve_executor
from repro.nn.functional import softmax
from repro.nn.model import OPTLanguageModel


def _validate(max_new_tokens: int, temperature: float, top_k: int | None) -> None:
    if max_new_tokens < 0:
        raise ValueError(f"max_new_tokens must be non-negative, got {max_new_tokens}")
    if temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")


def _stop_set(stop_tokens) -> frozenset[int]:
    """Normalize ``stop_tokens`` (None, scalar, or iterable) to a set of ids."""
    if stop_tokens is None:
        return frozenset()
    if np.isscalar(stop_tokens):
        return frozenset((int(stop_tokens),))
    return frozenset(int(t) for t in stop_tokens)


def select_token(
    logits: np.ndarray,
    temperature: float,
    top_k: int | None,
    rng: np.random.Generator,
) -> int:
    """Pick the next token id from a 1-D logits vector.

    Shared by the generation loops here and the continuous-batching server
    (:mod:`repro.serve.engine`), so both sample identically from identical
    logits and generators.
    """
    if temperature <= 1e-8:
        return int(np.argmax(logits))
    scaled = logits / temperature
    if top_k is not None and top_k < scaled.size:
        cutoff = np.partition(scaled, -top_k)[-top_k]
        scaled = np.where(scaled < cutoff, -np.inf, scaled)
    probs = softmax(scaled)
    return int(rng.choice(probs.size, p=probs))


def generate(
    model: OPTLanguageModel,
    prompt_ids: np.ndarray,
    max_new_tokens: int = 32,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
    use_cache: bool = True,
    stop_tokens=None,
    backend: str | None = None,
) -> np.ndarray:
    """Generate tokens autoregressively from a prompt.

    Parameters
    ----------
    model:
        The language model (put into eval mode by this function).
    prompt_ids:
        1-D array of prompt token ids.
    max_new_tokens:
        Number of tokens to append.
    temperature:
        Softmax temperature; ``0`` (or very small) degenerates to greedy.
    top_k:
        When set, sample only from the ``top_k`` most likely tokens.
    rng:
        Random generator for sampling (greedy decoding ignores it).
    use_cache:
        Reuse per-layer key/value activations between steps (default).
        ``False`` re-runs the full prefix each step.  Both paths apply the
        same sliding-window semantics once the context exceeds
        ``max_position`` — at which point the cached path falls back to the
        plain full-window forward, since a slid window would force a full
        re-prefill per step anyway.  The two paths use different matmul
        kernels (deterministic einsum vs BLAS), whose results can differ in
        the last ulp; a near-exact tie between the top two logits can
        therefore resolve differently between them.  The cached path's
        exactness guarantee is *within itself*: incremental decoding is
        bit-identical to re-prefilling the same prefix through
        :meth:`~repro.nn.model.OPTLanguageModel.forward_with_cache`.
    stop_tokens:
        Optional token id, or iterable of ids, that end generation early.
        A produced stop token is kept as the final output token and no
        further forward passes run.
    backend:
        Execution backend (:data:`~repro.nn.executor.EXECUTORS` name or
        instance; ``None`` = reference).  Backends never change a token.

    Returns
    -------
    numpy.ndarray
        1-D array containing the prompt followed by the generated tokens
        (fewer than ``max_new_tokens`` if a stop token was produced).
    """
    _validate(max_new_tokens, temperature, top_k)
    rng = rng or np.random.default_rng()
    stops = _stop_set(stop_tokens)
    model.eval()
    executor = resolve_executor(backend, model)
    tokens = list(np.asarray(prompt_ids, dtype=np.int64).reshape(-1))
    if not tokens:
        raise ValueError("prompt_ids must contain at least one token")
    if max_new_tokens == 0:
        return np.asarray(tokens, dtype=np.int64)

    max_pos = model.config.max_position
    if not use_cache:
        for _ in range(max_new_tokens):
            context = np.asarray(tokens[-max_pos:], dtype=np.int64)[None, :]
            logits = executor.forward(context)[0, -1]
            tokens.append(select_token(logits, temperature, top_k, rng))
            if tokens[-1] in stops:
                break
        return np.asarray(tokens, dtype=np.int64)

    cache = model.new_kv_cache()
    context = np.asarray(tokens[-max_pos:], dtype=np.int64)[None, :]
    logits = executor.forward_with_cache(context, cache, last_only=True)[0, -1]
    produced = 0
    while produced < max_new_tokens:
        tokens.append(select_token(logits, temperature, top_k, rng))
        produced += 1
        if tokens[-1] in stops or produced == max_new_tokens:
            return np.asarray(tokens, dtype=np.int64)
        if cache.seq_len >= max_pos:
            break  # window slid past max_position: the cache can't help anymore
        new = np.asarray([[tokens[-1]]], dtype=np.int64)
        logits = executor.forward_with_cache(new, cache, last_only=True)[0, -1]
    # Sliding-window tail: once the context exceeds max_position every step
    # needs a full-window forward regardless, so run the remaining steps
    # through the fast BLAS path (identical to use_cache=False).
    for _ in range(max_new_tokens - produced):
        context = np.asarray(tokens[-max_pos:], dtype=np.int64)[None, :]
        logits = executor.forward(context)[0, -1]
        tokens.append(select_token(logits, temperature, top_k, rng))
        if tokens[-1] in stops:
            break
    return np.asarray(tokens, dtype=np.int64)


def generate_batch(
    model: OPTLanguageModel,
    prompt_ids: np.ndarray,
    max_new_tokens: int = 32,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
    stop_tokens=None,
    pad_token_id: int = 0,
    backend: str | None = None,
) -> np.ndarray:
    """KV-cached batched decoding of several equal-length prompts.

    Each decode step runs one batched forward over all sequences, so the
    per-step cost is amortized across the batch.  Sampling uses one child
    generator per row (spawned from ``rng`` with
    :meth:`numpy.random.Generator.spawn`), so a row's sampled tokens depend
    only on ``rng``'s seed and the row's index — **not** on which other
    rows share the batch, nor on when those rows stop.  Decoding the same
    prompt at the same row index therefore yields the same tokens whatever
    the rest of the batch contains (the test suite asserts this).

    Unlike :func:`generate`, the batched decoder stays on the deterministic
    matmul path even after the context window slides (rebuilding the cache
    from the trailing window each step): under greedy decoding
    (``temperature=0``) every row is bit-identical to running this function
    on that prompt alone, at some cost on very long outputs.

    Parameters
    ----------
    prompt_ids:
        2-D array ``(batch, prompt_len)`` of token ids.
    stop_tokens:
        Optional token id, or iterable of ids, that finish a row early.
        The stop token is kept in the row's output; the row's remaining
        positions are filled with ``pad_token_id`` and the row stops
        consuming forward passes (finished rows are compacted out of the
        batch, shrinking the per-step cost as sequences retire).
    pad_token_id:
        Filler for positions after a row's stop token (default 0).
    backend:
        Execution backend (:data:`~repro.nn.executor.EXECUTORS` name or
        instance; ``None`` = reference).  Backends never change a token.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(batch, prompt_len + max_new_tokens)``.
    """
    _validate(max_new_tokens, temperature, top_k)
    rng = rng or np.random.default_rng()
    stops = _stop_set(stop_tokens)
    prompts = np.asarray(prompt_ids, dtype=np.int64)
    if prompts.ndim != 2 or prompts.shape[1] < 1:
        raise ValueError(
            f"prompt_ids must be (batch, prompt_len >= 1), got shape {prompts.shape}"
        )
    model.eval()
    executor = resolve_executor(backend, model)
    batch = prompts.shape[0]
    if max_new_tokens == 0:
        return prompts.copy()
    row_rngs = rng.spawn(batch)

    max_pos = model.config.max_position
    out = np.full(
        (batch, prompts.shape[1] + max_new_tokens), pad_token_id, dtype=np.int64
    )
    out[:, : prompts.shape[1]] = prompts
    lengths = np.full(batch, prompts.shape[1])  # tokens filled per row
    active = np.arange(batch)  # original row index per live cache row

    sequences = prompts.copy()  # rows of `active`, in cache-row order
    cache = model.new_kv_cache()
    logits = executor.forward_with_cache(sequences[:, -max_pos:], cache, last_only=True)[:, -1]
    for step in range(max_new_tokens):
        next_tokens = np.asarray(
            [
                select_token(row, temperature, top_k, row_rngs[orig])
                for row, orig in zip(logits, active)
            ],
            dtype=np.int64,
        )
        sequences = np.concatenate([sequences, next_tokens[:, None]], axis=1)
        out[active, lengths[active]] = next_tokens
        lengths[active] += 1
        if step + 1 == max_new_tokens:
            break  # no further token will be sampled; skip the forward
        if stops:
            keep = np.asarray([t not in stops for t in next_tokens])
            if not np.all(keep):
                active = active[keep]
                if active.size == 0:
                    break
                sequences = sequences[keep]
                next_tokens = next_tokens[keep]
                cache.select_rows(keep)
        if cache.seq_len >= max_pos:
            cache = model.new_kv_cache()
            logits = executor.forward_with_cache(sequences[:, -max_pos:], cache, last_only=True)[:, -1]
        else:
            logits = executor.forward_with_cache(next_tokens[:, None], cache, last_only=True)[:, -1]
    return out
