"""Autoregressive text generation helpers (greedy and top-k sampling)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.model import OPTLanguageModel


def generate(
    model: OPTLanguageModel,
    prompt_ids: np.ndarray,
    max_new_tokens: int = 32,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate tokens autoregressively from a prompt.

    Parameters
    ----------
    model:
        The language model (put into eval mode by this function).
    prompt_ids:
        1-D array of prompt token ids.
    max_new_tokens:
        Number of tokens to append.
    temperature:
        Softmax temperature; ``0`` (or very small) degenerates to greedy.
    top_k:
        When set, sample only from the ``top_k`` most likely tokens.
    rng:
        Random generator for sampling (greedy decoding ignores it).

    Returns
    -------
    numpy.ndarray
        1-D array containing the prompt followed by the generated tokens.
    """
    if max_new_tokens < 0:
        raise ValueError(f"max_new_tokens must be non-negative, got {max_new_tokens}")
    if temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")

    rng = rng or np.random.default_rng()
    model.eval()
    tokens = list(np.asarray(prompt_ids, dtype=np.int64).reshape(-1))
    if not tokens:
        raise ValueError("prompt_ids must contain at least one token")

    max_pos = model.config.max_position
    for _ in range(max_new_tokens):
        context = np.asarray(tokens[-max_pos:], dtype=np.int64)[None, :]
        logits = model(context)[0, -1]
        if temperature <= 1e-8:
            next_token = int(np.argmax(logits))
        else:
            scaled = logits / temperature
            if top_k is not None and top_k < scaled.size:
                cutoff = np.partition(scaled, -top_k)[-top_k]
                scaled = np.where(scaled < cutoff, -np.inf, scaled)
            probs = softmax(scaled)
            next_token = int(rng.choice(probs.size, p=probs))
        tokens.append(next_token)
    return np.asarray(tokens, dtype=np.int64)
