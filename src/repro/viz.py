"""Terminal (ASCII) plotting for the reproduced figures.

The paper's figures are line plots, histograms, and pie charts.  In an
offline, matplotlib-free environment the experiment drivers still benefit
from a quick visual check, so this module renders:

* :func:`line_plot` — one or more (x, y) series on a character grid with a
  logarithmic-y option (used for Fig. 3/4/5 style plots);
* :func:`bar_chart` — labelled horizontal bars (used for the Fig. 6
  breakdowns and the histogram insets of Fig. 3).

The functions return strings so they compose with the reporting utilities
and can be asserted on in tests.
"""

from __future__ import annotations

import numpy as np


def _scale(values: np.ndarray, size: int, log: bool) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if log:
        if np.any(values <= 0):
            raise ValueError("logarithmic scaling requires strictly positive values")
        values = np.log10(values)
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return np.full(values.shape, (size - 1) // 2, dtype=int)
    return np.round((values - lo) / (hi - lo) * (size - 1)).astype(int)


def line_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: str | None = None,
) -> str:
    """Render one or more series as an ASCII scatter/line plot.

    Parameters
    ----------
    series:
        Mapping of label to ``(x, y)`` arrays.  Each series gets its own
        marker character (cycled from ``*+ox#@``).
    width, height:
        Character-grid dimensions of the plotting area.
    log_y:
        Plot ``log10(y)`` instead of ``y``.
    title:
        Optional heading.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 10 or height < 4:
        raise ValueError("plot area too small (need width >= 10, height >= 4)")
    markers = "*+ox#@"

    all_x = np.concatenate([np.asarray(x, dtype=np.float64) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=np.float64) for _, y in series.values()])
    if any(np.asarray(x).size != np.asarray(y).size for x, y in series.values()):
        raise ValueError("every series must have matching x and y lengths")

    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    for idx, (label, (x, y)) in enumerate(series.items()):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x_hi == x_lo:
            cols = np.full(x.shape, (width - 1) // 2, dtype=int)
        else:
            cols = np.round((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int)
        # Scale y against the global range so series are comparable.
        combined = np.concatenate([all_y, y])
        rows = _scale(combined, height, log_y)[all_y.size :]
        marker = markers[idx % len(markers)]
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    y_label_hi = f"{all_y.max():.3g}"
    y_label_lo = f"{all_y.min():.3g}"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        prefix = y_label_hi if i == 0 else (y_label_lo if i == height - 1 else "")
        lines.append(f"{prefix:>10s} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11s}{x_lo:<10.4g}{'':{max(width - 20, 1)}s}{x_hi:>10.4g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a labelled horizontal bar chart.

    Bars are scaled so the largest value spans ``width`` characters; each row
    shows the label, the bar, and the numeric value.
    """
    if not values:
        raise ValueError("at least one value is required")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart expects non-negative values")
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        length = 0 if peak == 0 else int(round(value / peak * width))
        bar = "#" * length
        lines.append(f"{label:<{label_width}s} |{bar:<{width}s}| {value:.4g}{unit}")
    return "\n".join(lines)


def histogram_chart(
    counts: np.ndarray,
    edges: np.ndarray,
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render a histogram (e.g. the Fig. 3 insets) as a bar chart."""
    counts = np.asarray(counts)
    edges = np.asarray(edges, dtype=np.float64)
    if counts.size + 1 != edges.size:
        raise ValueError("edges must have one more element than counts")
    labels = {
        f"[{edges[i]:.1e}, {edges[i + 1]:.1e})": float(counts[i]) for i in range(counts.size)
    }
    return bar_chart(labels, width=width, title=title)
