"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment drivers and the auxiliary
models:

* ``precision`` — Fig. 3 sweep (and the d=384 histogram).
* ``compare``   — Table I (IterL2Norm vs FISR at the OPT lengths).
* ``convergence`` — Fig. 4 (error vs iteration count).
* ``latency``   — Fig. 5 (macro latency sweep).
* ``synthesis`` — Table II + Fig. 6 + Table III.
* ``llm``       — Table IV (train the substrate models and swap normalizers).
* ``traffic``   — the host-vs-on-chip data-movement motivation analysis.
* ``throughput`` — the multi-vector batching/throughput model.
* ``serve-bench`` — the continuous-batching serving benchmark
  (traffic scenarios x swapped normalizers, writes ``BENCH_serve.json``;
  ``--policy`` serves under a named precision policy;
  ``--decode-strategy prompt-lookup`` compares speculative decoding
  against its one-token baseline on the copy-heavy grid).
* ``cluster-bench`` — the multi-replica cluster serving benchmark
  (replica counts x routing policies x scenarios, writes
  ``BENCH_cluster.json``; ``prefix-affinity`` routing is compared
  against the ``round-robin`` baseline per cell).
* ``shard-bench`` — the parallel serving benchmark (tensor-shard counts
  or pipeline stage counts x fan-out drivers x scenarios, each cell
  paired with its N=1 / P=1 twin and the reference backend, writes
  ``BENCH_shard.json`` or — with ``--mode pipeline`` —
  ``BENCH_pipeline.json``; token digests prove partitioning never
  changes a byte).
* ``precision-sweep`` — the (precision policy x normalizer) grid of
  perplexity + serving cells (writes ``BENCH_precision.json``).
* ``all``       — everything, in paper order.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.perplexity import LLMEvalConfig


def _cmd_precision(args) -> None:
    from repro.experiments import fig3

    print(fig3.run(trials=args.trials, seed=args.seed)[1])


def _cmd_compare(args) -> None:
    from repro.experiments import table1

    print(table1.run(trials=args.trials, seed=args.seed)[1])


def _cmd_convergence(args) -> None:
    from repro.experiments import fig4

    print(fig4.run(trials=args.trials, seed=args.seed)[1])


def _cmd_latency(args) -> None:
    from repro.experiments import fig5

    print(fig5.run()[1])


def _cmd_synthesis(args) -> None:
    from repro.experiments import fig6, table2, table3

    print(table2.run()[1])
    print()
    print(fig6.run()[1])
    print()
    print(table3.run()[1])


def _cmd_llm(args) -> None:
    from repro.experiments import table4

    config = LLMEvalConfig(train_steps=args.train_steps)
    if args.quick:
        config = LLMEvalConfig(
            tasks=("wikitext2-sim",),
            models=("opt-125m-sim",),
            formats=("fp32",),
            step_counts=(3, 5, 10),
            train_steps=min(args.train_steps, 60),
            eval_windows=8,
        )
    print(table4.run(config)[1])


def _cmd_traffic(args) -> None:
    from repro.experiments.reports import run_traffic_job

    print(
        run_traffic_job(
            embed_dim=args.embed_dim, fmt=args.format, interface=args.interface
        )[1]
    )


def _cmd_throughput(args) -> None:
    from repro.experiments.reports import run_throughput_job

    print(
        run_throughput_job(
            embed_dim=args.embed_dim, tokens_per_second=args.tokens_per_second
        )[1]
    )


def _resolve_shard_backend(args, command: str) -> str:
    """Compose ``--shards``/``--shard-driver`` into a backend spec.

    ``--shards N`` is shorthand for ``--backend sharded:N:<driver>``; the
    two spellings must not disagree, so combining ``--shards`` with an
    explicit non-default ``--backend`` is a usage error.
    """
    if getattr(args, "shards", None) is None:
        return args.backend
    if args.backend != "reference":
        raise SystemExit(
            f"{command}: --shards conflicts with --backend {args.backend!r}; "
            f"use one spelling"
        )
    return f"sharded:{args.shards}:{args.shard_driver}"


def _add_tier_arguments(p) -> None:
    """The cold-KV-tier flags, shared by the serving benchmark commands.

    Arming the tier (``--tier-blocks`` / ``--tier-ratio``) pairs every
    cell with an untiered evict-only twin and adds ``tier_comparison``
    to the artifact; both flags require ``--prefix-caching``.
    """
    p.add_argument(
        "--tier-blocks", type=int, default=None, metavar="N",
        help="cold-tier capacity in blocks: prefix blocks that pool "
             "pressure would evict are demoted (re-quantized) into the "
             "tier instead and promoted back on a prefix hit — requires "
             "--prefix-caching; pairs every cell with an untiered twin",
    )
    p.add_argument(
        "--tier-ratio", type=float, default=None, metavar="R",
        help="cold-tier capacity as a fraction of --max-blocks "
             "(0 <= R <= 1; alternative to --tier-blocks)",
    )
    p.add_argument(
        "--tier-fmt", default=None, metavar="FMT",
        help="cold-tier storage format (default: the policy's KV-cache "
             "format, which round-trips exactly; a narrower format makes "
             "the tier lossy, so cold hits re-prefill instead of "
             "promoting — exactness over reuse)",
    )
    p.add_argument(
        "--slo-aware", action="store_true",
        help="rank preemption victims by modeled recompute cost within "
             "the lowest priority class (macro memory-interface cost "
             "model) instead of pure arrival order",
    )


def _cmd_serve_bench(args) -> None:
    from repro.serve.bench import run_bench

    backend = _resolve_shard_backend(args, "serve-bench")
    try:
        run_bench(
            quick=args.quick,
            jobs_n=args.jobs,
            seed=args.seed,
            out_path=args.out,
            scenarios=args.scenarios or None,
            normalizers=tuple(args.normalizers.split(",")),
            cache_dir=args.cache_dir,
            use_cache=args.use_cache,
            no_cache=args.no_cache,
            policy=args.policy,
            prefix_caching=args.prefix_caching,
            prefill_budget=args.prefill_budget,
            max_blocks=args.max_blocks,
            block_size=args.block_size,
            priority_mix=args.priority_mix,
            decode_strategy=args.decode_strategy,
            ngram=args.ngram,
            max_draft=args.max_draft,
            copy_rate=args.copy_rate,
            backend=backend,
            policies=tuple(args.policies.split(",")) if args.policies else None,
            repeats=args.repeats,
            tier_blocks=args.tier_blocks,
            tier_ratio=args.tier_ratio,
            tier_fmt=args.tier_fmt,
            slo_aware=args.slo_aware,
        )
    except (ValueError, KeyError) as exc:
        # Flag mistakes (bad --ngram/--max-draft/--backend/--scenarios
        # combinations) should read as usage errors, not tracebacks.
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(f"serve-bench: {message}")


def _cmd_cluster_bench(args) -> None:
    from repro.cluster.bench import run_cluster_bench

    try:
        replicas = tuple(int(r) for r in args.replicas.split(","))
    except ValueError:
        raise SystemExit(
            f"cluster-bench: --replicas must be a comma-separated list of "
            f"integers, got {args.replicas!r}"
        )
    capacity_weights = None
    if args.capacity_weights:
        try:
            capacity_weights = [
                float(w) for w in args.capacity_weights.split(",")
            ]
        except ValueError:
            raise SystemExit(
                f"cluster-bench: --capacity-weights must be a comma-separated "
                f"list of numbers, got {args.capacity_weights!r}"
            )
    try:
        run_cluster_bench(
            quick=args.quick,
            jobs_n=args.jobs,
            seed=args.seed,
            out_path=args.out,
            scenarios=args.scenarios or None,
            routings=tuple(args.routing.split(",")),
            replicas=replicas,
            sessions=args.sessions,
            cache_dir=args.cache_dir,
            use_cache=args.use_cache,
            no_cache=args.no_cache,
            policy=args.policy,
            rate_scale=args.rate_scale,
            max_batch_size=args.max_batch_size,
            block_size=args.block_size,
            prefill_budget=args.prefill_budget,
            max_blocks=args.max_blocks,
            backend=args.backend,
            capacity_weights=capacity_weights,
            tier_blocks=args.tier_blocks,
            tier_ratio=args.tier_ratio,
            tier_fmt=args.tier_fmt,
            slo_aware=args.slo_aware,
        )
    except (ValueError, KeyError) as exc:
        # Same contract as serve-bench: bad --routing/--replicas/--policy
        # presets are one-line usage errors, not worker tracebacks.
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(f"cluster-bench: {message}")


def _cmd_shard_bench(args) -> None:
    from repro.shard.bench import run_shard_bench

    try:
        shards = tuple(int(n) for n in args.shards.split(","))
    except ValueError:
        raise SystemExit(
            f"shard-bench: --shards must be a comma-separated list of "
            f"integers, got {args.shards!r}"
        )
    try:
        stages = tuple(int(p) for p in args.stages.split(","))
    except ValueError:
        raise SystemExit(
            f"shard-bench: --stages must be a comma-separated list of "
            f"integers, got {args.stages!r}"
        )
    try:
        run_shard_bench(
            quick=args.quick,
            jobs_n=args.jobs,
            seed=args.seed,
            out_path=args.out,
            scenarios=args.scenarios or None,
            shards=shards,
            drivers=tuple(args.drivers.split(",")),
            policies=tuple(args.policies.split(",")),
            model_name=args.model,
            max_batch_size=args.max_batch_size,
            rate_scale=args.rate_scale,
            repeats=args.repeats,
            mode=args.mode,
            stages=stages,
            stage_shards=args.stage_shards,
            pin_workers=args.pin_workers,
            prefix_caching=args.prefix_caching,
            max_blocks=args.max_blocks,
            tier_blocks=args.tier_blocks,
            tier_ratio=args.tier_ratio,
            tier_fmt=args.tier_fmt,
            slo_aware=args.slo_aware,
            cache_dir=args.cache_dir,
            use_cache=args.use_cache,
            no_cache=args.no_cache,
        )
    except (ValueError, KeyError) as exc:
        # Same contract as serve-bench: bad --shards/--drivers/--policies
        # presets are one-line usage errors, not worker tracebacks.
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(f"shard-bench: {message}")


def _cmd_precision_sweep(args) -> None:
    from repro.experiments.precision_sweep import run_sweep

    run_sweep(
        quick=args.quick,
        jobs_n=args.jobs,
        seed=args.seed,
        out_path=args.out,
        policies=tuple(args.policies.split(",")),
        normalizers=tuple(args.normalizers.split(",")),
        cache_dir=args.cache_dir,
        use_cache=args.use_cache,
        no_cache=args.no_cache,
    )


def _cmd_all(args) -> None:
    from repro.experiments.runner import run_all

    run_all(
        quick=args.quick,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        seed=args.seed,
        include_serve=args.serve,
        include_precision=args.precision,
        include_cluster=args.cluster,
        policy=args.policy,
        backend=args.backend,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("precision", help="Fig. 3 precision sweep")
    p.add_argument("--trials", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_precision)

    p = sub.add_parser("compare", help="Table I IterL2Norm vs FISR")
    p.add_argument("--trials", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("convergence", help="Fig. 4 error vs iteration count")
    p.add_argument("--trials", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_convergence)

    p = sub.add_parser("latency", help="Fig. 5 macro latency sweep")
    p.set_defaults(func=_cmd_latency)

    p = sub.add_parser("synthesis", help="Table II, Fig. 6, Table III reports")
    p.set_defaults(func=_cmd_synthesis)

    p = sub.add_parser("llm", help="Table IV LLM-level evaluation")
    p.add_argument("--train-steps", type=int, default=150)
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_llm)

    p = sub.add_parser("traffic", help="host vs on-chip data movement analysis")
    p.add_argument("--embed-dim", type=int, default=768)
    p.add_argument("--format", default="fp16")
    p.add_argument("--interface", choices=("pcie4", "ddr4", "hbm2"), default="ddr4")
    p.set_defaults(func=_cmd_traffic)

    p = sub.add_parser("throughput", help="multi-vector throughput model")
    p.add_argument("--embed-dim", type=int, default=768)
    p.add_argument("--tokens-per-second", type=float, default=1e5)
    p.set_defaults(func=_cmd_throughput)

    from repro.engine.options import add_engine_arguments

    p = sub.add_parser(
        "serve-bench",
        help="continuous-batching serving benchmark (writes BENCH_serve.json)",
    )
    p.add_argument("--quick", action="store_true", help="12 requests per scenario")
    p.add_argument("--out", default="BENCH_serve.json", metavar="PATH")
    p.add_argument(
        "--scenarios", nargs="*", metavar="NAME",
        help="subset of scenarios (default: steady bursty chat codegen)",
    )
    p.add_argument(
        "--normalizers", default="baseline,iterl2norm",
        help="comma-separated normalizer variants to compare",
    )
    p.add_argument(
        "--use-cache", action="store_true",
        help="replay token-identical cells from the result cache "
             "(off by default: cached timings defeat a benchmark)",
    )
    p.add_argument(
        "--policy", default="fp64-ref",
        help="precision policy of the served model "
             "(fp64-ref, fp32, fp16, bf16, bf16-fp8kv, ...)",
    )
    p.add_argument(
        "--prefix-caching", action="store_true",
        help="share prompt-prefix KV blocks across requests "
             "(copy-on-write protected; tokens are unchanged)",
    )
    p.add_argument(
        "--prefill-budget", type=int, default=None, metavar="TOKENS",
        help="per-iteration cap on prefilled prompt tokens: long prompts "
             "stream in as chunks interleaved with decode rows",
    )
    p.add_argument(
        "--max-blocks", type=int, default=None, metavar="N",
        help="bound the KV pool at N blocks; exhaustion then preempts "
             "lowest-priority requests (re-run deterministically) instead "
             "of growing — required for a nonzero preempt column",
    )
    p.add_argument(
        "--block-size", type=int, default=None, metavar="TOKENS",
        help="token positions per KV block (default 16; smaller blocks "
             "make --max-blocks bounds and prefix sharing finer-grained)",
    )
    p.add_argument(
        "--priority-mix", default=None, metavar="P:W,...",
        help="override request priority classes, e.g. '2:0.2,1:0.3,0:0.5' "
             "(larger priority = more urgent)",
    )
    p.add_argument(
        "--decode-strategy", default="one-token",
        choices=("one-token", "prompt-lookup"),
        help="decode strategy: 'prompt-lookup' adds draft-free n-gram "
             "speculation, pairs every cell with its one-token baseline "
             "(identical tokens, fewer model steps), and defaults the "
             "grid to the copy-heavy scenarios",
    )
    p.add_argument(
        "--ngram", type=int, default=None, metavar="N",
        help="longest n-gram the prompt-lookup speculator matches "
             "(default 3)",
    )
    p.add_argument(
        "--max-draft", type=int, default=None, metavar="K",
        help="max draft tokens verified per speculative step (default 4)",
    )
    p.add_argument(
        "--copy-rate", type=float, default=None, metavar="R",
        help="copied-prompt fraction of the summarize-copy scenario "
             "(0 <= R < 1; default 0.6)",
    )
    p.add_argument(
        "--backend", default="reference",
        help="execution backend: 'compiled' runs the pre-fused executor, "
             "'sharded:N[:sim|process][:pin]' the tensor-sharded one, "
             "'pipeline:P[+sharded:N][:sim|process][:pin]' the "
             "pipeline-parallel one; any non-reference backend pairs "
             "every cell with its reference twin (identical tokens) and "
             "adds backend_comparison to the artifact",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shorthand for --backend sharded:N:<driver> (see "
             "--shard-driver); N must divide 12",
    )
    p.add_argument(
        "--shard-driver", default="process",
        choices=("sim", "process"),
        help="fan-out driver used with --shards: 'process' runs real "
             "worker processes over shared memory (default), 'sim' "
             "in-process simulated shards",
    )
    p.add_argument(
        "--policies", default=None, metavar="P,...",
        help="comma-separated precision policies to sweep the grid over "
             "(overrides --policy); with a non-reference --backend this "
             "produces the per-preset executor-parity artifact",
    )
    p.add_argument(
        "--repeats", type=int, default=1, metavar="K",
        help="run each cell K times and keep the fastest (noise control, "
             "same as shard-bench; token digests must be identical "
             "across repeats)",
    )
    _add_tier_arguments(p)
    add_engine_arguments(p)
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser(
        "cluster-bench",
        help="multi-replica cluster serving benchmark "
             "(replicas x routing policies, writes BENCH_cluster.json)",
    )
    p.add_argument("--quick", action="store_true", help="12 sessions per scenario")
    p.add_argument("--out", default="BENCH_cluster.json", metavar="PATH")
    p.add_argument(
        "--scenarios", nargs="*", metavar="NAME",
        help="subset of scenarios (default: chat-multiturn agent-fanout)",
    )
    p.add_argument(
        "--routing", default="round-robin,least-loaded,prefix-affinity",
        metavar="P,...",
        help="comma-separated routing policies to sweep "
             "(round-robin, least-loaded, prefix-affinity)",
    )
    p.add_argument(
        "--replicas", default="2", metavar="R,...",
        help="comma-separated replica counts to sweep (each >= 1)",
    )
    p.add_argument(
        "--sessions", type=int, default=None, metavar="N",
        help="size workloads in sessions (a chat conversation or fan-out "
             "group each); scales to tens of thousands",
    )
    p.add_argument(
        "--rate-scale", type=float, default=4.0, metavar="S",
        help="multiply every scenario's arrival rate (default 4.0: the "
             "shared-prefix scenarios under enough load that routing "
             "placement matters)",
    )
    p.add_argument(
        "--max-batch-size", type=int, default=4, metavar="N",
        help="decode slots per replica (cluster capacity = R x N)",
    )
    p.add_argument(
        "--capacity-weights", default=None, metavar="W,W,...",
        help="relative per-replica capacities, e.g. 2,1 for a 2x-skewed "
             "pair (scales each replica's decode slots; load-aware "
             "routing divides load by weight)",
    )
    p.add_argument(
        "--block-size", type=int, default=8, metavar="TOKENS",
        help="KV block size (smaller = finer-grained prefix sharing)",
    )
    p.add_argument(
        "--prefill-budget", type=int, default=None, metavar="TOKENS",
        help="per-iteration chunked-prefill cap, per replica",
    )
    p.add_argument(
        "--max-blocks", type=int, default=None, metavar="N",
        help="bound each replica's KV pool at N blocks (exhaustion "
             "preempts deterministically; required by --tier-ratio)",
    )
    p.add_argument(
        "--policy", default="fp64-ref",
        help="precision policy of the served model",
    )
    p.add_argument(
        "--backend", default="reference",
        help="execution backend of every replica ('reference', 'compiled', "
             "'sharded:N[:sim|process][:pin]' or "
             "'pipeline:P[+sharded:N][:sim|process][:pin]'; process-driver "
             "replicas share one warm worker pool)",
    )
    p.add_argument(
        "--use-cache", action="store_true",
        help="replay cells from the result cache (off by default)",
    )
    _add_tier_arguments(p)
    add_engine_arguments(p)
    p.set_defaults(func=_cmd_cluster_bench)

    p = sub.add_parser(
        "shard-bench",
        help="parallel serving benchmark (shard counts or pipeline stages "
             "x drivers x scenarios, each cell paired with its N=1 / P=1 "
             "twin; writes BENCH_shard.json or BENCH_pipeline.json)",
    )
    p.add_argument("--quick", action="store_true", help="12 requests per scenario")
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="output artifact (default: BENCH_shard.json, or "
             "BENCH_pipeline.json with --mode pipeline)",
    )
    p.add_argument(
        "--scenarios", nargs="*", metavar="NAME",
        help="subset of scenarios (default: steady bursty chat codegen)",
    )
    p.add_argument(
        "--mode", default="sharded", choices=("sharded", "pipeline"),
        help="parallel axis the grid sweeps: 'sharded' sweeps --shards "
             "(tensor parallel), 'pipeline' sweeps --stages (layer "
             "parallel, plus the worker-pool reuse measurement)",
    )
    p.add_argument(
        "--shards", default="1,2,4", metavar="N,...",
        help="comma-separated shard counts to sweep (each must divide 12; "
             "the N=1 twin anchors the scaling ratios)",
    )
    p.add_argument(
        "--stages", default="1,2", metavar="P,...",
        help="comma-separated pipeline stage counts to sweep with --mode "
             "pipeline (each <= the model's layer count; the P=1 twin "
             "anchors the scaling ratios)",
    )
    p.add_argument(
        "--stage-shards", type=int, default=1, metavar="N",
        help="tensor-shard count within each pipeline stage (composed "
             "pipeline:P+sharded:N topology; P*N <= 4)",
    )
    p.add_argument(
        "--pin-workers", action="store_true",
        help="pin each worker process to a core round-robin via "
             "sched_setaffinity (no-op with a warning where unsupported)",
    )
    p.add_argument(
        "--drivers", default="process,sim", metavar="D,...",
        help="comma-separated fan-out drivers to sweep (process, sim)",
    )
    p.add_argument(
        "--policies", default="fp64-ref,bf16-fp8kv", metavar="P,...",
        help="comma-separated precision policies per cell",
    )
    p.add_argument(
        "--model", default="opt-350m-sim", metavar="NAME",
        help="substrate model config served by every cell",
    )
    p.add_argument(
        "--max-batch-size", type=int, default=16, metavar="N",
        help="decode slots of the serving engine (large enough steps "
             "that fan-out cost amortizes)",
    )
    p.add_argument(
        "--rate-scale", type=float, default=2.0, metavar="S",
        help="multiply every scenario's arrival rate",
    )
    p.add_argument(
        "--repeats", type=int, default=3, metavar="K",
        help="run each cell K times and keep the fastest (noise control; "
             "token digests must be identical across repeats)",
    )
    p.add_argument(
        "--use-cache", action="store_true",
        help="replay cells from the result cache (off by default: cached "
             "timings defeat a benchmark)",
    )
    p.add_argument(
        "--prefix-caching", action="store_true",
        help="share prompt-prefix KV blocks across requests in every cell "
             "(required by the cold-tier flags)",
    )
    p.add_argument(
        "--max-blocks", type=int, default=None, metavar="N",
        help="bound every cell's KV pool at N blocks (required by "
             "--tier-ratio)",
    )
    _add_tier_arguments(p)
    add_engine_arguments(p)
    p.set_defaults(func=_cmd_shard_bench)

    p = sub.add_parser(
        "precision-sweep",
        help="(precision policy x normalizer) perplexity + serving grid "
             "(writes BENCH_precision.json)",
    )
    p.add_argument("--quick", action="store_true", help="tiny model, 8 requests/cell")
    p.add_argument("--out", default="BENCH_precision.json", metavar="PATH")
    p.add_argument(
        "--policies", default="fp64-ref,fp32,fp16,bf16,bf16-fp8kv",
        help="comma-separated precision policies to sweep",
    )
    p.add_argument(
        "--normalizers", default="baseline,iterl2norm",
        help="comma-separated normalizer variants per policy",
    )
    p.add_argument(
        "--use-cache", action="store_true",
        help="replay cells from the result cache (off by default: the "
             "serving columns are measured timings)",
    )
    add_engine_arguments(p)
    p.set_defaults(func=_cmd_precision_sweep)

    p = sub.add_parser("all", help="regenerate every table and figure")
    p.add_argument("--quick", action="store_true")
    p.add_argument(
        "--serve", action="store_true",
        help="also run the serving benchmark section (timing-sensitive)",
    )
    p.add_argument(
        "--precision", action="store_true",
        help="also run the precision-policy sweep section",
    )
    p.add_argument(
        "--cluster", action="store_true",
        help="also run the multi-replica cluster serving section",
    )
    p.add_argument(
        "--policy", default="fp64-ref",
        help="precision policy of the serve-bench section's model",
    )
    p.add_argument(
        "--backend", default="reference",
        help="execution backend of the serve-bench section's engine "
             "('reference', 'compiled' or 'sharded:N[:sim|process]')",
    )
    add_engine_arguments(p)
    p.set_defaults(func=_cmd_all)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
