"""Word-level tokenizer with a frequency-built vocabulary.

A deliberately simple tokenizer: lowercased whitespace/punctuation splitting,
a vocabulary built from token frequencies with a maximum size, and the three
special tokens the substrate needs (padding, unknown, end-of-text).  The
Table IV reproduction only requires a stable text -> integer mapping whose
statistics differ between the two corpora; sub-word modelling would add
nothing to what the experiment measures.
"""

from __future__ import annotations

import re
from collections import Counter

import numpy as np

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+|[.,!?;:']")


class WordTokenizer:
    """Word-level tokenizer with special tokens.

    Special ids: 0 = ``<pad>``, 1 = ``<unk>``, 2 = ``<eot>`` (end of text).
    """

    PAD = "<pad>"
    UNK = "<unk>"
    EOT = "<eot>"
    SPECIALS = (PAD, UNK, EOT)

    def __init__(self, max_vocab_size: int = 512) -> None:
        if max_vocab_size <= len(self.SPECIALS):
            raise ValueError(
                f"max_vocab_size must exceed the {len(self.SPECIALS)} special tokens"
            )
        self.max_vocab_size = int(max_vocab_size)
        self.token_to_id: dict[str, int] = {tok: i for i, tok in enumerate(self.SPECIALS)}
        self.id_to_token: list[str] = list(self.SPECIALS)

    # -- vocabulary -------------------------------------------------------------
    @staticmethod
    def split(text: str) -> list[str]:
        """Split text into lowercase word/punctuation tokens."""
        return _TOKEN_PATTERN.findall(text.lower())

    def fit(self, texts: list[str] | str) -> "WordTokenizer":
        """Build the vocabulary from one or more documents (most frequent first)."""
        if isinstance(texts, str):
            texts = [texts]
        counts: Counter[str] = Counter()
        for text in texts:
            counts.update(self.split(text))
        budget = self.max_vocab_size - len(self.SPECIALS)
        for token, _ in counts.most_common(budget):
            if token not in self.token_to_id:
                self.token_to_id[token] = len(self.id_to_token)
                self.id_to_token.append(token)
        return self

    @property
    def vocab_size(self) -> int:
        """Current vocabulary size including special tokens."""
        return len(self.id_to_token)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[self.PAD]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[self.UNK]

    @property
    def eot_id(self) -> int:
        return self.token_to_id[self.EOT]

    # -- encode / decode ----------------------------------------------------------
    def encode(self, text: str, append_eot: bool = False) -> np.ndarray:
        """Encode text into an integer id array (unknown words map to <unk>)."""
        ids = [self.token_to_id.get(tok, self.unk_id) for tok in self.split(text)]
        if append_eot:
            ids.append(self.eot_id)
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: np.ndarray, skip_special: bool = True) -> str:
        """Decode an id array back into a space-joined string."""
        words = []
        for i in np.asarray(ids, dtype=np.int64).reshape(-1):
            if i < 0 or i >= self.vocab_size:
                raise ValueError(f"token id {int(i)} outside vocabulary of size {self.vocab_size}")
            token = self.id_to_token[int(i)]
            if skip_special and token in self.SPECIALS:
                continue
            words.append(token)
        return " ".join(words)
