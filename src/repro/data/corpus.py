"""Seeded synthetic corpora standing in for WikiText-2 and Blended Skill Talk.

The normalizer-swap experiment only needs two text distributions with
different token statistics; it does not depend on the semantics of the
corpora.  Both generators build a small world model (topic-specific word
pools plus sentence templates) and expand it with a seeded random generator,
so repeated runs produce identical corpora:

* :func:`generate_wikitext_like_corpus` — declarative, encyclopedic sentences
  organised into titled sections, mimicking the structure of WikiText-2.
* :func:`generate_bst_like_corpus` — two-speaker small-talk dialogues with
  persona statements, mimicking Blended Skill Talk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CorpusSpec:
    """Generation parameters for a synthetic corpus.

    Attributes
    ----------
    name:
        Corpus identifier ("wikitext2-sim", "bst-sim").
    num_documents:
        Number of articles / dialogues generated.
    sentences_per_document:
        Sentences (or dialogue turns) per document.
    seed:
        Seed of the generator; two specs with the same seed produce the same
        text.
    """

    name: str
    num_documents: int = 64
    sentences_per_document: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_documents < 1 or self.sentences_per_document < 1:
            raise ValueError("num_documents and sentences_per_document must be >= 1")


_WIKI_TOPICS = {
    "river": ["valley", "delta", "basin", "tributary", "flood", "bank", "bridge", "water"],
    "empire": ["dynasty", "emperor", "treaty", "province", "conquest", "decline", "capital", "army"],
    "physics": ["particle", "energy", "quantum", "field", "theory", "experiment", "measurement", "wave"],
    "music": ["symphony", "composer", "orchestra", "melody", "harmony", "concert", "movement", "chord"],
    "island": ["coast", "volcano", "harbor", "reef", "settlement", "climate", "trade", "fishing"],
    "railway": ["station", "locomotive", "track", "gauge", "tunnel", "freight", "signal", "junction"],
}

_WIKI_TEMPLATES = [
    "the {a} of the {topic} was described in early records as a {b} of great importance .",
    "during the nineteenth century the {topic} developed a notable {a} near the {b} .",
    "historians argue that the {a} influenced the {b} more than any other {topic} .",
    "the {topic} is known for its {a} , which remains a subject of {b} studies .",
    "several sources document the {a} and the {b} associated with the {topic} .",
    "in modern surveys the {topic} is classified by its {a} and its {b} .",
]

_BST_PERSONAS = [
    "i love hiking in the mountains",
    "i work as a chef in a small restaurant",
    "my favorite hobby is painting landscapes",
    "i have two dogs and a very old cat",
    "i recently moved to a new city for work",
    "i play the guitar in a weekend band",
    "i am training for my first marathon",
    "i collect vintage science fiction novels",
]

_BST_OPENERS = [
    "hi there , how has your week been ?",
    "hello ! what have you been up to lately ?",
    "hey , nice to meet you . tell me about yourself .",
    "good evening , do you have any plans for the weekend ?",
]

_BST_REPLIES = [
    "that sounds wonderful , {persona} so i really understand .",
    "oh interesting ! {persona} , which keeps me quite busy .",
    "i know the feeling . {persona} and it changed my routine .",
    "me too in a way , {persona} so we have something in common .",
    "that must be exciting . honestly {persona} most days .",
    "wow , tell me more . by the way {persona} .",
]


def generate_wikitext_like_corpus(spec: CorpusSpec | None = None) -> str:
    """Generate an encyclopedic, WikiText-2-like corpus as a single string."""
    spec = spec or CorpusSpec(name="wikitext2-sim")
    rng = np.random.default_rng(spec.seed)
    topics = list(_WIKI_TOPICS)
    documents = []
    for _ in range(spec.num_documents):
        topic = topics[int(rng.integers(len(topics)))]
        words = _WIKI_TOPICS[topic]
        lines = [f"= the {topic} ="]
        for _ in range(spec.sentences_per_document):
            template = _WIKI_TEMPLATES[int(rng.integers(len(_WIKI_TEMPLATES)))]
            a, b = rng.choice(words, size=2, replace=False)
            lines.append(template.format(topic=topic, a=a, b=b))
        documents.append("\n".join(lines))
    return "\n\n".join(documents)


def generate_bst_like_corpus(spec: CorpusSpec | None = None) -> str:
    """Generate a two-speaker, Blended-Skill-Talk-like dialogue corpus."""
    spec = spec or CorpusSpec(name="bst-sim", seed=1)
    rng = np.random.default_rng(spec.seed)
    dialogues = []
    for _ in range(spec.num_documents):
        persona_a = _BST_PERSONAS[int(rng.integers(len(_BST_PERSONAS)))]
        persona_b = _BST_PERSONAS[int(rng.integers(len(_BST_PERSONAS)))]
        lines = [f"your persona : {persona_a} .", f"partner persona : {persona_b} ."]
        lines.append("speaker a : " + _BST_OPENERS[int(rng.integers(len(_BST_OPENERS)))])
        for turn in range(spec.sentences_per_document):
            persona = persona_b if turn % 2 == 0 else persona_a
            speaker = "speaker b" if turn % 2 == 0 else "speaker a"
            reply = _BST_REPLIES[int(rng.integers(len(_BST_REPLIES)))]
            lines.append(f"{speaker} : " + reply.format(persona=persona))
        dialogues.append("\n".join(lines))
    return "\n\n".join(dialogues)


#: Named corpus generators used by the experiments ("wikitext2-sim", "bst-sim").
CORPUS_GENERATORS = {
    "wikitext2-sim": generate_wikitext_like_corpus,
    "bst-sim": generate_bst_like_corpus,
}


def generate_corpus(name: str, spec: CorpusSpec | None = None) -> str:
    """Generate a named corpus ("wikitext2-sim" or "bst-sim")."""
    if name not in CORPUS_GENERATORS:
        known = ", ".join(sorted(CORPUS_GENERATORS))
        raise KeyError(f"unknown corpus {name!r}; known: {known}")
    return CORPUS_GENERATORS[name](spec)
