"""Dataset utilities: tokenized corpora, splits, and evaluation windows."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import CorpusSpec, generate_corpus
from repro.data.tokenizer import WordTokenizer


@dataclass
class TextDataset:
    """A tokenized corpus with a train/validation split.

    Attributes
    ----------
    name:
        Corpus name the dataset was built from.
    tokenizer:
        The fitted :class:`~repro.data.tokenizer.WordTokenizer`.
    train_tokens / valid_tokens:
        1-D integer arrays of token ids.
    """

    name: str
    tokenizer: WordTokenizer
    train_tokens: np.ndarray
    valid_tokens: np.ndarray

    @property
    def vocab_size(self) -> int:
        """Vocabulary size of the fitted tokenizer."""
        return self.tokenizer.vocab_size

    def eval_windows(self, seq_len: int, max_windows: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Non-overlapping (inputs, targets) windows from the validation split.

        Returns two arrays of shape ``(num_windows, seq_len)`` where targets
        are the inputs shifted by one token — the standard language-model
        perplexity evaluation layout.
        """
        if seq_len < 2:
            raise ValueError(f"seq_len must be >= 2, got {seq_len}")
        tokens = self.valid_tokens
        num_windows = (tokens.size - 1) // seq_len
        if num_windows < 1:
            raise ValueError(
                f"validation split of {tokens.size} tokens is too short for seq_len {seq_len}"
            )
        if max_windows is not None:
            num_windows = min(num_windows, max_windows)
        inputs = np.stack(
            [tokens[i * seq_len : i * seq_len + seq_len] for i in range(num_windows)]
        )
        targets = np.stack(
            [tokens[i * seq_len + 1 : i * seq_len + seq_len + 1] for i in range(num_windows)]
        )
        return inputs, targets


def build_dataset(
    name: str,
    spec: CorpusSpec | None = None,
    max_vocab_size: int = 512,
    valid_fraction: float = 0.2,
) -> TextDataset:
    """Generate, tokenize, and split a named synthetic corpus.

    Parameters
    ----------
    name:
        "wikitext2-sim" or "bst-sim".
    spec:
        Optional generation parameters (document counts, seed).
    max_vocab_size:
        Vocabulary budget of the tokenizer.
    valid_fraction:
        Fraction of the token stream held out for evaluation.
    """
    if not 0.0 < valid_fraction < 1.0:
        raise ValueError(f"valid_fraction must be in (0, 1), got {valid_fraction}")
    text = generate_corpus(name, spec)
    tokenizer = WordTokenizer(max_vocab_size=max_vocab_size).fit(text)
    tokens = tokenizer.encode(text, append_eot=True)
    split = int(round(tokens.size * (1.0 - valid_fraction)))
    if split < 2 or tokens.size - split < 2:
        raise ValueError("corpus too small to split; increase num_documents")
    return TextDataset(
        name=name,
        tokenizer=tokenizer,
        train_tokens=tokens[:split],
        valid_tokens=tokens[split:],
    )
