"""Synthetic text data substrate.

The paper evaluates on WikiText-2 and Blended Skill Talk (BST), which cannot
be downloaded offline.  This package generates two seeded synthetic corpora
that preserve the properties the experiment depends on — two tasks with
different token statistics flowing through the same model — plus a word-level
tokenizer and windowed dataset utilities:

* :mod:`~repro.data.tokenizer` — whitespace/word-level tokenizer with a
  frequency-built vocabulary and special tokens.
* :mod:`~repro.data.corpus` — Markov-chain generators for a wikitext-like
  "encyclopedic" corpus and a BST-like two-speaker dialogue corpus.
* :mod:`~repro.data.datasets` — train/validation splits and fixed-length
  evaluation windows.
"""

from repro.data.tokenizer import WordTokenizer
from repro.data.corpus import (
    CorpusSpec,
    generate_bst_like_corpus,
    generate_wikitext_like_corpus,
)
from repro.data.datasets import TextDataset, build_dataset

__all__ = [
    "CorpusSpec",
    "TextDataset",
    "WordTokenizer",
    "build_dataset",
    "generate_bst_like_corpus",
    "generate_wikitext_like_corpus",
]
