"""The ``shard-bench`` harness: shard count × driver × scenario grid.

Every grid cell serves one traffic scenario on a ``sharded:N:driver``
backend; the same (scenario, policy) is also served on the ``reference``
backend and — via the ``N=1`` cell of each driver — on a single-shard
twin that pays the full fan-out machinery with none of the parallelism.
Because the workloads are fully seeded, all rows of a (scenario, policy)
group see literally identical traffic, so the artifact proves two things
at once:

* **Exactness** — every row carries a ``token_digest`` checksum of its
  served streams; ``shard_comparison`` records per cell whether it
  matches both the ``N=1`` twin of its own driver (``tokens_match``) and
  the reference backend (``tokens_match_reference``).  Sharding may move
  timings, never a token.
* **Scaling** — ``tokens_per_second_ratio`` is each cell's throughput
  relative to its ``N=1`` twin: the honest measure of what tensor
  parallelism buys once the per-step fan-out cost is already paid.  The
  ``process`` driver pays real IPC through shared-memory activation
  rings; the ``sim`` driver isolates the algorithmic overlap ceiling.

Results land in ``BENCH_shard.json``::

    {
      "config":  {...},
      "results": [ {scenario, policy, backend, token_digest, metrics} ... ],
      "shard_comparison": {
        "<scenario>/<policy>/<driver>": {
          "N=2": {"tokens_match": true, "tokens_match_reference": true,
                   "tokens_per_second_ratio": ...}, ...
        }
      }
    }

Cells run through the experiment engine's scheduler like every other
bench; the result cache stays disabled by default to keep timing honest.
"""

from __future__ import annotations

import json
import sys

from repro.engine import Job, ResultCache, run_jobs
from repro.nn.functional import DET_ATOMS
from repro.serve.bench import (
    DEFAULT_SCENARIOS,
    validate_policies,
    validate_scenarios,
)
from repro.shard.executor import DRIVERS

#: Shard counts benchmarked by default: the single-shard twin plus the
#: counts a small host can still overlap profitably.
DEFAULT_SHARDS = (1, 2, 4)

#: Fan-out drivers benchmarked by default (``process`` first — it is the
#: headline measurement; ``sim`` shows the overlap ceiling).
DEFAULT_DRIVERS = ("process", "sim")

#: Precision presets swept by default: the exact substrate plus the most
#: aggressive quantized preset (the hardest bit-exactness case).
DEFAULT_POLICIES = ("fp64-ref", "bf16-fp8kv")

#: Default substrate: the larger sim config, with batch size and arrival
#: rate raised so steps carry enough tokens that fan-out cost amortizes —
#: the regime tensor parallelism exists for.  The tiny-dim configs
#: (``opt-test``, ``opt-125m-sim``) stay available via ``--model`` but
#: under-fill N=4 shards (24-column slices) on purpose-built hosts.
DEFAULT_MODEL = "opt-350m-sim"
DEFAULT_MAX_BATCH_SIZE = 16
DEFAULT_RATE_SCALE = 2.0


def validate_shards(shards) -> None:
    """Reject shard counts the deterministic split cannot serve."""
    valid = [n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0]
    for n in shards:
        if int(n) not in valid:
            raise ValueError(
                f"--shards entries must divide DET_ATOMS={DET_ATOMS} "
                f"(valid: {valid}), got {n}"
            )


def validate_drivers(drivers) -> None:
    for driver in drivers:
        if driver not in DRIVERS:
            known = ", ".join(DRIVERS)
            raise ValueError(
                f"unknown shard driver {driver!r} (known: {known})"
            )


def run_shard_cell(repeats: int = 3, **params) -> tuple[dict, str]:
    """One grid cell, run ``repeats`` times; keeps the fastest repeat.

    Serving timings on a shared host are noisy — a background stall
    during any one run can swing a cell's tokens/sec by tens of percent,
    drowning the scaling signal the grid exists to measure.  Best-of-K is
    the standard antidote: the minimum-interference repeat is the closest
    observable to the machine's true throughput.  Tokens must not vary at
    all, so the repeats double as a determinism check: every repeat's
    ``token_digest`` must be identical or the cell fails outright.
    """
    from repro.serve.bench import run_scenario

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = None
    digests = set()
    for _ in range(repeats):
        rows, text = run_scenario(**params)
        digests.add(rows["token_digest"])
        if (
            best is None
            or rows["metrics"]["tokens_per_second"]
            > best[0]["metrics"]["tokens_per_second"]
        ):
            best = (rows, text)
    if len(digests) != 1:
        raise RuntimeError(
            f"token digests varied across {repeats} repeats of an identical "
            f"cell ({sorted(digests)}): serving is no longer deterministic"
        )
    rows, text = best
    rows["repeats"] = int(repeats)
    return rows, text


def jobs(
    quick: bool = True,
    seed: int = 0,
    scenarios=None,
    shards=DEFAULT_SHARDS,
    drivers=DEFAULT_DRIVERS,
    policies=DEFAULT_POLICIES,
    repeats: int = 3,
    **params,
) -> list[Job]:
    """One serve cell per (scenario, policy, backend).

    The backend axis is ``reference`` plus ``sharded:N:driver`` for every
    (driver, N) pair; all cells of a (scenario, policy) group share seed
    and traffic.  Each cell runs ``repeats`` times and reports its
    fastest repeat (see :func:`run_shard_cell`).  Extra ``params``
    (``model_name``, ``max_batch_size``, ``rate_scale``, ...) are
    forwarded into every cell and its cache key.
    """
    names = list(scenarios) if scenarios else list(DEFAULT_SCENARIOS)
    validate_scenarios(names)
    backends = ["reference"] + [
        f"sharded:{int(n)}:{driver}" for driver in drivers for n in shards
    ]
    declared = []
    for scenario in names:
        for policy in policies:
            for backend in backends:
                declared.append(
                    Job(
                        name=f"shard[{scenario}/{policy}/{backend}]",
                        target="repro.shard.bench:run_shard_cell",
                        params={
                            "repeats": int(repeats),
                            "scenario": scenario,
                            "normalizer": "baseline",
                            "quick": bool(quick),
                            "policy": policy,
                            "backend": backend,
                            **params,
                        },
                        seed=seed,
                    )
                )
    return declared


def _parse_backend(backend: str):
    """``(n, driver)`` for a sharded row, ``None`` for reference rows."""
    if not backend.startswith("sharded:"):
        return None
    _, n, driver = backend.split(":")
    return int(n), driver


def shard_comparison(results: list[dict]) -> dict:
    """Digest equality and scaling per ``scenario/policy/driver`` group.

    Each sharded row is compared against the ``N=1`` twin of its own
    driver (same scenario, policy, seed — identical traffic and identical
    fan-out machinery) and against the reference backend.  A ``False`` in
    either ``tokens_match`` field means the deterministic reduction broke
    bit-exactness, and the artifact itself proves it.
    """
    reference = {
        (row["scenario"], row["policy"]): row
        for row in results
        if _parse_backend(row["backend"]) is None
    }
    twins = {}
    for row in results:
        parsed = _parse_backend(row["backend"])
        if parsed and parsed[0] == 1:
            twins[(row["scenario"], row["policy"], parsed[1])] = row
    comparison: dict[str, dict] = {}
    for row in results:
        parsed = _parse_backend(row["backend"])
        if parsed is None:
            continue
        n, driver = parsed
        twin = twins.get((row["scenario"], row["policy"], driver))
        ref = reference.get((row["scenario"], row["policy"]))
        twin_tps = twin["metrics"]["tokens_per_second"] if twin else None
        cell = f"{row['scenario']}/{row['policy']}/{driver}"
        comparison.setdefault(cell, {})[f"N={n}"] = {
            "tokens_match": (
                twin is not None and row["token_digest"] == twin["token_digest"]
            ),
            "tokens_match_reference": (
                ref is not None and row["token_digest"] == ref["token_digest"]
            ),
            "tokens_per_second": row["metrics"]["tokens_per_second"],
            "twin_tokens_per_second": twin_tps,
            "tokens_per_second_ratio": (
                row["metrics"]["tokens_per_second"] / twin_tps
                if twin_tps
                else None
            ),
        }
    return comparison


def run_shard_bench(
    quick: bool = True,
    jobs_n: int = 1,
    seed: int = 0,
    out_path: str = "BENCH_shard.json",
    scenarios=None,
    shards=DEFAULT_SHARDS,
    drivers=DEFAULT_DRIVERS,
    policies=DEFAULT_POLICIES,
    model_name: str = DEFAULT_MODEL,
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    rate_scale: float = DEFAULT_RATE_SCALE,
    repeats: int = 3,
    cache_dir=None,
    use_cache: bool = False,
    no_cache: bool = False,
    stream=None,
) -> tuple[dict, str]:
    """Run the scenario × policy × (driver, N) grid and write ``out_path``.

    Flag validation mirrors ``serve-bench``: unknown scenarios, precision
    presets, shard counts, or drivers raise a ``ValueError`` before any
    job runs (the CLI turns them into one-line usage errors).
    """
    stream = stream or sys.stdout
    shards = tuple(int(n) for n in shards)
    validate_shards(shards)
    validate_drivers(drivers)
    validate_policies(policies)
    if scenarios:
        validate_scenarios(scenarios)
    declared = jobs(
        quick=quick, seed=seed, scenarios=scenarios, shards=shards,
        drivers=drivers, policies=policies, repeats=int(repeats),
        model_name=model_name, max_batch_size=int(max_batch_size),
        rate_scale=float(rate_scale),
    )
    cache = ResultCache(cache_dir) if use_cache else None
    outcomes = run_jobs(
        declared, max_workers=jobs_n, cache=cache, no_cache=no_cache,
        stream=sys.stderr,
    )

    results = [outcome.rows for outcome in outcomes]
    lines = [
        "scenario       normalizer   strategy      backend        tokens/s"
        "       TTFT p50 /    p99        ITL p50   queue   pool      prefix"
        "    preempt    speculation",
    ]
    lines += [outcome.text for outcome in outcomes]
    comparison = shard_comparison(results)
    payload = {
        "config": {
            "quick": bool(quick),
            "seed": int(seed),
            "scenarios": sorted({row["scenario"] for row in results}),
            "shards": list(shards),
            "drivers": list(drivers),
            "policies": list(policies),
            "model": model_name,
            "max_batch_size": int(max_batch_size),
            "rate_scale": float(rate_scale),
            "repeats": int(repeats),
        },
        "results": results,
        "shard_comparison": comparison,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    mismatches = sum(
        1
        for group in comparison.values()
        for cell in group.values()
        if not (cell["tokens_match"] and cell["tokens_match_reference"])
    )
    lines.append(
        f"digest mismatches: {mismatches} "
        f"across {sum(len(g) for g in comparison.values())} sharded cells"
    )
    lines.append(f"wrote {out_path}")
    text = "\n".join(lines)
    stream.write(text + "\n")
    return payload, text
