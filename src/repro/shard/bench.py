"""The ``shard-bench`` harness: parallel topology × driver × scenario grid.

Two modes share one machinery.  ``--mode sharded`` (the default) sweeps
tensor-shard counts: every grid cell serves one traffic scenario on a
``sharded:N:driver`` backend.  ``--mode pipeline`` sweeps pipeline stage
counts instead — ``pipeline:P[:driver]`` backends, optionally tensor-split
within each stage (``--stage-shards N`` → ``pipeline:P+sharded:N``) — and
additionally measures the persistent worker pool (cold fork vs warm
attach).  In both modes the same (scenario, policy) is also served on the
``reference`` backend and — via the single-shard / single-stage cell of
each driver — on a twin that pays the full fan-out machinery with none of
the parallelism.  Because the workloads are fully seeded, all rows of a
(scenario, policy) group see literally identical traffic, so the artifact
proves two things at once:

* **Exactness** — every row carries a ``token_digest`` checksum of its
  served streams; ``shard_comparison`` records per cell whether it
  matches both the twin of its own driver (``tokens_match``) and the
  reference backend (``tokens_match_reference``).  Partitioning may move
  timings, never a token.
* **Scaling** — ``tokens_per_second_ratio`` is each cell's throughput
  relative to its twin: the honest measure of what tensor or pipeline
  parallelism buys once the per-step fan-out cost is already paid.  The
  ``process`` driver pays real IPC through shared-memory activation
  rings; the ``sim`` driver isolates the algorithmic overlap ceiling.

Results land in ``BENCH_shard.json`` / ``BENCH_pipeline.json``::

    {
      "config":  {...},
      "results": [ {scenario, policy, backend, token_digest, metrics} ... ],
      "shard_comparison": {
        "<scenario>/<policy>/<driver>": {
          "N=2": {"tokens_match": true, "tokens_match_reference": true,
                   "tokens_per_second_ratio": ...},      # sharded mode
          "P=2": {...}, "P=2xN=2": {...},                # pipeline mode
        }
      },
      "pool_reuse": {"cold_prepare_s": ..., "warm_prepare_s": ...,
                      "speedup": ...}                     # pipeline mode
    }

Cells run through the experiment engine's scheduler like every other
bench; the result cache stays disabled by default to keep timing honest.
"""

from __future__ import annotations

import json
import sys
import time

from repro.engine import Job, ResultCache, run_jobs
from repro.nn.functional import DET_ATOMS
from repro.serve.bench import (
    DEFAULT_SCENARIOS,
    validate_policies,
    validate_scenarios,
    validate_tier,
)
from repro.shard.executor import DRIVERS, parse_pipeline_spec, parse_shard_spec

#: Bench modes: which parallel axis the grid sweeps.
MODES = ("sharded", "pipeline")

#: Shard counts benchmarked by default: the single-shard twin plus the
#: counts a small host can still overlap profitably.
DEFAULT_SHARDS = (1, 2, 4)

#: Pipeline stage counts benchmarked by default (the P=1 twin plus the
#: deepest split every built-in model supports).
DEFAULT_STAGES = (1, 2)

#: Fan-out drivers benchmarked by default (``process`` first — it is the
#: headline measurement; ``sim`` shows the overlap ceiling).
DEFAULT_DRIVERS = ("process", "sim")

#: Precision presets swept by default: the exact substrate plus the most
#: aggressive quantized preset (the hardest bit-exactness case).
DEFAULT_POLICIES = ("fp64-ref", "bf16-fp8kv")

#: Default substrate: the larger sim config, with batch size and arrival
#: rate raised so steps carry enough tokens that fan-out cost amortizes —
#: the regime tensor parallelism exists for.  The tiny-dim configs
#: (``opt-test``, ``opt-125m-sim``) stay available via ``--model`` but
#: under-fill N=4 shards (24-column slices) on purpose-built hosts.
DEFAULT_MODEL = "opt-350m-sim"
DEFAULT_MAX_BATCH_SIZE = 16
DEFAULT_RATE_SCALE = 2.0


def validate_shards(shards) -> None:
    """Reject shard counts the deterministic split cannot serve."""
    valid = [n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0]
    for n in shards:
        if int(n) not in valid:
            raise ValueError(
                f"--shards entries must divide DET_ATOMS={DET_ATOMS} "
                f"(valid: {valid}), got {n}"
            )


def validate_drivers(drivers) -> None:
    for driver in drivers:
        if driver not in DRIVERS:
            known = ", ".join(DRIVERS)
            raise ValueError(
                f"unknown shard driver {driver!r} (known: {known})"
            )


def validate_stages(stages, num_layers=None) -> None:
    """Reject stage counts the layer partition cannot serve."""
    for p in stages:
        p = int(p)
        if p < 1:
            raise ValueError(f"--stages entries must be >= 1, got {p}")
        if num_layers is not None and p > num_layers:
            raise ValueError(
                f"--stages entry {p} exceeds the model's {num_layers} "
                f"decoder layers (each stage needs at least one layer)"
            )


def pipeline_backend(
    num_stages: int, num_shards: int = 1, driver: str = "sim",
    pin: bool = False,
) -> str:
    """Canonical spec string for a pipeline topology."""
    spec = f"pipeline:{int(num_stages)}"
    if int(num_shards) > 1:
        spec += f"+sharded:{int(num_shards)}"
    spec += f":{driver}"
    if pin:
        spec += ":pin"
    return spec


def run_shard_cell(repeats: int = 3, **params) -> tuple[dict, str]:
    """One grid cell, run ``repeats`` times; keeps the fastest repeat.

    Serving timings on a shared host are noisy — a background stall
    during any one run can swing a cell's tokens/sec by tens of percent,
    drowning the scaling signal the grid exists to measure.  Best-of-K is
    the standard antidote: the minimum-interference repeat is the closest
    observable to the machine's true throughput.  Tokens must not vary at
    all, so the repeats double as a determinism check: every repeat's
    ``token_digest`` must be identical or the cell fails outright.
    """
    from repro.serve.bench import run_scenario

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = None
    digests = set()
    for _ in range(repeats):
        rows, text = run_scenario(**params)
        digests.add(rows["token_digest"])
        if (
            best is None
            or rows["metrics"]["tokens_per_second"]
            > best[0]["metrics"]["tokens_per_second"]
        ):
            best = (rows, text)
    if len(digests) != 1:
        raise RuntimeError(
            f"token digests varied across {repeats} repeats of an identical "
            f"cell ({sorted(digests)}): serving is no longer deterministic"
        )
    rows, text = best
    rows["repeats"] = int(repeats)
    return rows, text


def jobs(
    quick: bool = True,
    seed: int = 0,
    scenarios=None,
    shards=DEFAULT_SHARDS,
    drivers=DEFAULT_DRIVERS,
    policies=DEFAULT_POLICIES,
    repeats: int = 3,
    mode: str = "sharded",
    stages=DEFAULT_STAGES,
    stage_shards: int = 1,
    pin_workers: bool = False,
    **params,
) -> list[Job]:
    """One serve cell per (scenario, policy, backend).

    The backend axis is ``reference`` plus, per driver, ``sharded:N`` for
    every ``N`` in ``shards`` (sharded mode) or ``pipeline:P`` for every
    ``P`` in ``stages`` (pipeline mode, tensor-split by ``stage_shards``
    within each stage); all cells of a (scenario, policy) group share seed
    and traffic.  Each cell runs ``repeats`` times and reports its
    fastest repeat (see :func:`run_shard_cell`).  Extra ``params``
    (``model_name``, ``max_batch_size``, ``rate_scale``, ...) are
    forwarded into every cell and its cache key.
    """
    names = list(scenarios) if scenarios else list(DEFAULT_SCENARIOS)
    validate_scenarios(names)
    if mode == "pipeline":
        backends = ["reference"] + [
            pipeline_backend(p, stage_shards, driver, pin_workers)
            for driver in drivers
            for p in stages
        ]
    else:
        backends = ["reference"] + [
            f"sharded:{int(n)}:{driver}" + (":pin" if pin_workers else "")
            for driver in drivers
            for n in shards
        ]
    declared = []
    for scenario in names:
        for policy in policies:
            for backend in backends:
                declared.append(
                    Job(
                        name=f"shard[{scenario}/{policy}/{backend}]",
                        target="repro.shard.bench:run_shard_cell",
                        params={
                            "repeats": int(repeats),
                            "scenario": scenario,
                            "normalizer": "baseline",
                            "quick": bool(quick),
                            "policy": policy,
                            "backend": backend,
                            **params,
                        },
                        seed=seed,
                    )
                )
    return declared


def _parse_backend(backend: str):
    """Grouping info for a parallel row, ``None`` for reference rows.

    Returns ``(driver, label, is_twin)`` where ``label`` is the column
    name in ``shard_comparison`` (``"N=2"``, ``"P=2"``, ``"P=2xN=2"``) and
    ``is_twin`` marks the no-parallelism baseline of its driver group
    (``N=1`` in sharded mode, ``P=1`` in pipeline mode).
    """
    text = str(backend)
    if text.startswith("sharded:"):
        n, driver, _pin = parse_shard_spec(text)
        return driver, f"N={n}", n == 1
    if text.startswith("pipeline:"):
        p, n, driver, _pin = parse_pipeline_spec(text)
        label = f"P={p}" + (f"xN={n}" if n > 1 else "")
        return driver, label, p == 1
    return None


def shard_comparison(results: list[dict]) -> dict:
    """Digest equality and scaling per ``scenario/policy/driver`` group.

    Each parallel row is compared against the twin of its own driver
    (``N=1`` / ``P=1`` — same scenario, policy, seed: identical traffic
    and identical fan-out machinery) and against the reference backend.
    A ``False`` in either ``tokens_match`` field means the deterministic
    partitioning broke bit-exactness, and the artifact itself proves it.
    """
    reference = {
        (row["scenario"], row["policy"]): row
        for row in results
        if _parse_backend(row["backend"]) is None
    }
    twins = {}
    for row in results:
        parsed = _parse_backend(row["backend"])
        if parsed and parsed[2]:
            twins[(row["scenario"], row["policy"], parsed[0])] = row
    comparison: dict[str, dict] = {}
    for row in results:
        parsed = _parse_backend(row["backend"])
        if parsed is None:
            continue
        driver, label, _ = parsed
        twin = twins.get((row["scenario"], row["policy"], driver))
        ref = reference.get((row["scenario"], row["policy"]))
        twin_tps = twin["metrics"]["tokens_per_second"] if twin else None
        cell = f"{row['scenario']}/{row['policy']}/{driver}"
        comparison.setdefault(cell, {})[label] = {
            "tokens_match": (
                twin is not None and row["token_digest"] == twin["token_digest"]
            ),
            "tokens_match_reference": (
                ref is not None and row["token_digest"] == ref["token_digest"]
            ),
            "tokens_per_second": row["metrics"]["tokens_per_second"],
            "twin_tokens_per_second": twin_tps,
            "tokens_per_second_ratio": (
                row["metrics"]["tokens_per_second"] / twin_tps
                if twin_tps
                else None
            ),
        }
    return comparison


def measure_pool_reuse(
    model_name: str = DEFAULT_MODEL,
    policy: str = "fp64-ref",
    backend: str = "pipeline:2:process",
    seed: int = 0,
) -> dict:
    """Cold-fork vs warm-attach cost of the persistent worker pool.

    Builds the same model twice from ``seed`` (as two repeated bench
    engines would) and times ``prepare()`` on each: the first pays the
    full worker fork + shared-memory weight packing, the second attaches
    to the warm pool bundle and only rebuilds the driver-side compiled
    plan.  The pool is cleared afterwards so the measurement leaves no
    workers behind.
    """
    import numpy as np

    from repro.nn.config import get_config
    from repro.nn.executor import resolve_executor
    from repro.nn.model import OPTLanguageModel
    from repro.shard.pool import GLOBAL_POOL

    config = get_config(model_name)

    def build():
        model = OPTLanguageModel(
            config, rng=np.random.default_rng(seed), policy=policy
        )
        model.eval()
        return resolve_executor(backend, model)

    # Earlier bench cells may have left a content-identical bundle warm in
    # the pool, which would make the "cold" measurement warm too.
    GLOBAL_POOL.clear()
    cold_ex = build()
    started = time.perf_counter()
    cold_ex.prepare()
    cold = time.perf_counter() - started
    warm_ex = build()
    started = time.perf_counter()
    warm_ex.prepare()
    warm = time.perf_counter() - started
    reused = warm_ex.runtime_stats()["pool_attach_reused"]
    cold_ex.close()
    warm_ex.close()
    GLOBAL_POOL.clear()
    return {
        "backend": backend,
        "model": model_name,
        "policy": policy,
        "cold_prepare_s": cold,
        "warm_prepare_s": warm,
        "speedup": cold / warm if warm > 0 else None,
        "warm_attach_reused": bool(reused),
    }


def run_shard_bench(
    quick: bool = True,
    jobs_n: int = 1,
    seed: int = 0,
    out_path: str | None = None,
    scenarios=None,
    shards=DEFAULT_SHARDS,
    drivers=DEFAULT_DRIVERS,
    policies=DEFAULT_POLICIES,
    model_name: str = DEFAULT_MODEL,
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    rate_scale: float = DEFAULT_RATE_SCALE,
    repeats: int = 3,
    mode: str = "sharded",
    stages=DEFAULT_STAGES,
    stage_shards: int = 1,
    pin_workers: bool = False,
    prefix_caching: bool = False,
    max_blocks: int | None = None,
    tier_blocks: int | None = None,
    tier_ratio: float | None = None,
    tier_fmt: str | None = None,
    slo_aware: bool = False,
    cache_dir=None,
    use_cache: bool = False,
    no_cache: bool = False,
    stream=None,
) -> tuple[dict, str]:
    """Run the scenario × policy × (driver, topology) grid, write ``out_path``.

    ``mode="sharded"`` sweeps ``shards``; ``mode="pipeline"`` sweeps
    ``stages`` (optionally ``stage_shards``-way tensor-split within each
    stage) and appends the pool-reuse measurement when the ``process``
    driver is in the grid.  ``out_path`` defaults per mode
    (``BENCH_shard.json`` / ``BENCH_pipeline.json``).  Flag validation
    mirrors ``serve-bench``: unknown scenarios, precision presets, shard
    counts, stage counts, or drivers raise a ``ValueError`` before any
    job runs (the CLI turns them into one-line usage errors).
    """
    from repro.nn.config import get_config

    stream = stream or sys.stdout
    if mode not in MODES:
        raise ValueError(
            f"unknown --mode {mode!r} (known: {', '.join(MODES)})"
        )
    if out_path is None:
        out_path = (
            "BENCH_pipeline.json" if mode == "pipeline" else "BENCH_shard.json"
        )
    shards = tuple(int(n) for n in shards)
    stages = tuple(int(p) for p in stages)
    stage_shards = int(stage_shards)
    num_layers = get_config(model_name).num_layers
    if mode == "pipeline":
        validate_stages(stages, num_layers=num_layers)
        validate_shards((stage_shards,))
        for p in stages:
            if p * stage_shards > 4:
                raise ValueError(
                    f"composed topology P={p} x N={stage_shards} exceeds the "
                    f"supported worker budget (P*N <= 4)"
                )
    else:
        validate_shards(shards)
    validate_drivers(drivers)
    validate_policies(policies)
    if scenarios:
        validate_scenarios(scenarios)
    validate_tier(
        tier_blocks=tier_blocks, tier_ratio=tier_ratio, tier_fmt=tier_fmt,
        prefix_caching=prefix_caching, max_blocks=max_blocks,
    )
    engine_params = {}
    if prefix_caching:
        engine_params["prefix_caching"] = True
    if max_blocks is not None:
        engine_params["max_blocks"] = int(max_blocks)
    if tier_blocks is not None:
        engine_params["tier_blocks"] = int(tier_blocks)
    if tier_ratio is not None:
        engine_params["tier_ratio"] = float(tier_ratio)
    if tier_fmt is not None:
        engine_params["tier_fmt"] = tier_fmt
    if slo_aware:
        engine_params["slo_aware"] = True
    declared = jobs(
        quick=quick, seed=seed, scenarios=scenarios, shards=shards,
        drivers=drivers, policies=policies, repeats=int(repeats),
        mode=mode, stages=stages, stage_shards=stage_shards,
        pin_workers=bool(pin_workers),
        model_name=model_name, max_batch_size=int(max_batch_size),
        rate_scale=float(rate_scale), **engine_params,
    )
    cache = ResultCache(cache_dir) if use_cache else None
    outcomes = run_jobs(
        declared, max_workers=jobs_n, cache=cache, no_cache=no_cache,
        stream=sys.stderr,
    )

    results = [outcome.rows for outcome in outcomes]
    lines = [
        "scenario       normalizer   strategy      backend        tokens/s"
        "       TTFT p50 /    p99        ITL p50   queue   pool      prefix"
        "    preempt    speculation",
    ]
    lines += [outcome.text for outcome in outcomes]
    comparison = shard_comparison(results)
    payload = {
        "config": {
            "quick": bool(quick),
            "seed": int(seed),
            "scenarios": sorted({row["scenario"] for row in results}),
            "mode": mode,
            "shards": list(shards),
            "stages": list(stages),
            "stage_shards": stage_shards,
            "pin_workers": bool(pin_workers),
            "drivers": list(drivers),
            "policies": list(policies),
            "model": model_name,
            "max_batch_size": int(max_batch_size),
            "rate_scale": float(rate_scale),
            "repeats": int(repeats),
            "prefix_caching": bool(prefix_caching),
            "max_blocks": max_blocks,
            "tier_blocks": tier_blocks,
            "tier_ratio": tier_ratio,
            "tier_fmt": tier_fmt,
            "slo_aware": bool(slo_aware),
        },
        "results": results,
        "shard_comparison": comparison,
    }
    if mode == "pipeline" and "process" in drivers:
        deepest = max(stages)
        payload["pool_reuse"] = measure_pool_reuse(
            model_name=model_name,
            policy=policies[0],
            backend=pipeline_backend(
                deepest, stage_shards, "process", pin_workers
            ),
            seed=seed,
        )
        lines.append(
            f"pool reuse: cold prepare "
            f"{payload['pool_reuse']['cold_prepare_s'] * 1e3:.1f} ms, warm "
            f"{payload['pool_reuse']['warm_prepare_s'] * 1e3:.1f} ms "
            f"({payload['pool_reuse']['speedup']:.1f}x)"
        )
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    mismatches = sum(
        1
        for group in comparison.values()
        for cell in group.values()
        if not (cell["tokens_match"] and cell["tokens_match_reference"])
    )
    kind = "pipeline" if mode == "pipeline" else "sharded"
    lines.append(
        f"digest mismatches: {mismatches} "
        f"across {sum(len(g) for g in comparison.values())} {kind} cells"
    )
    lines.append(f"wrote {out_path}")
    text = "\n".join(lines)
    stream.write(text + "\n")
    return payload, text
