"""Tensor-sharded and pipeline-parallel model execution.

Splits a model's linear layers across ``N`` logical shards — column-parallel
for Q/K/V, fc1 and the tied logits projection, row-parallel for the
attention out-projection and fc2 — and reduces row-parallel partial products
through the fixed-block summation tree of
:func:`repro.nn.functional.det_matmul`, so every served token is
bit-identical to the unsharded model under every precision policy and every
shard count.

On top of that, :class:`~repro.shard.executor.PipelinedExecutor` partitions
the decoder stack into ``P`` contiguous stages (optionally tensor-split
within each stage) and interleaves microbatches across stages; bit-exactness
is structural because stage compute is unchanged layer compute, merely
partitioned.

Two drivers execute the fan-out:

* ``sim`` — in-process loop over shard states (fast, no processes); used by
  the parity tests.
* ``process`` — one worker process per shard holding its weight slices in
  :mod:`multiprocessing.shared_memory`, driven in lockstep over pipes.
  Process worker bundles come from the persistent
  :data:`~repro.shard.pool.GLOBAL_POOL`, keyed by model fingerprint ×
  topology, so engines / cluster replicas / bench repeats over the same
  model attach to warm workers instead of re-forking.

See :class:`~repro.shard.executor.ShardedExecutor` for the exactness
argument and the critical-path (overlap-credit) timing model.
"""

from repro.shard.executor import (
    PipelinedExecutor,
    ShardWorkerError,
    ShardedExecutor,
    parse_pipeline_spec,
    parse_shard_spec,
)
from repro.shard.plan import PipelinePlan, ShardPlan
from repro.shard.pool import GLOBAL_POOL, WorkerPool, model_fingerprint
from repro.shard.worker import ShardState, run_phase

__all__ = [
    "GLOBAL_POOL",
    "PipelinePlan",
    "PipelinedExecutor",
    "ShardPlan",
    "ShardState",
    "ShardWorkerError",
    "ShardedExecutor",
    "WorkerPool",
    "model_fingerprint",
    "parse_pipeline_spec",
    "parse_shard_spec",
    "run_phase",
]
