"""Tensor-sharded model execution with deterministic fixed-order reduction.

Splits a model's linear layers across ``N`` logical shards — column-parallel
for Q/K/V, fc1 and the tied logits projection, row-parallel for the
attention out-projection and fc2 — and reduces row-parallel partial products
through the fixed-block summation tree of
:func:`repro.nn.functional.det_matmul`, so every served token is
bit-identical to the unsharded model under every precision policy and every
shard count.

Two drivers execute the shard fan-out:

* ``sim`` — in-process loop over shard states (fast, no processes); used by
  the parity tests.
* ``process`` — one worker process per shard holding its weight slices in
  :mod:`multiprocessing.shared_memory`, driven in lockstep over pipes.

See :class:`~repro.shard.executor.ShardedExecutor` for the exactness
argument and the critical-path (overlap-credit) timing model.
"""

from repro.shard.executor import ShardedExecutor, parse_shard_spec
from repro.shard.plan import ShardPlan
from repro.shard.worker import ShardState, run_phase

__all__ = [
    "ShardPlan",
    "ShardState",
    "ShardedExecutor",
    "parse_shard_spec",
    "run_phase",
]
