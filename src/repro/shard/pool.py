"""Persistent worker pools shared across executors, engines and replicas.

Forking shard workers and packing weight slices into shared memory is by
far the most expensive part of bringing a ``process``-driver backend up —
and it is pure waste when a cluster router builds R replica engines over
the *same* model, or a benchmark runs repeat cells back to back.  The
:data:`GLOBAL_POOL` keeps warm worker bundles keyed by **content** (a
checksum of the model's config, policy and parameter bytes) × **topology**
(shard/stage counts, pinning), so any executor whose model would produce
byte-identical weight slices attaches to the existing workers instead of
re-forking.

Lifecycle: :meth:`WorkerPool.attach` refcounts; executors release through
``weakref.finalize`` (GC-safe) or an explicit ``close()``, which keeps the
bundle *warm* at zero refs for the next attach.  Bundles leave the pool
only through LRU eviction past :attr:`WorkerPool.capacity`, an explicit
:meth:`WorkerPool.discard` (how a dead worker poisons its bundle), or
:meth:`WorkerPool.clear`.  Worker processes themselves are daemonic and
each driver carries its own process-exit finalizer, so a warm pool can
never outlive the interpreter.

Sharing is safe because the lockstep pipe protocol is only ever driven by
one step at a time: engines sharing a bundle (cluster replicas, sequential
bench repeats) step single-threaded on one virtual clock.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict

import numpy as np

__all__ = ["GLOBAL_POOL", "WorkerPool", "model_fingerprint"]


def model_fingerprint(model) -> str:
    """Content checksum of everything that shapes a worker's weight slices.

    Covers the model dimensions, the precision policy (which decides raw
    vs quantized slices) and every parameter's bytes, so two *distinct*
    model objects with identical weights and policy — e.g. rebuilt from
    the same seed by separate bench cells — map to the same pool entry.
    Memoized per ``_plan_version`` (the counter ``set_policy`` /
    ``load_state_dict`` / ``train`` bump), so repeated calls on an
    unchanged model are free.
    """
    version = model._plan_version
    cached = getattr(model, "_shard_fingerprint", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    config = model.config
    crc = zlib.crc32(
        repr(
            (
                config.embed_dim,
                config.ffn_dim,
                config.vocab_size,
                config.num_heads,
                config.max_position,
                len(model.blocks),
                getattr(model.policy, "name", None),
            )
        ).encode()
    )
    for name, param in model.named_parameters():
        crc = zlib.crc32(name.encode(), crc)
        crc = zlib.crc32(np.ascontiguousarray(param.data).tobytes(), crc)
    digest = f"{crc:08x}"
    model._shard_fingerprint = (version, digest)
    return digest


class PoolEntry:
    """One warm bundle: the shard/pipeline plan plus its live drivers."""

    __slots__ = ("key", "plan", "drivers", "refs", "broken")

    def __init__(self, key, plan, drivers) -> None:
        self.key = key
        self.plan = plan
        self.drivers = list(drivers)
        self.refs = 1
        self.broken = False


class WorkerPool:
    """Refcounted, LRU-bounded registry of warm worker bundles."""

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[object, PoolEntry] = OrderedDict()
        self.attach_total = 0
        self.attach_reused = 0
        self.forked = 0

    def attach(self, key, factory) -> tuple[PoolEntry, bool]:
        """Return ``(entry, reused)`` for ``key``, building via ``factory``.

        ``factory()`` must return ``(plan, drivers)`` and is only called on
        a cold (or poisoned) key.  The caller owns one reference and must
        eventually :meth:`release` it.
        """
        self.attach_total += 1
        entry = self._entries.get(key)
        if entry is not None and entry.broken:
            self._close(self._entries.pop(key))
            entry = None
        if entry is not None:
            entry.refs += 1
            self._entries.move_to_end(key)
            self.attach_reused += 1
            return entry, True
        plan, drivers = factory()
        entry = PoolEntry(key, plan, drivers)
        self._entries[key] = entry
        self.forked += 1
        self._evict()
        return entry, False

    def release(self, key) -> None:
        """Drop one reference; the bundle stays warm for the next attach."""
        entry = self._entries.get(key)
        if entry is None:
            return
        entry.refs = max(0, entry.refs - 1)
        if entry.broken and entry.refs == 0:
            self._close(self._entries.pop(key))

    def discard(self, key) -> None:
        """Tear a bundle down immediately (dead-worker poisoning)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._close(entry)

    def clear(self) -> None:
        """Tear every bundle down (tests; end-of-process hygiene)."""
        while self._entries:
            _, entry = self._entries.popitem(last=False)
            self._close(entry)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "attach_total": self.attach_total,
            "attach_reused": self.attach_reused,
            "forked": self.forked,
        }

    def _evict(self) -> None:
        # Oldest unreferenced entries go first; in-use bundles are never
        # evicted, so the pool can transiently exceed capacity.
        while len(self._entries) > self.capacity:
            victim = next(
                (k for k, e in self._entries.items() if e.refs == 0), None
            )
            if victim is None:
                break
            self._close(self._entries.pop(victim))

    @staticmethod
    def _close(entry: PoolEntry) -> None:
        for driver in entry.drivers:
            try:
                driver.close()
            except Exception:  # noqa: BLE001 - teardown must not cascade
                pass
        entry.drivers = []


#: The process-wide pool every ``process``-driver executor attaches to.
GLOBAL_POOL = WorkerPool()
