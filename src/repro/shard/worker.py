"""Shard-side compute: the code that runs *inside* a tensor shard.

A shard never sees the whole model — only its weight slices
(:class:`ShardState`) and per-step activation payloads.  Both drivers run
the exact same :func:`run_phase` on the exact same state arrays, so the
``sim`` and ``process`` drivers are bit-identical by construction; the only
difference is where the arrays live and how payloads travel.

Exactness per phase (vs the unsharded compiled plan):

``qkv`` / ``logits`` (column-parallel)
    Every output element of ``det_matmul`` is an independent dot product
    over the full contraction axis, so computing a column slice of the
    weight yields exactly the column slice of the full result; bias add and
    the quantized ``accum``/``act`` casts are elementwise, hence applied
    shard-locally.
``out`` / ``ffn`` (row-parallel)
    The contraction axis is split at atom-aligned boundaries, and the shard
    returns its *raw float64 per-atom partials*
    (:func:`~repro.nn.functional.det_matmul_partials`) — never a pre-summed
    value — so the driver's :func:`~repro.nn.functional.det_all_reduce`
    replays the unsharded ``det_matmul(..., block=True)`` summation chain
    term for term.  ``ffn`` fuses fc1 (column-parallel, same boundaries) +
    ReLU + fc2 partials into one round trip with zero inter-shard traffic.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.fpformats.quantize import quantize
from repro.fpformats.spec import FLOAT64, get_format
from repro.nn.functional import det_matmul, det_matmul_partials

#: Phase names a shard understands, in the per-layer order the driver
#: issues them (``logits`` runs once per forward, after the final norm).
PHASES = ("qkv", "out", "ffn", "logits")


def make_caster(fmt_name):
    """Elementwise round-to-format closure (identity for fp64/None)."""
    if fmt_name is None:
        return lambda x: x
    fmt = get_format(fmt_name)
    if fmt == FLOAT64:
        return lambda x: x
    return lambda x, _fmt=fmt: quantize(x, _fmt)


class _ShardLayer:
    """One transformer block's weight slices owned by one shard."""

    __slots__ = ("q_w", "q_b", "k_w", "k_b", "v_w", "v_b",
                 "fc1_w", "fc1_b", "out_w", "fc2_w")

    def __init__(self, arrays, layer):
        pick = lambda name: arrays.get(f"L{layer}.{name}")
        self.q_w = pick("q_w")
        self.q_b = pick("q_b")
        self.k_w = pick("k_w")
        self.k_b = pick("k_b")
        self.v_w = pick("v_w")
        self.v_b = pick("v_b")
        self.fc1_w = pick("fc1_w")
        self.fc1_b = pick("fc1_b")
        self.out_w = pick("out_w")
        self.fc2_w = pick("fc2_w")


class ShardState:
    """Everything one shard needs to serve phases: slices, casters, bounds.

    Built from a flat ``{key: float64 array}`` mapping plus a picklable
    ``config`` dict, so the same constructor serves the in-process driver
    (views into the model's weights) and a worker process (views into a
    shared-memory segment).
    """

    __slots__ = ("index", "num_shards", "passthrough", "accum", "act",
                 "layers", "logits_w", "embed_dim", "ffn_dim",
                 "out_lo", "ffn_lo")

    def __init__(self, config, arrays):
        self.index = config["index"]
        self.num_shards = config["num_shards"]
        self.passthrough = config["passthrough"]
        self.accum = make_caster(config["accum_fmt"])
        self.act = make_caster(config["act_fmt"])
        self.embed_dim = config["embed_dim"]
        self.ffn_dim = config["ffn_dim"]
        self.out_lo = config["out_lo"]
        self.ffn_lo = config["ffn_lo"]
        self.layers = [
            _ShardLayer(arrays, i) for i in range(config["num_layers"])
        ]
        # ``logits_t`` marks a logits slice packed as C-order vocabulary
        # rows: re-transposing reproduces the exact stride class of the
        # tied ``E.T`` view the unsharded plan binds, which einsum's
        # kernel selection (hence the accumulation bit pattern) depends on.
        # Non-final pipeline stages own no logits slice at all.
        self.logits_w = arrays.get("logits_w")
        if self.logits_w is not None and config["logits_t"]:
            self.logits_w = self.logits_w.T

    def named_arrays(self):
        """Flat ``(key, array)`` list for shared-memory packing."""
        out = []
        for i, layer in enumerate(self.layers):
            for name in _ShardLayer.__slots__:
                arr = getattr(layer, name)
                if arr is not None:
                    out.append((f"L{i}.{name}", arr))
        if self.logits_w is not None:
            out.append(("logits_w", self.logits_w))
        return out


def _linear(state, x, w, b):
    """Replicate the compiled linear closure on a column slice."""
    out = det_matmul(x, w)
    if state.passthrough:
        return out if b is None else out + b
    out = state.accum(out)
    if b is not None:
        out = out + b
    return state.act(out)


def _prefix_presum(parts, k_start):
    """Pre-sum shard 0's atom partials (bit-exact, shrinks the response).

    The fixed-block contract sums atoms strictly left to right, so the
    atoms of the shard that owns ``k_start == 0`` form a *prefix subtree*
    of the chain: summing them locally (first partial copied, the rest
    added in place, exactly like ``det_matmul(..., block=True)``) yields
    the same running value the driver's reduce would have reached.  Later
    shards' atoms enter the chain one by one and must stay raw.
    """
    if k_start != 0 or len(parts) <= 1:
        return parts
    out = np.array(parts[0], dtype=np.float64, copy=True)
    for part in parts[1:]:
        out = np.add(out, part, out=out)
    return [out]


def run_phase(state, phase, layer, payload):
    """Compute one phase; the single entry point of both drivers."""
    if phase == "qkv":
        lp = state.layers[layer]
        return (
            _linear(state, payload, lp.q_w, lp.q_b),
            _linear(state, payload, lp.k_w, lp.k_b),
            _linear(state, payload, lp.v_w, lp.v_b),
        )
    if phase == "out":
        lp = state.layers[layer]
        parts = det_matmul_partials(
            payload, lp.out_w, k_start=state.out_lo, k_total=state.embed_dim
        )
        return _prefix_presum(parts, state.out_lo)
    if phase == "ffn":
        lp = state.layers[layer]
        hidden = np.maximum(_linear(state, payload, lp.fc1_w, lp.fc1_b), 0.0)
        parts = det_matmul_partials(
            hidden, lp.fc2_w, k_start=state.ffn_lo, k_total=state.ffn_dim
        )
        return _prefix_presum(parts, state.ffn_lo)
    if phase == "logits":
        if state.logits_w is None:
            raise ValueError(
                f"shard {state.index} holds no logits slice "
                f"(only the final pipeline stage serves the logits phase)"
            )
        out = det_matmul(payload, state.logits_w)
        if state.passthrough:
            return out
        return state.act(state.accum(out))
    raise ValueError(f"unknown shard phase {phase!r} (known: {PHASES})")


def flatten_result(result):
    """``(kind, arrays)`` for a phase result (see :func:`unflatten_result`).

    Phase results are a 3-tuple of arrays (``qkv``), a list of partials
    (``out``/``ffn``) or a single array (``logits``); flattening them to a
    tagged array list lets the transport ship raw float64 buffers through
    shared memory instead of pickling containers.
    """
    if isinstance(result, tuple):
        return "tuple", list(result)
    if isinstance(result, list):
        return "list", result
    return "array", [result]


def unflatten_result(kind, arrays):
    if kind == "tuple":
        return tuple(arrays)
    if kind == "list":
        return list(arrays)
    return arrays[0]


class _OutRing:
    """A worker-owned shared-memory region its phase results are written to.

    The driver reads each result before issuing the next lockstep step, so
    a single region per worker (grown geometrically on demand) is safe to
    reuse every step.  The worker unlinks replaced and final segments; the
    driver just maps named segments read-only.
    """

    def __init__(self):
        self.shm = None

    def ensure(self, nbytes):
        """Grow to at least ``nbytes``; returns the segment name."""
        from multiprocessing import shared_memory

        if self.shm is None or self.shm.size < nbytes:
            size = max(nbytes, 1 << 20)
            old = self.shm
            self.shm = shared_memory.SharedMemory(create=True, size=size)
            if old is not None:
                # The driver's existing mapping stays valid after unlink;
                # only the name disappears.
                old.close()
                old.unlink()
        return self.shm.name

    def write(self, arrays):
        """Pack ``arrays`` sequentially; returns ``(name, [(off, shape)])``."""
        name = self.ensure(sum(a.nbytes for a in arrays))
        manifest, offset = [], 0
        for array in arrays:
            view = np.ndarray(array.shape, dtype=np.float64,
                              buffer=self.shm.buf, offset=offset)
            view[...] = array
            manifest.append((offset, array.shape))
            offset += array.nbytes
        return name, manifest

    def close(self):
        if self.shm is not None:
            shm, self.shm = self.shm, None
            try:
                shm.close()
                shm.unlink()
            except (BufferError, FileNotFoundError):
                pass


def worker_main(conn, shm_name, manifest, config):
    """Process-driver worker loop: lockstep phase service over a pipe.

    Weight slices live in the named shared-memory segment; ``manifest``
    is ``[(key, byte_offset, shape), ...]`` describing the float64 arrays
    packed inside it.  Activations travel through shared memory too: a
    step message carries ``("shm", segment, offset, shape)`` pointing into
    the driver's payload segment (or ``("pipe", array)`` as fallback), and
    the response header points into this worker's own result ring.  Only
    the small headers are pickled over the pipe.

    Each step is answered with ``(desc, elapsed_seconds)`` where
    ``elapsed`` covers only the shard's own compute (the driver separately
    measures wall time to derive the overlap credit).  ``("close",)`` ends
    the loop.
    """
    from multiprocessing import shared_memory

    pin_cpu = config.get("pin_cpu")
    if pin_cpu is not None:
        try:
            os.sched_setaffinity(0, {int(pin_cpu)})
        except (AttributeError, OSError):
            pass  # the driver already warned; run unpinned

    shm = shared_memory.SharedMemory(name=shm_name)
    payload_segs: dict[str, object] = {}
    ring = _OutRing()
    arrays = state = payload = result = None
    try:
        arrays = {
            key: np.ndarray(shape, dtype=np.float64, buffer=shm.buf,
                            offset=offset)
            for key, offset, shape in manifest
        }
        state = ShardState(config, arrays)
        while True:
            msg = conn.recv()
            if msg[0] == "close":
                break
            _, phase, layer, desc = msg
            if desc[0] == "shm":
                _, seg_name, offset, shape = desc
                seg = payload_segs.get(seg_name)
                if seg is None:
                    seg = payload_segs[seg_name] = shared_memory.SharedMemory(
                        name=seg_name
                    )
                payload = np.ndarray(shape, dtype=np.float64,
                                     buffer=seg.buf, offset=offset)
            else:
                payload = desc[1]
            started = time.perf_counter()
            result = run_phase(state, phase, layer, payload)
            elapsed = time.perf_counter() - started
            kind, parts = flatten_result(result)
            seg_name, out_manifest = ring.write(parts)
            conn.send((("shm", seg_name, kind, out_manifest), elapsed))
    except EOFError:
        pass  # driver went away without a close handshake
    finally:
        # Drop the views into the segments before unmapping them; a
        # surviving exported buffer would make ``close`` raise BufferError.
        arrays = state = payload = result = None
        ring.close()
        for seg in payload_segs.values():
            try:
                seg.close()
            except BufferError:
                pass
        try:
            shm.close()
        except BufferError:
            pass
        conn.close()
