"""Shard planning: how a model's weights split across N tensor shards.

The split mirrors the Megatron-LM layout, restated for this codebase's
deterministic kernels:

* **Column-parallel** (no reduction crosses a shard): Q/K/V projections,
  fc1, and the tied logits projection ``E.T``.  Shard ``s`` owns output
  columns ``[(s*dim)//N, ((s+1)*dim)//N)``; bias slices and the quantized
  ``accum``/``act`` casts are applied shard-locally (all elementwise).
* **Row-parallel** (the contraction axis is split): the attention
  out-projection (K = ``embed_dim``) and fc2 (K = ``ffn_dim``).  Shard
  boundaries ``(s*K)//N`` provably land on the fixed-block atom bounds of
  :func:`repro.nn.functional.det_matmul` for every ``N`` dividing
  :data:`~repro.nn.functional.DET_ATOMS` (``s*K/N == (s*A/N)*(K/A)`` as
  exact rationals, so their floors agree), which is what lets the driver's
  fixed-order reduce replay the unsharded summation chain exactly.
* fc1's column split uses the *same* ``ffn_dim`` boundaries as fc2's row
  split, so the whole FFN runs shard-local between the two matmuls.

Weight slices are taken from the same arrays the compiled plan binds —
raw parameter data under ``fp64-ref``, the ``ops.weight`` quantized memo
otherwise — so slicing commutes with quantization byte-for-byte.

Row-parallel *biases* are not sharded: the unsharded kernel adds the bias
once after the full contraction, so the driver adds it after the reduce
(:attr:`ShardPlan.out_biases` / :attr:`ShardPlan.fc2_biases`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import DET_ATOMS
from repro.shard.worker import ShardState


def shard_bounds(dim: int, num_shards: int) -> tuple[int, ...]:
    """Split points ``[(s*dim)//N for s in 0..N]`` (atom-aligned when the
    axis is a contraction axis and ``N`` divides ``DET_ATOMS``)."""
    return tuple((s * dim) // num_shards for s in range(num_shards + 1))


def _col(w, lo, hi):
    return np.ascontiguousarray(w[:, lo:hi])


def _row(w, lo, hi):
    return np.ascontiguousarray(w[lo:hi, :])


class ShardPlan:
    """Per-shard weight states plus the driver-side reduce operands.

    Parameters
    ----------
    model:
        An eval-mode :class:`~repro.nn.model.OPTLanguageModel` with its
        precision policy installed (``ops`` decides raw vs quantized
        slices).
    num_shards:
        Logical shard count; must divide ``DET_ATOMS`` (1, 2, 3, 4, 6 or
        12) so row splits land on atom boundaries, and must not exceed
        the narrowest sharded axis.
    """

    def __init__(self, model, num_shards: int) -> None:
        num_shards = int(num_shards)
        if num_shards < 1 or DET_ATOMS % num_shards != 0:
            valid = [n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0]
            raise ValueError(
                f"num_shards must divide DET_ATOMS={DET_ATOMS} "
                f"(valid: {valid}), got {num_shards}"
            )
        config = model.config
        embed, ffn = config.embed_dim, config.ffn_dim
        narrowest = min(embed, ffn, config.vocab_size)
        if num_shards > narrowest:
            raise ValueError(
                f"num_shards {num_shards} exceeds the narrowest sharded "
                f"axis ({narrowest}) of this model"
            )
        ops = model.ops
        self.num_shards = num_shards
        self.passthrough = ops.passthrough
        self.accum = ops.accum
        self.act = ops.act
        #: Plan-version stamp, set by the executor that owns this plan.
        self.version = None

        weight = (lambda w: w) if ops.passthrough else ops.weight
        accum_fmt = act_fmt = None
        if not ops.passthrough:
            accum_fmt = ops.policy.accumulation_fmt
            act_fmt = ops.policy.activation_fmt

        embed_bounds = shard_bounds(embed, num_shards)
        ffn_bounds = shard_bounds(ffn, num_shards)
        vocab_bounds = shard_bounds(config.vocab_size, num_shards)

        #: Row-parallel biases, one per layer, applied driver-side after
        #: the fixed-order reduce (quantized copies under a quantized
        #: policy, exactly as the unsharded closure binds them).
        self.out_biases: list[np.ndarray | None] = []
        self.fc2_biases: list[np.ndarray | None] = []

        per_shard: list[dict[str, np.ndarray]] = [
            {} for _ in range(num_shards)
        ]
        for i, block in enumerate(model.blocks):
            attn, ffn_mod = block.attention, block.ffn
            cols = {
                "q": (attn.q_proj, embed_bounds),
                "k": (attn.k_proj, embed_bounds),
                "v": (attn.v_proj, embed_bounds),
                "fc1": (ffn_mod.fc1, ffn_bounds),
            }
            for name, (lin, bounds) in cols.items():
                w = weight(lin.weight.data)
                b = None if lin.bias is None else weight(lin.bias.data)
                for s in range(num_shards):
                    lo, hi = bounds[s], bounds[s + 1]
                    per_shard[s][f"L{i}.{name}_w"] = _col(w, lo, hi)
                    if b is not None:
                        per_shard[s][f"L{i}.{name}_b"] = np.ascontiguousarray(
                            b[lo:hi]
                        )
            rows = {
                "out": (attn.out_proj, embed_bounds, self.out_biases),
                "fc2": (ffn_mod.fc2, ffn_bounds, self.fc2_biases),
            }
            for name, (lin, bounds, biases) in rows.items():
                w = weight(lin.weight.data)
                biases.append(
                    None if lin.bias is None else weight(lin.bias.data)
                )
                for s in range(num_shards):
                    per_shard[s][f"L{i}.{name}_w"] = _row(
                        w, bounds[s], bounds[s + 1]
                    )

        # Tied logits projection: a column split over the vocabulary of the
        # same weight *and memory-layout class* the compiled plan binds.
        # einsum's inner-loop kernel depends on whether the contraction
        # stride of an operand is unit, so under ``fp64-ref`` (where the
        # bound operand is the transposed view ``E.T``) the slice must stay
        # a transposed view: pack the C-order vocabulary rows and have the
        # shard re-transpose.  Under a quantized policy ``ops.weight``
        # materializes a C-contiguous copy, so a plain column slice already
        # matches.
        w_t = weight(model.token_embedding.weight.data.T)
        logits_t = not w_t.flags["C_CONTIGUOUS"]
        for s in range(num_shards):
            lo, hi = vocab_bounds[s], vocab_bounds[s + 1]
            if logits_t:
                per_shard[s]["logits_w"] = _row(w_t.T, lo, hi)
            else:
                per_shard[s]["logits_w"] = _col(w_t, lo, hi)

        self.configs = [
            {
                "index": s,
                "num_shards": num_shards,
                "passthrough": ops.passthrough,
                "accum_fmt": accum_fmt,
                "act_fmt": act_fmt,
                "embed_dim": embed,
                "ffn_dim": ffn,
                "num_layers": len(model.blocks),
                "out_lo": embed_bounds[s],
                "ffn_lo": ffn_bounds[s],
                "logits_t": logits_t,
            }
            for s in range(num_shards)
        ]
        self.arrays = per_shard
        #: Column boundaries of the ``out`` phase payload (the driver sends
        #: shard ``s`` columns ``[embed_bounds[s], embed_bounds[s+1])`` of
        #: the merged attention context).
        self.embed_bounds = embed_bounds

    def states(self) -> list[ShardState]:
        """In-process :class:`ShardState` per shard (the sim driver's view;
        the process driver packs :attr:`arrays` into shared memory and
        rebuilds identical states worker-side)."""
        return [
            ShardState(config, arrays)
            for config, arrays in zip(self.configs, self.arrays)
        ]


def stage_layer_bounds(num_layers: int, num_stages: int) -> tuple[int, ...]:
    """Contiguous stage split points ``[(s*L)//P for s in 0..P]``.

    Strictly increasing (every stage owns at least one layer) whenever
    ``P <= L``.
    """
    return tuple((s * num_layers) // num_stages for s in range(num_stages + 1))


class _StagePlan:
    """One pipeline stage's per-shard configs and weight slices.

    Duck-types the driver-facing surface of :class:`ShardPlan`
    (``configs`` / ``arrays`` / ``states()``) so the sim and process
    drivers run a stage exactly like a whole tensor-sharded model; layer
    keys keep their *global* indices and :class:`ShardState` simply holds
    ``None`` for layers other stages own.
    """

    def __init__(self, configs, arrays) -> None:
        self.configs = configs
        self.arrays = arrays

    def states(self) -> list[ShardState]:
        return [
            ShardState(config, arrays)
            for config, arrays in zip(self.configs, self.arrays)
        ]


class PipelinePlan:
    """Layer-wise partition of a (possibly tensor-sharded) model.

    The decoder layer stack is split into ``num_stages`` contiguous
    stages at :func:`stage_layer_bounds`; within each stage the weights
    are the ordinary :class:`ShardPlan` tensor split over ``num_shards``
    (``num_shards=1`` gives whole-layer slices).  Embedding, norms,
    attention and the KV cache stay driver-side exactly as in the tensor
    plan; the tied logits projection lives only on the last stage.

    Stage compute is *unchanged* layer compute, merely partitioned, so
    pipelining is bit-exact by the same arguments as tensor sharding —
    hidden states hand off between stages through the driver, which is a
    no-op on the bytes.
    """

    def __init__(self, model, num_stages: int, num_shards: int = 1) -> None:
        num_stages = int(num_stages)
        num_layers = len(model.blocks)
        if num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {num_stages}")
        if num_stages > num_layers:
            raise ValueError(
                f"num_stages {num_stages} exceeds the model's {num_layers} "
                f"decoder layers (each stage needs at least one layer)"
            )
        base = ShardPlan(model, num_shards)
        bounds = stage_layer_bounds(num_layers, num_stages)
        self.num_stages = num_stages
        self.num_shards = base.num_shards
        self.layer_bounds = bounds
        self.passthrough = base.passthrough
        self.accum = base.accum
        self.act = base.act
        self.out_biases = base.out_biases
        self.fc2_biases = base.fc2_biases
        self.embed_bounds = base.embed_bounds
        self.version = None
        #: Stage index per decoder layer (the executor's fan-out routing).
        self.stage_of = tuple(
            next(s for s in range(num_stages) if bounds[s] <= i < bounds[s + 1])
            for i in range(num_layers)
        )
        self.stages: list[_StagePlan] = []
        for s in range(num_stages):
            lo, hi = bounds[s], bounds[s + 1]
            configs, arrays = [], []
            for config, shard_arrays in zip(base.configs, base.arrays):
                cfg = dict(config)
                cfg["stage"] = s
                sub = {}
                for key, arr in shard_arrays.items():
                    if key == "logits_w":
                        if s == num_stages - 1:
                            sub[key] = arr
                    elif lo <= int(key.split(".", 1)[0][1:]) < hi:
                        sub[key] = arr
                configs.append(cfg)
                arrays.append(sub)
            self.stages.append(_StagePlan(configs, arrays))
