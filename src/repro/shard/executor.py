"""Sharded execution backend: fan-out drivers and the executor seam.

:class:`ShardedExecutor` subclasses the compiled executor and replaces
exactly the six per-layer linears plus the logits projection with shard
fan-outs; embeddings, norms, attention, softmax, residuals and the KV
cache stay driver-side, running the *same* compiled-plan closures as the
unsharded backend.  Combined with the exactness arguments in
:mod:`repro.shard.worker` (column splits are elementwise-safe; row splits
reduce through the fixed-block summation tree), every forward is
bit-identical to the unsharded model under every precision policy.

Timing model (critical-path accounting)
---------------------------------------
Logical shards share this host's cores, so raw wall time cannot show the
overlap a real N-device deployment gets.  Both drivers therefore measure,
per fan-out, the wall time ``wall`` of the whole exchange and each shard's
self-measured compute ``t_i``, and charge the engine's virtual clock::

    charge = max(max_t, wall - (sum_t - max_t))

i.e. the slowest shard plus any wall time *not* explained by serialized
shard compute (IPC, pickling, scheduling — costs a real deployment also
pays).  On a genuinely parallel host ``wall`` approaches ``max_t`` and the
credit vanishes; on a serialized host the formula recovers the
critical path.  The accumulated credit is drained by the serving engine
through :meth:`ShardedExecutor.consume_overlap_credit`, mirroring the
lockstep ``max()`` clock the cluster router already uses across replicas.
"""

from __future__ import annotations

import time
import weakref

import numpy as np

from repro.nn.executor import CompiledExecutor
from repro.nn.functional import DET_ATOMS, det_all_reduce
from repro.shard.plan import ShardPlan
from repro.shard.worker import _OutRing, run_phase, unflatten_result, worker_main

__all__ = ["ShardedExecutor", "parse_shard_spec"]

#: Known fan-out drivers.
DRIVERS = ("sim", "process")


def parse_shard_spec(spec: str) -> tuple[int, str]:
    """Parse ``"sharded:N[:driver]"`` into ``(num_shards, driver)``.

    Raises ``ValueError`` on malformed specs, shard counts that do not
    divide ``DET_ATOMS``, or unknown drivers.
    """
    parts = str(spec).split(":")
    if parts[0] != "sharded" or len(parts) not in (2, 3) or not parts[1]:
        raise ValueError(
            f"bad shard spec {spec!r}; expected 'sharded:N[:driver]' "
            f"with driver one of {DRIVERS}"
        )
    try:
        num_shards = int(parts[1])
    except ValueError:
        raise ValueError(
            f"bad shard count {parts[1]!r} in spec {spec!r}; expected an integer"
        ) from None
    if num_shards < 1 or DET_ATOMS % num_shards != 0:
        valid = [n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0]
        raise ValueError(
            f"shard count {num_shards} must divide DET_ATOMS={DET_ATOMS} "
            f"(valid: {valid})"
        )
    driver = parts[2] if len(parts) == 3 else "sim"
    if driver not in DRIVERS:
        raise ValueError(
            f"unknown shard driver {driver!r} (known: {', '.join(DRIVERS)})"
        )
    return num_shards, driver


class _SimDriver:
    """In-process fan-out: a loop over shard states with per-shard timing."""

    def __init__(self, states) -> None:
        self.states = states

    def fanout(self, phase, layer, payloads):
        results, times = [], []
        wall_started = time.perf_counter()
        for state, payload in zip(self.states, payloads):
            started = time.perf_counter()
            results.append(run_phase(state, phase, layer, payload))
            times.append(time.perf_counter() - started)
        return results, times, time.perf_counter() - wall_started

    def close(self) -> None:
        self.states = []


def _shutdown(procs, conns, segments, rings=(), attached=None):
    """Best-effort teardown shared by ``close`` and the GC finalizer."""
    for conn in conns:
        try:
            conn.send(("close",))
        except (OSError, ValueError, BrokenPipeError):
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for ring in rings:
        ring.close()
    # Worker-owned result segments normally unlink worker-side; unlinking
    # again here (workers are joined by now) only matters if a worker was
    # terminated before its cleanup ran.
    for shm in list((attached or {}).values()):
        try:
            shm.close()
            shm.unlink()
        except (BufferError, FileNotFoundError):
            pass
    for shm in segments:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


class _ProcessDriver:
    """One worker process per shard, weights in shared memory, lockstep pipes.

    Each shard's slices are packed into a single
    :class:`multiprocessing.shared_memory.SharedMemory` segment described
    by a ``[(key, byte_offset, shape), ...]`` manifest.  Per-step
    activations travel through shared memory as well: the driver packs the
    distinct payload buffers of a fan-out into its payload ring once
    (``qkv``/``ffn``/``logits`` broadcast one array to all shards) and
    sends each worker a ``("shm", segment, offset, shape)`` header; the
    worker answers with a header into its own result ring.  The pipes only
    ever carry these small tuples, so the per-step IPC cost stays near the
    empty-roundtrip floor instead of scaling with activation size.
    """

    def __init__(self, plan: ShardPlan) -> None:
        import multiprocessing
        from multiprocessing import shared_memory

        ctx = multiprocessing.get_context("fork")
        self.conns, self.procs, self.segments = [], [], []
        self._payload_ring = _OutRing()
        self._result_segs: dict[str, object] = {}
        try:
            for config, arrays in zip(plan.configs, plan.arrays):
                named = sorted(arrays.items())
                total = sum(a.nbytes for _, a in named)
                shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
                self.segments.append(shm)
                manifest, offset = [], 0
                for key, array in named:
                    packed = np.ndarray(
                        array.shape, dtype=np.float64, buffer=shm.buf,
                        offset=offset,
                    )
                    packed[...] = array
                    manifest.append((key, offset, array.shape))
                    offset += array.nbytes
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main,
                    args=(child_conn, shm.name, manifest, config),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self.conns.append(parent_conn)
                self.procs.append(proc)
        except BaseException:
            _shutdown(self.procs, self.conns, self.segments,
                      (self._payload_ring,), self._result_segs)
            raise
        self._finalizer = weakref.finalize(
            self, _shutdown, self.procs, self.conns, self.segments,
            (self._payload_ring,), self._result_segs,
        )

    def _read_result(self, desc):
        """Materialize a worker result header as views into its ring.

        The views are only valid until the worker's next step; every
        caller consumes them (concatenate / fixed-order reduce) before the
        next fan-out, which the lockstep protocol guarantees.
        """
        if desc[0] == "pipe":
            return desc[1]
        _, name, kind, manifest = desc
        seg = self._result_segs.get(name)
        if seg is None:
            from multiprocessing import shared_memory

            seg = self._result_segs[name] = shared_memory.SharedMemory(
                name=name
            )
        arrays = [
            np.ndarray(shape, dtype=np.float64, buffer=seg.buf, offset=off)
            for off, shape in manifest
        ]
        return unflatten_result(kind, arrays)

    def fanout(self, phase, layer, payloads):
        wall_started = time.perf_counter()
        # Pack each distinct payload buffer once (broadcast phases send the
        # same array object to every shard); non-float64 payloads fall back
        # to pipe pickling, which never happens on the current phase set.
        unique, index = [], {}
        for payload in payloads:
            if payload.dtype == np.float64 and id(payload) not in index:
                index[id(payload)] = len(unique)
                unique.append(payload)
        seg_name, manifest = self._payload_ring.write(unique)
        for conn, payload in zip(self.conns, payloads):
            slot = index.get(id(payload))
            if slot is None:
                desc = ("pipe", payload)
            else:
                offset, shape = manifest[slot]
                desc = ("shm", seg_name, offset, shape)
            conn.send(("step", phase, layer, desc))
        results, times = [], []
        for conn in self.conns:
            desc, elapsed = conn.recv()
            results.append(self._read_result(desc))
            times.append(elapsed)
        return results, times, time.perf_counter() - wall_started

    def close(self) -> None:
        self._finalizer()


class ShardedExecutor(CompiledExecutor):
    """Tensor-sharded backend, bit-identical to the unsharded executors.

    ``num_shards`` logical shards each own column slices of Q/K/V, fc1 and
    the tied logits projection plus row slices of the out-projection and
    fc2; the driver reduces row-parallel partials in fixed shard/atom
    order (see :func:`repro.nn.functional.det_all_reduce`).
    """

    def __init__(self, model, num_shards: int, driver: str = "sim") -> None:
        if driver not in DRIVERS:
            raise ValueError(
                f"unknown shard driver {driver!r} (known: {', '.join(DRIVERS)})"
            )
        super().__init__(model)
        self.num_shards = int(num_shards)
        self.driver_name = driver
        self.name = f"sharded:{self.num_shards}:{driver}"
        self._shard_plan: ShardPlan | None = None
        self._driver = None
        self._layer_index: dict[int, int] = {}
        self._credit = 0.0

    # -- plan / driver lifecycle ------------------------------------------
    def _ensure_plan(self):
        plan = super()._ensure_plan()
        shard_plan = self._shard_plan
        if shard_plan is None or shard_plan.version != plan.version:
            if self._driver is not None:
                self._driver.close()
                self._driver = None
            shard_plan = ShardPlan(self.model, self.num_shards)
            shard_plan.version = plan.version
            self._shard_plan = shard_plan
            if self.driver_name == "sim":
                self._driver = _SimDriver(shard_plan.states())
            else:
                self._driver = _ProcessDriver(shard_plan)
            self._layer_index = {
                id(lp): i for i, lp in enumerate(plan.layers)
            }
            # Route the tied logits projection through the shards; the
            # buffer-reusing einsum fast path is unsharded-only.
            plan.out_proj = self._logits
            plan.out_proj_into = None
        return plan

    def prepare(self) -> None:
        """Warm up: build the shard plan and start the fan-out driver now.

        Called by ``ServeEngine.begin`` so worker forking and shared-memory
        weight packing happen before the serving clock starts, instead of
        inside the first measured step.  Requires eval mode (like any
        compiled forward).
        """
        self._ensure_plan()

    def close(self) -> None:
        """Tear down the fan-out driver (worker processes, shared memory)."""
        if self._driver is not None:
            self._driver.close()
            self._driver = None
        self._shard_plan = None

    # -- virtual-clock overlap credit -------------------------------------
    def consume_overlap_credit(self) -> float:
        """Seconds of shard compute hidden by overlap since the last call
        (drained by ``ServeEngine.step_at`` to advance its virtual clock by
        the sharded critical path instead of serialized host time)."""
        credit = self._credit
        self._credit = 0.0
        return credit

    def _fanout(self, phase, layer, payloads):
        results, times, wall = self._driver.fanout(phase, layer, payloads)
        longest, total = max(times), sum(times)
        charge = max(longest, wall - (total - longest))
        if wall > charge:
            self._credit += wall - charge
        return results

    # -- sharded linear applications --------------------------------------
    def _qkv(self, layer, h, batch, seq, heads, head_dim):
        results = self._fanout("qkv", layer, [h] * self.num_shards)

        def heads_view(slices):
            merged = np.concatenate(slices, axis=-1)
            return merged.reshape(batch, seq, heads, head_dim).transpose(
                0, 2, 1, 3
            )

        q = heads_view([r[0] for r in results])
        k = heads_view([r[1] for r in results])
        v = heads_view([r[2] for r in results])
        return q, k, v

    def _reduce(self, shard_partials, bias):
        shard_plan = self._shard_plan
        out = det_all_reduce(shard_partials)
        if shard_plan.passthrough:
            return out if bias is None else out + bias
        out = shard_plan.accum(out)
        if bias is not None:
            out = out + bias
        return shard_plan.act(out)

    def _out(self, layer, merged):
        bounds = self._shard_plan.embed_bounds
        payloads = [
            merged[..., bounds[s] : bounds[s + 1]]
            for s in range(self.num_shards)
        ]
        raw = self._fanout("out", layer, payloads)
        return self._reduce(raw, self._shard_plan.out_biases[layer])

    def _ffn(self, layer, h2):
        raw = self._fanout("ffn", layer, [h2] * self.num_shards)
        return self._reduce(raw, self._shard_plan.fc2_biases[layer])

    def _logits(self, hidden):
        results = self._fanout("logits", 0, [hidden] * self.num_shards)
        return np.concatenate(results, axis=-1)

    # -- block bodies (the inherited loops call these) ---------------------
    def _block_cached(self, plan, lp, x, kv, raw_ok):
        layer = self._layer_index[id(lp)]
        batch, seq, _ = x.shape
        heads, head_dim = plan.num_heads, plan.head_dim
        h = lp.attn_norm(x)
        q, k_new, v_new = self._qkv(layer, h, batch, seq, heads, head_dim)
        if raw_ok:
            if plan.kv_quant is not None:
                k_new = plan.kv_quant(k_new)
                v_new = plan.kv_quant(v_new)
            k_all, v_all = kv.append_raw(k_new, v_new)
        else:
            k_all, v_all = kv.append(k_new, v_new)
        scores = plan.attn_scores(q, k_all.transpose(0, 1, 3, 2), plan.scale)
        if seq > 1:
            scores = scores + self._mask(seq, k_all.shape[2])
        context = plan.ctx_matmul(plan.softmax(scores), v_all)
        merged = context.transpose(0, 2, 1, 3).reshape(
            batch, seq, heads * head_dim
        )
        x = plan.residual(x, self._out(layer, merged))
        h2 = lp.ffn_norm(x)
        return plan.residual(x, self._ffn(layer, h2))

    def _block_ragged(self, plan, lp, x, views, lens, batch, max_new, ctx, raw_ok):
        layer = self._layer_index[id(lp)]
        heads, head_dim = plan.num_heads, plan.head_dim
        h = lp.attn_norm(x)
        q, k_new, v_new = self._qkv(layer, h, batch, max_new, heads, head_dim)
        if raw_ok and plan.kv_quant is not None:
            k_w = plan.kv_quant(k_new)
            v_w = plan.kv_quant(v_new)
        else:
            k_w, v_w = k_new, v_new
        attn_scores, softmax, ctx_matmul = (
            plan.attn_scores,
            plan.softmax,
            plan.ctx_matmul,
        )
        scale = plan.scale
        for r, view in enumerate(views):
            n = lens[r]
            pad = max_new - n
            if raw_ok:
                k_all, v_all = view.append_raw(
                    k_w[r : r + 1, :, pad:], v_w[r : r + 1, :, pad:]
                )
            else:
                k_all, v_all = view.append(
                    k_w[r : r + 1, :, pad:], v_w[r : r + 1, :, pad:]
                )
            scores = attn_scores(
                q[r : r + 1, :, pad:], k_all.transpose(0, 1, 3, 2), scale
            )
            if n > 1:
                scores = scores + self._mask(n, k_all.shape[2])
            ctx[r : r + 1, :, pad:] = ctx_matmul(softmax(scores), v_all)
        merged = ctx.transpose(0, 2, 1, 3).reshape(
            batch, max_new, heads * head_dim
        )
        x = plan.residual(x, self._out(layer, merged))
        h2 = lp.ffn_norm(x)
        return plan.residual(x, self._ffn(layer, h2))
