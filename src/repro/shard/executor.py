"""Sharded execution backends: fan-out drivers and the executor seam.

:class:`ShardedExecutor` subclasses the compiled executor and replaces
exactly the six per-layer linears plus the logits projection with shard
fan-outs; embeddings, norms, attention, softmax, residuals and the KV
cache stay driver-side, running the *same* compiled-plan closures as the
unsharded backend.  Combined with the exactness arguments in
:mod:`repro.shard.worker` (column splits are elementwise-safe; row splits
reduce through the fixed-block summation tree), every forward is
bit-identical to the unsharded model under every precision policy.

:class:`PipelinedExecutor` layers pipeline parallelism on top: the
decoder stack is split into P contiguous stages (optionally tensor-split
into N shards *within* each stage, reusing the same fixed-order reduce),
and each ragged step batch is split into M microbatches so stage ``s``
can compute microbatch ``m`` while stage ``s+1`` computes ``m-1``.
Stage compute is unchanged layer compute — hidden states hand off
between stages driver-side, a no-op on the bytes — so pipelining is
bit-exact structurally; microbatch row-splitting is bit-safe because
``det_matmul`` computes every output row as an independent dot-product
chain and every other op is per-row.

``process``-driver executors attach to the process-wide
:data:`~repro.shard.pool.GLOBAL_POOL`: worker bundles are keyed by model
fingerprint × topology and reused across engines, cluster replicas and
bench repeats, with refcounted release via ``weakref.finalize``.

Timing model (critical-path accounting)
---------------------------------------
Logical shards share this host's cores, so raw wall time cannot show the
overlap a real N-device deployment gets.  Both drivers therefore measure,
per fan-out, the wall time ``wall`` of the whole exchange and each shard's
self-measured compute ``t_i``, and charge the engine's virtual clock::

    charge = max(max_t, wall - (sum_t - max_t))

i.e. the slowest shard plus any wall time *not* explained by serialized
shard compute (IPC, pickling, scheduling — costs a real deployment also
pays).  On a genuinely parallel host ``wall`` approaches ``max_t`` and the
credit vanishes; on a serialized host the formula recovers the
critical path.  The pipelined executor adds a second, stage-level layer
of the same idea: each (stage, microbatch) cell's charged time feeds the
classic pipeline recurrence ``finish[s][m] = max(finish[s-1][m],
finish[s][m-1]) + t[s][m]``, and the slack between serialized cell time
and that critical path becomes additional overlap credit (cell charges
already exclude the within-cell tensor credit, so nothing is counted
twice).  The accumulated credit is drained by the serving engine through
:meth:`ShardedExecutor.consume_overlap_credit`, mirroring the lockstep
``max()`` clock the cluster router already uses across replicas.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref

import numpy as np

from repro.nn.executor import CompiledExecutor
from repro.nn.functional import DET_ATOMS, det_all_reduce
from repro.shard.plan import PipelinePlan, ShardPlan
from repro.shard.pool import GLOBAL_POOL, model_fingerprint
from repro.shard.worker import _OutRing, run_phase, unflatten_result, worker_main

__all__ = [
    "PipelinedExecutor",
    "ShardWorkerError",
    "ShardedExecutor",
    "parse_pipeline_spec",
    "parse_shard_spec",
]

#: Known fan-out drivers.
DRIVERS = ("sim", "process")

#: Seconds the driver waits on a worker reply before declaring it hung.
WORKER_TIMEOUT_S = 60.0

#: Default microbatch count of the pipelined executor (capped per step by
#: the batch size; 1 disables interleaving).
DEFAULT_MICROBATCHES = 2


class ShardWorkerError(RuntimeError):
    """A shard worker died or stopped answering mid-step.

    Raised instead of blocking forever on the pipe; the owning executor
    poisons its pooled bundle so no other engine attaches to half-dead
    workers.
    """


def _parse_driver_tail(parts, spec, usage):
    """Shared ``[:driver][:pin]`` tail parsing for both spec grammars."""
    pin = False
    if parts and parts[-1] == "pin":
        pin = True
        parts = parts[:-1]
    if len(parts) > 1:
        raise ValueError(f"bad spec {spec!r}; {usage}")
    driver = parts[0] if parts else "sim"
    if driver not in DRIVERS:
        raise ValueError(
            f"unknown shard driver {driver!r} (known: {', '.join(DRIVERS)})"
        )
    return driver, pin


_SHARD_USAGE = (
    "expected 'sharded:N[:driver][:pin]' with driver one of " + repr(DRIVERS)
)
_PIPELINE_USAGE = (
    "expected 'pipeline:P[:driver][:pin]' or "
    "'pipeline:P+sharded:N[:driver][:pin]' with driver one of "
    + repr(DRIVERS)
)


def parse_shard_spec(spec: str) -> tuple[int, str, bool]:
    """Parse ``"sharded:N[:driver][:pin]"`` into ``(num_shards, driver, pin)``.

    Raises ``ValueError`` on malformed specs, shard counts that do not
    divide ``DET_ATOMS``, or unknown drivers.
    """
    parts = str(spec).split(":")
    if parts[0] != "sharded" or len(parts) < 2 or len(parts) > 4 or not parts[1]:
        raise ValueError(f"bad shard spec {spec!r}; {_SHARD_USAGE}")
    try:
        num_shards = int(parts[1])
    except ValueError:
        raise ValueError(
            f"bad shard count {parts[1]!r} in spec {spec!r}; expected an integer"
        ) from None
    if num_shards < 1 or DET_ATOMS % num_shards != 0:
        valid = [n for n in range(1, DET_ATOMS + 1) if DET_ATOMS % n == 0]
        raise ValueError(
            f"shard count {num_shards} must divide DET_ATOMS={DET_ATOMS} "
            f"(valid: {valid})"
        )
    driver, pin = _parse_driver_tail(parts[2:], spec, _SHARD_USAGE)
    return num_shards, driver, pin


def parse_pipeline_spec(spec: str) -> tuple[int, int, str, bool]:
    """Parse a pipeline spec into ``(num_stages, num_shards, driver, pin)``.

    Two grammars: plain ``"pipeline:P[:driver][:pin]"`` (whole layers per
    stage) and composed ``"pipeline:P+sharded:N[:driver][:pin]"``
    (tensor-split within each stage; driver and pin apply to the whole
    topology).  Stage counts are any integer >= 1 — the layer-count bound
    is model-dependent and checked at plan build.
    """
    text = str(spec)
    head, _, rest = text.partition("+")
    parts = head.split(":")
    if parts[0] != "pipeline" or len(parts) < 2 or not parts[1]:
        raise ValueError(f"bad pipeline spec {spec!r}; {_PIPELINE_USAGE}")
    try:
        num_stages = int(parts[1])
    except ValueError:
        raise ValueError(
            f"bad stage count {parts[1]!r} in spec {spec!r}; expected an integer"
        ) from None
    if num_stages < 1:
        raise ValueError(f"stage count must be >= 1, got {num_stages}")
    if rest:
        if len(parts) != 2:
            raise ValueError(
                f"bad pipeline spec {spec!r}; in the composed form the "
                f"driver/pin suffix goes after the sharded half: "
                f"{_PIPELINE_USAGE}"
            )
        num_shards, driver, pin = parse_shard_spec(rest)
        return num_stages, num_shards, driver, pin
    driver, pin = _parse_driver_tail(parts[2:], spec, _PIPELINE_USAGE)
    return num_stages, 1, driver, pin


def assign_worker_cpus(count: int, offset: int = 0) -> list[int | None]:
    """Round-robin CPU ids for ``count`` workers (``offset`` shifts the
    rotation so later pipeline stages land on different cores).

    Returns all-``None`` with a warning on platforms without
    ``os.sched_setaffinity`` — pinning is opt-in best-effort, never a
    hard failure.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is None or not hasattr(os, "sched_setaffinity"):
        warnings.warn(
            "worker pinning requested but this platform has no "
            "os.sched_setaffinity; workers run unpinned",
            RuntimeWarning,
            stacklevel=2,
        )
        return [None] * count
    cpus = sorted(getaffinity(0))
    return [cpus[(offset + i) % len(cpus)] for i in range(count)]


class _SimDriver:
    """In-process fan-out: a loop over shard states with per-shard timing."""

    def __init__(self, states) -> None:
        self.states = states

    def fanout(self, phase, layer, payloads):
        results, times = [], []
        wall_started = time.perf_counter()
        for state, payload in zip(self.states, payloads):
            started = time.perf_counter()
            results.append(run_phase(state, phase, layer, payload))
            times.append(time.perf_counter() - started)
        return results, times, time.perf_counter() - wall_started

    def close(self) -> None:
        self.states = []


def _shutdown(procs, conns, segments, rings=(), attached=None):
    """Best-effort teardown shared by ``close`` and the GC finalizer."""
    for conn in conns:
        try:
            conn.send(("close",))
        except (OSError, ValueError, BrokenPipeError):
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for ring in rings:
        ring.close()
    # Worker-owned result segments normally unlink worker-side; unlinking
    # again here (workers are joined by now) only matters if a worker was
    # terminated before its cleanup ran.
    for shm in list((attached or {}).values()):
        try:
            shm.close()
            shm.unlink()
        except (BufferError, FileNotFoundError):
            pass
    for shm in segments:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


class _ProcessDriver:
    """One worker process per shard, weights in shared memory, lockstep pipes.

    Each shard's slices are packed into a single
    :class:`multiprocessing.shared_memory.SharedMemory` segment described
    by a ``[(key, byte_offset, shape), ...]`` manifest.  Per-step
    activations travel through shared memory as well: the driver packs the
    distinct payload buffers of a fan-out into its payload ring once
    (``qkv``/``ffn``/``logits`` broadcast one array to all shards) and
    sends each worker a ``("shm", segment, offset, shape)`` header; the
    worker answers with a header into its own result ring.  The pipes only
    ever carry these small tuples, so the per-step IPC cost stays near the
    empty-roundtrip floor instead of scaling with activation size.

    Replies are read with a bounded poll: a worker that dies (or hangs
    past :data:`WORKER_TIMEOUT_S`) raises :class:`ShardWorkerError` naming
    the failed shard/stage instead of blocking the driver forever.

    ``pin=True`` assigns each worker a physical core round-robin
    (``pin_offset`` staggers pipeline stages) which the worker applies via
    ``os.sched_setaffinity`` on startup.
    """

    def __init__(self, plan, label: str = "shard",
                 pin: bool = False, pin_offset: int = 0) -> None:
        import multiprocessing
        from multiprocessing import shared_memory

        ctx = multiprocessing.get_context("fork")
        self.conns, self.procs, self.segments = [], [], []
        self.labels = [
            f"{label} {config['index']}" for config in plan.configs
        ]
        self.pinned_cpus = (
            assign_worker_cpus(len(plan.configs), pin_offset) if pin
            else [None] * len(plan.configs)
        )
        self._payload_ring = _OutRing()
        self._result_segs: dict[str, object] = {}
        try:
            for config, arrays, cpu in zip(
                plan.configs, plan.arrays, self.pinned_cpus
            ):
                if cpu is not None:
                    config = dict(config, pin_cpu=int(cpu))
                named = sorted(arrays.items())
                total = sum(a.nbytes for _, a in named)
                shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
                self.segments.append(shm)
                manifest, offset = [], 0
                for key, array in named:
                    packed = np.ndarray(
                        array.shape, dtype=np.float64, buffer=shm.buf,
                        offset=offset,
                    )
                    packed[...] = array
                    manifest.append((key, offset, array.shape))
                    offset += array.nbytes
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main,
                    args=(child_conn, shm.name, manifest, config),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self.conns.append(parent_conn)
                self.procs.append(proc)
        except BaseException:
            _shutdown(self.procs, self.conns, self.segments,
                      (self._payload_ring,), self._result_segs)
            raise
        self._finalizer = weakref.finalize(
            self, _shutdown, self.procs, self.conns, self.segments,
            (self._payload_ring,), self._result_segs,
        )

    def _read_result(self, desc):
        """Materialize a worker result header as views into its ring.

        The views are only valid until the worker's next step; every
        caller consumes them (concatenate / fixed-order reduce) before the
        next fan-out, which the lockstep protocol guarantees.
        """
        if desc[0] == "pipe":
            return desc[1]
        _, name, kind, manifest = desc
        seg = self._result_segs.get(name)
        if seg is None:
            from multiprocessing import shared_memory

            seg = self._result_segs[name] = shared_memory.SharedMemory(
                name=name
            )
        arrays = [
            np.ndarray(shape, dtype=np.float64, buffer=seg.buf, offset=off)
            for off, shape in manifest
        ]
        return unflatten_result(kind, arrays)

    def _recv(self, i):
        """Bounded-timeout reply read; never hangs on a dead worker."""
        conn, proc, label = self.conns[i], self.procs[i], self.labels[i]
        deadline = time.monotonic() + WORKER_TIMEOUT_S
        try:
            while not conn.poll(0.05):
                if not proc.is_alive():
                    raise ShardWorkerError(
                        f"{label} worker died mid-step "
                        f"(exit code {proc.exitcode})"
                    )
                if time.monotonic() > deadline:
                    raise ShardWorkerError(
                        f"{label} worker unresponsive after "
                        f"{WORKER_TIMEOUT_S:.0f}s"
                    )
            return conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise ShardWorkerError(
                f"{label} worker connection failed: {exc}"
            ) from None

    def fanout(self, phase, layer, payloads):
        wall_started = time.perf_counter()
        # Pack each distinct payload buffer once (broadcast phases send the
        # same array object to every shard); non-float64 payloads fall back
        # to pipe pickling, which never happens on the current phase set.
        unique, index = [], {}
        for payload in payloads:
            if payload.dtype == np.float64 and id(payload) not in index:
                index[id(payload)] = len(unique)
                unique.append(payload)
        seg_name, manifest = self._payload_ring.write(unique)
        for i, (conn, payload) in enumerate(zip(self.conns, payloads)):
            slot = index.get(id(payload))
            if slot is None:
                desc = ("pipe", payload)
            else:
                offset, shape = manifest[slot]
                desc = ("shm", seg_name, offset, shape)
            try:
                conn.send(("step", phase, layer, desc))
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise ShardWorkerError(
                    f"{self.labels[i]} worker connection failed: {exc}"
                ) from None
        results, times = [], []
        for i in range(len(self.conns)):
            desc, elapsed = self._recv(i)
            results.append(self._read_result(desc))
            times.append(elapsed)
        return results, times, time.perf_counter() - wall_started

    def close(self) -> None:
        self._finalizer()


class ShardedExecutor(CompiledExecutor):
    """Tensor-sharded backend, bit-identical to the unsharded executors.

    ``num_shards`` logical shards each own column slices of Q/K/V, fc1 and
    the tied logits projection plus row slices of the out-projection and
    fc2; the driver reduces row-parallel partials in fixed shard/atom
    order (see :func:`repro.nn.functional.det_all_reduce`).

    With the ``process`` driver the worker bundle comes from
    :data:`~repro.shard.pool.GLOBAL_POOL` — a second executor over a
    byte-identical model attaches to the warm workers instead of forking.
    """

    def __init__(self, model, num_shards: int, driver: str = "sim",
                 pin: bool = False) -> None:
        if driver not in DRIVERS:
            raise ValueError(
                f"unknown shard driver {driver!r} (known: {', '.join(DRIVERS)})"
            )
        super().__init__(model)
        self.num_shards = int(num_shards)
        self.driver_name = driver
        self.pin = bool(pin)
        self.name = f"sharded:{self.num_shards}:{driver}" + (
            ":pin" if self.pin else ""
        )
        self._shard_plan = None
        self._drivers: list | None = None
        self._fingerprint: str | None = None
        self._layer_index: dict[int, int] = {}
        self._plan_obj = None
        self._credit = 0.0
        self._credit_total = 0.0
        self._pool_key = None
        self._pool_release = None
        self._pool_reused = False

    # -- topology hooks (PipelinedExecutor overrides these) ----------------
    def _topology(self):
        """Pool-key component describing the worker layout."""
        return ("sharded", self.num_shards, self.pin)

    def _make_plan(self):
        return ShardPlan(self.model, self.num_shards)

    def _stage_plans(self, shard_plan):
        """``(label, plan_like)`` per driver group (one per pipeline stage)."""
        return [("shard", shard_plan)]

    def _route(self, phase, layer):
        """The driver a fan-out goes to (stage routing in the subclass)."""
        return self._drivers[0]

    # -- plan / driver lifecycle ------------------------------------------
    def _make_drivers(self, shard_plan):
        if self.driver_name == "sim":
            if self.pin:
                warnings.warn(
                    "worker pinning has no effect on the in-process sim "
                    "driver",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return [
                _SimDriver(stage.states())
                for _, stage in self._stage_plans(shard_plan)
            ]
        drivers, offset = [], 0
        for label, stage in self._stage_plans(shard_plan):
            drivers.append(
                _ProcessDriver(stage, label=label, pin=self.pin,
                               pin_offset=offset)
            )
            offset += len(stage.configs)
        return drivers

    def _cold_build(self):
        shard_plan = self._make_plan()
        return shard_plan, self._make_drivers(shard_plan)

    def _ensure_plan(self):
        plan = super()._ensure_plan()
        fingerprint = model_fingerprint(self.model)
        if self._shard_plan is None or self._fingerprint != fingerprint:
            self._teardown()
            if self.driver_name == "process":
                key = (fingerprint, self._topology())
                bundle, reused = GLOBAL_POOL.attach(key, self._cold_build)
                self._shard_plan = bundle.plan
                self._drivers = bundle.drivers
                self._pool_key = key
                self._pool_reused = reused
                self._pool_release = weakref.finalize(
                    self, GLOBAL_POOL.release, key
                )
            else:
                shard_plan = self._make_plan()
                self._shard_plan = shard_plan
                self._drivers = self._make_drivers(shard_plan)
            self._fingerprint = fingerprint
        if plan is not self._plan_obj:
            self._plan_obj = plan
            self._layer_index = {id(lp): i for i, lp in enumerate(plan.layers)}
            # Route the tied logits projection through the shards; the
            # buffer-reusing einsum fast path is unsharded-only.
            plan.out_proj = self._logits
            plan.out_proj_into = None
        return plan

    def prepare(self) -> None:
        """Warm up: build (or attach to) the shard plan and fan-out workers.

        Called by ``ServeEngine.begin`` so worker forking and shared-memory
        weight packing happen before the serving clock starts, instead of
        inside the first measured step.  A warm pool hit makes this nearly
        free.  Requires eval mode (like any compiled forward).
        """
        self._ensure_plan()

    def close(self) -> None:
        """Release the fan-out workers.

        A pooled (``process``) bundle is refcount-released and stays warm
        for the next executor over the same model; sim states are dropped
        outright.
        """
        self._teardown()

    def _teardown(self):
        if self._pool_release is not None:
            self._pool_release()  # refcount release; workers stay warm
            self._pool_release = None
            self._pool_key = None
        elif self._drivers is not None:
            for driver in self._drivers:
                driver.close()
        self._drivers = None
        self._shard_plan = None
        self._fingerprint = None

    def _poison(self):
        """A worker died: tear the pooled bundle down so no engine attaches
        to half-dead workers, and drop this executor's reference."""
        if self._pool_key is not None:
            GLOBAL_POOL.discard(self._pool_key)
        if self._pool_release is not None:
            self._pool_release.detach()
            self._pool_release = None
        self._pool_key = None
        self._drivers = None
        self._shard_plan = None
        self._fingerprint = None

    # -- virtual-clock overlap credit -------------------------------------
    def consume_overlap_credit(self) -> float:
        """Seconds of shard compute hidden by overlap since the last call
        (drained by ``ServeEngine.step_at`` to advance its virtual clock by
        the sharded critical path instead of serialized host time)."""
        credit = self._credit
        self._credit = 0.0
        return credit

    def runtime_stats(self) -> dict:
        """Topology, pinning, pool and overlap counters for bench rows."""
        pinned = []
        for driver in self._drivers or []:
            pinned.extend(
                cpu for cpu in getattr(driver, "pinned_cpus", []) or []
                if cpu is not None
            )
        return {
            "backend": self.name,
            "driver": self.driver_name,
            "num_shards": self.num_shards,
            "pin_workers": self.pin,
            "pinned_cpus": pinned or None,
            "pool_attach_reused": bool(self._pool_reused),
            "pool": (
                GLOBAL_POOL.stats() if self.driver_name == "process" else None
            ),
            "overlap_credit_s": self._credit_total,
        }

    def _fanout(self, phase, layer, payloads):
        try:
            results, times, wall = self._route(phase, layer).fanout(
                phase, layer, payloads
            )
        except ShardWorkerError:
            self._poison()
            raise
        longest, total = max(times), sum(times)
        charge = max(longest, wall - (total - longest))
        if wall > charge:
            self._credit += wall - charge
            self._credit_total += wall - charge
        return results

    # -- sharded linear applications --------------------------------------
    def _qkv(self, layer, h, batch, seq, heads, head_dim):
        results = self._fanout("qkv", layer, [h] * self.num_shards)

        def heads_view(slices):
            merged = np.concatenate(slices, axis=-1)
            return merged.reshape(batch, seq, heads, head_dim).transpose(
                0, 2, 1, 3
            )

        q = heads_view([r[0] for r in results])
        k = heads_view([r[1] for r in results])
        v = heads_view([r[2] for r in results])
        return q, k, v

    def _reduce(self, shard_partials, bias):
        shard_plan = self._shard_plan
        out = det_all_reduce(shard_partials)
        if shard_plan.passthrough:
            return out if bias is None else out + bias
        out = shard_plan.accum(out)
        if bias is not None:
            out = out + bias
        return shard_plan.act(out)

    def _out(self, layer, merged):
        bounds = self._shard_plan.embed_bounds
        payloads = [
            merged[..., bounds[s] : bounds[s + 1]]
            for s in range(self.num_shards)
        ]
        raw = self._fanout("out", layer, payloads)
        return self._reduce(raw, self._shard_plan.out_biases[layer])

    def _ffn(self, layer, h2):
        raw = self._fanout("ffn", layer, [h2] * self.num_shards)
        return self._reduce(raw, self._shard_plan.fc2_biases[layer])

    def _logits(self, hidden):
        results = self._fanout("logits", 0, [hidden] * self.num_shards)
        return np.concatenate(results, axis=-1)

    # -- block bodies (the inherited loops call these) ---------------------
    def _block_cached(self, plan, lp, x, kv, raw_ok):
        layer = self._layer_index[id(lp)]
        batch, seq, _ = x.shape
        heads, head_dim = plan.num_heads, plan.head_dim
        h = lp.attn_norm(x)
        q, k_new, v_new = self._qkv(layer, h, batch, seq, heads, head_dim)
        if raw_ok:
            if plan.kv_quant is not None:
                k_new = plan.kv_quant(k_new)
                v_new = plan.kv_quant(v_new)
            k_all, v_all = kv.append_raw(k_new, v_new)
        else:
            k_all, v_all = kv.append(k_new, v_new)
        scores = plan.attn_scores(q, k_all.transpose(0, 1, 3, 2), plan.scale)
        if seq > 1:
            scores = scores + self._mask(seq, k_all.shape[2])
        context = plan.ctx_matmul(plan.softmax(scores), v_all)
        merged = context.transpose(0, 2, 1, 3).reshape(
            batch, seq, heads * head_dim
        )
        x = plan.residual(x, self._out(layer, merged))
        h2 = lp.ffn_norm(x)
        return plan.residual(x, self._ffn(layer, h2))

    def _block_ragged(self, plan, lp, x, views, lens, batch, max_new, ctx, raw_ok):
        layer = self._layer_index[id(lp)]
        heads, head_dim = plan.num_heads, plan.head_dim
        h = lp.attn_norm(x)
        q, k_new, v_new = self._qkv(layer, h, batch, max_new, heads, head_dim)
        if raw_ok and plan.kv_quant is not None:
            k_w = plan.kv_quant(k_new)
            v_w = plan.kv_quant(v_new)
        else:
            k_w, v_w = k_new, v_new
        attn_scores, softmax, ctx_matmul = (
            plan.attn_scores,
            plan.softmax,
            plan.ctx_matmul,
        )
        scale = plan.scale
        for r, view in enumerate(views):
            n = lens[r]
            pad = max_new - n
            if raw_ok:
                k_all, v_all = view.append_raw(
                    k_w[r : r + 1, :, pad:], v_w[r : r + 1, :, pad:]
                )
            else:
                k_all, v_all = view.append(
                    k_w[r : r + 1, :, pad:], v_w[r : r + 1, :, pad:]
                )
            scores = attn_scores(
                q[r : r + 1, :, pad:], k_all.transpose(0, 1, 3, 2), scale
            )
            if n > 1:
                scores = scores + self._mask(n, k_all.shape[2])
            ctx[r : r + 1, :, pad:] = ctx_matmul(softmax(scores), v_all)
        merged = ctx.transpose(0, 2, 1, 3).reshape(
            batch, max_new, heads * head_dim
        )
        x = plan.residual(x, self._out(layer, merged))
        h2 = lp.ffn_norm(x)
        return plan.residual(x, self._ffn(layer, h2))


class PipelinedExecutor(ShardedExecutor):
    """Pipeline-parallel backend with microbatch interleaving.

    The decoder stack splits into ``num_stages`` contiguous stages, each
    tensor-split into ``num_shards`` workers (1 = whole layers).  The
    ragged serving step splits its batch into up to ``microbatches``
    row-ranges; the critical-path recurrence over per-(stage, microbatch)
    cell times models stage ``s`` computing microbatch ``m`` while stage
    ``s+1`` computes ``m-1``, and the hidden slack becomes overlap credit
    drained from the serving clock.  Tokens are bit-identical to every
    other backend: stage handoff and row-splitting never change a byte.
    """

    def __init__(self, model, num_stages: int, num_shards: int = 1,
                 driver: str = "sim", pin: bool = False,
                 microbatches: int = DEFAULT_MICROBATCHES) -> None:
        super().__init__(model, num_shards, driver=driver, pin=pin)
        self.num_stages = int(num_stages)
        if self.num_stages < 1:
            raise ValueError(
                f"num_stages must be >= 1, got {self.num_stages}"
            )
        num_layers = len(model.blocks)
        if self.num_stages > num_layers:
            # Fail at construction (where benches can pre-flight it), not
            # inside the first serving step.
            raise ValueError(
                f"pipeline stage count {self.num_stages} exceeds the "
                f"model's {num_layers} decoder layers"
            )
        self.microbatches = int(microbatches)
        if self.microbatches < 1:
            raise ValueError(
                f"microbatches must be >= 1, got {self.microbatches}"
            )
        name = f"pipeline:{self.num_stages}"
        if self.num_shards > 1:
            name += f"+sharded:{self.num_shards}"
        self.name = name + f":{driver}" + (":pin" if self.pin else "")
        self._pipeline_credit_total = 0.0
        self._bubble_num = 0.0
        self._bubble_den = 0.0

    # -- topology hooks ----------------------------------------------------
    def _topology(self):
        return ("pipeline", self.num_stages, self.num_shards, self.pin)

    def _make_plan(self):
        return PipelinePlan(
            self.model, self.num_stages, num_shards=self.num_shards
        )

    def _stage_plans(self, shard_plan):
        return [
            (f"stage {s} shard", stage)
            for s, stage in enumerate(shard_plan.stages)
        ]

    def _route(self, phase, layer):
        if phase == "logits":
            return self._drivers[-1]
        return self._drivers[self._shard_plan.stage_of[layer]]

    def runtime_stats(self) -> dict:
        stats = super().runtime_stats()
        stats["num_stages"] = self.num_stages
        stats["microbatches"] = self.microbatches
        stats["pipeline_overlap_credit_s"] = self._pipeline_credit_total
        stats["pipeline_bubble_fraction"] = (
            self._bubble_num / self._bubble_den if self._bubble_den else 0.0
        )
        return stats

    # -- the microbatched ragged step --------------------------------------
    def forward_ragged(self, token_ids, caches, new_lens, last_only=True,
                       last_k=1):
        plan = self._ensure_plan()
        shard_plan = self._shard_plan
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError(
                f"token_ids must be 2-D, got shape {token_ids.shape}"
            )
        batch, max_new = token_ids.shape
        if token_ids.min() < 0 or token_ids.max() >= plan.vocab_size:
            raise ValueError("token ids out of range for vocabulary")
        lens = [int(n) for n in new_lens]
        caches = list(caches)
        if len(lens) != batch or len(caches) != batch:
            raise ValueError(
                "token_ids, caches and new_lens must agree on batch"
            )
        if last_k < 1 or last_k > max_new:
            raise ValueError(
                f"last_k must be in [1, {max_new}], got {last_k}"
            )
        pasts = np.empty(batch, dtype=np.int64)
        for r, cache in enumerate(caches):
            n = lens[r]
            if not 1 <= n <= max_new:
                raise ValueError(f"new_lens[{r}]={n} outside [1, {max_new}]")
            past = cache.seq_len
            if past + n > plan.max_position:
                raise ValueError(
                    f"row {r}: length {past + n} exceeds max_position "
                    f"{plan.max_position}"
                )
            pasts[r] = past

        offsets = np.arange(max_new)[None, :] - (
            max_new - np.asarray(lens, dtype=np.int64)
        )[:, None]
        positions = np.maximum(pasts[:, None] + offsets, 0)
        # Embedding (driver-side, with stage 0) runs on the full batch:
        # it is per-row, so splitting it would change nothing.
        hidden = plan.embed(token_ids, positions)

        raw_ok = self._accepts_raw(
            [cache.layers[0] for cache in caches], plan.kv_fmt
        )
        ctx = self._context(plan, batch, max_new)
        bounds = shard_plan.layer_bounds
        num_stages = self.num_stages
        micro = max(1, min(self.microbatches, batch))
        rows = [(m * batch) // micro for m in range(micro + 1)]
        k = last_k if last_only else max_new
        out = np.empty((batch, k, plan.vocab_size), dtype=np.float64)
        times = [[0.0] * micro for _ in range(num_stages)]
        for m in range(micro):
            lo, hi = rows[m], rows[m + 1]
            h_m = hidden[lo:hi]
            lens_m = lens[lo:hi]
            ctx_m = ctx[lo:hi]
            nb = hi - lo
            for s in range(num_stages):
                # Cell time charged to the pipeline recurrence: wall minus
                # the within-cell tensor-fanout credit already accrued, so
                # stage- and shard-level overlap never double-count.
                credit_before = self._credit
                started = time.perf_counter()
                for i in range(bounds[s], bounds[s + 1]):
                    views = [caches[r].layers[i] for r in range(lo, hi)]
                    h_m = self._block_ragged(
                        plan, plan.layers[i], h_m, views, lens_m, nb,
                        max_new, ctx_m, raw_ok,
                    )
                if s == num_stages - 1:
                    h_last = plan.final_norm(h_m)
                    if last_only:
                        h_last = h_last[:, -last_k:, :]
                    out[lo:hi] = self._logits(h_last)
                wall = time.perf_counter() - started
                times[s][m] = max(0.0, wall - (self._credit - credit_before))

        if num_stages > 1 and micro > 1:
            # finish[s][m] = max(finish[s-1][m], finish[s][m-1]) + t[s][m]:
            # stage s starts microbatch m once the previous stage hands it
            # off and its own previous microbatch is done.
            finish = [[0.0] * micro for _ in range(num_stages)]
            for m in range(micro):
                for s in range(num_stages):
                    upstream = finish[s - 1][m] if s else 0.0
                    own_prev = finish[s][m - 1] if m else 0.0
                    finish[s][m] = max(upstream, own_prev) + times[s][m]
            total = sum(sum(row) for row in times)
            path = finish[num_stages - 1][micro - 1]
            credit = max(0.0, total - path)
            self._credit += credit
            self._credit_total += credit
            self._pipeline_credit_total += credit
            if path > 0.0:
                # Bubble: idle stage-time under the critical-path schedule
                # (P*path is the schedule's stage-seconds, total the busy
                # ones).
                self._bubble_num += max(0.0, num_stages * path - total)
                self._bubble_den += num_stages * path
        return out
