"""Error metrics used throughout the paper's evaluation (Sec. V-A).

The paper measures "the absolute deviation of our results from the ground
truth (absolute error)", reporting the average and maximum over 1,000 random
vectors per configuration (Fig. 3, Table I, Fig. 4).  This module provides
those metrics plus relative-error variants useful for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def absolute_error(result: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Element-wise absolute deviation ``|result - reference|``."""
    result = np.asarray(result, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if result.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: result {result.shape} vs reference {reference.shape}"
        )
    return np.abs(result - reference)


def relative_error(
    result: np.ndarray, reference: np.ndarray, floor: float = 1e-30
) -> np.ndarray:
    """Element-wise relative error with a denominator floor to avoid 0/0."""
    abs_err = absolute_error(result, reference)
    denom = np.maximum(np.abs(np.asarray(reference, dtype=np.float64)), floor)
    return abs_err / denom


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of an error population.

    Attributes mirror what the paper reports: the mean and max absolute
    error, plus a few extras (median, p99, RMS) useful when comparing
    methods whose max errors tie (as happens for BFloat16 in Table I).
    """

    mean: float
    max: float
    median: float
    p99: float
    rms: float
    count: int

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for table writers)."""
        return {
            "mean": self.mean,
            "max": self.max,
            "median": self.median,
            "p99": self.p99,
            "rms": self.rms,
            "count": float(self.count),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ErrorStats(mean={self.mean:.3e}, max={self.max:.3e}, n={self.count})"


def error_stats(errors: np.ndarray) -> ErrorStats:
    """Summarize a population of absolute errors.

    Parameters
    ----------
    errors:
        Array of non-negative error magnitudes (any shape; flattened).
    """
    flat = np.asarray(errors, dtype=np.float64).reshape(-1)
    if flat.size == 0:
        raise ValueError("cannot summarize an empty error array")
    if np.any(flat < 0):
        raise ValueError("errors must be non-negative magnitudes")
    return ErrorStats(
        mean=float(np.mean(flat)),
        max=float(np.max(flat)),
        median=float(np.median(flat)),
        p99=float(np.percentile(flat, 99)),
        rms=float(np.sqrt(np.mean(flat * flat))),
        count=int(flat.size),
    )


def error_stats_between(result: np.ndarray, reference: np.ndarray) -> ErrorStats:
    """Shorthand: absolute error between two arrays, summarized."""
    return error_stats(absolute_error(result, reference))
