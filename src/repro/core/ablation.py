"""Ablation studies of IterL2Norm's design choices (Sec. III-B).

The paper motivates two specific choices: the exponent-derived initial value
``a0`` (Eq. 6) and the exponent-derived update rate ``lambda`` (Eq. 10).
This module isolates each choice so the ablation benchmarks can quantify what
it buys:

* **Initialization strategies** — exponent-based (the paper), a fixed
  constant (what a naive implementation would do), and the exact
  ``1/sqrt(m)`` oracle (a lower bound that needs the very operation the
  method is avoiding).
* **Update-rate strategies** — the Eq. (10) rule, a fixed global constant,
  and the optimal discrete rate ``0.5/m`` that requires a division.

Each strategy is a named callable ``(m, fmt) -> float`` and
:func:`ablation_study` runs every combination, reporting the iterations
needed to reach the paper's tolerance and the error after five steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.initialization import initial_a, initial_a_exact, update_rate
from repro.core.iteration import iterate_a_trace
from repro.core.convergence import iterations_to_tolerance
from repro.fpformats.spec import FLOAT32, FloatFormat, get_format

#: Strategy signature: given m = ||y||^2 and the working format, return a value.
Strategy = Callable[[float, FloatFormat], float]


def _init_exponent(m: float, fmt: FloatFormat) -> float:
    return initial_a(m, fmt)


def _init_constant(m: float, fmt: FloatFormat) -> float:
    # A format-agnostic constant; reasonable only when ||y|| ~ 1.
    return 1.0


def _init_oracle(m: float, fmt: FloatFormat) -> float:
    return initial_a_exact(m)


def _rate_exponent(m: float, fmt: FloatFormat) -> float:
    return update_rate(m, fmt)


def _rate_constant(m: float, fmt: FloatFormat) -> float:
    # A fixed small step; stable for small m but hopeless for large m.
    return 1e-3


def _rate_oracle(m: float, fmt: FloatFormat) -> float:
    # lambda = 0.5/m is the optimal *discrete* rate (the update becomes a
    # Newton-like step near the fixed point), but it needs the division the
    # hardware is avoiding.
    return 0.5 / m


#: Named initialization strategies for the ablation.
INIT_STRATEGIES: dict[str, Strategy] = {
    "exponent (Eq. 6)": _init_exponent,
    "constant 1.0": _init_constant,
    "oracle 1/sqrt(m)": _init_oracle,
}

#: Named update-rate strategies for the ablation.
RATE_STRATEGIES: dict[str, Strategy] = {
    "exponent (Eq. 10)": _rate_exponent,
    "constant 1e-3": _rate_constant,
    "oracle 0.5/m": _rate_oracle,
}


@dataclass(frozen=True)
class AblationResult:
    """Convergence behaviour of one (init, rate) strategy combination.

    Attributes
    ----------
    init_name, rate_name:
        The strategy names from :data:`INIT_STRATEGIES` / :data:`RATE_STRATEGIES`.
    mean_steps_to_tolerance:
        Average iterations needed to bring the relative error below the
        tolerance; ``inf`` when any trial failed to converge within the cap.
    converged_fraction:
        Fraction of trials that reached the tolerance within the cap.
    mean_error_five_steps:
        Mean relative error after exactly five iterations.
    """

    init_name: str
    rate_name: str
    mean_steps_to_tolerance: float
    converged_fraction: float
    mean_error_five_steps: float

    def as_row(self) -> dict[str, object]:
        return {
            "init": self.init_name,
            "rate": self.rate_name,
            "mean_steps": self.mean_steps_to_tolerance,
            "converged": self.converged_fraction,
            "rel_err@5": self.mean_error_five_steps,
        }


def evaluate_strategy(
    init: Strategy,
    rate: Strategy,
    norm_squares: np.ndarray,
    fmt: FloatFormat | str = FLOAT32,
    tolerance: float = 1e-3,
    max_steps: int = 50,
) -> tuple[float, float, float]:
    """Run one strategy pair over a population of ``m`` values.

    Returns ``(mean_steps, converged_fraction, mean_rel_error_at_5)``.
    """
    fmt = get_format(fmt)
    steps_needed: list[float] = []
    errors_at_five: list[float] = []
    converged = 0
    for m in np.asarray(norm_squares, dtype=np.float64).reshape(-1):
        m = float(m)
        a0 = init(m, fmt)
        lam = rate(m, fmt)
        trace = iterate_a_trace(m, num_steps=max_steps, lam=lam, a0=a0, fmt=fmt)
        reached = iterations_to_tolerance(trace, tolerance)
        if reached is None:
            steps_needed.append(float(max_steps))
        else:
            steps_needed.append(float(reached))
            converged += 1
        target = 1.0 / np.sqrt(trace.m)
        five = min(5, len(trace.a_history) - 1)
        value = trace.a_history[five]
        if np.isfinite(value):
            errors_at_five.append(abs(value - target) / target)
        else:
            errors_at_five.append(np.inf)  # the strategy diverged
    count = len(steps_needed)
    return (
        float(np.mean(steps_needed)),
        converged / count,
        float(np.mean(errors_at_five)),
    )


def ablation_study(
    norm_squares: np.ndarray,
    fmt: FloatFormat | str = FLOAT32,
    tolerance: float = 1e-3,
    max_steps: int = 50,
    init_strategies: dict[str, Strategy] | None = None,
    rate_strategies: dict[str, Strategy] | None = None,
) -> list[AblationResult]:
    """Run every (initialization, update-rate) combination over ``norm_squares``."""
    init_strategies = init_strategies or INIT_STRATEGIES
    rate_strategies = rate_strategies or RATE_STRATEGIES
    results = []
    for init_name, init in init_strategies.items():
        for rate_name, rate in rate_strategies.items():
            mean_steps, converged, err5 = evaluate_strategy(
                init, rate, norm_squares, fmt=fmt, tolerance=tolerance, max_steps=max_steps
            )
            results.append(
                AblationResult(
                    init_name=init_name,
                    rate_name=rate_name,
                    mean_steps_to_tolerance=mean_steps,
                    converged_fraction=converged,
                    mean_error_five_steps=err5,
                )
            )
    return results


def typical_norm_squares(
    lengths=(64, 256, 1024, 4096),
    trials_per_length: int = 50,
    seed: int = 0,
) -> np.ndarray:
    """Squared norms of mean-shifted uniform(-1, 1) vectors (the paper's inputs)."""
    rng = np.random.default_rng(seed)
    values = []
    for d in lengths:
        x = rng.uniform(-1.0, 1.0, size=(trials_per_length, int(d)))
        y = x - x.mean(axis=1, keepdims=True)
        values.append(np.sum(y * y, axis=1))
    return np.concatenate(values)
