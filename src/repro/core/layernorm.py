"""IterL2Norm-based layer normalization (Algorithm 1 of the paper).

Layer normalization of ``x`` with learned scale ``gamma`` and shift ``beta``:

    Step 1:  y  = x - mean(x)
    Step 2:  y^ = y / sigma_y  =  sqrt(d) * y / ||y||
    Step 3:  z  = gamma * y^ + beta

IterL2Norm replaces Step 2's division/square-root with the scalar iteration
of :mod:`repro.core.iteration`.  :class:`IterL2Norm` is the user-facing
module: it handles batched inputs (normalization over the last axis), both
exact-float64 and format-rounded execution, and exposes the iteration count
``num_steps`` as a parameter, matching the PyTorch module the paper built for
its LLM-level evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.iteration import iterate_a_batch
from repro.fpformats.arithmetic import FormatArithmetic
from repro.fpformats.spec import FLOAT64, FloatFormat, get_format


@dataclass(frozen=True)
class IterL2NormConfig:
    """Configuration of an IterL2Norm layer-norm module.

    Attributes
    ----------
    num_steps:
        Number of iteration steps ``n_iter``; the paper evaluates 3, 4, 5, 10.
    fmt:
        Working floating-point format name (``"fp64"`` means exact math).
    update_rate:
        Optional fixed lambda overriding Eq. (10).
    initial_a:
        Optional fixed ``a0`` overriding Eq. (6).
    elementwise_affine:
        Whether gamma/beta are applied (True for the paper's layer norm).
    """

    num_steps: int = 5
    fmt: str = "fp64"
    update_rate: float | None = None
    initial_a: float | None = None
    elementwise_affine: bool = True

    def __post_init__(self) -> None:
        if self.num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {self.num_steps}")
        get_format(self.fmt)  # validate eagerly


class IterL2Norm:
    """Drop-in layer normalization module backed by the IterL2Norm iteration.

    Parameters
    ----------
    normalized_dim:
        Length ``d`` of the normalized (last) axis.
    config:
        An :class:`IterL2NormConfig`; defaults to 5 steps in exact float64.
    gamma, beta:
        Optional initial scale/shift parameters of shape ``(normalized_dim,)``.
        Default to ones and zeros, matching a freshly initialized LayerNorm.

    Examples
    --------
    >>> layer = IterL2Norm(8, IterL2NormConfig(num_steps=5, fmt="fp32"))
    >>> x = np.random.default_rng(0).normal(size=(4, 8))
    >>> z = layer(x)
    >>> z.shape
    (4, 8)
    """

    def __init__(
        self,
        normalized_dim: int,
        config: IterL2NormConfig | None = None,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
    ) -> None:
        if normalized_dim < 1:
            raise ValueError(f"normalized_dim must be >= 1, got {normalized_dim}")
        self.normalized_dim = int(normalized_dim)
        self.config = config or IterL2NormConfig()
        self.fmt: FloatFormat = get_format(self.config.fmt)
        self._arith = FormatArithmetic(self.fmt)

        self.gamma = self._init_param(gamma, default=1.0, name="gamma")
        self.beta = self._init_param(beta, default=0.0, name="beta")

    def _init_param(
        self, value: np.ndarray | None, default: float, name: str
    ) -> np.ndarray:
        if value is None:
            param = np.full(self.normalized_dim, default, dtype=np.float64)
        else:
            param = np.asarray(value, dtype=np.float64)
            if param.shape != (self.normalized_dim,):
                raise ValueError(
                    f"{name} must have shape ({self.normalized_dim},), got {param.shape}"
                )
        return np.asarray(self._arith.cast(param))

    # -- forward ---------------------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Layer-normalize ``x`` over its last axis.

        Accepts any array whose last dimension equals ``normalized_dim``;
        leading dimensions are treated as independent rows (batch and
        sequence axes of a transformer activation).  The whole batch is
        normalized in one vectorized pass: per-row means and squared norms go
        through the format-rounded adder-tree reduction, and the scalar
        iteration runs on the vector of per-row ``m`` values at once.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"last axis of x must be {self.normalized_dim}, got {x.shape[-1]}"
            )
        arith = self._arith
        cfg = self.config
        d = self.normalized_dim

        flat = x.reshape(-1, d)
        x_q = np.asarray(arith.cast(flat))
        sums = np.atleast_1d(np.asarray(arith.tree_sum(x_q, axis=-1)))
        inv_d = arith.cast(1.0 / d)
        means = np.asarray(arith.mul(sums, inv_d)).reshape(-1, 1)
        y = np.asarray(arith.sub(x_q, means))
        squares = np.asarray(arith.mul(y, y))
        m = np.atleast_1d(np.asarray(arith.tree_sum(squares, axis=-1)))

        a = iterate_a_batch(
            m,
            num_steps=cfg.num_steps,
            lam=cfg.update_rate,
            a0=cfg.initial_a,
            fmt=self.fmt,
        )
        scales = np.asarray(arith.mul(a, arith.cast(np.sqrt(d)))).reshape(-1, 1)
        y_hat = np.asarray(arith.mul(y, scales))

        if cfg.elementwise_affine:
            out = np.asarray(arith.add(arith.mul(y_hat, self.gamma), self.beta))
        else:
            out = y_hat
        return out.reshape(x.shape)

    def normalize(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` (keeps parity with the exact baseline)."""
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IterL2Norm(d={self.normalized_dim}, steps={self.config.num_steps}, "
            f"fmt={self.fmt.name})"
        )


def iterl2norm_layernorm(
    x: np.ndarray,
    gamma: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    num_steps: int = 5,
    fmt: FloatFormat | str | None = None,
) -> np.ndarray:
    """Functional form of Algorithm 1 for a single call.

    Convenience wrapper that builds a transient :class:`IterL2Norm` for the
    last-axis length of ``x`` and applies it once.
    """
    x = np.asarray(x, dtype=np.float64)
    fmt_name = FLOAT64.name if fmt is None else get_format(fmt).name
    layer = IterL2Norm(
        x.shape[-1],
        IterL2NormConfig(num_steps=num_steps, fmt=fmt_name),
        gamma=gamma,
        beta=beta,
    )
    return layer(x)
