"""The discrete IterL2Norm scalar iteration (Eq. 5) and vector normalizer.

The iteration updates a single scalar ``a`` per input vector:

    delta_a = lambda * m * a * (1 - m * a^2)
    a      <- a + delta_a

which converges to ``a_inf = 1 / ||y||`` so that ``a * y`` is the
L2-normalized vector.  Two execution modes are provided:

* exact float64 (``fmt=None`` or ``"fp64"``) — for theory-level analysis;
* format-rounded (``fmt="fp32" | "fp16" | "bf16" | FloatFormat``) — every
  intermediate result is quantized, emulating the hardware datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.initialization import initial_a, update_rate
from repro.fpformats.arithmetic import FormatArithmetic
from repro.fpformats.quantize import quantize
from repro.fpformats.spec import FLOAT64, FloatFormat, get_format


def _resolve_format(fmt: FloatFormat | str | None) -> FloatFormat:
    if fmt is None:
        return FLOAT64
    return get_format(fmt)


def iterate_a(
    m: float,
    num_steps: int = 5,
    lam: float | None = None,
    a0: float | None = None,
    fmt: FloatFormat | str | None = None,
) -> float:
    """Run the scalar iteration for ``num_steps`` steps and return ``a``.

    Parameters
    ----------
    m:
        Squared norm ``||y||^2`` of the mean-shifted input.
    num_steps:
        Number of iteration steps ``n_iter`` (the paper uses 5 by default).
    lam:
        Update rate.  When omitted, Eq. (10) is applied to ``m`` in ``fmt``.
    a0:
        Initial value.  When omitted, Eq. (6) is applied to ``m`` in ``fmt``.
    fmt:
        Working format; ``None`` means exact float64.
    """
    return iterate_a_trace(m, num_steps=num_steps, lam=lam, a0=a0, fmt=fmt).final_a


@dataclass
class IterationTrace:
    """Full record of one scalar iteration run (used for convergence plots).

    Attributes
    ----------
    m:
        The squared norm the iteration was run for.
    lam:
        Update rate actually used.
    a_history:
        ``a`` after 0, 1, ..., n steps (length ``num_steps + 1``).
    delta_history:
        The ``delta_a`` applied at each step (length ``num_steps``).
    """

    m: float
    lam: float
    a_history: list[float] = field(default_factory=list)
    delta_history: list[float] = field(default_factory=list)

    @property
    def final_a(self) -> float:
        """The value of ``a`` after the last step."""
        return self.a_history[-1]

    @property
    def num_steps(self) -> int:
        """Number of update steps executed."""
        return len(self.delta_history)

    def error_history(self) -> np.ndarray:
        """Absolute error ``|a_i - 1/sqrt(m)|`` after each step."""
        target = 1.0 / np.sqrt(self.m)
        return np.abs(np.asarray(self.a_history) - target)


def iterate_a_trace(
    m: float,
    num_steps: int = 5,
    lam: float | None = None,
    a0: float | None = None,
    fmt: FloatFormat | str | None = None,
) -> IterationTrace:
    """Like :func:`iterate_a` but returning the full :class:`IterationTrace`."""
    if num_steps < 0:
        raise ValueError(f"num_steps must be non-negative, got {num_steps}")
    if not np.isfinite(m) or m <= 0.0:
        raise ValueError(f"m = ||y||^2 must be positive and finite, got {m}")

    work_fmt = _resolve_format(fmt)
    m_q = float(quantize(m, work_fmt))
    if m_q <= 0.0:
        # m underflowed in the working format; fall back to the smallest
        # representable positive value so the exponent read still works.
        m_q = work_fmt.min_positive_subnormal

    if a0 is None:
        a0 = initial_a(m_q, work_fmt)
    if lam is None:
        lam = update_rate(m_q, work_fmt)
    a = float(quantize(a0, work_fmt))
    lam = float(quantize(lam, work_fmt))

    trace = IterationTrace(m=m_q, lam=lam, a_history=[a])
    q = lambda v: float(quantize(v, work_fmt))  # noqa: E731 - local shorthand

    for _ in range(num_steps):
        ma = q(m_q * a)           # m * a
        ma2 = q(ma * a)           # m * a^2
        one_minus = q(1.0 - ma2)  # 1 - m a^2
        lam_ma = q(lam * ma)      # lambda * m * a
        delta = q(lam_ma * one_minus)
        a = q(a + delta)
        trace.delta_history.append(delta)
        trace.a_history.append(a)
    return trace


def iterate_a_batch(
    m: np.ndarray,
    num_steps: int = 5,
    lam: np.ndarray | float | None = None,
    a0: np.ndarray | float | None = None,
    fmt: FloatFormat | str | None = None,
) -> np.ndarray:
    """Vectorized scalar iteration over a batch of ``m`` values.

    Functionally identical to calling :func:`iterate_a` on each element of
    ``m`` (a unit test asserts this), but executed with array operations so
    the transformer substrate can normalize thousands of token rows per call.
    Non-positive entries of ``m`` (all-zero rows) yield ``a = 0``.
    """
    if num_steps < 0:
        raise ValueError(f"num_steps must be non-negative, got {num_steps}")
    work_fmt = _resolve_format(fmt)
    m_input = np.atleast_1d(np.asarray(m, dtype=np.float64))
    positive = m_input > 0.0
    m_arr = np.asarray(quantize(m_input, work_fmt), dtype=np.float64)
    m_arr = np.atleast_1d(m_arr)
    # Positive entries that underflow to zero in the working format fall back
    # to the smallest representable positive value, exactly as iterate_a does.
    underflowed = positive & (m_arr <= 0.0)
    if np.any(underflowed):
        m_arr = np.where(underflowed, work_fmt.min_positive_subnormal, m_arr)
    # Use 1.0 as a placeholder for non-positive entries so the exponent read
    # and the arithmetic stay finite; the result is masked to zero at the end.
    m_safe = np.where(positive, m_arr, 1.0)

    from repro.core.initialization import LAMBDA_COEFFICIENT
    from repro.fpformats.bitops import unbiased_exponent

    exponents = np.asarray(unbiased_exponent(m_safe, work_fmt), dtype=np.float64)
    if a0 is None:
        a = np.asarray(quantize(np.exp2(-(exponents + 1.0) / 2.0), work_fmt), dtype=np.float64)
    else:
        a = np.broadcast_to(
            np.asarray(quantize(a0, work_fmt), dtype=np.float64), m_safe.shape
        ).copy()
    if lam is None:
        lam_arr = np.asarray(
            quantize(LAMBDA_COEFFICIENT * np.exp2(-exponents), work_fmt), dtype=np.float64
        )
    else:
        lam_arr = np.broadcast_to(
            np.asarray(quantize(lam, work_fmt), dtype=np.float64), m_safe.shape
        )

    q = lambda v: np.asarray(quantize(v, work_fmt), dtype=np.float64)  # noqa: E731
    for _ in range(num_steps):
        ma = q(m_safe * a)
        ma2 = q(ma * a)
        one_minus = q(1.0 - ma2)
        lam_ma = q(lam_arr * ma)
        delta = q(lam_ma * one_minus)
        a = q(a + delta)

    a = np.where(positive, a, 0.0)
    return a.reshape(np.shape(m) if np.ndim(m) else (1,))


def iterl2norm_vector(
    y: np.ndarray,
    num_steps: int = 5,
    lam: float | None = None,
    a0: float | None = None,
    fmt: FloatFormat | str | None = None,
    scale_by_sqrt_d: bool = False,
) -> np.ndarray:
    """L2-normalize a (mean-shifted) vector with the IterL2Norm iteration.

    Parameters
    ----------
    y:
        Input vector.  No mean shift is applied here; use
        :class:`~repro.core.layernorm.IterL2Norm` for full layer
        normalization.
    num_steps, lam, a0, fmt:
        Forwarded to :func:`iterate_a_trace`.
    scale_by_sqrt_d:
        When true, multiply the result by ``sqrt(d)`` (the layer-norm
        convention ``y / sigma`` instead of ``y / ||y||``).

    Returns
    -------
    numpy.ndarray
        ``a * y`` (optionally times ``sqrt(d)``), quantized to ``fmt``.
    """
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"y must be a 1-D vector, got shape {y.shape}")
    if y.size == 0:
        raise ValueError("y must be non-empty")

    work_fmt = _resolve_format(fmt)
    arith = FormatArithmetic(work_fmt)
    y_q = np.asarray(arith.cast(y))
    m = arith.sum_of_squares(y_q)
    if m <= 0.0:
        # All-zero input: the normalized vector is defined as zero, matching
        # the behaviour of layer norm with zero variance and no epsilon.
        return np.zeros_like(y_q)

    a = iterate_a_trace(m, num_steps=num_steps, lam=lam, a0=a0, fmt=work_fmt).final_a
    if scale_by_sqrt_d:
        scale = float(arith.mul(a, arith.cast(np.sqrt(y.size))))
    else:
        scale = a
    return np.asarray(arith.mul(y_q, scale))
