"""Convergence diagnostics for the IterL2Norm iteration (Sec. III-B, Fig. 4).

The paper motivates its ``a0`` / ``lambda`` rules by how quickly the scalar
iteration reaches the fixed point.  This module measures that directly:
per-step error traces, the number of iterations needed to reach a tolerance,
and a combined report used by the Fig. 4 experiment and the ablation
benchmarks (e.g. "what if a0 were 1.0 instead of the exponent-derived
value?").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dynamics import analytical_a
from repro.core.iteration import IterationTrace, iterate_a_trace
from repro.fpformats.spec import FloatFormat


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of how one scalar iteration run converged.

    Attributes
    ----------
    m:
        The squared norm the iteration targeted.
    lam:
        Update rate used.
    final_error:
        ``|a_n - 1/sqrt(m)|`` after the last step.
    relative_final_error:
        ``final_error * sqrt(m)`` (error relative to the fixed point).
    steps_to_tolerance:
        First step index at which the relative error fell below the
        tolerance, or ``None`` if it never did within the run.
    error_trace:
        Tuple of absolute errors after steps 0..n.
    analytical_trace:
        The continuous-time prediction of Eq. (9) at the same step indices,
        for comparing the Euler iterate against theory.
    """

    m: float
    lam: float
    final_error: float
    relative_final_error: float
    steps_to_tolerance: int | None
    error_trace: tuple[float, ...]
    analytical_trace: tuple[float, ...]


def iterations_to_tolerance(
    trace: IterationTrace, tolerance: float = 1e-3
) -> int | None:
    """First step at which the *relative* error drops below ``tolerance``.

    Relative error is measured against the fixed point ``1/sqrt(m)`` because
    the paper's convergence criterion (delta_c in Sec. III-B) is a relative
    one.  Returns ``None`` when the trace never reaches the tolerance.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    target = 1.0 / np.sqrt(trace.m)
    errors = trace.error_history() / target
    below = np.flatnonzero(errors <= tolerance)
    if below.size == 0:
        return None
    return int(below[0])


def convergence_report(
    m: float,
    num_steps: int = 10,
    tolerance: float = 1e-3,
    lam: float | None = None,
    a0: float | None = None,
    fmt: FloatFormat | str | None = None,
) -> ConvergenceReport:
    """Run the iteration and package its convergence behaviour.

    Parameters mirror :func:`repro.core.iteration.iterate_a_trace`; the
    report additionally carries the analytical Eq. (9) trajectory evaluated
    at the same step indices, so callers can see how closely the Euler
    discretization tracks the continuous dynamics.
    """
    trace = iterate_a_trace(m, num_steps=num_steps, lam=lam, a0=a0, fmt=fmt)
    target = 1.0 / np.sqrt(trace.m)
    errors = trace.error_history()

    a0_used = trace.a_history[0]
    steps_idx = np.arange(len(trace.a_history), dtype=np.float64)
    analytical = np.abs(
        np.asarray(analytical_a(a0_used, trace.m, trace.lam, steps_idx)) - target
    )

    return ConvergenceReport(
        m=trace.m,
        lam=trace.lam,
        final_error=float(errors[-1]),
        relative_final_error=float(errors[-1] / target),
        steps_to_tolerance=iterations_to_tolerance(trace, tolerance),
        error_trace=tuple(float(e) for e in errors),
        analytical_trace=tuple(float(e) for e in analytical),
    )


def worst_case_steps(
    norm_squares: np.ndarray,
    tolerance: float = 1e-3,
    max_steps: int = 50,
    fmt: FloatFormat | str | None = None,
) -> int:
    """Largest step count needed across a population of ``m`` values.

    Used by tests to confirm the paper's claim that five iterations suffice
    for the default ``a0`` / ``lambda`` rules across widely varying input
    norms.  Raises if any input fails to converge within ``max_steps``.
    """
    worst = 0
    for m in np.asarray(norm_squares, dtype=np.float64).reshape(-1):
        report = convergence_report(
            float(m), num_steps=max_steps, tolerance=tolerance, fmt=fmt
        )
        if report.steps_to_tolerance is None:
            raise RuntimeError(
                f"iteration did not reach tolerance {tolerance} within "
                f"{max_steps} steps for m={m}"
            )
        worst = max(worst, report.steps_to_tolerance)
    return worst
