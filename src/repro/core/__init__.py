"""Core IterL2Norm algorithm (the paper's primary contribution).

The package is organised around the paper's own structure:

* :mod:`~repro.core.dynamics` — the continuous dynamical system of
  Theorem II.1: fixed points, stability, and the analytical solution
  (Eqs. 7–9) used to derive the update-rate rule.
* :mod:`~repro.core.iteration` — the discrete scalar iteration (Eq. 5),
  both in exact float64 and through a format-rounded datapath.
* :mod:`~repro.core.initialization` — the exponent-based initial value
  ``a0`` (Eq. 6) and the update-rate rule for ``lambda`` (Eq. 10).
* :mod:`~repro.core.layernorm` — Algorithm 1: IterL2Norm-based layer
  normalization with scale/shift parameters, plus a plain L2-normalizer.
* :mod:`~repro.core.metrics` — the error metrics used in the evaluation
  (mean / max absolute deviation from the exact result).
* :mod:`~repro.core.convergence` — convergence-rate diagnostics (iterations
  to tolerance, per-step error traces).
"""

from repro.core.dynamics import (
    NormalizationDynamics,
    analytical_a,
    analytical_k,
    fixed_points,
    integrate_ode,
)
from repro.core.initialization import (
    initial_a,
    initial_a_exact,
    required_lambda,
    update_rate,
)
from repro.core.iteration import (
    IterationTrace,
    iterate_a,
    iterate_a_trace,
    iterl2norm_vector,
)
from repro.core.layernorm import IterL2Norm, IterL2NormConfig, iterl2norm_layernorm
from repro.core.metrics import (
    ErrorStats,
    absolute_error,
    error_stats,
    relative_error,
)
from repro.core.convergence import (
    ConvergenceReport,
    convergence_report,
    iterations_to_tolerance,
)

__all__ = [
    "ConvergenceReport",
    "ErrorStats",
    "IterL2Norm",
    "IterL2NormConfig",
    "IterationTrace",
    "NormalizationDynamics",
    "absolute_error",
    "analytical_a",
    "analytical_k",
    "convergence_report",
    "error_stats",
    "fixed_points",
    "initial_a",
    "initial_a_exact",
    "integrate_ode",
    "iterate_a",
    "iterate_a_trace",
    "iterations_to_tolerance",
    "iterl2norm_layernorm",
    "iterl2norm_vector",
    "relative_error",
    "required_lambda",
    "update_rate",
]
