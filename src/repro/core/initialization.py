"""Initialization and update-rate rules of IterL2Norm (Sec. III-B).

Both rules read only the exponent field of ``m = ||y||^2``, which is why the
hardware realization needs no division or square root:

* ``a0 = 2**(-(E(m) - bias + 1) / 2)``                       (Eq. 6)
* ``lambda > 0.345 * 2**(-(E(m) - bias))``                   (Eq. 10)

``E(m)`` is the raw (biased) exponent field of ``m`` in the working format,
so evaluating ``a0`` costs one add, one subtract, and a bit shift, and the
``lambda`` bound costs one subtract and one multiply.
"""

from __future__ import annotations

import numpy as np

from repro.fpformats.bitops import unbiased_exponent
from repro.fpformats.quantize import quantize
from repro.fpformats.spec import FLOAT32, FloatFormat, get_format

#: Constant from Eq. (10): lambda > -ln(delta_c) / (2 * n_c) * 2^-(E(m)-bias)
#: with delta_c = 1e-3 and n_c = 5 gives 0.69/2 = 0.345 after bounding
#: m^-1 <= 2^-(E(m)-bias).
LAMBDA_COEFFICIENT = 0.345

#: Default convergence targets used by the paper to derive Eq. (10).
DEFAULT_TOLERANCE = 1e-3
DEFAULT_TARGET_STEPS = 5


def initial_a(m: float, fmt: FloatFormat | str = FLOAT32) -> float:
    """Exponent-based initial value ``a0`` (Eq. 6).

    ``a0 = 2**(-(E(m) - bias + 1) / 2)`` where ``E(m)`` is the biased
    exponent field of ``m`` in ``fmt``.  Because
    ``a_inf = Significand(m)**-0.5 * 2**(-(E(m)-bias)/2)`` and the
    significand lies in ``[1, 2)``, the ratio ``a0 / a_inf`` lies in
    ``(1/sqrt(2), 1]`` — i.e. the initial point is within 30% of the fixed
    point before any iteration happens.

    Parameters
    ----------
    m:
        The squared norm ``||y||^2`` (must be positive and finite).
    fmt:
        Working floating-point format whose exponent field is read.
    """
    fmt = get_format(fmt)
    if not np.isfinite(m) or m <= 0.0:
        raise ValueError(f"m = ||y||^2 must be positive and finite, got {m}")
    e_unbiased = int(unbiased_exponent(m, fmt))
    a0 = 2.0 ** (-(e_unbiased + 1) / 2.0)
    return float(quantize(a0, fmt))


def initial_a_exact(m: float) -> float:
    """The exact fixed point ``a_inf = 1/sqrt(m)`` (for analysis only).

    The hardware never computes this; it exists so tests and convergence
    studies can measure how far ``a0`` starts from the target.
    """
    if m <= 0.0:
        raise ValueError(f"m must be positive, got {m}")
    return 1.0 / np.sqrt(m)


def required_lambda(
    m: float,
    tolerance: float = DEFAULT_TOLERANCE,
    target_steps: int = DEFAULT_TARGET_STEPS,
) -> float:
    """Exact lower bound on lambda from the analytical solution.

    From Eq. (9), the transient decays as ``exp(-2 m n lambda)``; requiring
    it to fall below ``tolerance`` within ``target_steps`` iterations gives
    ``lambda > -ln(tolerance) / (2 m n_c)``.  This uses a true division by
    ``m`` and is therefore only a reference for tests — the hardware uses
    :func:`update_rate` instead.
    """
    if m <= 0.0:
        raise ValueError(f"m must be positive, got {m}")
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if target_steps < 1:
        raise ValueError(f"target_steps must be >= 1, got {target_steps}")
    return float(-np.log(tolerance) / (2.0 * m * target_steps))


def update_rate(
    m: float,
    fmt: FloatFormat | str = FLOAT32,
    coefficient: float = LAMBDA_COEFFICIENT,
    safety_factor: float = 1.0,
) -> float:
    """Division-free update rate lambda (Eq. 10).

    Uses the bound ``m**-1 <= 2**(-(E(m) - bias))`` so that
    ``lambda = coefficient * 2**(-(E(m) - bias))`` satisfies the convergence
    condition without computing ``1/m``.

    Parameters
    ----------
    m:
        The squared norm ``||y||^2``.
    fmt:
        Working format whose exponent field of ``m`` is read.
    coefficient:
        The paper's 0.345 by default (delta_c = 1e-3, n_c = 5).
    safety_factor:
        Multiplier > 0 applied on top of the coefficient; values slightly
        above 1 trade a little precision for faster convergence, values
        below 1 do the opposite.  Exposed for the ablation benchmarks.
    """
    fmt = get_format(fmt)
    if not np.isfinite(m) or m <= 0.0:
        raise ValueError(f"m = ||y||^2 must be positive and finite, got {m}")
    if coefficient <= 0.0:
        raise ValueError(f"coefficient must be positive, got {coefficient}")
    if safety_factor <= 0.0:
        raise ValueError(f"safety_factor must be positive, got {safety_factor}")
    e_unbiased = int(unbiased_exponent(m, fmt))
    lam = coefficient * safety_factor * 2.0 ** (-e_unbiased)
    return float(quantize(lam, fmt))


def lambda_coefficient_for(tolerance: float, target_steps: int) -> float:
    """Derive the Eq. (10) coefficient for custom convergence targets.

    ``coefficient = -ln(tolerance) / (2 * target_steps)``, evaluated with the
    worst-case significand bound ``Significand(m) >= 1``.  With the paper's
    defaults (1e-3, 5) this returns ~0.69/2 ≈ 0.345.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if target_steps < 1:
        raise ValueError(f"target_steps must be >= 1, got {target_steps}")
    return float(-np.log(tolerance) / (2.0 * target_steps))
