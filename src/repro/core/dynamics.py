"""The continuous dynamical system underlying IterL2Norm (Theorem II.1).

The paper derives IterL2Norm from the vector ODE

    tau * d(y~)/dt = k * y - alpha * k^2 * y~,      k = y . y~

whose stable fixed point is the L2-normalized input (scaled by
``alpha**-0.5``).  Because every trajectory started parallel to ``y`` stays
parallel to ``y``, the system collapses to the scalar ODE of Eq. (7),

    tau * da/dt = -m^2 * a * (a^2 - 1/m),           m = ||y||^2

with the closed-form solution of Eq. (8)/(9).  This module implements the
vector system, its fixed-point/stability analysis, a reference ODE
integrator, and the analytical solutions — all of which are used by the
tests to validate the discrete iteration against theory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPoint:
    """A fixed point of the scalar dynamics for ``k = y . y~``.

    Attributes
    ----------
    k:
        The fixed-point value of the inner product ``k``.
    stable:
        Whether the fixed point is locally asymptotically stable.
    """

    k: float
    stable: bool


def fixed_points(norm_y: float, alpha: float = 1.0) -> tuple[FixedPoint, ...]:
    """Fixed points of the scalar ``k`` dynamics for a given ``||y||``.

    The proof of Theorem II.1 shows ``tau dk/dt = k ||y||^2 - alpha k^3``,
    which has an unstable fixed point at ``k = 0`` and stable fixed points at
    ``k = +/- alpha**-0.5 * ||y||``.

    Parameters
    ----------
    norm_y:
        The L2 norm ``||y||`` (must be positive).
    alpha:
        The positive constant of Theorem II.1; the paper uses ``alpha = 1``.
    """
    if norm_y <= 0:
        raise ValueError(f"||y|| must be positive, got {norm_y}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    k_star = norm_y / np.sqrt(alpha)
    return (
        FixedPoint(k=-k_star, stable=True),
        FixedPoint(k=0.0, stable=False),
        FixedPoint(k=k_star, stable=True),
    )


class NormalizationDynamics:
    """The vector dynamical system of Theorem II.1 for a fixed input ``y``.

    Parameters
    ----------
    y:
        The (already mean-shifted) input vector.
    alpha:
        Positive constant; ``alpha = 1`` gives plain L2 normalization.
    tau:
        Time constant of the ODE.  Only the ratio ``dt / tau`` matters for
        the discrete iteration, but keeping ``tau`` explicit matches the
        paper's derivation.
    """

    def __init__(self, y: np.ndarray, alpha: float = 1.0, tau: float = 1.0) -> None:
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1:
            raise ValueError(f"y must be a 1-D vector, got shape {y.shape}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        if not np.any(y != 0):
            raise ValueError("y must be a nonzero vector")
        self.y = y
        self.alpha = float(alpha)
        self.tau = float(tau)
        self.m = float(np.dot(y, y))

    def k(self, y_tilde: np.ndarray) -> float:
        """Inner product ``k = y . y~``."""
        return float(np.dot(self.y, np.asarray(y_tilde, dtype=np.float64)))

    def derivative(self, y_tilde: np.ndarray) -> np.ndarray:
        """Right-hand side ``d(y~)/dt`` of Eq. (1), divided by ``tau``."""
        y_tilde = np.asarray(y_tilde, dtype=np.float64)
        k = self.k(y_tilde)
        return (k * self.y - self.alpha * k * k * y_tilde) / self.tau

    def steady_state(self) -> np.ndarray:
        """The stable steady state ``alpha**-0.5 * y / ||y||``."""
        return self.y / (np.sqrt(self.alpha) * np.linalg.norm(self.y))

    def scalar_derivative(self, a: float) -> float:
        """Right-hand side of the scalar ODE (Eq. 7) for ``y~ = a y``."""
        m = self.m
        return -(m * m) * a * (a * a - 1.0 / (self.alpha * m)) * self.alpha / self.tau


def integrate_ode(
    dynamics: NormalizationDynamics,
    y_tilde0: np.ndarray,
    t_end: float,
    dt: float = 1e-3,
) -> np.ndarray:
    """Integrate the vector ODE with RK4 (reference trajectory for tests).

    This is deliberately a plain fixed-step integrator: it exists to check
    that the discrete Euler iteration used by IterL2Norm lands on the same
    fixed point as a much more accurate integration of the same dynamics.
    """
    if t_end <= 0:
        raise ValueError(f"t_end must be positive, got {t_end}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    state = np.asarray(y_tilde0, dtype=np.float64).copy()
    steps = int(np.ceil(t_end / dt))
    for _ in range(steps):
        k1 = dynamics.derivative(state)
        k2 = dynamics.derivative(state + 0.5 * dt * k1)
        k3 = dynamics.derivative(state + 0.5 * dt * k2)
        k4 = dynamics.derivative(state + dt * k3)
        state = state + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
    return state


def analytical_a(
    a0: float, m: float, lam: float, steps: np.ndarray | int
) -> np.ndarray | float:
    """Closed-form trajectory of ``a`` (Eq. 9) after ``steps`` iterations.

    The continuous solution is
    ``a(n) = a0 / sqrt((1 - m a0^2) e^{-2 m n lambda} + m a0^2)``.
    The discrete Euler iteration approaches this trajectory for small
    ``lambda``; the evaluation section uses it to choose ``lambda``.
    """
    if m <= 0:
        raise ValueError(f"m = ||y||^2 must be positive, got {m}")
    n = np.asarray(steps, dtype=np.float64)
    decay = (1.0 - m * a0 * a0) * np.exp(-2.0 * m * n * lam) + m * a0 * a0
    result = a0 / np.sqrt(decay)
    if np.ndim(steps) == 0:
        return float(result)
    return result


def analytical_k(
    k0: float, norm_y: float, alpha: float, t: np.ndarray | float, tau: float = 1.0
) -> np.ndarray | float:
    """Closed-form trajectory of ``k(t)`` for the scalar ``k`` dynamics.

    Solves ``tau dk/dt = k ||y||^2 - alpha k^3`` (a Bernoulli equation) with
    initial condition ``k(0) = k0``.  Used by tests to verify that the sign
    of ``k0`` selects the stable fixed point, exactly as Theorem II.1 states.
    """
    if norm_y <= 0:
        raise ValueError(f"||y|| must be positive, got {norm_y}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if k0 == 0.0:
        # The unstable fixed point: the trajectory stays at zero.
        return np.zeros_like(np.asarray(t, dtype=np.float64)) if np.ndim(t) else 0.0
    m = norm_y * norm_y
    t_arr = np.asarray(t, dtype=np.float64)
    # 1/k^2 obeys a linear ODE; solve it and map back, keeping the sign of k0.
    inv_sq = alpha / m + (1.0 / (k0 * k0) - alpha / m) * np.exp(-2.0 * m * t_arr / tau)
    result = np.sign(k0) / np.sqrt(inv_sq)
    if np.ndim(t) == 0:
        return float(result)
    return result
