"""Bridging the transformer substrate and the hardware macro model.

Two pieces live here:

* :class:`MacroBackedLayerNorm` — a normalizer (registry-compatible) that
  routes every row through the cycle-accurate
  :class:`~repro.macro.simulator.IterL2NormMacro`, accumulating the cycles it
  would cost in hardware.  Functionally it matches the pure-algorithm
  :class:`~repro.core.layernorm.IterL2Norm` bit for bit (the macro unit tests
  assert that), so it is only worth the simulation overhead when the cycle
  accounting is the point.
* :func:`normalization_cost_report` — the integrator's question: for a given
  OPT configuration and token rate, how many normalizations per token, how
  many macro cycles per token, and how many macro instances keep up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.macro.latency import LatencyModel
from repro.macro.simulator import IterL2NormMacro, MacroConfig
from repro.macro.throughput import ThroughputModel
from repro.nn.config import OPTConfig


class MacroBackedLayerNorm:
    """Layer normalization executed on the IterL2Norm macro simulator.

    Parameters
    ----------
    normalized_dim:
        Length of the normalized axis (must fit the macro's buffer).
    fmt:
        Macro data format.
    num_steps:
        Iteration count programmed into the macro.
    gamma, beta:
        Affine parameters (default: ones / zeros).

    Attributes
    ----------
    cycles_consumed:
        Total macro cycles spent since construction (or the last
        :meth:`reset_counters` call).
    vectors_normalized:
        Number of rows processed.
    """

    def __init__(
        self,
        normalized_dim: int,
        fmt: str | None = "fp32",
        num_steps: int = 5,
        gamma: np.ndarray | None = None,
        beta: np.ndarray | None = None,
    ) -> None:
        fmt = fmt or "fp32"
        config = MacroConfig(fmt=fmt, num_steps=num_steps)
        if normalized_dim > config.max_vector_length:
            raise ValueError(
                f"normalized_dim {normalized_dim} exceeds the macro capacity "
                f"{config.max_vector_length}"
            )
        self.normalized_dim = int(normalized_dim)
        self.macro = IterL2NormMacro(config)
        self.gamma = np.ones(normalized_dim) if gamma is None else np.asarray(gamma, dtype=np.float64)
        self.beta = np.zeros(normalized_dim) if beta is None else np.asarray(beta, dtype=np.float64)
        if self.gamma.shape != (normalized_dim,) or self.beta.shape != (normalized_dim,):
            raise ValueError("gamma and beta must have shape (normalized_dim,)")
        self.cycles_consumed = 0
        self.vectors_normalized = 0

    def reset_counters(self) -> None:
        """Zero the cycle and vector counters."""
        self.cycles_consumed = 0
        self.vectors_normalized = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Normalize ``x`` row by row on the macro, accumulating cycles."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"last axis of x must be {self.normalized_dim}, got {x.shape[-1]}"
            )
        flat = x.reshape(-1, self.normalized_dim)
        outputs, cycles, results = self.macro.normalize_batch(flat, self.gamma, self.beta)
        self.cycles_consumed += cycles
        self.vectors_normalized += len(results)
        return outputs.reshape(x.shape)


@dataclass(frozen=True)
class NormalizationCostReport:
    """Per-token normalization cost of an OPT-style model on the macro.

    Attributes
    ----------
    model_name:
        Configuration the report was computed for.
    embed_dim:
        Normalized-axis length.
    layernorms_per_token:
        LayerNorm applications per generated token (2 per block + final).
    cycles_per_normalization:
        Macro cycles for one d-long vector (Fig. 5 value).
    cycles_per_token:
        ``layernorms_per_token * cycles_per_normalization``.
    microseconds_per_token:
        The same at the given clock.
    macros_for_realtime:
        Macro instances needed to sustain ``target_tokens_per_second``.
    """

    model_name: str
    embed_dim: int
    layernorms_per_token: int
    cycles_per_normalization: int
    cycles_per_token: int
    microseconds_per_token: float
    target_tokens_per_second: float
    macros_for_realtime: int

    def as_row(self) -> dict[str, object]:
        return {
            "model": self.model_name,
            "d": self.embed_dim,
            "LN/token": self.layernorms_per_token,
            "cycles/LN": self.cycles_per_normalization,
            "cycles/token": self.cycles_per_token,
            "us/token": round(self.microseconds_per_token, 3),
            "macros_needed": self.macros_for_realtime,
        }


def normalization_cost_report(
    config: OPTConfig,
    num_steps: int = 5,
    clock_mhz: float = 100.0,
    target_tokens_per_second: float = 1e4,
) -> NormalizationCostReport:
    """How much IterL2Norm hardware an OPT-style decoder needs per token.

    During autoregressive decoding each new token activates every layer norm
    in the stack exactly once, so the normalization demand is
    ``num_layernorms`` d-long vectors per token.
    """
    if clock_mhz <= 0:
        raise ValueError(f"clock_mhz must be positive, got {clock_mhz}")
    if target_tokens_per_second <= 0:
        raise ValueError(
            f"target_tokens_per_second must be positive, got {target_tokens_per_second}"
        )
    latency = LatencyModel()
    d = config.embed_dim
    cycles_per_norm = latency.total_cycles(d, num_steps)
    norms_per_token = config.num_layernorms
    cycles_per_token = cycles_per_norm * norms_per_token

    throughput = ThroughputModel(clock_mhz=clock_mhz)
    macros = throughput.macros_required(
        d, target_tokens_per_second * norms_per_token, num_steps
    )
    return NormalizationCostReport(
        model_name=config.name,
        embed_dim=d,
        layernorms_per_token=norms_per_token,
        cycles_per_normalization=cycles_per_norm,
        cycles_per_token=cycles_per_token,
        microseconds_per_token=cycles_per_token / clock_mhz,
        target_tokens_per_second=target_tokens_per_second,
        macros_for_realtime=macros,
    )
