"""IterL2Norm reproduction: fast iterative L2-normalization (DATE 2025).

Top-level convenience exports cover the most common entry points:

* :class:`~repro.core.layernorm.IterL2Norm` — the drop-in layer-norm module.
* :func:`~repro.core.iteration.iterl2norm_vector` — one-shot vector
  normalization.
* :class:`~repro.baselines.exact.ExactLayerNorm` and
  :class:`~repro.baselines.fisr.FISRLayerNorm` — the baselines.
* :mod:`repro.fpformats` — FP32/FP16/BFloat16 emulation.
* :mod:`repro.precision` — whole-model precision policies
  (:class:`~repro.precision.policy.PrecisionPolicy` and its registry).
* :mod:`repro.macro` — the hardware macro simulator and area/power models.
* :mod:`repro.nn` / :mod:`repro.data` / :mod:`repro.eval` — the OPT-style
  transformer substrate and the experiment harness.
"""

from repro.core.iteration import iterate_a, iterl2norm_vector
from repro.core.layernorm import IterL2Norm, IterL2NormConfig, iterl2norm_layernorm
from repro.baselines.exact import ExactLayerNorm, exact_layernorm
from repro.baselines.fisr import FISRLayerNorm, fast_inverse_sqrt
from repro.baselines.registry import available_methods, get_normalizer
from repro.fpformats.spec import BFLOAT16, FLOAT16, FLOAT32, FloatFormat, get_format
from repro.precision.policy import PrecisionPolicy, available_policies, get_policy

__version__ = "1.0.0"

__all__ = [
    "BFLOAT16",
    "ExactLayerNorm",
    "FISRLayerNorm",
    "FLOAT16",
    "FLOAT32",
    "FloatFormat",
    "IterL2Norm",
    "IterL2NormConfig",
    "PrecisionPolicy",
    "__version__",
    "available_methods",
    "available_policies",
    "get_policy",
    "exact_layernorm",
    "fast_inverse_sqrt",
    "get_format",
    "get_normalizer",
    "iterate_a",
    "iterl2norm_layernorm",
    "iterl2norm_vector",
]
