"""The ``precision-sweep`` experiment: (policy × normalizer) end to end.

Where Table IV asks "which normalizer, at which format, *inside the
normalizer*", this sweep asks the system-level question the precision-policy
subsystem makes answerable: **which normalizer at which whole-model
datapath precision** — weights, activations, accumulators, and the KV cache
all emulated per :class:`~repro.precision.policy.PrecisionPolicy`.

Each cell of the grid is one engine :class:`~repro.engine.Job`
(``run_cell``): it trains the substrate model in exact float64, applies the
cell's policy (with the normalizer variant layered on top via
:meth:`~repro.precision.policy.PrecisionPolicy.with_normalizer`), measures

* **perplexity** on the task's validation windows under that policy, and
* **serving metrics** (tokens/s, TTFT, ITL, pool reuse) by driving a seeded
  traffic scenario through the continuous-batching
  :class:`~repro.serve.engine.ServeEngine` — whose KV pool quantizes K/V to
  the policy's cache format on write.

``run_sweep`` fans the grid out over the engine scheduler and writes
``BENCH_precision.json``::

    {
      "config":  {...},
      "results": [ {policy, normalizer, perplexity, serve, pool, ...} ],
      "comparison": {  # per (policy, normalizer), relative to fp64-ref
        "<policy>": {"<normalizer>": {"perplexity_delta": ...,
                                       "tokens_per_second_ratio": ...}}
      }
    }
"""

from __future__ import annotations

import json
import sys

from repro.baselines.registry import VARIANT_PRESETS
from repro.engine import Job, ResultCache, run_jobs
from repro.precision.policy import DEFAULT_SWEEP_POLICIES, get_policy

#: Reference policy every comparison row is computed against.
REFERENCE_POLICY = "fp64-ref"

#: Normalizer variants of the sweep — the shared presets of
#: :data:`repro.baselines.registry.VARIANT_PRESETS` (``None`` means the
#: trained exact LayerNorm; the policy still rounds its output to the
#: activation format).  The normalizer's working format follows the
#: policy's activation format, so e.g. ``bf16 × iterl2norm`` runs
#: IterL2Norm fully inside bfloat16 — the paper's deployment scenario.
NORMALIZER_VARIANTS = VARIANT_PRESETS

DEFAULT_NORMALIZERS = ("baseline", "iterl2norm")

#: Column header shared by the standalone sweep and the runner section.
TABLE_HEADER = (
    "policy     normalizer   perplexity   tokens/s       TTFT p50    KV fmt"
)


def format_row(row: dict) -> str:
    """One table line for a result row (the single source of the columns)."""
    serve = row["serve"]
    return (
        f"{row['policy']:10s} {row['normalizer']:10s} "
        f"ppl {row['perplexity']:9.3f}  "
        f"{serve['tokens_per_second']:9.1f} tok/s  "
        f"ttft p50 {serve['ttft_p50_s'] * 1e3:7.2f} ms  "
        f"kv {row['policy_spec']['kv_cache_fmt']:8s}"
    )


def _cell_policy(policy_name: str, normalizer: str):
    """Resolve the effective policy of one (policy, normalizer) cell."""
    if normalizer not in NORMALIZER_VARIANTS:
        known = ", ".join(sorted(NORMALIZER_VARIANTS))
        raise KeyError(f"unknown normalizer {normalizer!r}; known: {known}")
    policy = get_policy(policy_name)
    variant = NORMALIZER_VARIANTS[normalizer]
    if variant is None:
        return policy
    method, kwargs = variant
    return policy.with_normalizer(method, fmt=policy.variant_normalizer_fmt, **kwargs)


def run_cell(
    policy: str = "fp64-ref",
    normalizer: str = "baseline",
    quick: bool = True,
    seed: int = 0,
    model_name: str | None = None,
    task: str = "wikitext2-sim",
    train_steps: int | None = None,
    eval_windows: int | None = None,
    scenario: str = "steady",
    num_requests: int | None = None,
    max_batch_size: int = 4,
) -> tuple[dict, str]:
    """One (policy, normalizer) cell: perplexity + serving metrics.

    The substrate model trains in exact float64 (policies only shape
    evaluation), then both measurements run under the cell's policy.  All
    inputs are seeded, so token streams are deterministic; timing columns
    are measured per run.
    """
    from repro.eval.perplexity import LLMEvalConfig, evaluate_perplexity, prepare_model
    from repro.serve.engine import ServeEngine
    from repro.serve.workload import generate_workload

    if model_name is None:
        model_name = "opt-test" if quick else "opt-125m-sim"
    if train_steps is None:
        train_steps = 40 if quick else 120
    if eval_windows is None:
        eval_windows = 8 if quick else 16
    if num_requests is None:
        num_requests = 8 if quick else 24

    eval_config = LLMEvalConfig(
        tasks=(task,),
        models=(model_name,),
        train_steps=train_steps,
        eval_windows=eval_windows,
        seq_len=32 if quick else 48,
        seed=seed,
    )
    model, dataset, model_config = prepare_model(task, model_name, eval_config)

    applied = _cell_policy(policy, normalizer)
    model.set_policy(applied)
    model.eval()
    perplexity = evaluate_perplexity(model, dataset, eval_config)

    workload = generate_workload(
        scenario,
        num_requests=num_requests,
        vocab_size=model_config.vocab_size,
        seed=seed,
    )
    engine = ServeEngine(model, max_batch_size=max_batch_size)
    report = engine.serve(workload)
    metrics = report.metrics

    rows = {
        "policy": get_policy(policy).name,
        "normalizer": normalizer,
        "policy_spec": applied.to_dict(),
        "model": model_name,
        "task": task,
        "scenario": scenario,
        "num_requests": num_requests,
        "max_batch_size": max_batch_size,
        "seed": seed,
        "perplexity": float(perplexity),
        "serve": {
            "tokens_per_second": metrics["tokens_per_second"],
            "ttft_p50_s": metrics["ttft_s"]["p50"],
            "ttft_p99_s": metrics["ttft_s"]["p99"],
            "itl_p50_s": metrics["inter_token_latency_s"]["p50"],
            "tokens_generated": metrics["tokens_generated"],
        },
        "pool": report.pool_stats,
    }
    return rows, format_row(rows)


def jobs(
    quick: bool = True,
    seed: int = 0,
    policies=DEFAULT_SWEEP_POLICIES,
    normalizers=DEFAULT_NORMALIZERS,
    **params,
) -> list[Job]:
    """One engine job per (policy, normalizer) cell."""
    # Validate both axes before scheduling anything, so a typo fails fast
    # instead of inside a worker after the valid cells already ran.
    for policy in policies:
        get_policy(policy)
    for normalizer in normalizers:
        if normalizer not in NORMALIZER_VARIANTS:
            known = ", ".join(sorted(NORMALIZER_VARIANTS))
            raise KeyError(f"unknown normalizer {normalizer!r}; known: {known}")
    return [
        Job(
            name=f"precision[{policy}/{normalizer}]",
            target="repro.experiments.precision_sweep:run_cell",
            params={
                "policy": policy,
                "normalizer": normalizer,
                "quick": bool(quick),
                **params,
            },
            seed=seed,
        )
        for policy in policies
        for normalizer in normalizers
    ]


def merge_cell_rows(groups: list[object]) -> tuple[object, str]:
    """Fold the sweep cells back into one section table (for the runner)."""
    rows = list(groups)
    lines = [TABLE_HEADER] + [format_row(row) for row in rows]
    return rows, "\n".join(lines)


def _comparison(results: list[dict]) -> dict:
    """Per-cell deltas relative to the ``fp64-ref`` cell of each normalizer."""
    references = {
        row["normalizer"]: row
        for row in results
        if row["policy"] == REFERENCE_POLICY
    }
    comparison: dict[str, dict] = {}
    for row in results:
        reference = references.get(row["normalizer"])
        if reference is None or row is reference:
            continue
        ref_tps = reference["serve"]["tokens_per_second"]
        comparison.setdefault(row["policy"], {})[row["normalizer"]] = {
            "perplexity_delta": row["perplexity"] - reference["perplexity"],
            "perplexity_ratio": (
                row["perplexity"] / reference["perplexity"]
                if reference["perplexity"]
                else None
            ),
            "tokens_per_second_ratio": (
                row["serve"]["tokens_per_second"] / ref_tps if ref_tps else None
            ),
        }
    return comparison


def run_sweep(
    quick: bool = True,
    jobs_n: int = 1,
    seed: int = 0,
    out_path: str = "BENCH_precision.json",
    policies=DEFAULT_SWEEP_POLICIES,
    normalizers=DEFAULT_NORMALIZERS,
    cache_dir=None,
    use_cache: bool = False,
    no_cache: bool = False,
    stream=None,
    **params,
) -> tuple[dict, str]:
    """Run the (policy × normalizer) grid and write ``out_path``.

    Mirrors :func:`repro.serve.bench.run_bench`: cells fan out over the
    engine scheduler; the result cache is off by default because the
    serving columns are measured timings.
    """
    stream = stream or sys.stdout
    declared = jobs(
        quick=quick, seed=seed, policies=policies, normalizers=normalizers, **params
    )
    cache = ResultCache(cache_dir) if use_cache else None
    outcomes = run_jobs(
        declared, max_workers=jobs_n, cache=cache, no_cache=no_cache, stream=sys.stderr
    )

    results = [outcome.rows for outcome in outcomes]
    lines = [TABLE_HEADER]
    lines += [outcome.text for outcome in outcomes]
    payload = {
        "config": {
            "quick": bool(quick),
            "seed": int(seed),
            "policies": [get_policy(p).name for p in policies],
            "normalizers": list(normalizers),
            "model": results[0]["model"] if results else None,
            "task": results[0]["task"] if results else None,
            "scenario": results[0]["scenario"] if results else None,
        },
        "results": results,
        "comparison": _comparison(results),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    lines.append(f"wrote {out_path}")
    text = "\n".join(lines)
    stream.write(text + "\n")
    return payload, text
