"""Auxiliary benchmark reports (traffic and throughput) as engine jobs.

The host-vs-on-chip data-movement analysis and the multi-vector throughput
model are not paper tables, but they are part of the benchmark suite, so
they get the same declarative job treatment as ``fig3`` … ``table4``:
a ``run_*_job`` entry point returning ``(rows, text)`` plus a ``*_job``
factory the scheduler (and the CLI) can use.
"""

from __future__ import annotations

from repro.eval.reporting import format_table

#: Token counts swept by the traffic report.
TRAFFIC_TOKEN_COUNTS = (64, 256, 1024, 4096)
#: Vector lengths swept by the throughput report.
THROUGHPUT_LENGTHS = (64, 128, 256, 512, 768, 1024)


def run_traffic_job(
    embed_dim: int = 768,
    fmt: str = "fp16",
    interface: str = "ddr4",
    token_counts=TRAFFIC_TOKEN_COUNTS,
) -> tuple[list[dict[str, object]], str]:
    """Host-side vs on-chip data movement for a sweep of token counts."""
    from repro.macro.traffic import DDR4_CHANNEL, HBM2_STACK, PCIE4_X16, TrafficModel

    interfaces = {"pcie4": PCIE4_X16, "ddr4": DDR4_CHANNEL, "hbm2": HBM2_STACK}
    if interface not in interfaces:
        raise KeyError(f"unknown interface {interface!r}; known: {sorted(interfaces)}")
    model = TrafficModel(interface=interfaces[interface])
    rows = [
        model.report(embed_dim, int(tokens), fmt=fmt).as_row()
        for tokens in token_counts
    ]
    text = format_table(
        rows,
        title=(
            "Host-side vs on-chip layer normalization "
            f"(d={embed_dim}, {fmt}, {interface})"
        ),
    )
    return rows, text


def run_throughput_job(
    embed_dim: int = 768,
    tokens_per_second: float = 1e5,
    lengths=THROUGHPUT_LENGTHS,
) -> tuple[list[dict[str, object]], str]:
    """Single-macro throughput sweep plus the macros-needed sizing answer."""
    from repro.macro.throughput import ThroughputModel

    model = ThroughputModel()
    rows = [r.as_row() for r in model.sweep(tuple(int(d) for d in lengths))]
    needed = model.macros_required(embed_dim, tokens_per_second)
    text = format_table(
        rows, title="IterL2Norm macro throughput (one instance, 100 MHz)"
    ) + (
        f"\n\nmacros needed for {tokens_per_second:g} tokens/s at "
        f"d={embed_dim}: {needed}"
    )
    return rows, text


def traffic_job(
    embed_dim: int = 768,
    fmt: str = "fp16",
    interface: str = "ddr4",
    token_counts=TRAFFIC_TOKEN_COUNTS,
):
    """Declare the traffic report as a schedulable engine job."""
    from repro.engine.job import engine_job

    return engine_job(
        "Traffic",
        "repro.experiments.reports:run_traffic_job",
        seeded=False,
        embed_dim=embed_dim,
        fmt=fmt,
        interface=interface,
        token_counts=token_counts,
    )


def throughput_job(
    embed_dim: int = 768,
    tokens_per_second: float = 1e5,
    lengths=THROUGHPUT_LENGTHS,
):
    """Declare the throughput report as a schedulable engine job."""
    from repro.engine.job import engine_job

    return engine_job(
        "Throughput",
        "repro.experiments.reports:run_throughput_job",
        seeded=False,
        embed_dim=embed_dim,
        tokens_per_second=tokens_per_second,
        lengths=lengths,
    )
