"""Extension experiment (not in the paper): IterL2Norm below 16 bits.

The paper stresses that IterL2Norm "is applicable to various FP formats"
because the initialization and update-rate rules only read the exponent
field.  This extension pushes that claim to the OCP FP8 formats (E4M3 and
E5M2): the *scalar iteration and the exponent rules* run in FP8 (with
different biases — 7 and 15 — exercising the format-generic code paths),
while the vector datapath stays in BFloat16, the mixed-precision arrangement
an FP8 accelerator would actually use.  The experiment reports the error of
that arrangement against exact layer normalization and against the all-BF16
configuration, for a few representative lengths.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.exact import exact_layernorm
from repro.core.iteration import iterate_a_batch
from repro.eval.reporting import format_table
from repro.fpformats.arithmetic import FormatArithmetic
from repro.fpformats.spec import get_format

DEFAULT_LENGTHS = (64, 256, 1024)
DEFAULT_SCALAR_FORMATS = ("bf16", "fp8_e4m3", "fp8_e5m2")


def mixed_precision_layernorm(
    x: np.ndarray,
    scalar_fmt: str,
    vector_fmt: str = "bf16",
    num_steps: int = 5,
) -> np.ndarray:
    """Layer norm with the scalar iteration in ``scalar_fmt``.

    The vector operations (mean shift, sum of squares, final scaling) run in
    ``vector_fmt``; only the per-row scalar recursion — the part the paper's
    iteration controller implements — is quantized to ``scalar_fmt``.
    """
    get_format(scalar_fmt)
    arith = FormatArithmetic(vector_fmt)
    x = np.asarray(x, dtype=np.float64)
    d = x.shape[-1]
    flat = np.asarray(arith.cast(x.reshape(-1, d)))
    sums = np.atleast_1d(np.asarray(arith.tree_sum(flat, axis=-1)))
    means = np.asarray(arith.mul(sums, arith.cast(1.0 / d))).reshape(-1, 1)
    y = np.asarray(arith.sub(flat, means))
    m = np.atleast_1d(np.asarray(arith.tree_sum(np.asarray(arith.mul(y, y)), axis=-1)))
    a = iterate_a_batch(m, num_steps=num_steps, fmt=scalar_fmt)
    scales = np.asarray(arith.mul(a, arith.cast(np.sqrt(d)))).reshape(-1, 1)
    return np.asarray(arith.mul(y, scales)).reshape(x.shape)


def run(
    lengths=DEFAULT_LENGTHS,
    scalar_formats=DEFAULT_SCALAR_FORMATS,
    num_steps: int = 5,
    trials: int = 200,
    seed: int = 0,
) -> tuple[list[dict[str, object]], str]:
    """Run the FP8 extension sweep and return (rows, formatted text)."""
    rng = np.random.default_rng(seed)
    rows: list[dict[str, object]] = []
    for d in lengths:
        x = rng.uniform(-1.0, 1.0, size=(trials, int(d)))
        reference = exact_layernorm(x)
        for scalar_fmt in scalar_formats:
            result = mixed_precision_layernorm(x, scalar_fmt, num_steps=num_steps)
            err = np.abs(result - reference)
            rows.append(
                {
                    "scalar_fmt": scalar_fmt,
                    "vector_fmt": "bf16",
                    "d": int(d),
                    "steps": num_steps,
                    "mean_err": float(err.mean()),
                    "max_err": float(err.max()),
                }
            )
    text = format_table(
        rows,
        columns=["scalar_fmt", "vector_fmt", "d", "steps", "mean_err", "max_err"],
        title=(
            "Extension - IterL2Norm scalar iteration in sub-16-bit formats "
            "(vector datapath in BFloat16)"
        ),
    )
    return rows, text


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run()[1])
