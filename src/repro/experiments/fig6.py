"""Fig. 6 — area and power breakdowns of the IterL2Norm macro.

Regenerates the per-format area (Fig. 6a-c) and power (Fig. 6d-f) component
breakdowns from the area/power model.  The paper does not publish the
numeric fractions, only the pie charts; the qualitative claims it makes in
the text — memory is the largest area component, the FP multipliers/adders
dominate power — are asserted by the benchmark for this figure.
"""

from __future__ import annotations

from repro.eval.reporting import format_breakdown
from repro.eval.synthesis import area_power_breakdowns


def run(formats=("fp32", "fp16", "bf16")) -> tuple[dict[str, dict[str, dict[str, float]]], str]:
    """Run the Fig. 6 report and return (breakdowns, formatted text)."""
    breakdowns = area_power_breakdowns(formats)
    lines = ["Fig. 6 - IterL2Norm macro area/power breakdowns"]
    for fmt, parts in breakdowns.items():
        lines.append(format_breakdown(parts["area"], title=f"{fmt} area breakdown:"))
        lines.append(format_breakdown(parts["power"], title=f"{fmt} power breakdown:"))
    return breakdowns, "\n".join(lines)


def job(formats=("fp32", "fp16", "bf16")):
    """Declare the Fig. 6 breakdown report as a schedulable engine job.

    The report is fully deterministic (no RNG), so the job is unseeded.
    """
    from repro.engine.job import engine_job

    return engine_job(
        "Fig. 6", "repro.experiments.fig6:run", seeded=False, formats=formats
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run()[1])
