"""Fig. 5 — macro latency vs input length.

Regenerates the latency series of the IterL2Norm macro (five iteration
steps) over 64 <= d <= 1024 using the closed-form latency model, and
optionally cross-checks it against the cycle simulator.
"""

from __future__ import annotations

from repro.eval.latency import FIG5_LENGTHS, latency_sweep
from repro.eval.reporting import format_table


def run(
    lengths=FIG5_LENGTHS,
    num_steps: int = 5,
    cross_check_simulator: bool = True,
    seed: int = 0,
) -> tuple[list[dict[str, object]], str]:
    """Run the Fig. 5 sweep and return (rows, formatted text)."""
    model_sweep = latency_sweep(lengths=lengths, num_steps=num_steps, use_simulator=False)
    rows = model_sweep.as_rows()
    lines = [
        format_table(
            rows,
            columns=["d", "cycles", "us_at_100MHz"],
            title="Fig. 5 - IterL2Norm macro latency vs input length (5 iteration steps)",
        ),
        f"  range: {model_sweep.min_cycles}-{model_sweep.max_cycles} cycles "
        f"(paper reports 116-227)",
    ]
    if cross_check_simulator:
        sim_sweep = latency_sweep(
            lengths=lengths[:4], num_steps=num_steps, use_simulator=True, seed=seed
        )
        agree = all(
            sim == model
            for sim, model in zip(sim_sweep.cycles, model_sweep.cycles[: len(sim_sweep.cycles)])
        )
        lines.append(f"  cycle simulator agreement on first 4 lengths: {agree}")
    return rows, "\n".join(lines)


def job(
    lengths=FIG5_LENGTHS,
    num_steps: int = 5,
    cross_check_simulator: bool = True,
    seed: int = 0,
):
    """Declare the Fig. 5 latency sweep as a schedulable engine job."""
    from repro.engine.job import engine_job

    return engine_job(
        "Fig. 5",
        "repro.experiments.fig5:run",
        seed=seed,
        lengths=lengths,
        num_steps=num_steps,
        cross_check_simulator=cross_check_simulator,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run()[1])
