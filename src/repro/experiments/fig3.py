"""Fig. 3 — IterL2Norm precision across input lengths and formats.

Regenerates the three panels of Fig. 3 (FP32, FP16, BFloat16 error vs input
length, 5 iteration steps, 1,000 uniform random vectors per point) and the
d = 384 error histograms shown in the insets.
"""

from __future__ import annotations

from repro.eval.precision import FIG3_LENGTHS, error_histogram, precision_sweep
from repro.eval.reporting import format_table


def run(
    lengths=FIG3_LENGTHS,
    formats=("fp32", "fp16", "bf16"),
    trials: int = 1000,
    num_steps: int = 5,
    seed: int = 0,
) -> tuple[list[dict[str, object]], str]:
    """Run the Fig. 3 sweep and return (rows, formatted text)."""
    results = precision_sweep(
        lengths=lengths, formats=formats, num_steps=num_steps, trials=trials, seed=seed
    )
    rows = [r.as_row() for r in results]
    text = format_table(
        rows,
        columns=["format", "d", "steps", "mean_err", "max_err"],
        title="Fig. 3 - IterL2Norm precision vs input length (1,000 uniform vectors)",
    )

    hist_lines = ["", "Fig. 3 insets - distribution of per-vector mean error at d=384:"]
    for fmt in formats:
        counts, edges = error_histogram(
            length=384, fmt=fmt, num_steps=num_steps, trials=trials, seed=seed
        )
        hist_lines.append(
            f"  {fmt}: bins {edges[0]:.2e}..{edges[-1]:.2e}, counts {list(map(int, counts))}"
        )
    return rows, text + "\n" + "\n".join(hist_lines)


def job(
    lengths=FIG3_LENGTHS,
    formats=("fp32", "fp16", "bf16"),
    trials: int = 1000,
    num_steps: int = 5,
    seed: int = 0,
):
    """Declare the Fig. 3 sweep as a schedulable engine job."""
    from repro.engine.job import engine_job

    return engine_job(
        "Fig. 3",
        "repro.experiments.fig3:run",
        seed=seed,
        lengths=lengths,
        formats=formats,
        trials=trials,
        num_steps=num_steps,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run(trials=200)[1])
