"""Regenerate every table and figure of the paper in one run.

``python -m repro.experiments.runner`` prints the full set of reproduced
tables/figures; ``--quick`` shrinks the trial counts so the whole run
finishes in a couple of minutes on a laptop.  EXPERIMENTS.md was produced
from the output of this runner.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.perplexity import LLMEvalConfig
from repro.experiments import fig3, fig4, fig5, fig6, table1, table2, table3, table4


def run_all(quick: bool = False, stream=None) -> dict[str, object]:
    """Run every experiment; returns the raw rows keyed by experiment name."""
    stream = stream or sys.stdout
    trials = 200 if quick else 1000
    results: dict[str, object] = {}

    def section(name: str, rows: object, text: str, started: float) -> None:
        results[name] = rows
        elapsed = time.perf_counter() - started
        stream.write(f"\n{'=' * 78}\n{name}  ({elapsed:.1f}s)\n{'=' * 78}\n{text}\n")

    t = time.perf_counter()
    rows, text = fig3.run(trials=trials)
    section("Fig. 3", rows, text, t)

    t = time.perf_counter()
    rows, text = table1.run(trials=trials)
    section("Table I", rows, text, t)

    t = time.perf_counter()
    rows, text = fig4.run(trials=trials)
    section("Fig. 4", rows, text, t)

    t = time.perf_counter()
    rows, text = fig5.run()
    section("Fig. 5", rows, text, t)

    t = time.perf_counter()
    rows, text = table2.run()
    section("Table II", rows, text, t)

    t = time.perf_counter()
    rows, text = fig6.run()
    section("Fig. 6", rows, text, t)

    t = time.perf_counter()
    rows, text = table3.run()
    section("Table III", rows, text, t)

    t = time.perf_counter()
    if quick:
        config = LLMEvalConfig(train_steps=60, eval_windows=8)
    else:
        config = LLMEvalConfig()
    rows, text = table4.run(config)
    section("Table IV", rows, text, t)

    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced trial counts for a fast run"
    )
    args = parser.parse_args(argv)
    run_all(quick=args.quick)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
