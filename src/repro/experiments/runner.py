"""Regenerate every table and figure of the paper in one run.

``python -m repro.experiments.runner`` prints the full set of reproduced
tables/figures; ``--quick`` shrinks the trial counts so the whole run
finishes in a couple of minutes on a laptop.  EXPERIMENTS.md was produced
from the output of this runner.

The runner is built on :mod:`repro.engine`: each experiment is declared as
a seedable :class:`~repro.engine.job.Job`, fanned out over a process pool
(``--jobs N``), and keyed into a content-addressed disk cache so a repeated
invocation replays the stored tables near-instantly (``--no-cache`` forces
recomputation, ``--cache-dir`` relocates the store).
"""

from __future__ import annotations

import argparse
import sys

from repro.engine import Job, ResultCache, run_jobs
from repro.engine.options import add_engine_arguments
from repro.eval.perplexity import LLMEvalConfig
from repro.experiments import (
    fig3,
    fig4,
    fig5,
    fig6,
    precision_sweep,
    table1,
    table2,
    table3,
    table4,
)

def _merge_serve_rows(groups: list[object]) -> tuple[object, str]:
    """Fold the serve-bench cells back into one section table."""
    rows = list(groups)
    header = (
        "scenario       normalizer   strategy       tokens/s   TTFT p50        "
        "queue max  prefix hit  tok/step"
    )
    lines = [header]
    for row in rows:
        metrics = row["metrics"]
        lines.append(
            f"{row['scenario']:14s} {row['normalizer']:10s} "
            f"{row.get('decode_strategy', 'one-token'):13s} "
            f"{metrics['tokens_per_second']:9.1f}  "
            f"{metrics['ttft_s']['p50'] * 1e3:9.2f} ms  "
            f"{metrics['queue_depth']['max']:6d}  "
            f"{metrics['prefix_hit_rate'] * 100:9.1f}%  "
            f"{metrics['decode_tokens_per_step']:8.2f}"
        )
    return rows, "\n".join(lines)


def _merge_cluster_rows(groups: list[object]) -> tuple[object, str]:
    """Fold the cluster-bench cells back into one section table."""
    rows = list(groups)
    header = (
        "scenario       routing          R     tokens/s   prefix hit  "
        "imbalance  fairness   spill"
    )
    lines = [header]
    for row in rows:
        cluster = row["cluster"]
        lines.append(
            f"{row['scenario']:14s} {row['routing']:15s} "
            f"{row['replicas']:2d} {cluster['aggregate_tokens_per_second']:10.1f}  "
            f"{cluster['prefix_hit_rate'] * 100:9.1f}%  "
            f"{cluster['load_imbalance']:8.3f}  {cluster['jain_fairness']:8.3f}  "
            f"{cluster['routing']['spill_count']:5d}"
        )
    return rows, "\n".join(lines)


#: Sections whose jobs are merged back into one table after scheduling.
_MERGED_SECTIONS = {
    "Table IV": table4.merge_cell_rows,
    "Serve bench": _merge_serve_rows,
    "Precision sweep": precision_sweep.merge_cell_rows,
    "Cluster bench": _merge_cluster_rows,
}


def build_sections(
    quick: bool = False,
    seed: int = 0,
    include_serve: bool = False,
    include_precision: bool = False,
    include_cluster: bool = False,
    policy: str = "fp64-ref",
    decode_strategy: str = "one-token",
    ngram: int | None = None,
    max_draft: int | None = None,
    backend: str = "reference",
) -> list[tuple[str, list[Job]]]:
    """Declare the paper's experiments as (section title, jobs) groups.

    Most sections are a single job; Table IV fans out into one job per
    (task, model) cell so its training runs parallelize.  With
    ``include_serve`` the continuous-batching serving benchmark joins as a
    fan-out section of (scenario, normalizer) cells — token streams are
    deterministic, but its timing columns are measured per run, so cached
    replays show the timings of the original computation.  ``policy``
    serves that section under the named precision policy, and
    ``include_precision`` adds the (policy × normalizer) precision-sweep
    section as its own fan-out of perplexity + serving cells.  A
    speculative ``decode_strategy`` (``--decode-strategy prompt-lookup``)
    extends the serve section with paired one-token vs speculative cells
    on the copy-heavy grid (``ngram`` / ``max_draft`` tune the
    speculator).  ``backend`` runs every serve cell on the named
    execution backend (tokens are backend-invariant, so cached rows stay
    comparable; only the timing columns move).
    """
    if decode_strategy == "one-token" and (ngram is not None or max_draft is not None):
        raise ValueError("--ngram/--max-draft require --decode-strategy prompt-lookup")
    if decode_strategy != "one-token" and not include_serve:
        raise ValueError("--decode-strategy requires --serve")
    trials = 200 if quick else 1000
    if quick:
        llm_config = LLMEvalConfig(train_steps=60, eval_windows=8, seed=seed)
    else:
        llm_config = LLMEvalConfig(seed=seed)
    sections = [
        ("Fig. 3", [fig3.job(trials=trials, seed=seed)]),
        ("Table I", [table1.job(trials=trials, seed=seed)]),
        ("Fig. 4", [fig4.job(trials=trials, seed=seed)]),
        ("Fig. 5", [fig5.job(seed=seed)]),
        ("Table II", [table2.job()]),
        ("Fig. 6", [fig6.job()]),
        ("Table III", [table3.job()]),
        ("Table IV", table4.jobs(llm_config)),
    ]
    if include_serve:
        from repro.nn.executor import validate_backend
        from repro.serve import bench

        validate_backend(backend)
        backends = (backend,)
        serve_jobs = bench.jobs(
            quick=quick, seed=seed, policy=policy, backends=backends
        )
        # Structured scenarios exercising the paged-KV scheduling features:
        # shared-prefix adoption (chat/agent) under a chunked-prefill budget.
        serve_jobs += bench.jobs(
            quick=quick,
            seed=seed,
            policy=policy,
            backends=backends,
            scenarios=("chat-multiturn", "agent-fanout"),
            normalizers=("baseline",),
            prefix_caching=True,
            prefill_budget=32,
        )
        if decode_strategy != "one-token":
            # Paired one-token vs speculative cells on the copy-heavy grid.
            spec_knobs = {}
            if ngram is not None:
                spec_knobs["ngram"] = int(ngram)
            if max_draft is not None:
                spec_knobs["max_draft"] = int(max_draft)
            serve_jobs += bench.jobs(
                quick=quick,
                seed=seed,
                policy=policy,
                backends=backends,
                scenarios=bench.SPEC_SCENARIOS,
                normalizers=("baseline",),
                decode_strategies=("one-token", decode_strategy),
                **spec_knobs,
            )
        sections.append(("Serve bench", serve_jobs))
    if include_cluster:
        from repro.cluster import bench as cluster_bench

        # Replica counts x routing policies on the shared-prefix scenarios:
        # every cell serves the identical workload, so the section isolates
        # what routing placement does to hit rate and aggregate throughput.
        sections.append(
            ("Cluster bench", cluster_bench.jobs(quick=quick, seed=seed))
        )
    if include_precision:
        sections.append(
            ("Precision sweep", precision_sweep.jobs(quick=quick, seed=seed))
        )
    return sections


def run_all(
    quick: bool = False,
    stream=None,
    jobs: int = 1,
    cache_dir=None,
    no_cache: bool = False,
    seed: int = 0,
    use_cache: bool = True,
    include_serve: bool = False,
    include_precision: bool = False,
    include_cluster: bool = False,
    policy: str = "fp64-ref",
    decode_strategy: str = "one-token",
    ngram: int | None = None,
    max_draft: int | None = None,
    backend: str = "reference",
) -> dict[str, object]:
    """Run every experiment; returns the raw rows keyed by experiment name.

    Parameters
    ----------
    quick:
        Reduced trial counts for a fast run.
    stream:
        Output stream (default stdout).
    jobs:
        Worker processes for the scheduler; ``1`` runs serially in-process.
    cache_dir:
        Result-cache directory (default ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro``).
    no_cache:
        Skip cache lookups (results are still stored for the next run).
    seed:
        RNG seed threaded through every job, so repeated runs — and cache
        replays — are bit-identical.
    use_cache:
        ``False`` disables the cache entirely (no lookups, no writes);
        used by tests that must not touch the user's cache directory.
    include_serve:
        Append the continuous-batching serve-bench section
        (``--serve`` on the CLI).
    include_precision:
        Append the precision-policy sweep section (``--precision``).
    include_cluster:
        Append the multi-replica cluster-bench section (``--cluster``):
        replica counts x routing policies on the shared-prefix scenarios.
    policy:
        Precision policy of the serve-bench section's model (``--policy``).
    decode_strategy / ngram / max_draft:
        ``--decode-strategy prompt-lookup`` adds paired one-token vs
        speculative serve cells on the copy-heavy grid.
    backend:
        Execution backend of every serve cell (``--backend``); tokens are
        backend-invariant, so only the timing columns move.
    """
    stream = stream or sys.stdout
    sections = build_sections(
        quick=quick,
        seed=seed,
        include_serve=include_serve,
        include_precision=include_precision,
        include_cluster=include_cluster,
        policy=policy,
        decode_strategy=decode_strategy,
        ngram=ngram,
        max_draft=max_draft,
        backend=backend,
    )
    flat = [job for _, group in sections for job in group]
    cache = ResultCache(cache_dir) if use_cache else None
    # Per-job progress goes to stderr so long runs show liveness without
    # interleaving into the table output on stdout.
    outcomes = run_jobs(
        flat, max_workers=jobs, cache=cache, no_cache=no_cache, stream=sys.stderr
    )

    results: dict[str, object] = {}
    cursor = 0
    for name, group in sections:
        group_outcomes = outcomes[cursor : cursor + len(group)]
        cursor += len(group)
        if name in _MERGED_SECTIONS:
            rows, text = _MERGED_SECTIONS[name]([o.rows for o in group_outcomes])
        else:
            rows, text = group_outcomes[0].rows, group_outcomes[0].text
        results[name] = rows
        fresh = [o for o in group_outcomes if not o.cached]
        if not fresh:
            original = sum(o.elapsed for o in group_outcomes)
            timing = f"cached, originally {original:.1f}s"
        elif len(fresh) < len(group_outcomes):
            computed = sum(o.elapsed for o in fresh)
            timing = (
                f"{computed:.1f}s + {len(group_outcomes) - len(fresh)} cached cells"
            )
        else:
            timing = f"{sum(o.elapsed for o in fresh):.1f}s"
        stream.write(f"\n{'=' * 78}\n{name}  ({timing})\n{'=' * 78}\n{text}\n")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced trial counts for a fast run"
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="also run the serving benchmark section (timing-sensitive)",
    )
    parser.add_argument(
        "--precision", action="store_true",
        help="also run the precision-policy sweep section",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="also run the multi-replica cluster serving section "
             "(replica counts x routing policies)",
    )
    parser.add_argument(
        "--policy", default="fp64-ref",
        help="precision policy of the serve-bench section's model",
    )
    parser.add_argument(
        "--decode-strategy", default="one-token",
        choices=("one-token", "prompt-lookup"),
        help="with --serve, also run paired one-token vs speculative "
             "cells on the copy-heavy grid",
    )
    parser.add_argument(
        "--ngram", type=int, default=None, metavar="N",
        help="longest n-gram the prompt-lookup speculator matches",
    )
    parser.add_argument(
        "--max-draft", type=int, default=None, metavar="K",
        help="max draft tokens verified per speculative step",
    )
    parser.add_argument(
        "--backend", default="reference",
        help="execution backend of the serve-bench section's engine "
             "('reference', 'compiled', 'sharded:N[:sim|process][:pin]' or "
             "'pipeline:P[+sharded:N][:sim|process][:pin]')",
    )
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    run_all(
        quick=args.quick,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        seed=args.seed,
        include_serve=args.serve,
        include_precision=args.precision,
        include_cluster=args.cluster,
        policy=args.policy,
        decode_strategy=args.decode_strategy,
        ngram=args.ngram,
        max_draft=args.max_draft,
        backend=args.backend,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
