"""Table IV — LLM-level evaluation of IterL2Norm.

Trains the scaled-down OPT-style models on the two synthetic corpora,
replaces their layer normalization with IterL2Norm at 3/4/5/10 iteration
steps in FP32/FP16/BFloat16, and reports the perplexity alongside the exact
baseline — the reproduction of the paper's normalizer-swap experiment
(see DESIGN.md for the substitution of models and corpora).
"""

from __future__ import annotations

from repro.eval.perplexity import LLMEvalConfig, perplexity_cell, perplexity_experiment
from repro.eval.reporting import format_table

#: Column layout shared by the single-run and merged-cell table writers.
TABLE4_COLUMNS = ["task", "model", "format", "baseline_ppl", "steps", "ppl", "delta"]
TABLE4_TITLE = "Table IV - perplexity with IterL2Norm replacing layer normalization"


def format_rows(rows: list[dict[str, object]]) -> str:
    """Render Table IV rows with the canonical column layout."""
    return format_table(rows, columns=TABLE4_COLUMNS, float_format=".4f", title=TABLE4_TITLE)


def run(config: LLMEvalConfig | None = None) -> tuple[list[dict[str, object]], str]:
    """Run the Table IV grid and return (rows, formatted text)."""
    results = perplexity_experiment(config)
    rows = [row for result in results for row in result.as_rows()]
    return rows, format_rows(rows)


def run_cell_job(
    task: str,
    model: str,
    seed: int = 0,
    **config_kwargs,
) -> tuple[list[dict[str, object]], str]:
    """Engine entry point for one (task, model) cell of the Table IV grid.

    ``config_kwargs`` are the remaining :class:`LLMEvalConfig` fields
    (``formats``, ``step_counts``, ``train_steps``, ...); sequence-valued
    fields may arrive as lists after a cache round-trip.
    """
    for key in ("formats", "step_counts"):
        if key in config_kwargs:
            config_kwargs[key] = tuple(config_kwargs[key])
    config = LLMEvalConfig(tasks=(task,), models=(model,), seed=seed, **config_kwargs)
    results = perplexity_cell(task, model, config)
    rows = [row for result in results for row in result.as_rows()]
    return rows, format_rows(rows)


def jobs(config: LLMEvalConfig | None = None) -> list:
    """Declare the Table IV grid as one engine job per (task, model) cell.

    Cells train independent models, so they fan out cleanly over the
    scheduler's process pool; :func:`merge_cell_rows` reassembles the full
    table from the per-cell rows.
    """
    from dataclasses import asdict

    from repro.engine.job import engine_job

    config = config or LLMEvalConfig()
    # Everything except the cell coordinates and the seed is forwarded, so a
    # future LLMEvalConfig field automatically reaches the cell jobs (and
    # the cache hash) instead of silently reverting to its default.
    shared = {
        key: value
        for key, value in asdict(config).items()
        if key not in ("tasks", "models", "seed")
    }
    return [
        engine_job(
            f"Table IV [{task}/{model}]",
            "repro.experiments.table4:run_cell_job",
            seed=config.seed,
            task=task,
            model=model,
            **shared,
        )
        for task in config.tasks
        for model in config.models
    ]


def merge_cell_rows(cell_rows: list[list[dict[str, object]]]) -> tuple[list[dict[str, object]], str]:
    """Combine per-cell row lists (in job order) into the full Table IV."""
    rows = [row for rows_ in cell_rows for row in rows_]
    return rows, format_rows(rows)


def run_quick() -> tuple[list[dict[str, object]], str]:
    """A reduced grid (one format, fewer training steps) for smoke tests."""
    config = LLMEvalConfig(
        tasks=("wikitext2-sim",),
        models=("opt-125m-sim",),
        formats=("fp32",),
        step_counts=(3, 5, 10),
        train_steps=40,
        eval_windows=8,
    )
    return run(config)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run_quick()[1])
