"""Table IV — LLM-level evaluation of IterL2Norm.

Trains the scaled-down OPT-style models on the two synthetic corpora,
replaces their layer normalization with IterL2Norm at 3/4/5/10 iteration
steps in FP32/FP16/BFloat16, and reports the perplexity alongside the exact
baseline — the reproduction of the paper's normalizer-swap experiment
(see DESIGN.md for the substitution of models and corpora).
"""

from __future__ import annotations

from repro.eval.perplexity import LLMEvalConfig, perplexity_experiment
from repro.eval.reporting import format_table


def run(config: LLMEvalConfig | None = None) -> tuple[list[dict[str, object]], str]:
    """Run the Table IV grid and return (rows, formatted text)."""
    results = perplexity_experiment(config)
    rows = [row for result in results for row in result.as_rows()]
    text = format_table(
        rows,
        columns=["task", "model", "format", "baseline_ppl", "steps", "ppl", "delta"],
        float_format=".4f",
        title="Table IV - perplexity with IterL2Norm replacing layer normalization",
    )
    return rows, text


def run_quick() -> tuple[list[dict[str, object]], str]:
    """A reduced grid (one format, fewer training steps) for smoke tests."""
    config = LLMEvalConfig(
        tasks=("wikitext2-sim",),
        models=("opt-125m-sim",),
        formats=("fp32",),
        step_counts=(3, 5, 10),
        train_steps=40,
        eval_windows=8,
    )
    return run(config)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run_quick()[1])
