"""Fig. 4 — average error vs iteration count at d = 1024.

Regenerates the convergence plot: the average absolute error of IterL2Norm
in FP32/FP16/BFloat16 for increasing iteration counts, 1,000 random vectors
per point.
"""

from __future__ import annotations

from repro.eval.precision import convergence_sweep
from repro.eval.reporting import format_table

DEFAULT_STEP_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12)


def run(
    length: int = 1024,
    formats=("fp32", "fp16", "bf16"),
    step_counts=DEFAULT_STEP_COUNTS,
    trials: int = 1000,
    seed: int = 0,
) -> tuple[list[dict[str, object]], str]:
    """Run the Fig. 4 sweep and return (rows, formatted text)."""
    results = convergence_sweep(
        length=length, formats=formats, step_counts=step_counts, trials=trials, seed=seed
    )
    rows = [r.as_row() for r in results]
    text = format_table(
        rows,
        columns=["format", "steps", "mean_err", "max_err"],
        title=f"Fig. 4 - average error vs iteration steps (d={length})",
    )
    return rows, text


def job(
    length: int = 1024,
    formats=("fp32", "fp16", "bf16"),
    step_counts=DEFAULT_STEP_COUNTS,
    trials: int = 1000,
    seed: int = 0,
):
    """Declare the Fig. 4 convergence sweep as a schedulable engine job."""
    from repro.engine.job import engine_job

    return engine_job(
        "Fig. 4",
        "repro.experiments.fig4:run",
        seed=seed,
        length=length,
        formats=formats,
        step_counts=step_counts,
        trials=trials,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run(trials=200)[1])
