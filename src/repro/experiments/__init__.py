"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...) -> (rows, text)`` where ``rows`` is the raw
data (a list of dict rows or an equivalent structure) and ``text`` is the
formatted table printed by the runner.  :mod:`repro.experiments.runner`
regenerates every experiment in sequence and is what ``EXPERIMENTS.md`` was
produced from.
"""

from repro.experiments import (
    extension_fp8,
    fig3,
    fig4,
    fig5,
    fig6,
    runner,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "extension_fp8",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "runner",
    "table1",
    "table2",
    "table3",
    "table4",
]
