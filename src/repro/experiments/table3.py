"""Table III — comparison with previous layer-normalization hardware.

Combines the literature-reported rows ([8]-[11]) with the "Ours" rows
generated from the area/power model.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.eval.synthesis import comparison_rows


def run(include_ours: bool = True) -> tuple[list[dict[str, object]], str]:
    """Run the Table III report and return (rows, formatted text)."""
    rows = comparison_rows(include_ours=include_ours)
    text = format_table(
        rows,
        columns=[
            "implementation",
            "technology",
            "method",
            "operations",
            "formats",
            "area_mm2",
            "power_w",
            "clock_mhz",
        ],
        title="Table III - comparison with previous layer normalization implementations",
    )
    return rows, text


def job(include_ours: bool = True):
    """Declare the Table III comparison as a schedulable engine job.

    The report is fully deterministic (no RNG), so the job is unseeded.
    """
    from repro.engine.job import engine_job

    return engine_job(
        "Table III",
        "repro.experiments.table3:run",
        seeded=False,
        include_ours=include_ours,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run()[1])
