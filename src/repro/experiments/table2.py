"""Table II — synthesis results of the IterL2Norm macro per data format.

Regenerates the memory size, standard-cell count, area (with and without the
Add/Mul blocks), and power of the macro for FP32/FP16/BFloat16 from the
component-level area/power model.
"""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.eval.synthesis import synthesis_rows

#: The paper's Table II values, kept here for the side-by-side report.
PAPER_TABLE2 = {
    "fp32": {"memory_kib": 96.5, "cells_k": 269.3, "area_mm2": 2.4, "power_mw": 22.9},
    "fp16": {"memory_kib": 48.3, "cells_k": 100.1, "area_mm2": 1.1, "power_mw": 8.4},
    "bf16": {"memory_kib": 48.3, "cells_k": 87.0, "area_mm2": 1.0, "power_mw": 7.3},
}


def run(formats=("fp32", "fp16", "bf16")) -> tuple[list[dict[str, object]], str]:
    """Run the Table II report and return (rows, formatted text)."""
    rows = synthesis_rows(formats)
    for row in rows:
        paper = PAPER_TABLE2.get(str(row["format"]), {})
        row["paper_area_mm2"] = paper.get("area_mm2")
        row["paper_power_mw"] = paper.get("power_mw")
        row["paper_cells_k"] = paper.get("cells_k")
    text = format_table(
        rows,
        columns=[
            "format",
            "memory_kib",
            "cells_k",
            "paper_cells_k",
            "area_mm2",
            "paper_area_mm2",
            "area_wo_addmul_mm2",
            "power_mw",
            "paper_power_mw",
        ],
        title="Table II - IterL2Norm macro synthesis results (model vs paper)",
    )
    return rows, text


def job(formats=("fp32", "fp16", "bf16")):
    """Declare the Table II synthesis report as a schedulable engine job.

    The report is fully deterministic (no RNG), so the job is unseeded.
    """
    from repro.engine.job import engine_job

    return engine_job(
        "Table II", "repro.experiments.table2:run", seeded=False, formats=formats
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run()[1])
