"""Table I — IterL2Norm vs FISR precision at the OPT embedding lengths.

Regenerates the paper's comparison of mean/max absolute error between
IterL2Norm (5 iteration steps) and the fast-inverse-square-root baseline for
the nine embedding lengths used by the OPT model family, in FP32 and
BFloat16 (the two 8-bit-exponent formats FISR supports).
"""

from __future__ import annotations

from repro.eval.precision import OPT_LENGTHS, method_comparison
from repro.eval.reporting import format_table


def run(
    lengths=OPT_LENGTHS,
    formats=("fp32", "bf16"),
    trials: int = 1000,
    num_steps: int = 5,
    seed: int = 0,
) -> tuple[list[dict[str, object]], str]:
    """Run the Table I comparison and return (rows, formatted text)."""
    rows = method_comparison(
        lengths=lengths, formats=formats, num_steps=num_steps, trials=trials, seed=seed
    )
    text = format_table(
        rows,
        columns=[
            "format",
            "d",
            "iterl2norm_mean",
            "iterl2norm_max",
            "fisr_mean",
            "fisr_max",
            "winner",
        ],
        title="Table I - IterL2Norm vs FISR (mean/max absolute error)",
    )
    summary_lines = []
    for fmt in formats:
        fmt_rows = [r for r in rows if r["format"] == fmt]
        wins = sum(1 for r in fmt_rows if r["winner"] == "iterl2norm")
        summary_lines.append(
            f"  {fmt}: IterL2Norm wins on average error in {wins} of {len(fmt_rows)} lengths"
        )
    return rows, text + "\n" + "\n".join(summary_lines)


def job(
    lengths=OPT_LENGTHS,
    formats=("fp32", "bf16"),
    trials: int = 1000,
    num_steps: int = 5,
    seed: int = 0,
):
    """Declare the Table I comparison as a schedulable engine job."""
    from repro.engine.job import engine_job

    return engine_job(
        "Table I",
        "repro.experiments.table1:run",
        seed=seed,
        lengths=lengths,
        formats=formats,
        trials=trials,
        num_steps=num_steps,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run(trials=200)[1])
